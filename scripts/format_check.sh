#!/usr/bin/env bash
# Advisory clang-format conformance report (see .clang-format). Prints the
# files that would be reformatted and exits 1 if any differ — CI runs this
# with continue-on-error so drift is visible in the log without blocking a PR
# on a whole-tree reformat.
#
# Usage: scripts/format_check.sh [clang-format-binary]
set -u
cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format-check: $CLANG_FORMAT not found; skipping (advisory check)" >&2
  exit 0
fi

dirty=0
total=0
while IFS= read -r file; do
  total=$((total + 1))
  if ! "$CLANG_FORMAT" --dry-run -Werror "$file" >/dev/null 2>&1; then
    echo "needs-format: $file"
    dirty=$((dirty + 1))
  fi
done < <(find src tests bench examples -name '*.hpp' -o -name '*.cpp' | sort)

echo "format-check: $dirty of $total file(s) differ from .clang-format"
[ "$dirty" -eq 0 ]
