#!/usr/bin/env python3
"""Perf-regression gate for the pcflow-bench JSON artifact.

Compares a candidate BENCH_pcflow.json against a committed baseline:

  * schema      — both documents must be pcflow-bench schema_version 3 and
                  cover the same scenario set (same names, same cell
                  parameters: algorithm/topology/engine/shards/delivery/
                  fixed_rounds/fault_profile);
  * counters    — every deterministic field (converged_trials, rounds,
                  final_max_error, messages_sent, doubles_on_wire,
                  deliveries) must match the baseline EXACTLY. These are
                  seed-reproducible on any machine; any drift means an
                  engine change altered behaviour, not just speed;
  * wall clock  — summed over the scenarios both documents timed, candidate
                  wall_seconds may exceed the baseline by at most --tolerance
                  (default 0.15 = +15%) plus --slack absolute seconds
                  (default 0.25). The gate is on the aggregate, not per
                  scenario: individual sub-second cells jitter by tens of
                  percent run-to-run, the suite total does not. Slower
                  machines lie about this, so the gate only applies when
                  both documents carry timing and can be disabled with
                  --no-wall for cross-machine comparisons (CI measures its
                  own fresh baseline from the base ref instead of trusting
                  the committed one; see --wall-only).

Exit code: 0 clean, 1 regression found, 2 usage/schema error.
"""

import argparse
import json
import sys

SCHEMA = "pcflow-bench"
SCHEMA_VERSION = 3
IDENTITY_KEYS = (
    "algorithm",
    "topology",
    "fault_profile",
    "engine",
    "shards",
    "delivery",
    "fixed_rounds",
    "trials",
)
EXACT_KEYS = (
    "nodes",
    "converged_trials",
    "messages_sent",
    "doubles_on_wire",
    "deliveries",
)
# Statistics blocks are {mean, min, max, ...}; exact-compare them wholesale.
EXACT_BLOCKS = ("rounds", "final_max_error")


def die(msg):
    print(f"bench_gate: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        die(f"{path}: schema_version {doc.get('schema_version')!r}, want {SCHEMA_VERSION}")
    if doc.get("scenario_count") != len(doc.get("scenarios", [])):
        die(f"{path}: scenario_count does not match scenarios[]")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_pcflow.json")
    parser.add_argument("candidate", help="freshly produced BENCH_pcflow.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional wall-clock regression per scenario (default 0.15)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.25,
        help="absolute wall-clock slack in seconds added on top of the "
        "fractional tolerance (default 0.25; absorbs scheduler jitter)",
    )
    parser.add_argument(
        "--no-wall",
        action="store_true",
        help="skip the wall-clock gate (cross-machine counter-only comparison)",
    )
    parser.add_argument(
        "--wall-only",
        action="store_true",
        help="gate only wall clock, over the intersecting scenario set "
        "(same-machine A/B comparison across refs, where counters may differ)",
    )
    args = parser.parse_args()
    if args.no_wall and args.wall_only:
        parser.error("--no-wall and --wall-only are mutually exclusive")

    base = load(args.baseline)
    cand = load(args.candidate)
    base_by_name = {s["name"]: s for s in base["scenarios"]}
    cand_by_name = {s["name"]: s for s in cand["scenarios"]}

    failures = []
    base_wall = cand_wall = 0.0
    timed = 0
    if not args.wall_only and set(base_by_name) != set(cand_by_name):
        missing = sorted(set(base_by_name) - set(cand_by_name))
        extra = sorted(set(cand_by_name) - set(base_by_name))
        failures.append(f"scenario set changed: missing={missing} extra={extra}")

    for name in sorted(set(base_by_name) & set(cand_by_name)):
        b, c = base_by_name[name], cand_by_name[name]
        if not args.wall_only:
            for key in IDENTITY_KEYS:
                if b.get(key) != c.get(key):
                    failures.append(
                        f"{name}: cell parameter {key}: {b.get(key)!r} != {c.get(key)!r}"
                    )
            for key in EXACT_KEYS:
                if b.get(key) != c.get(key):
                    failures.append(f"{name}: counter {key}: baseline {b.get(key)} != {c.get(key)}")
            for key in EXACT_BLOCKS:
                if b.get(key) != c.get(key):
                    failures.append(f"{name}: statistic {key}: baseline {b.get(key)} != {c.get(key)}")
        if args.no_wall:
            continue
        bt, ct = b.get("timing"), c.get("timing")
        if bt is None or ct is None:
            continue  # --timing=false artifacts carry no wall clock
        base_wall += bt["wall_seconds"]
        cand_wall += ct["wall_seconds"]
        timed += 1

    allowed = base_wall * (1.0 + args.tolerance) + args.slack
    if not args.no_wall and base_wall > 0.0 and cand_wall > allowed:
        failures.append(
            f"aggregate wall-clock regression over {timed} timed scenario(s): "
            f"{cand_wall:.3f}s vs baseline {base_wall:.3f}s (limit {allowed:.3f}s = "
            f"+{args.tolerance * 100.0:.0f}% + {args.slack:.2f}s slack)"
        )

    if failures:
        print("bench_gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    if args.no_wall:
        gates = "counters"
    elif args.wall_only:
        gates = f"wall-clock +{args.tolerance * 100.0:.0f}% only"
    else:
        gates = f"counters + wall-clock +{args.tolerance * 100.0:.0f}%"
    print(f"bench_gate: ok — {len(base_by_name)} scenario(s), gates: {gates}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
