// Ablation A2 — soft errors: message loss and bit flips (Section II-A
// discusses these failure classes; the paper plots no sweep, so this is an
// extension).
//
// Push-sum violates mass conservation on the first lost message and converges
// to a WRONG value; the flow-based algorithms (PF, PCF, Flow Updating)
// re-establish pairwise conservation at the next successful delivery and
// converge correctly — message loss only slows them down.
#include "bench_common.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("dims", std::int64_t{5}, "hypercube dimension");
  flags.define("rounds", std::int64_t{6000}, "rounds per scenario");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_soft_errors",
               "Section II-A — convergence under message loss and bit flips");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  const auto topology = net::Topology::hypercube(static_cast<std::size_t>(flags.get_int("dims")));
  const auto values = random_inputs(topology.size(), seed);
  const auto masses = initial_masses(values, core::Aggregate::kAverage);

  Table table({"algorithm", "loss_prob", "flip_prob", "final_max_error", "dropped", "flipped"});
  const std::vector<core::Algorithm> algorithms{
      core::Algorithm::kPushSum, core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow,
      core::Algorithm::kFlowUpdating};
  struct Scenario {
    double loss;
    double flip;
  };
  const std::vector<Scenario> scenarios{{0.0, 0.0}, {0.01, 0.0}, {0.1, 0.0},
                                        {0.3, 0.0}, {0.0, 0.001}};
  for (const auto algorithm : algorithms) {
    for (const auto& scenario : scenarios) {
      sim::SyncEngineConfig config;
      config.algorithm = algorithm;
      config.seed = seed;
      config.faults.message_loss_prob = scenario.loss;
      config.faults.bit_flip_prob = scenario.flip;
      sim::SyncEngine engine(topology, masses, config);
      engine.run(rounds);
      table.add_row({std::string(core::to_string(algorithm)), Table::fixed(scenario.loss, 2),
                     Table::fixed(scenario.flip, 3), Table::sci(engine.max_error()),
                     Table::num(static_cast<std::int64_t>(engine.stats().messages_dropped)),
                     Table::num(static_cast<std::int64_t>(engine.stats().messages_flipped))});
    }
    std::fflush(stdout);
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
