// Ablation A5 — google-benchmark micro benchmarks: per-round cost of each
// algorithm (simulation engine throughput) and per-packet protocol cost.
// These quantify the constant-factor overhead PCF's double flow slots and
// handshake add over PF and push-sum.
#include <benchmark/benchmark.h>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"

namespace {

using namespace pcf;

void engine_round(benchmark::State& state, core::Algorithm algorithm) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto topology = net::Topology::hypercube(dims);
  Rng rng(42);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = rng.uniform();
  const auto masses = sim::masses_from_values(values, core::Aggregate::kAverage);
  sim::SyncEngineConfig config;
  config.algorithm = algorithm;
  config.seed = 1;
  sim::SyncEngine engine(topology, masses, config);
  for (auto _ : state) {
    engine.step();
    benchmark::DoNotOptimize(engine.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topology.size()));
  state.SetLabel(std::to_string(topology.size()) + " nodes");
}

void BM_RoundPushSum(benchmark::State& state) { engine_round(state, core::Algorithm::kPushSum); }
void BM_RoundPushFlow(benchmark::State& state) {
  engine_round(state, core::Algorithm::kPushFlow);
}
void BM_RoundPushCancelFlow(benchmark::State& state) {
  engine_round(state, core::Algorithm::kPushCancelFlow);
}
void BM_RoundFlowUpdating(benchmark::State& state) {
  engine_round(state, core::Algorithm::kFlowUpdating);
}

BENCHMARK(BM_RoundPushSum)->Arg(6)->Arg(10);
BENCHMARK(BM_RoundPushFlow)->Arg(6)->Arg(10);
BENCHMARK(BM_RoundPushCancelFlow)->Arg(6)->Arg(10);
BENCHMARK(BM_RoundFlowUpdating)->Arg(6)->Arg(10);

void BM_PacketExchange(benchmark::State& state) {
  // One send+receive on a single edge, vector payload of kMaxDim components —
  // the inner loop of everything.
  const auto algorithm = static_cast<core::Algorithm>(state.range(0));
  auto a = core::make_reducer(algorithm);
  auto b = core::make_reducer(algorithm);
  const std::vector<net::NodeId> na{1}, nb{0};
  core::Values payload(core::kMaxDim, 1.0);
  a->init(0, na, core::Mass(payload, 1.0));
  b->init(1, nb, core::Mass(payload, 1.0));
  for (auto _ : state) {
    auto out = a->make_message_to(1);
    b->on_receive(0, out->packet);
    auto back = b->make_message_to(0);
    a->on_receive(1, back->packet);
    benchmark::DoNotOptimize(a->estimate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

BENCHMARK(BM_PacketExchange)
    ->Arg(static_cast<int>(core::Algorithm::kPushSum))
    ->Arg(static_cast<int>(core::Algorithm::kPushFlow))
    ->Arg(static_cast<int>(core::Algorithm::kPushCancelFlow))
    ->Arg(static_cast<int>(core::Algorithm::kFlowUpdating));

void BM_VectorReduction(benchmark::State& state) {
  // End-to-end batched reduction (the dmGS building block): dim-16 payload on
  // a 6D hypercube to 1e-12.
  const auto topology = net::Topology::hypercube(6);
  Rng rng(7);
  std::vector<core::Values> values(topology.size());
  for (auto& v : values) {
    v = core::Values(core::kMaxDim);
    for (auto& x : v) x = rng.uniform();
  }
  for (auto _ : state) {
    sim::ReduceOptions options;
    options.aggregate = core::Aggregate::kSum;
    options.target_accuracy = 1e-12;
    options.max_rounds = 2000;
    options.seed = 3;
    const auto result = sim::reduce_vectors(topology, values, options);
    benchmark::DoNotOptimize(result.rounds);
  }
}

BENCHMARK(BM_VectorReduction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
