// Ablation A9 — the second higher-level application: a distributed
// eigensolver built on gossip reductions (the paper's reference [9] follows
// exactly this recipe). Two tables:
//
//  * failure-free — at small n both reduction algorithms reach the target
//    inside the cap, so the eigensolver is equally accurate with either
//    (push the sweep to --max-dims=9+ to see PF's accuracy floor leak
//    through, as in Fig. 8);
//  * one permanent link failure injected late into EVERY reduction — PF's
//    restart-on-exclusion throws almost-converged reductions back to O(1)
//    error just before the cap, which wrecks the factorizations inside the
//    iteration; PCF's exclusion is free and the eigensolver never notices.
//    This is Fig. 7's story surfacing two abstraction layers up.
#include "bench_common.hpp"
#include "linalg/distributed_eigen.hpp"
#include "linalg/eigen_ref.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("min-dims", std::int64_t{4}, "smallest hypercube dimension");
  flags.define("max-dims", std::int64_t{7}, "largest hypercube dimension");
  flags.define("pairs", std::int64_t{2}, "dominant eigenpairs to compute");
  flags.define("iterations", std::int64_t{200}, "orthogonal-iteration steps");
  flags.define("max-rounds", std::int64_t{500}, "per-reduction iteration cap");
  flags.define("epsilon", 1e-15,
               "per-reduction target accuracy (tight, so reductions run until the cap and the "
               "injected failure actually lands mid-flight)");
  flags.define("fail-at", 450.0,
               "failure-injected table: round (within each reduction) at which a link dies");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_eigensolver",
               "distributed eigensolver (orthogonal iteration over gossip reductions)");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double fail_at = flags.get_double("fail-at");

  for (const bool with_failure : {false, true}) {
    std::printf("--- %s ---\n", with_failure
                                    ? "one link failure inside every reduction"
                                    : "failure-free");
    Table table({"n", "algorithm", "max_residual", "orthogonality", "eigval_error",
                 "eigval_disagreement", "reductions"});
    for (auto dims = static_cast<std::size_t>(flags.get_int("min-dims"));
         dims <= static_cast<std::size_t>(flags.get_int("max-dims")); ++dims) {
      const auto topology = net::Topology::hypercube(dims);
      const auto m = linalg::NetworkMatrix::shifted_adjacency(topology);
      // Exact spectrum of the shifted hypercube adjacency: (d+1) + d − 2m.
      const double exact_top = 2.0 * static_cast<double>(dims) + 1.0;

      for (const auto algorithm :
           {core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow}) {
        linalg::DistributedEigenOptions options;
        options.algorithm = algorithm;
        options.seed = seed;
        options.num_pairs = static_cast<std::size_t>(flags.get_int("pairs"));
        options.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
        options.reduction_accuracy = flags.get_double("epsilon");
        options.max_rounds_per_reduction =
            static_cast<std::size_t>(flags.get_int("max-rounds"));
        if (with_failure) {
          options.faults.link_failures.push_back({fail_at, 0, 1});
        }
        const auto result = linalg::distributed_eigen(m, options);
        const auto residuals = result.residuals(m);
        double max_residual = 0.0;
        for (double r : residuals) max_residual = std::max(max_residual, r);
        table.add_row({Table::num(static_cast<std::int64_t>(topology.size())),
                       std::string(core::to_string(algorithm)), Table::sci(max_residual),
                       Table::sci(linalg::orthogonality_error(result.eigenvectors)),
                       Table::sci(std::abs(result.eigenvalues[0] - exact_top)),
                       Table::sci(result.eigenvalue_disagreement),
                       Table::num(static_cast<std::int64_t>(result.reductions))});
        std::fflush(stdout);
      }
    }
    emit(table, flags);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
