// Figure 7 — the failure experiments of Fig. 4 repeated with the
// push-cancel-flow algorithm; the PF series on the SAME schedule (same seed)
// is printed alongside, as the paper overlays it in light colors.
//
// Expected shape: identical curves until the failure handling (same
// schedule, equivalent algorithms); afterwards PCF continues converging with
// no fall-back while PF restarts from ~its initial error.
#include "failure_trace.hpp"

int main(int argc, char** argv) {
  pcf::CliFlags flags;
  pcf::bench::define_failure_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  pcf::bench::print_banner("fig7_pcf_failure",
                           "Figure 7 — PCF under the Fig. 4 failure experiments (PF overlaid)");
  pcf::bench::run_failure_trace(pcf::core::Algorithm::kPushCancelFlow, /*compare_with_pf=*/true,
                                flags);
  return 0;
}
