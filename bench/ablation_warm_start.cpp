// Ablation A10 — warm-started reduction sessions vs. cold reductions.
//
// The paper's introduction argues that higher-level operations "can benefit
// from the iterative nature of gossip-based reduction algorithms for saving
// communication costs". This ablation quantifies it for a monitoring
// workload: the same aggregate is re-queried as the inputs drift by a given
// relative step. A cold reduction always descends from O(1) error to the
// target; a warm session only closes the gap the drift opened, so its cost
// scales with log(drift)/log(target).
#include "bench_common.hpp"
#include "sim/session.hpp"
#include "support/stats.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("dims", std::int64_t{6}, "hypercube dimension");
  flags.define("queries", std::int64_t{20}, "warm queries per drift level");
  flags.define("epsilon", 1e-10, "target accuracy per query");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_warm_start",
               "warm reduction sessions vs. cold restarts for drifting inputs");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto queries = static_cast<std::size_t>(flags.get_int("queries"));
  const double epsilon = flags.get_double("epsilon");
  const auto topology = net::Topology::hypercube(static_cast<std::size_t>(flags.get_int("dims")));

  Table table({"drift", "cold_rounds", "warm_rounds(mean)", "saving", "warm_max_error"});
  for (const double drift : {1e-2, 1e-4, 1e-6, 1e-8}) {
    auto values = random_inputs(topology.size(), seed);
    for (auto& v : values) v += 1.0;  // keep magnitudes comparable (see session.hpp)
    auto to_inputs = [&] {
      std::vector<core::Values> inputs;
      inputs.reserve(values.size());
      for (double v : values) inputs.push_back(core::Values{v});
      return inputs;
    };
    sim::SessionOptions options;
    options.seed = seed;
    options.target_accuracy = epsilon;
    sim::ReductionSession session(topology, to_inputs(), options);
    const auto cold = session.query(to_inputs());

    Rng drift_rng(seed ^ 0xd21f7);
    RunningStats warm_rounds;
    double worst_error = 0.0;
    for (std::size_t q = 0; q < queries; ++q) {
      for (auto& v : values) v *= 1.0 + drift_rng.uniform(-drift, drift);
      const auto reply = session.query(to_inputs());
      warm_rounds.add(static_cast<double>(reply.rounds));
      worst_error = std::max(worst_error, reply.max_error);
    }
    const double saving = 1.0 - warm_rounds.mean() / static_cast<double>(cold.rounds);
    table.add_row({Table::sci(drift, 0), Table::num(static_cast<std::int64_t>(cold.rounds)),
                   Table::fixed(warm_rounds.mean(), 1),
                   Table::fixed(100.0 * saving, 1) + "%", Table::sci(worst_error)});
    std::fflush(stdout);
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
