// Figure 4 — "The PF algorithm is executed on a 6D hypercube and a single
// system failure is injected per experiment. The failure handling takes
// place after 75 (left) and 175 (right) iterations."
//
// Expected shape: no matter how late the failure occurs, PF's max local
// error jumps back to ~its initial level (the computation effectively
// restarts) — the flows being zeroed carry arbitrary, execution-dependent
// values.
#include "failure_trace.hpp"

int main(int argc, char** argv) {
  pcf::CliFlags flags;
  pcf::bench::define_failure_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  pcf::bench::print_banner("fig4_pf_failure",
                           "Figure 4 — PF under a single permanent link failure");
  pcf::bench::run_failure_trace(pcf::core::Algorithm::kPushFlow, /*compare_with_pf=*/false,
                                flags);
  return 0;
}
