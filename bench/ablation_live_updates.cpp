// Ablation A8 — live monitoring (extension; dynamic-data scenario of the
// LiMoSense line of work the paper cites as related).
//
// Inputs drift continuously: every `interval` rounds a random node's value
// changes. The table reports the tracking error (time-averaged max local
// error in the steady drift regime) per algorithm. Flow-based algorithms
// track a moving aggregate seamlessly — the update only perturbs the node's
// input, never the flow state — while push-sum tracks too but drops accuracy
// permanently on every message loss.
#include "bench_common.hpp"
#include "support/stats.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("dims", std::int64_t{5}, "hypercube dimension");
  flags.define("interval", std::int64_t{40}, "rounds between data updates");
  flags.define("updates", std::int64_t{50}, "number of updates");
  flags.define("loss", 0.05, "message loss probability");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_live_updates",
               "dynamic monitoring: tracking a drifting aggregate (with 5% message loss)");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto interval = static_cast<std::size_t>(flags.get_int("interval"));
  const auto updates = static_cast<std::size_t>(flags.get_int("updates"));
  const auto topology = net::Topology::hypercube(static_cast<std::size_t>(flags.get_int("dims")));
  const auto values = random_inputs(topology.size(), seed);
  const auto masses = initial_masses(values, core::Aggregate::kAverage);

  // The drift plan: a random node's value steps by ±1 every `interval` rounds.
  Rng drift_rng(seed ^ 0xd21f7);
  sim::FaultPlan plan;
  plan.message_loss_prob = flags.get_double("loss");
  for (std::size_t k = 1; k <= updates; ++k) {
    plan.data_updates.push_back(
        {static_cast<double>(k * interval),
         static_cast<net::NodeId>(drift_rng.below(topology.size())),
         core::Mass::scalar(drift_rng.chance(0.5) ? 1.0 : -1.0, 0.0)});
  }

  Table table({"algorithm", "tracking_error(mean max)", "tracking_error(worst)",
               "error_just_before_update", "final_error"});
  for (const auto algorithm :
       {core::Algorithm::kPushSum, core::Algorithm::kPushFlow,
        core::Algorithm::kPushCancelFlow, core::Algorithm::kFlowUpdating}) {
    sim::SyncEngineConfig config;
    config.algorithm = algorithm;
    config.seed = seed;
    config.faults = plan;
    sim::SyncEngine engine(topology, masses, config);
    engine.run(interval);  // settle before the drift starts

    RunningStats tracking;
    RunningStats pre_update;
    for (std::size_t k = 1; k <= updates; ++k) {
      for (std::size_t r = 0; r < interval; ++r) {
        engine.step();
        tracking.add(engine.max_error());
      }
      pre_update.add(engine.max_error());
    }
    engine.run(400);  // drain after the drift stops
    table.add_row({std::string(core::to_string(algorithm)), Table::sci(tracking.mean()),
                   Table::sci(tracking.max()), Table::sci(pre_update.mean()),
                   Table::sci(engine.max_error())});
    std::fflush(stdout);
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
