#include "bench_common.hpp"

#include <algorithm>

namespace pcf::bench {

AccuracyResult measure_achievable_accuracy(sim::SyncEngine& engine, std::size_t max_rounds,
                                           std::size_t patience) {
  AccuracyResult result;
  result.best_max_error = std::numeric_limits<double>::infinity();
  result.best_p99_error = std::numeric_limits<double>::infinity();
  std::size_t since_improvement = 0;
  while (engine.round() < max_rounds && since_improvement < patience) {
    engine.step();
    const double err = engine.max_error();
    result.best_p99_error = std::min(result.best_p99_error, engine.error_quantile(0.99));
    result.max_abs_flow = std::max(result.max_abs_flow, engine.max_abs_flow());
    if (err < 0.98 * result.best_max_error) {
      result.best_max_error = err;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
  }
  result.final_max_error = engine.max_error();
  result.final_median_error = engine.median_error();
  result.rounds = engine.round();
  return result;
}

std::vector<double> random_inputs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed ^ 0x5eedULL);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform();
  return values;
}

std::vector<core::Mass> initial_masses(std::span<const double> values,
                                       core::Aggregate aggregate) {
  std::vector<core::Mass> masses;
  masses.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], core::initial_weight(aggregate, i)));
  }
  return masses;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("paper: Niederbrucker, Strakova, Gansterer — \"Improving Fault Tolerance and "
              "Accuracy of a Distributed Reduction Algorithm\" (2012)\n\n");
}

void emit(const Table& table, const CliFlags& flags) {
  table.print();
  const std::string& csv = flags.get_string("csv");
  if (!csv.empty()) {
    if (table.write_csv(csv)) std::printf("\ncsv written to %s\n", csv.c_str());
  }
}

void define_common_flags(CliFlags& flags) {
  flags.define("seed", std::int64_t{1}, "base RNG seed (schedules and inputs)");
  flags.define("csv", std::string{}, "write the table as CSV to this path");
}

}  // namespace pcf::bench
