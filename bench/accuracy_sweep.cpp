#include "accuracy_sweep.hpp"

namespace pcf::bench {

void define_accuracy_flags(CliFlags& flags) {
  define_common_flags(flags);
  flags.define("max-exp", std::int64_t{12},
               "largest log2(n); the paper sweeps to 15 (n = 32768), which takes long on "
               "one machine — pass --max-exp=15 for full scale");
  flags.define("max-rounds", std::int64_t{60000}, "hard per-run round cap");
  flags.define("patience", std::int64_t{800},
               "stop once the best error stopped improving for this many rounds");
}

void run_accuracy_sweep(core::Algorithm algorithm, const CliFlags& flags) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto max_exp = static_cast<std::size_t>(flags.get_int("max-exp"));
  const auto max_rounds = static_cast<std::size_t>(flags.get_int("max-rounds"));
  const auto patience = static_cast<std::size_t>(flags.get_int("patience"));

  Table table({"topology", "aggregate", "n", "best_max_error", "best_p99_error",
               "final_median_error", "max_abs_flow", "rounds"});

  struct Family {
    const char* name;
    bool torus;
  };
  for (const Family family : {Family{"3D torus", true}, Family{"hypercube", false}}) {
    for (const auto aggregate : {core::Aggregate::kAverage, core::Aggregate::kSum}) {
      // The paper's x-axis: n = 2^{3i} so both families exist at every point.
      for (std::size_t exp = 3; exp <= max_exp; exp += 3) {
        const std::size_t side = std::size_t{1} << (exp / 3);
        const auto topology = family.torus ? net::Topology::torus3d(side, side, side)
                                           : net::Topology::hypercube(exp);
        const auto values = random_inputs(topology.size(), seed + exp);
        const auto masses = initial_masses(values, aggregate);
        sim::SyncEngineConfig config;
        config.algorithm = algorithm;
        config.seed = seed;
        sim::SyncEngine engine(topology, masses, config);
        const auto r = measure_achievable_accuracy(engine, max_rounds, patience);
        table.add_row({family.name, std::string(core::to_string(aggregate)),
                       Table::num(static_cast<std::int64_t>(topology.size())),
                       Table::sci(r.best_max_error), Table::sci(r.best_p99_error),
                       Table::sci(r.final_median_error), Table::sci(r.max_abs_flow),
                       Table::num(static_cast<std::int64_t>(r.rounds))});
        std::fflush(stdout);
      }
    }
  }
  emit(table, flags);
}

}  // namespace pcf::bench
