// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints (1) a header with the exact configuration,
// (2) an aligned table with the series the paper's figure plots, and
// (3) optionally the same data as CSV (--csv=path).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/mass.hpp"
#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/metrics.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace pcf::bench {

/// Result of an accuracy measurement (Figs. 3/6 style).
struct AccuracyResult {
  double best_max_error = 0.0;  ///< minimum over rounds of max local error
  /// Minimum over rounds of the 99th-percentile local error. Push-based
  /// gossip occasionally starves a node's weight for a few rounds, which
  /// transiently inflates that node's relative error; the p99 excludes those
  /// outliers and exposes the algorithms' *systematic* accuracy floor.
  double best_p99_error = 0.0;
  double final_max_error = 0.0;
  double final_median_error = 0.0;
  double max_abs_flow = 0.0;  ///< largest flow magnitude seen
  std::size_t rounds = 0;
};

/// Runs the engine until the best (minimum over rounds) max local error has
/// not improved by ≥ 2% for `patience` consecutive rounds, or `max_rounds`.
/// This measures the "globally achievable accuracy" the paper's Figs. 3/6
/// report: the error of a converged run, robust against the post-convergence
/// fluctuation caused by transient low node weights.
[[nodiscard]] AccuracyResult measure_achievable_accuracy(sim::SyncEngine& engine,
                                                         std::size_t max_rounds,
                                                         std::size_t patience = 500);

/// Per-node uniform [0,1) inputs, seeded reproducibly.
[[nodiscard]] std::vector<double> random_inputs(std::size_t n, std::uint64_t seed);

/// Initial masses for the given inputs under the aggregate's weight layout.
[[nodiscard]] std::vector<core::Mass> initial_masses(std::span<const double> values,
                                                     core::Aggregate aggregate);

/// Prints the standard bench banner.
void print_banner(const std::string& title, const std::string& paper_ref);

/// Emits the table and, if --csv was given, writes the CSV file.
void emit(const Table& table, const CliFlags& flags);

/// Registers the flags every figure bench shares (--seed, --csv).
void define_common_flags(CliFlags& flags);

}  // namespace pcf::bench
