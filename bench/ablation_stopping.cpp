// Ablation A4 — oracle vs. practical stopping.
//
// The experiments use an oracle ("stop when the true max relative error is
// below ε") that no deployed node can evaluate. The practical alternative is
// the LocalStop detector: a node considers itself converged once its own
// estimate has been stable to a relative tolerance for `patience` consecutive
// rounds. This ablation quantifies the extra rounds the deployable criterion
// costs, and its reliability (true error once all nodes locally stopped).
#include "bench_common.hpp"
#include "core/stopping.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("dims", std::int64_t{6}, "hypercube dimension");
  flags.define("epsilon", 1e-10, "target accuracy");
  flags.define("patience", std::int64_t{25}, "LocalStop: quiet rounds required");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_stopping", "oracle vs. deployable local stopping criterion");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double epsilon = flags.get_double("epsilon");
  const auto patience = static_cast<std::size_t>(flags.get_int("patience"));
  const auto topology = net::Topology::hypercube(static_cast<std::size_t>(flags.get_int("dims")));
  const auto values = random_inputs(topology.size(), seed);
  const auto masses = initial_masses(values, core::Aggregate::kAverage);

  Table table({"algorithm", "oracle_rounds", "local_rounds", "overhead",
               "true_error_at_local_stop"});
  for (const auto algorithm : {core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow,
                               core::Algorithm::kFlowUpdating}) {
    // Oracle run.
    sim::SyncEngineConfig config;
    config.algorithm = algorithm;
    config.seed = seed;
    sim::SyncEngine oracle_engine(topology, masses, config);
    const auto oracle_stats = oracle_engine.run_until_error(epsilon, 100000);

    // Local-detector run (same schedule).
    sim::SyncEngine local_engine(topology, masses, config);
    core::LocalStop detector(topology.size(), epsilon, patience);
    std::size_t local_rounds = 0;
    while (local_rounds < 100000) {
      local_engine.step();
      ++local_rounds;
      for (net::NodeId i = 0; i < topology.size(); ++i) {
        detector.observe(i, local_engine.node(i).estimate());
      }
      if (detector.all_converged()) break;
    }

    const double overhead = oracle_stats.rounds == 0
                                ? 0.0
                                : static_cast<double>(local_rounds) /
                                      static_cast<double>(oracle_stats.rounds);
    table.add_row({std::string(core::to_string(algorithm)),
                   Table::num(static_cast<std::int64_t>(oracle_stats.rounds)),
                   Table::num(static_cast<std::int64_t>(local_rounds)),
                   Table::fixed(overhead, 2) + "x", Table::sci(local_engine.max_error())});
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
