// Figure 3 — "Globally achievable accuracy with the PF algorithm for
// increasing system size, different topologies and different types of
// aggregations."
//
// Expected shape: the best achievable max local error of push-flow GROWS
// with n (flows grow with scale while the aggregate stays O(1), causing
// cancellation); compare bench/fig6_pcf_accuracy, where PCF stays at
// machine-precision level.
#include "accuracy_sweep.hpp"

int main(int argc, char** argv) {
  pcf::CliFlags flags;
  pcf::bench::define_accuracy_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  pcf::bench::print_banner("fig3_pf_accuracy", "Figure 3 — PF achievable accuracy vs. n");
  pcf::bench::run_accuracy_sweep(pcf::core::Algorithm::kPushFlow, flags);
  return 0;
}
