// The accuracy-vs-scale sweep shared by the Fig. 3 (push-flow) and Fig. 6
// (push-cancel-flow) benches: 3D torus (2^i)^3 and hypercube 2^{3i}
// topologies, SUM and AVG aggregates, n = 2^3 … 2^max_exp, measuring the
// globally achievable accuracy (best max local error of a converged run).
#pragma once

#include "bench_common.hpp"

namespace pcf::bench {

/// Defines the sweep's flags on top of the common ones.
void define_accuracy_flags(CliFlags& flags);

/// Runs the sweep for `algorithm` and prints/emits the figure's series.
void run_accuracy_sweep(core::Algorithm algorithm, const CliFlags& flags);

}  // namespace pcf::bench
