// Ablation A7 — communication schedule: randomized gossip vs. the regular
// synchronized matching schedule the paper's Fig. 2 idealization assumes.
//
// Under uniform random gossip, a node's weight occasionally decays for a few
// rounds (it pushes halves without being picked), transiently amplifying its
// relative error; under a deterministic matching schedule every node sends
// and receives every round, so weights stay near 1 and both algorithms reach
// lower worst-case error. Flow growth is also schedule-dependent: the random
// schedule transports more net mass per edge.
#include "bench_common.hpp"
#include "sim/schedule.hpp"

namespace pcf::bench {
namespace {

struct MeasuredAccuracy {
  double best_max = 0.0;
  double max_flow = 0.0;
  std::size_t rounds = 0;
};

MeasuredAccuracy measure_matching(const net::Topology& topology,
                                  std::span<const core::Mass> masses, core::Algorithm algorithm,
                                  std::vector<sim::Matching> matchings, std::size_t max_rounds) {
  sim::MatchingScheduleRunner runner(topology, masses, algorithm, std::move(matchings));
  const sim::Oracle oracle(masses);
  MeasuredAccuracy result;
  result.best_max = std::numeric_limits<double>::infinity();
  std::size_t since = 0;
  while (result.rounds < max_rounds && since < 600) {
    runner.run(1);
    ++result.rounds;
    double worst = 0.0;
    for (double e : runner.estimates()) worst = std::max(worst, oracle.error_of(e));
    if (worst < 0.98 * result.best_max) {
      result.best_max = worst;
      since = 0;
    } else {
      ++since;
    }
  }
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    result.max_flow = std::max(result.max_flow, runner.node(i).max_abs_flow_component());
  }
  return result;
}

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("max-dims", std::int64_t{12}, "largest hypercube dimension");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_schedules",
               "randomized gossip vs. synchronized matching schedule (hypercube)");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto max_dims = static_cast<std::size_t>(flags.get_int("max-dims"));

  Table table({"n", "algorithm", "gossip_best_max", "matching_best_max", "gossip_max_flow",
               "matching_max_flow"});
  for (std::size_t dims = 6; dims <= max_dims; dims += 3) {
    const auto topology = net::Topology::hypercube(dims);
    const auto values = random_inputs(topology.size(), seed + dims);
    const auto masses = initial_masses(values, core::Aggregate::kAverage);
    for (const auto algorithm :
         {core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow}) {
      sim::SyncEngineConfig config;
      config.algorithm = algorithm;
      config.seed = seed;
      sim::SyncEngine engine(topology, masses, config);
      const auto gossip = measure_achievable_accuracy(engine, 20000, 600);
      const auto matching = measure_matching(topology, masses, algorithm,
                                             sim::hypercube_matchings(dims), 20000);
      table.add_row({Table::num(static_cast<std::int64_t>(topology.size())),
                     std::string(core::to_string(algorithm)), Table::sci(gossip.best_max_error),
                     Table::sci(matching.best_max), Table::sci(gossip.max_abs_flow),
                     Table::sci(matching.max_flow)});
      std::fflush(stdout);
    }
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
