// Figure 6 — the accuracy experiments of Fig. 3 repeated with the
// push-cancel-flow algorithm.
//
// Expected shape: the best achievable max local error stays near machine
// precision (~1e-15..1e-14) at every scale, topology and aggregate — in
// strong contrast to PF (bench/fig3_pf_accuracy), whose error grows with n.
#include "accuracy_sweep.hpp"

int main(int argc, char** argv) {
  pcf::CliFlags flags;
  pcf::bench::define_accuracy_flags(flags);
  if (!flags.parse(argc, argv)) return 0;
  pcf::bench::print_banner("fig6_pcf_accuracy", "Figure 6 — PCF achievable accuracy vs. n");
  pcf::bench::run_accuracy_sweep(pcf::core::Algorithm::kPushCancelFlow, flags);
  return 0;
}
