// Ablation A6 — all reduction algorithms side by side, plus the classical
// deterministic parallel baseline (recursive doubling).
//
// The paper's scaling claim (Section I): gossip reduction needs
// O(log n + log 1/ε) time where recursive doubling needs O(log n) — a
// constant overhead for machine-precision aggregates. The table reports
// rounds and messages to reach ε on a hypercube for each algorithm, plus the
// exact deterministic baseline.
#include "bench_common.hpp"
#include "core/allreduce.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("max-dims", std::int64_t{9}, "largest hypercube dimension");
  flags.define("epsilon", 1e-12, "target accuracy for gossip algorithms");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_baselines",
               "Section I — gossip algorithms vs. deterministic recursive doubling");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double epsilon = flags.get_double("epsilon");
  const auto max_dims = static_cast<std::size_t>(flags.get_int("max-dims"));

  Table table({"n", "algorithm", "rounds_to_eps", "messages", "reached", "rounds/log2(n)"});
  for (std::size_t dims = 3; dims <= max_dims; dims += 3) {
    const auto topology = net::Topology::hypercube(dims);
    const auto values = random_inputs(topology.size(), seed);
    const auto masses = initial_masses(values, core::Aggregate::kAverage);

    for (const auto algorithm :
         {core::Algorithm::kPushSum, core::Algorithm::kPushFlow,
          core::Algorithm::kPushCancelFlow, core::Algorithm::kFlowUpdating}) {
      sim::SyncEngineConfig config;
      config.algorithm = algorithm;
      config.seed = seed;
      sim::SyncEngine engine(topology, masses, config);
      const auto stats = engine.run_until_error(epsilon, 100000);
      table.add_row({Table::num(static_cast<std::int64_t>(topology.size())),
                     std::string(core::to_string(algorithm)),
                     Table::num(static_cast<std::int64_t>(stats.rounds)),
                     Table::num(static_cast<std::int64_t>(stats.messages_sent)),
                     stats.reached_target ? "yes" : "no",
                     Table::fixed(static_cast<double>(stats.rounds) / static_cast<double>(dims),
                                  1)});
    }
    // Deterministic baseline: exact in log2(n) rounds, but zero fault
    // tolerance — one lost message corrupts the result on many nodes.
    const auto exact = core::recursive_doubling_sum(values);
    table.add_row({Table::num(static_cast<std::int64_t>(topology.size())),
                   "recursive-doubling", Table::num(static_cast<std::int64_t>(exact.rounds)),
                   Table::num(static_cast<std::int64_t>(exact.messages)), "exact",
                   Table::fixed(1.0, 1)});
    std::fflush(stdout);
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
