#include "failure_trace.hpp"

#include <memory>

namespace pcf::bench {

void define_failure_flags(CliFlags& flags) {
  define_common_flags(flags);
  flags.define("dims", std::int64_t{6}, "hypercube dimension (paper: 6 → 64 nodes)");
  flags.define("rounds", std::int64_t{200}, "iterations per panel (paper: 200)");
  flags.define("print-every", std::int64_t{5}, "table row cadence in iterations");
}

namespace {

struct Series {
  std::vector<double> max_error;
  std::vector<double> median_error;
};

Series trace_run(core::Algorithm algorithm, const net::Topology& topology,
                 std::span<const core::Mass> masses, double failure_round, std::uint64_t seed,
                 std::size_t rounds) {
  sim::SyncEngineConfig config;
  config.algorithm = algorithm;
  config.seed = seed;
  const auto edges = topology.edges();
  // A fixed, seed-derived link fails — the same link for every algorithm.
  Rng pick(seed ^ 0xfa11);
  const auto& edge = edges[static_cast<std::size_t>(pick.below(edges.size()))];
  config.faults.link_failures.push_back({failure_round, edge.first, edge.second});

  sim::SyncEngine engine(topology, masses, config);
  Series series;
  for (std::size_t r = 0; r < rounds; ++r) {
    engine.step();
    series.max_error.push_back(engine.max_error());
    series.median_error.push_back(engine.median_error());
  }
  return series;
}

}  // namespace

void run_failure_trace(core::Algorithm algorithm, bool compare_with_pf, const CliFlags& flags) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto dims = static_cast<std::size_t>(flags.get_int("dims"));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  const auto cadence = static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("print-every")));

  const auto topology = net::Topology::hypercube(dims);
  const auto values = random_inputs(topology.size(), seed);
  const auto masses = initial_masses(values, core::Aggregate::kAverage);

  for (const double failure_round : {75.0, 175.0}) {
    std::printf("--- panel: failure handling after %.0f iterations ---\n", failure_round);
    const auto main_series = trace_run(algorithm, topology, masses, failure_round, seed, rounds);
    std::vector<std::string> headers{"iteration", "max_error", "median_error"};
    Series pf_series;
    if (compare_with_pf) {
      pf_series =
          trace_run(core::Algorithm::kPushFlow, topology, masses, failure_round, seed, rounds);
      headers.push_back("pf_max_error");
      headers.push_back("pf_median_error");
    }
    Table table(headers);
    for (std::size_t r = 0; r < rounds; ++r) {
      const bool is_failure_neighborhood =
          r + 1 >= static_cast<std::size_t>(failure_round) - 1 &&
          r + 1 <= static_cast<std::size_t>(failure_round) + 3;
      if ((r + 1) % cadence != 0 && r + 1 != rounds && !is_failure_neighborhood) continue;
      std::vector<std::string> row{Table::num(static_cast<std::int64_t>(r + 1)),
                                   Table::sci(main_series.max_error[r]),
                                   Table::sci(main_series.median_error[r])};
      if (compare_with_pf) {
        row.push_back(Table::sci(pf_series.max_error[r]));
        row.push_back(Table::sci(pf_series.median_error[r]));
      }
      table.add_row(std::move(row));
    }
    emit(table, flags);
    std::printf("\n");
  }
}

}  // namespace pcf::bench
