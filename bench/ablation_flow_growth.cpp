// Ablation A3 — flow magnitude growth: the mechanism behind Figs. 3 and 6.
//
// On the paper's bus case study (v_0 = n+1, v_i = 1) PF's flow magnitudes
// grow LINEARLY with n (they encode accumulated transport), while PCF's stay
// at the data scale because converged flows keep being cancelled. The ratio
// of flow magnitude to aggregate is exactly the cancellation amplification
// that destroys PF's accuracy at scale.
#include "bench_common.hpp"

namespace pcf::bench {
namespace {

std::vector<core::Mass> case_study_masses(std::size_t n) {
  std::vector<core::Mass> masses;
  masses.push_back(core::Mass::scalar(static_cast<double>(n) + 1.0, 1.0));
  for (std::size_t i = 1; i < n; ++i) masses.push_back(core::Mass::scalar(1.0, 1.0));
  return masses;
}

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("max-n", std::int64_t{128}, "largest bus size");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_flow_growth",
               "Section II-B / III — flow magnitudes vs. n (bus case study, aggregate = 2)");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto max_n = static_cast<std::size_t>(flags.get_int("max-n"));

  // Report the CONVERGED flow magnitudes (not the transient maximum: the
  // initial surplus v_0 = n+1 travels down the line through both algorithms'
  // flows, so the peak is O(n) for both; what differs is what remains).
  Table table({"n", "PF final max|flow|", "PCF final max|flow|", "PF best_error",
               "PCF best_error"});
  for (std::size_t n = 8; n <= max_n; n *= 2) {
    const auto topology = net::Topology::bus(n);
    const auto masses = case_study_masses(n);
    double flow[2] = {0.0, 0.0};
    double err[2] = {0.0, 0.0};
    int idx = 0;
    for (const auto algorithm :
         {core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow}) {
      sim::SyncEngineConfig config;
      config.algorithm = algorithm;
      config.seed = seed;
      sim::SyncEngine engine(topology, masses, config);
      const auto result = measure_achievable_accuracy(engine, 32 * n * n, 2 * n * n);
      flow[idx] = engine.max_abs_flow();  // converged, not transient
      err[idx] = result.best_max_error;
      ++idx;
    }
    table.add_row({Table::num(static_cast<std::int64_t>(n)), Table::fixed(flow[0], 2),
                   Table::fixed(flow[1], 2), Table::sci(err[0]), Table::sci(err[1])});
    std::fflush(stdout);
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
