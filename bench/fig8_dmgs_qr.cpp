// Figure 8 — "Factorization errors of the dmGS(PF) and the dmGS(PCF) on a
// failure-free hypercube network."
//
// Setup (Section IV): random V ∈ R^{N×16} distributed over a hypercube of N
// nodes (one row per node), modified Gram-Schmidt with every norm / dot
// product computed by a distributed reduction with prescribed accuracy
// ε = 1e-15 and an iteration cap; error ‖V − QR‖∞/‖V‖∞ (worst over the
// nodes' individual R estimates), averaged over --runs random matrices.
//
// Expected shape: dmGS(PF)'s error grows with N and sits well above
// dmGS(PCF)'s, which stays near the reduction target; the same ordering
// holds for the orthogonality error ‖QᵀQ − I‖∞ (the paper's closing remark).
#include "bench_common.hpp"
#include "linalg/dmgs.hpp"
#include "linalg/qr.hpp"
#include "support/stats.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("min-exp", std::int64_t{5}, "smallest log2(N) (paper: 5)");
  flags.define("max-exp", std::int64_t{8},
               "largest log2(N); the paper sweeps to 10 — pass --max-exp=10 for full scale");
  flags.define("runs", std::int64_t{10}, "random matrices per point (paper: 50)");
  flags.define("cols", std::int64_t{16}, "matrix columns m (paper: 16)");
  flags.define("epsilon", 1e-15, "per-reduction target accuracy (paper: 1e-15)");
  flags.define("max-rounds", std::int64_t{1500}, "per-reduction iteration cap");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("fig8_dmgs_qr", "Figure 8 — dmGS(PF) vs dmGS(PCF) factorization error");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto min_exp = static_cast<std::size_t>(flags.get_int("min-exp"));
  const auto max_exp = static_cast<std::size_t>(flags.get_int("max-exp"));
  const auto runs = static_cast<std::size_t>(flags.get_int("runs"));
  const auto cols = static_cast<std::size_t>(flags.get_int("cols"));

  Table table({"N", "algorithm", "fact_error(mean)", "fact_error(max)", "orth_error(mean)",
               "capped_reductions", "ref_mGS_fact_error"});

  for (std::size_t exp = min_exp; exp <= max_exp; ++exp) {
    const auto topology = net::Topology::hypercube(exp);
    RunningStats ref_stats;
    for (const auto algorithm :
         {core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow}) {
      RunningStats fact, orth;
      std::size_t capped = 0, reductions = 0;
      for (std::size_t run_idx = 0; run_idx < runs; ++run_idx) {
        Rng matrix_rng(seed + 1000 * run_idx + exp);
        const auto v = linalg::Matrix::random_uniform(topology.size(), cols, matrix_rng);
        linalg::DmgsOptions options;
        options.algorithm = algorithm;
        options.seed = seed + run_idx;
        options.reduction_accuracy = flags.get_double("epsilon");
        options.max_rounds_per_reduction =
            static_cast<std::size_t>(flags.get_int("max-rounds"));
        const auto result = linalg::dmgs(topology, v, options);
        fact.add(result.factorization_error(v));
        orth.add(result.orthogonality_error());
        capped += result.reductions_hit_cap;
        reductions += result.reductions;
        if (algorithm == core::Algorithm::kPushFlow) {
          // Sequential reference, once per matrix.
          const auto ref = linalg::mgs_qr(v);
          ref_stats.add(linalg::factorization_error(v, ref.q, ref.r));
        }
      }
      table.add_row({Table::num(static_cast<std::int64_t>(topology.size())),
                     std::string(core::to_string(algorithm)), Table::sci(fact.mean()),
                     Table::sci(fact.max()), Table::sci(orth.mean()),
                     std::to_string(capped) + "/" + std::to_string(reductions),
                     Table::sci(ref_stats.mean())});
      std::fflush(stdout);
    }
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
