// Figure 2 / Section II-B — the bus-network case study.
//
// n nodes on a bus, v_0 = n+1 and v_i = 1 elsewhere, averaging (target 2).
// The paper's schematic: at convergence PF's flows transport the prefix
// surplus, f_{i,i+1} = n−1−i (0-based, weightless idealization) — flows grow
// LINEARLY with n while the aggregate stays 2, which is the root cause of
// PF's accuracy loss. In the weighted algorithm the execution-independent
// statement is the cut invariant  f_val − a·f_w = n−1−i  (a = 2).
//
// The table prints, per edge: PF's measured flow, the cut invariant, and the
// Fig. 2 closed form — then the same for PCF, whose flows stay at the data
// scale because converged flows keep being cancelled.
#include "bench_common.hpp"
#include "core/push_cancel_flow.hpp"
#include "core/push_flow.hpp"

namespace pcf::bench {
namespace {

std::vector<core::Mass> case_study_masses(std::size_t n) {
  std::vector<core::Mass> masses;
  masses.push_back(core::Mass::scalar(static_cast<double>(n) + 1.0, 1.0));
  for (std::size_t i = 1; i < n; ++i) masses.push_back(core::Mass::scalar(1.0, 1.0));
  return masses;
}

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("n", std::int64_t{8}, "bus length (paper's schematic uses a generic n)");
  flags.define("rounds", std::int64_t{20000}, "gossip rounds to converge");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("fig2_bus_equilibrium", "Figure 2 — PF equilibrium flows on a bus network");

  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto topology = net::Topology::bus(n);
  const auto masses = case_study_masses(n);

  std::printf("bus of %zu nodes, v_0 = %zu, v_i = 1, average = 2\n\n", n, n + 1);

  Table table({"edge", "PF f_val", "PF f_val - 2*f_w", "closed form n-1-i", "PCF f_val",
               "PCF max|slot|"});
  sim::SyncEngineConfig pf_cfg;
  pf_cfg.algorithm = core::Algorithm::kPushFlow;
  pf_cfg.seed = seed;
  sim::SyncEngine pf(topology, masses, pf_cfg);
  pf.run(rounds);

  sim::SyncEngineConfig pcf_cfg;
  pcf_cfg.algorithm = core::Algorithm::kPushCancelFlow;
  pcf_cfg.seed = seed;
  sim::SyncEngine pcf(topology, masses, pcf_cfg);
  pcf.run(rounds);

  for (net::NodeId i = 0; i + 1 < n; ++i) {
    const auto& pf_node = dynamic_cast<const core::PushFlow&>(pf.node(i));
    const auto& flow = pf_node.flow_to(i + 1);
    const auto& pcf_node = dynamic_cast<const core::PushCancelFlow&>(pcf.node(i));
    const auto view = pcf_node.edge_state(i + 1);
    const double pcf_biggest =
        std::max({std::abs(view.flow1.s[0]), std::abs(view.flow2.s[0])});
    table.add_row({std::to_string(i) + "-" + std::to_string(i + 1),
                   Table::fixed(flow.s[0], 4), Table::fixed(flow.s[0] - 2.0 * flow.w, 4),
                   Table::num(static_cast<std::int64_t>(n - 1 - i)),
                   Table::fixed(view.flow1.s[0], 4), Table::fixed(pcf_biggest, 4)});
  }
  emit(table, flags);
  std::printf("\nPF max local error: %.3e   PCF max local error: %.3e\n", pf.max_error(),
              pcf.max_error());
  std::printf("PF max |flow|: %.4f (grows ~linearly with n)   PCF max |flow|: %.4f\n",
              pf.max_abs_flow(), pcf.max_abs_flow());
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
