// The single-permanent-link-failure experiment shared by the Fig. 4
// (push-flow) and Fig. 7 (push-cancel-flow) benches: 6D hypercube, one link
// failure handled after 75 (left panel) / 175 (right panel) iterations, 200
// iterations total, max and median local error per iteration. Both benches
// use the same seed, so the schedules — and hence the error curves until the
// failure — are directly comparable, exactly as in the paper.
#pragma once

#include "bench_common.hpp"

namespace pcf::bench {

void define_failure_flags(CliFlags& flags);

/// Runs both panels for `algorithm`. If `compare_with_pf` (Fig. 7), the PF
/// series on the same schedule is printed alongside, mirroring how the paper
/// overlays the Fig. 4 curves in light colors.
void run_failure_trace(core::Algorithm algorithm, bool compare_with_pf, const CliFlags& flags);

}  // namespace pcf::bench
