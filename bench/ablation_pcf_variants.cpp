// Ablation A1 — the two PCF bookkeeping variants (Section III-A's closing
// remark).
//
//  fast   : Fig. 5 verbatim — ϕ maintained incrementally, estimate = v − ϕ.
//           Cheapest, but a corrupted flow slot or ϕ never heals.
//  robust : ϕ only absorbs cancelled flows; the estimate re-sums the live
//           slots, so corrupted slots heal at the next delivery (the paper:
//           "active and passive flows have to be included into the
//           computation of the local estimate").
//
// The table shows (1) both variants' achievable accuracy in a clean network
// (near-identical), (2) their recovery after a burst of in-transit packet
// corruption — both heal, because our race-free handshake never absorbs a
// value that is not exactly balanced by the peer — and (3) their recovery
// after a burst of MEMORY soft errors (bits flip in stored flow variables):
// the fast variant's incremental ϕ bakes every corrupted delta in forever,
// while the robust variant re-sums the healed slots and recovers.
#include "bench_common.hpp"

namespace pcf::bench {
namespace {

int run(int argc, char** argv) {
  CliFlags flags;
  define_common_flags(flags);
  flags.define("dims", std::int64_t{6}, "hypercube dimension");
  flags.define("flip-prob", 0.002, "per-message bit-flip probability in the faulty scenario");
  flags.define("rounds", std::int64_t{4000}, "rounds for the faulty scenario");
  if (!flags.parse(argc, argv)) return 0;
  print_banner("ablation_pcf_variants",
               "Section III-A — PCF 'fast' (Fig. 5) vs 'robust' bookkeeping");

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto dims = static_cast<std::size_t>(flags.get_int("dims"));
  const auto topology = net::Topology::hypercube(dims);
  const auto values = random_inputs(topology.size(), seed);
  const auto masses = initial_masses(values, core::Aggregate::kAverage);

  Table table({"variant", "clean_best_error", "after_packet_flip_burst",
               "after_memory_flip_burst", "packet_flips", "memory_flips"});
  const auto burst_rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  for (const auto variant : {core::PcfVariant::kFast, core::PcfVariant::kRobust}) {
    sim::SyncEngineConfig config;
    config.algorithm = core::Algorithm::kPushCancelFlow;
    config.reducer.pcf_variant = variant;
    config.seed = seed;
    sim::SyncEngine clean(topology, masses, config);
    const auto clean_result = measure_achievable_accuracy(clean, 20000);

    // Packet-corruption burst, then a clean recovery phase twice as long.
    config.faults.bit_flip_prob = flags.get_double("flip-prob");
    sim::SyncEngine packet_burst(topology, masses, config);
    packet_burst.run(burst_rounds);
    packet_burst.mutable_faults().bit_flip_prob = 0.0;
    packet_burst.run(2 * burst_rounds);
    const double after_packet = packet_burst.max_error();

    // Memory-corruption burst (bits flip in stored flow variables).
    config.faults.bit_flip_prob = 0.0;
    config.faults.state_flip_prob = flags.get_double("flip-prob");
    sim::SyncEngine memory_burst(topology, masses, config);
    memory_burst.run(burst_rounds);
    memory_burst.mutable_faults().state_flip_prob = 0.0;
    memory_burst.run(2 * burst_rounds);
    const double after_memory = memory_burst.max_error();

    table.add_row(
        {std::string(core::to_string(variant)), Table::sci(clean_result.best_max_error),
         Table::sci(after_packet), Table::sci(after_memory),
         Table::num(static_cast<std::int64_t>(packet_burst.stats().messages_flipped)),
         Table::num(static_cast<std::int64_t>(memory_burst.stats().state_flips))});
  }
  emit(table, flags);
  return 0;
}

}  // namespace
}  // namespace pcf::bench

int main(int argc, char** argv) { return pcf::bench::run(argc, argv); }
