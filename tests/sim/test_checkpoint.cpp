// Property wall for the checkpoint/restore layer (DESIGN.md §8).
//
// The central claim under test: restoring a checkpoint into a freshly
// constructed engine and replaying yields per-round state fingerprints
// bitwise-identical to the uninterrupted run — for every algorithm, both
// state layouts (legacy reducer objects and SoA arenas), both engines, and a
// checkpoint taken at EVERY round of a faulted lifecycle run. Plus the
// defensive side: truncated, corrupted, version-skewed and mismatched blobs
// are rejected with CheckpointError, and the on-disk format is pinned with a
// golden hash so accidental layout drift fails here instead of in a user's
// saved checkpoint.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine_async.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;

constexpr Algorithm kAllAlgorithms[] = {Algorithm::kPushSum,          Algorithm::kPushFlow,
                                        Algorithm::kPushCancelFlow,   Algorithm::kFlowUpdating,
                                        Algorithm::kCorrectionAllreduce, Algorithm::kFuMassHybrid};

/// A faulted lifecycle: a cut, a crash, a false positive, a live data update,
/// the rejoin and the heal — every fault-progress cursor the checkpoint
/// serializes moves during the run — plus probabilistic loss/duplication so
/// the RNG stream positions matter too.
FaultPlan lifecycle_plan() {
  FaultPlan plan;
  plan.link_failures.push_back({5.0, 0, 1});
  plan.node_crashes.push_back({8.0, 2});
  plan.false_detects.push_back({10.0, 4, 5, 4.0});
  plan.data_updates.push_back({12.0, 6, core::Mass::scalar(0.25, 0.0)});
  plan.node_rejoins.push_back({16.0, 2});
  plan.link_heals.push_back({18.0, 0, 1});
  plan.message_loss_prob = 0.05;
  plan.duplicate_prob = 0.1;
  return plan;
}

SyncEngine make_sync(const net::Topology& t, Algorithm algorithm, EngineMode mode,
                     FaultPlan faults, std::uint64_t seed = 3) {
  const auto values = test::random_values(t.size(), seed ^ 0xabcdef);
  const auto masses = masses_from_values(values, Aggregate::kAverage);
  SyncEngineConfig cfg;
  cfg.algorithm = algorithm;
  cfg.faults = std::move(faults);
  cfg.seed = seed;
  cfg.mode = mode;
  cfg.invariants.enabled = true;
  return SyncEngine(t, masses, cfg);
}

AsyncEngine make_async(const net::Topology& t, Algorithm algorithm, FaultPlan faults,
                       std::uint64_t seed = 3) {
  const auto values = test::random_values(t.size(), seed ^ 0xabcdef);
  const auto masses = masses_from_values(values, Aggregate::kAverage);
  AsyncEngineConfig cfg;
  cfg.algorithm = algorithm;
  cfg.faults = std::move(faults);
  cfg.seed = seed;
  cfg.invariants.enabled = true;
  return AsyncEngine(t, masses, cfg);
}

// ------------------------------------------------------------ property wall

TEST(CheckpointSync, EveryRoundRoundTripsBitwiseOnBothLayouts) {
  const auto t = net::Topology::ring(12);
  constexpr std::size_t kRounds = 24;
  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const EngineMode mode : {EngineMode::kLegacy, EngineMode::kArena}) {
      auto reference = make_sync(t, algorithm, mode, lifecycle_plan());
      std::vector<std::string> blobs{reference.save_checkpoint()};
      std::vector<std::uint64_t> fingerprints{reference.state_fingerprint()};
      for (std::size_t r = 0; r < kRounds; ++r) {
        reference.step();
        blobs.push_back(reference.save_checkpoint());
        fingerprints.push_back(reference.state_fingerprint());
      }
      for (std::size_t c = 0; c <= kRounds; ++c) {
        auto restored = make_sync(t, algorithm, mode, lifecycle_plan());
        restored.restore(blobs[c]);
        ASSERT_EQ(restored.round(), c);
        ASSERT_EQ(restored.state_fingerprint(), fingerprints[c])
            << core::to_string(algorithm) << " restore at round " << c;
        for (std::size_t r = c; r < kRounds; ++r) {
          restored.step();
          ASSERT_EQ(restored.state_fingerprint(), fingerprints[r + 1])
              << core::to_string(algorithm) << " checkpointed at " << c << ", diverged at round "
              << r + 1;
        }
      }
    }
  }
}

TEST(CheckpointSync, LegacyAndArenaBlobsAreDistinctButBothRestore) {
  // The two layouts serialize differently (dim-prefixed masses vs raw stride
  // rows), so the header pins the layout and a cross-layout restore refuses.
  const auto t = net::Topology::ring(12);
  auto legacy = make_sync(t, Algorithm::kPushCancelFlow, EngineMode::kLegacy, lifecycle_plan());
  auto arena = make_sync(t, Algorithm::kPushCancelFlow, EngineMode::kArena, lifecycle_plan());
  legacy.run(10);
  arena.run(10);
  // Same protocol state regardless of layout...
  EXPECT_EQ(legacy.state_fingerprint(), arena.state_fingerprint());
  // ...but the blobs are layout-specific and refuse to cross-restore.
  EXPECT_THROW(legacy.restore(arena.save_checkpoint()), CheckpointError);
  EXPECT_THROW(arena.restore(legacy.save_checkpoint()), CheckpointError);
}

TEST(CheckpointSync, LightweightEqualsFullAtRoundBoundaries) {
  // The synchronous wire is empty between rounds, so the two modes differ
  // only in the header's mode byte and restore identically.
  auto engine =
      make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow, EngineMode::kLegacy,
                lifecycle_plan());
  engine.run(10);
  const std::string full = engine.save_checkpoint(CheckpointMode::kFull);
  const std::string light = engine.save_checkpoint(CheckpointMode::kLightweight);
  EXPECT_EQ(full.size(), light.size());
  auto a = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow, EngineMode::kLegacy,
                     lifecycle_plan());
  auto b = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow, EngineMode::kLegacy,
                     lifecycle_plan());
  a.restore(full);
  b.restore(light);
  a.run(15);
  b.run(15);
  EXPECT_EQ(a.state_fingerprint(), b.state_fingerprint());
}

TEST(CheckpointAsync, FullRestoreContinuesBitwise) {
  const auto t = net::Topology::ring(10);
  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const double at : {0.0, 3.7, 6.0}) {
      auto reference = make_async(t, algorithm, lifecycle_plan());
      reference.run_until(at);
      const std::string blob = reference.save_checkpoint(CheckpointMode::kFull);
      auto restored = make_async(t, algorithm, lifecycle_plan());
      restored.restore(blob);
      ASSERT_EQ(restored.state_fingerprint(), reference.state_fingerprint())
          << core::to_string(algorithm) << " at t=" << at;
      // The full blob carries the event heap verbatim (in-flight packets
      // included), so the continuation is bitwise-identical.
      reference.run_until(14.0);
      restored.run_until(14.0);
      ASSERT_EQ(restored.state_fingerprint(), reference.state_fingerprint())
          << core::to_string(algorithm) << " diverged after restore at t=" << at;
      EXPECT_EQ(restored.estimates(), reference.estimates());
    }
  }
}

TEST(CheckpointAsync, LightweightDropsInFlightAndFlowAlgorithmsSelfHeal) {
  // The state-only blob loses the queued deliveries: it must be strictly
  // smaller mid-flight, and the flow algorithms (absolute mirrors) must still
  // reconverge to the unchanged oracle target after the lossy restore.
  const auto t = net::Topology::ring(10);
  for (const Algorithm algorithm :
       {Algorithm::kPushFlow, Algorithm::kPushCancelFlow, Algorithm::kFlowUpdating}) {
    auto engine = make_async(t, algorithm, FaultPlan{});
    engine.run_until(6.0);
    const std::string full = engine.save_checkpoint(CheckpointMode::kFull);
    const std::string light = engine.save_checkpoint(CheckpointMode::kLightweight);
    EXPECT_LT(light.size(), full.size()) << core::to_string(algorithm);
    auto restored = make_async(t, algorithm, FaultPlan{});
    restored.restore(light);
    EXPECT_TRUE(restored.run_until_error(1e-9, /*deadline=*/400.0))
        << core::to_string(algorithm) << " did not re-converge after a lightweight restore";
  }
}

// ----------------------------------------------------------------- rejection

TEST(CheckpointReject, TruncatedAndTrailingBytes) {
  auto engine = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow,
                          EngineMode::kLegacy, lifecycle_plan());
  engine.run(6);
  const std::string blob = engine.save_checkpoint();
  for (const double frac : {0.0, 0.1, 0.5, 0.95}) {
    auto fresh = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow,
                           EngineMode::kLegacy, lifecycle_plan());
    const auto cut = static_cast<std::size_t>(static_cast<double>(blob.size()) * frac);
    EXPECT_THROW(fresh.restore(std::string_view(blob).substr(0, cut)), CheckpointError)
        << "accepted a blob truncated to " << cut << " bytes";
  }
  auto fresh = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow, EngineMode::kLegacy,
                         lifecycle_plan());
  EXPECT_THROW(fresh.restore(blob + "x"), CheckpointError);
}

TEST(CheckpointReject, BadMagicVersionSkewAndCorruptHash) {
  auto engine = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow,
                          EngineMode::kLegacy, lifecycle_plan());
  engine.run(6);
  const std::string blob = engine.save_checkpoint();
  auto fresh = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow, EngineMode::kLegacy,
                         lifecycle_plan());

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW(fresh.restore(bad_magic), CheckpointError);

  // Header layout: magic[8], u32 version at offset 8.
  std::string skewed = blob;
  skewed[8] = static_cast<char>(kCheckpointVersion + 1);
  EXPECT_THROW(fresh.restore(skewed), CheckpointError);

  // Compat hash at offset 40 (magic 8 + version 4 + four u8 tags + seed 8 +
  // nodes 8 + dim 8) — a flipped bit there must read as "wrong engine".
  std::string corrupt = blob;
  corrupt[40] = static_cast<char>(corrupt[40] ^ 0x01);
  EXPECT_THROW(fresh.restore(corrupt), CheckpointError);
}

TEST(CheckpointReject, MismatchedEngineAlgorithmSeedTopologyAndKind) {
  const auto t = net::Topology::ring(12);
  auto engine = make_sync(t, Algorithm::kPushCancelFlow, EngineMode::kLegacy, lifecycle_plan());
  engine.run(6);
  const std::string blob = engine.save_checkpoint();

  auto wrong_algorithm = make_sync(t, Algorithm::kPushFlow, EngineMode::kLegacy, lifecycle_plan());
  EXPECT_THROW(wrong_algorithm.restore(blob), CheckpointError);

  auto wrong_seed =
      make_sync(t, Algorithm::kPushCancelFlow, EngineMode::kLegacy, lifecycle_plan(), 99);
  EXPECT_THROW(wrong_seed.restore(blob), CheckpointError);

  auto wrong_topology = make_sync(net::Topology::ring(13), Algorithm::kPushCancelFlow,
                                  EngineMode::kLegacy, lifecycle_plan());
  EXPECT_THROW(wrong_topology.restore(blob), CheckpointError);

  // A faultless engine differs in the fault schedule — the compat hash covers
  // the scheduled events, so the restore refuses.
  auto wrong_faults = make_sync(t, Algorithm::kPushCancelFlow, EngineMode::kLegacy, FaultPlan{});
  EXPECT_THROW(wrong_faults.restore(blob), CheckpointError);

  // Sync blob into an async engine (and vice versa): the kind byte refuses.
  auto async_engine = make_async(net::Topology::ring(12), Algorithm::kPushCancelFlow, FaultPlan{});
  EXPECT_THROW(async_engine.restore(blob), CheckpointError);
  const std::string async_blob = async_engine.save_checkpoint();
  auto sync_fresh = make_sync(t, Algorithm::kPushCancelFlow, EngineMode::kLegacy, lifecycle_plan());
  EXPECT_THROW(sync_fresh.restore(async_blob), CheckpointError);
}

TEST(CheckpointReject, MismatchedAlgorithmAcrossRoster) {
  // The roster additions must be just as un-confusable as the original four:
  // every pair of distinct algorithms refuses to cross-restore.
  const auto t = net::Topology::ring(12);
  for (const Algorithm saved : kAllAlgorithms) {
    auto engine = make_sync(t, saved, EngineMode::kLegacy, lifecycle_plan());
    engine.run(4);
    const std::string blob = engine.save_checkpoint();
    for (const Algorithm restored : kAllAlgorithms) {
      auto fresh = make_sync(t, restored, EngineMode::kLegacy, lifecycle_plan());
      if (restored == saved) {
        EXPECT_NO_THROW(fresh.restore(blob));
      } else {
        EXPECT_THROW(fresh.restore(blob), CheckpointError)
            << core::to_string(saved) << " blob restored into a " << core::to_string(restored)
            << " engine";
      }
    }
  }
}

TEST(CheckpointReject, MismatchedTreeKind) {
  // An explicitly requested tree shape is part of the construction inputs:
  // restoring its blob into an engine with a different (or default-auto)
  // shape must refuse. kAuto itself is deliberately NOT hashed, so blobs
  // saved before the roster existed keep restoring.
  const auto t = net::Topology::ring(12);
  const auto values = test::random_values(t.size(), 3 ^ 0xabcdef);
  const auto masses = masses_from_values(values, Aggregate::kAverage);
  const auto engine_with = [&](net::TreeKind kind) {
    SyncEngineConfig cfg;
    cfg.algorithm = Algorithm::kCorrectionAllreduce;
    cfg.seed = 3;
    cfg.invariants.enabled = true;
    cfg.reducer.tree_kind = kind;
    return SyncEngine(t, masses, cfg);
  };
  auto bfs = engine_with(net::TreeKind::kBfs);
  bfs.run(4);
  const std::string blob = bfs.save_checkpoint();
  auto chain = engine_with(net::TreeKind::kChain);
  EXPECT_THROW(chain.restore(blob), CheckpointError);
  auto auto_kind = engine_with(net::TreeKind::kAuto);
  EXPECT_THROW(auto_kind.restore(blob), CheckpointError);
  auto bfs_again = engine_with(net::TreeKind::kBfs);
  EXPECT_NO_THROW(bfs_again.restore(blob));
}

// ------------------------------------------------------------------- header

TEST(CheckpointPeek, ReportsHeaderFieldsWithoutAnEngine) {
  auto engine = make_sync(net::Topology::ring(12), Algorithm::kPushCancelFlow, EngineMode::kArena,
                          lifecycle_plan(), 7);
  engine.run(9);
  const CheckpointInfo info = peek_checkpoint(engine.save_checkpoint(CheckpointMode::kFull));
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.engine_kind, 1);  // sync
  EXPECT_EQ(info.mode, CheckpointMode::kFull);
  EXPECT_EQ(info.algorithm, static_cast<std::uint8_t>(Algorithm::kPushCancelFlow));
  EXPECT_EQ(info.engine_mode, 1);  // arena
  EXPECT_EQ(info.seed, 7u);
  EXPECT_EQ(info.nodes, 12u);
  EXPECT_EQ(info.dim, 1u);
  EXPECT_EQ(info.position, 9.0);
  EXPECT_THROW((void)peek_checkpoint("not a checkpoint"), CheckpointError);
}

// ------------------------------------------------------------- golden format

TEST(CheckpointGolden, FormatHashIsPinned) {
  // FNV-1a over a canonical blob (ring:8, PCF, legacy, seed 7, 10 faulted
  // rounds). Integers are written little-endian byte by byte and doubles as
  // IEEE-754 bits, so this hash is platform-independent. If it changes, the
  // on-disk format drifted: bump kCheckpointVersion (old blobs must be
  // rejected, not misread) and re-pin.
  auto engine =
      make_sync(net::Topology::ring(8), Algorithm::kPushCancelFlow, EngineMode::kLegacy,
                lifecycle_plan(), 7);
  engine.run(10);
  const std::string blob = engine.save_checkpoint(CheckpointMode::kFull);
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : blob) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  EXPECT_EQ(h, 0xf4fff9a01cdd0cacULL) << "checkpoint format drifted (blob is " << blob.size()
                       << " bytes) — bump kCheckpointVersion and re-pin this hash";
}

std::uint64_t fnv1a(const std::string& blob) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : blob) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(CheckpointGolden, RosterCodecHashesArePinned) {
  // Same pinning discipline for the roster additions' state codecs
  // (correction-allreduce: received/child/global view; hybrid: FU-shaped
  // flow/report rows). A changed hash means the on-disk layout drifted.
  auto corr = make_sync(net::Topology::ring(8), Algorithm::kCorrectionAllreduce,
                        EngineMode::kLegacy, lifecycle_plan(), 7);
  corr.run(10);
  EXPECT_EQ(fnv1a(corr.save_checkpoint(CheckpointMode::kFull)), 0x11eec8ea75ca6f8dULL)
      << "correction-allreduce checkpoint codec drifted — bump kCheckpointVersion and re-pin";
  auto fumd = make_sync(net::Topology::ring(8), Algorithm::kFuMassHybrid, EngineMode::kLegacy,
                        lifecycle_plan(), 7);
  fumd.run(10);
  EXPECT_EQ(fnv1a(fumd.save_checkpoint(CheckpointMode::kFull)), 0x308ba8a18f34d5c1ULL)
      << "fu-mass-hybrid checkpoint codec drifted — bump kCheckpointVersion and re-pin";
}

}  // namespace
}  // namespace pcf::sim
