// Parameterized sweeps for the asynchronous event engine: every algorithm ×
// aggregate combination must converge without any synchrony assumptions,
// with fast and slow node clocks, and with wide latency spreads.
#include <gtest/gtest.h>

#include "sim/engine_async.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;

struct AsyncCase {
  Algorithm algorithm;
  Aggregate aggregate;
};

std::string case_name(const ::testing::TestParamInfo<AsyncCase>& info) {
  std::string name{core::to_string(info.param.algorithm)};
  name += "_";
  name += core::to_string(info.param.aggregate);
  for (auto& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

class AsyncSweep : public ::testing::TestWithParam<AsyncCase> {
 protected:
  AsyncEngine make(AsyncEngineConfig cfg, std::uint64_t seed = 11) const {
    const auto t = net::Topology::hypercube(4);
    const auto values = test::random_values(t.size(), seed);
    const auto masses = masses_from_values(values, GetParam().aggregate);
    cfg.algorithm = GetParam().algorithm;
    cfg.seed = seed;
    return AsyncEngine(t, masses, cfg);
  }
};

std::vector<AsyncCase> async_cases() {
  std::vector<AsyncCase> cases;
#ifdef PCF_TEST_FAST
  // Instrumented (sanitizer) builds: averaging only — the SUM path differs
  // just in the initial weights, not in any code the sanitizers watch.
  const std::vector<Aggregate> aggregates{Aggregate::kAverage};
#else
  const std::vector<Aggregate> aggregates{Aggregate::kAverage, Aggregate::kSum};
#endif
  for (const auto alg : {Algorithm::kPushSum, Algorithm::kPushFlow,
                         Algorithm::kPushCancelFlow, Algorithm::kFlowUpdating}) {
    for (const auto agg : aggregates) {
      // Flow Updating supports SUM only through the ratio-of-averages trick,
      // which needs every node's weight — fine, include it too.
      cases.push_back({alg, agg});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, AsyncSweep, ::testing::ValuesIn(async_cases()),
                         case_name);

TEST_P(AsyncSweep, ConvergesWithDefaultClocks) {
  auto engine = make({});
  EXPECT_TRUE(engine.run_until_error(1e-9, 2500.0)) << "err " << engine.max_error();
}

TEST_P(AsyncSweep, ConvergesWithWideLatencySpread) {
  AsyncEngineConfig cfg;
  cfg.latency_min = 0.01;
  cfg.latency_max = 3.0;  // deep pipelining: many packets in flight per link
  auto engine = make(cfg);
  EXPECT_TRUE(engine.run_until_error(1e-9, 6000.0)) << "err " << engine.max_error();
}

TEST_P(AsyncSweep, ConvergesWithFastClocks) {
  AsyncEngineConfig cfg;
  cfg.tick_rate = 10.0;  // ticks much faster than latency — constant crossings
  auto engine = make(cfg);
  EXPECT_TRUE(engine.run_until_error(1e-9, 1500.0)) << "err " << engine.max_error();
}

class AsyncFlowSweep : public AsyncSweep {};

std::vector<AsyncCase> async_flow_cases() {
  std::vector<AsyncCase> cases;
  for (const auto alg :
       {Algorithm::kPushFlow, Algorithm::kPushCancelFlow, Algorithm::kFlowUpdating}) {
    cases.push_back({alg, Aggregate::kAverage});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FlowAlgorithms, AsyncFlowSweep, ::testing::ValuesIn(async_flow_cases()),
                         case_name);

TEST_P(AsyncFlowSweep, ConvergesUnderLossWithDeepPipelining) {
  AsyncEngineConfig cfg;
  cfg.latency_min = 0.01;
  cfg.latency_max = 2.0;
  cfg.faults.message_loss_prob = 0.2;
  auto engine = make(cfg);
  EXPECT_TRUE(engine.run_until_error(1e-9, 8000.0)) << "err " << engine.max_error();
}

TEST_P(AsyncFlowSweep, RecoversFromMemorySoftErrorBursts) {
  AsyncEngineConfig cfg;
  cfg.faults.state_flip_prob = 0.002;
  auto engine = make(cfg);
  engine.run_until(400.0);  // flip burst
  engine.mutable_faults().state_flip_prob = 0.0;
  engine.run_until(2000.0);  // clean recovery
  // PCF's robust default and PF/FU heal stored-flow corruption: consensus is
  // restored after the burst ends (the PCF fast variant would not — see
  // test_state_corruption.cpp).
  const auto est = engine.estimates();
  double spread = 0.0;
  for (double e : est) spread = std::max(spread, std::abs(e - est[0]));
  EXPECT_LT(spread, 1e-9);
}

}  // namespace
}  // namespace pcf::sim
