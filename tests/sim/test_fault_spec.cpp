#include "sim/fault_spec.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pcf::sim {
namespace {

TEST(FaultSpec, EmptyStringsGiveEmptyPlan) {
  const auto plan = parse_fault_spec("", "", "");
  EXPECT_TRUE(plan.link_failures.empty());
  EXPECT_TRUE(plan.node_crashes.empty());
  EXPECT_TRUE(plan.data_updates.empty());
}

TEST(FaultSpec, ParsesSingleLinkFailure) {
  const auto plan = parse_fault_spec("75:0:1", "", "");
  ASSERT_EQ(plan.link_failures.size(), 1u);
  EXPECT_EQ(plan.link_failures[0].time, 75.0);
  EXPECT_EQ(plan.link_failures[0].a, 0u);
  EXPECT_EQ(plan.link_failures[0].b, 1u);
}

TEST(FaultSpec, ParsesMultipleLinkFailures) {
  const auto plan = parse_fault_spec("75:0:1,120.5:2:3", "", "");
  ASSERT_EQ(plan.link_failures.size(), 2u);
  EXPECT_EQ(plan.link_failures[1].time, 120.5);
  EXPECT_EQ(plan.link_failures[1].a, 2u);
}

TEST(FaultSpec, ParsesCrashes) {
  const auto plan = parse_fault_spec("", "100:5,200:7", "");
  ASSERT_EQ(plan.node_crashes.size(), 2u);
  EXPECT_EQ(plan.node_crashes[0].node, 5u);
  EXPECT_EQ(plan.node_crashes[1].time, 200.0);
}

TEST(FaultSpec, ParsesDataUpdatesWithSignedDeltas) {
  const auto plan = parse_fault_spec("", "", "50:3:2.5,80:0:-1");
  ASSERT_EQ(plan.data_updates.size(), 2u);
  EXPECT_EQ(plan.data_updates[0].delta.s[0], 2.5);
  EXPECT_EQ(plan.data_updates[0].delta.w, 0.0);
  EXPECT_EQ(plan.data_updates[1].delta.s[0], -1.0);
  EXPECT_EQ(plan.data_updates[1].node, 0u);
}

TEST(FaultSpec, RejectsWrongFieldCounts) {
  EXPECT_THROW(parse_fault_spec("75:0", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "100", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "", "50:3"), ContractViolation);
}

TEST(FaultSpec, RejectsMalformedNumbers) {
  EXPECT_THROW(parse_fault_spec("abc:0:1", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("75:x:1", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "", "50:3:zz"), ContractViolation);
}

}  // namespace
}  // namespace pcf::sim
