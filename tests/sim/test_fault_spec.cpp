#include "sim/fault_spec.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pcf::sim {
namespace {

TEST(FaultSpec, EmptyStringsGiveEmptyPlan) {
  const auto plan = parse_fault_spec("", "", "");
  EXPECT_TRUE(plan.link_failures.empty());
  EXPECT_TRUE(plan.node_crashes.empty());
  EXPECT_TRUE(plan.data_updates.empty());
}

TEST(FaultSpec, ParsesSingleLinkFailure) {
  const auto plan = parse_fault_spec("75:0:1", "", "");
  ASSERT_EQ(plan.link_failures.size(), 1u);
  EXPECT_EQ(plan.link_failures[0].time, 75.0);
  EXPECT_EQ(plan.link_failures[0].a, 0u);
  EXPECT_EQ(plan.link_failures[0].b, 1u);
}

TEST(FaultSpec, ParsesMultipleLinkFailures) {
  const auto plan = parse_fault_spec("75:0:1,120.5:2:3", "", "");
  ASSERT_EQ(plan.link_failures.size(), 2u);
  EXPECT_EQ(plan.link_failures[1].time, 120.5);
  EXPECT_EQ(plan.link_failures[1].a, 2u);
}

TEST(FaultSpec, ParsesCrashes) {
  const auto plan = parse_fault_spec("", "100:5,200:7", "");
  ASSERT_EQ(plan.node_crashes.size(), 2u);
  EXPECT_EQ(plan.node_crashes[0].node, 5u);
  EXPECT_EQ(plan.node_crashes[1].time, 200.0);
}

TEST(FaultSpec, ParsesDataUpdatesWithSignedDeltas) {
  const auto plan = parse_fault_spec("", "", "50:3:2.5,80:0:-1");
  ASSERT_EQ(plan.data_updates.size(), 2u);
  EXPECT_EQ(plan.data_updates[0].delta.s[0], 2.5);
  EXPECT_EQ(plan.data_updates[0].delta.w, 0.0);
  EXPECT_EQ(plan.data_updates[1].delta.s[0], -1.0);
  EXPECT_EQ(plan.data_updates[1].node, 0u);
}

TEST(FaultSpec, RejectsWrongFieldCounts) {
  EXPECT_THROW(parse_fault_spec("75:0", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "100", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "", "50:3"), ContractViolation);
}

TEST(FaultSpec, RejectsMalformedNumbers) {
  EXPECT_THROW(parse_fault_spec("abc:0:1", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("75:x:1", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "", "50:3:zz"), ContractViolation);
}

TEST(FaultSpec, ParsesRecoveryEventLists) {
  FaultSpecInput spec;
  spec.link_heals = "200:0:1,350:2:3";
  spec.node_rejoins = "250:5";
  spec.false_detects = "90:2:3:25";
  const auto plan = parse_fault_spec(spec);
  ASSERT_EQ(plan.link_heals.size(), 2u);
  EXPECT_EQ(plan.link_heals[0].time, 200.0);
  EXPECT_EQ(plan.link_heals[1].b, 3u);
  ASSERT_EQ(plan.node_rejoins.size(), 1u);
  EXPECT_EQ(plan.node_rejoins[0].node, 5u);
  ASSERT_EQ(plan.false_detects.size(), 1u);
  EXPECT_EQ(plan.false_detects[0].a, 2u);
  EXPECT_EQ(plan.false_detects[0].clear_delay, 25.0);
}

TEST(FaultSpec, SortsEventListsByTime) {
  FaultSpecInput spec;
  spec.link_failures = "120:2:3,75:0:1";
  spec.node_crashes = "200:7,100:5";
  spec.data_updates = "80:0:-1,50:3:2.5";
  spec.link_heals = "350:2:3,200:0:1";
  spec.node_rejoins = "300:7,250:5";
  spec.false_detects = "90:2:3:25,40:0:1:10";
  const auto plan = parse_fault_spec(spec);
  EXPECT_EQ(plan.link_failures[0].time, 75.0);
  EXPECT_EQ(plan.node_crashes[0].node, 5u);
  EXPECT_EQ(plan.data_updates[0].delta.s[0], 2.5);
  EXPECT_EQ(plan.link_heals[0].time, 200.0);
  EXPECT_EQ(plan.node_rejoins[0].node, 5u);
  EXPECT_EQ(plan.false_detects[0].time, 40.0);
}

TEST(FaultSpec, RejectsNegativeEventTimes) {
  EXPECT_THROW(parse_fault_spec("-75:0:1", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "-100:5", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "", "-50:3:2.5"), ContractViolation);
  FaultSpecInput spec;
  spec.link_heals = "-200:0:1";
  EXPECT_THROW(parse_fault_spec(spec), ContractViolation);
  spec = {};
  spec.node_rejoins = "-250:5";
  EXPECT_THROW(parse_fault_spec(spec), ContractViolation);
  spec = {};
  spec.false_detects = "-90:2:3:25";
  EXPECT_THROW(parse_fault_spec(spec), ContractViolation);
}

TEST(FaultSpec, RejectsNegativeFalseDetectClearDelay) {
  FaultSpecInput spec;
  spec.false_detects = "90:2:3:-25";
  EXPECT_THROW(parse_fault_spec(spec), ContractViolation);
}

TEST(FaultSpec, RejectsNegativeNodeIds) {
  EXPECT_THROW(parse_fault_spec("75:-1:1", "", ""), ContractViolation);
  EXPECT_THROW(parse_fault_spec("", "100:-5", ""), ContractViolation);
}

TEST(FaultSpec, RejectsOutOfRangeNodeIdsWhenSized) {
  FaultSpecInput spec;
  spec.link_failures = "75:0:16";
  EXPECT_THROW(parse_fault_spec(spec, 16), ContractViolation);
  EXPECT_NO_THROW(parse_fault_spec(spec));  // unchecked without a size
  spec = {};
  spec.node_crashes = "100:99";
  EXPECT_THROW(parse_fault_spec(spec, 16), ContractViolation);
  spec = {};
  spec.node_rejoins = "250:16";
  EXPECT_THROW(parse_fault_spec(spec, 16), ContractViolation);
  spec = {};
  spec.false_detects = "90:2:16:25";
  EXPECT_THROW(parse_fault_spec(spec, 16), ContractViolation);
  spec.false_detects = "90:2:15:25";
  EXPECT_NO_THROW(parse_fault_spec(spec, 16));
}

TEST(FaultSpec, RecoveryFormattersRoundTrip) {
  FaultSpecInput spec;
  spec.link_heals = "200:0:1,350.25:2:3";
  spec.node_rejoins = "250:5,300:7";
  spec.false_detects = "90:2:3:25,140:4:5:0.5";
  const auto plan = parse_fault_spec(spec);
  EXPECT_EQ(format_link_heals(plan.link_heals), spec.link_heals);
  EXPECT_EQ(format_node_rejoins(plan.node_rejoins), spec.node_rejoins);
  EXPECT_EQ(format_false_detects(plan.false_detects), spec.false_detects);
}

}  // namespace
}  // namespace pcf::sim
