// Scale smoke (ctest label: scale_smoke) — exercises the arena engine at
// ~10^5 nodes under whatever sanitizers the build enables. Not a perf test
// (that is `pcflow bench --profile=scale` + the CI gate); this catches
// out-of-bounds indexing, uninitialized reads, and overflow in the flat
// arena paths that small graphs cannot reach.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Algorithm;

std::vector<core::Mass> scalar_masses(std::size_t n, std::uint64_t seed) {
  const auto values = test::random_values(n, seed);
  std::vector<core::Mass> masses;
  masses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    masses.push_back(core::Mass::scalar(values[i], 1.0));
  }
  return masses;
}

// 47^3 = 103,823 nodes, degree 6. One full round per algorithm touches every
// arena row, every CSR slot, and every wire path once.
TEST(ScaleSmoke, TorusHundredThousandNodesOneRoundPerAlgorithm) {
  const auto topology = net::Topology::torus3d(47, 47, 47);
  const auto masses = scalar_masses(topology.size(), 17);
  for (const Algorithm algorithm :
       {Algorithm::kPushSum, Algorithm::kPushFlow, Algorithm::kPushCancelFlow,
        Algorithm::kFlowUpdating}) {
    SyncEngineConfig cfg;
    cfg.algorithm = algorithm;
    cfg.seed = 5;
    cfg.mode = EngineMode::kArena;
    // Invariant scans are O(n·deg) per round — fine once, and exactly the
    // broad memory sweep a sanitizer build wants.
    cfg.invariants.enabled = true;
    SyncEngine engine(topology, masses, cfg);
    engine.step();
    EXPECT_EQ(engine.stats().messages_sent, topology.size());
    EXPECT_TRUE(std::isfinite(engine.max_error()));
  }
}

// Sharded crossing rounds at 10^4 nodes: the counting-sort drain and the
// per-shard wire merge over a wire with 10k packets.
TEST(ScaleSmoke, ShardedCrossingRoundsAtTenThousandNodes) {
  const auto topology = net::Topology::grid2d(100, 100, /*wrap=*/true);
  const auto masses = scalar_masses(topology.size(), 23);
  SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 6;
  cfg.delivery = Delivery::kCrossing;
  cfg.mode = EngineMode::kArena;
  cfg.shards = 4;
  cfg.invariants.enabled = true;
  SyncEngine engine(topology, masses, cfg);
  engine.run(5);
  EXPECT_EQ(engine.stats().messages_sent, 5 * topology.size());
  EXPECT_TRUE(std::isfinite(engine.max_error()));
}

// Fault machinery at scale: crash + rejoin on the 100k torus keeps the arena
// indices consistent (rejoin reuses the node's rows; no growth, no stray
// writes for the sanitizers to find).
TEST(ScaleSmoke, CrashAndRejoinOnHundredThousandNodes) {
  const auto topology = net::Topology::torus3d(47, 47, 47);
  const auto masses = scalar_masses(topology.size(), 29);
  SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kFlowUpdating;
  cfg.seed = 8;
  cfg.mode = EngineMode::kArena;
  cfg.faults.node_crashes.push_back({1.0, 50000});
  cfg.faults.node_rejoins.push_back({3.0, 50000});
  SyncEngine engine(topology, masses, cfg);
  const std::size_t fleet_size = engine.fleet()->size();
  engine.run(4);
  EXPECT_TRUE(engine.node_alive(50000));
  EXPECT_EQ(engine.fleet()->size(), fleet_size);
  EXPECT_TRUE(std::isfinite(engine.node(50000).estimate(0)));
}

}  // namespace
}  // namespace pcf::sim
