#include "sim/engine_async.hpp"

#include <gtest/gtest.h>

#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;

AsyncEngine make_async(const net::Topology& t, Algorithm alg, Aggregate agg,
                       std::uint64_t seed = 1, FaultPlan faults = {}) {
  const auto values = test::random_values(t.size(), seed ^ 0xabcdef);
  auto masses = masses_from_values(values, agg);
  AsyncEngineConfig cfg;
  cfg.algorithm = alg;
  cfg.faults = std::move(faults);
  cfg.seed = seed;
  return AsyncEngine(t, masses, cfg);
}

TEST(AsyncEngine, PushSumConvergesWithoutSynchrony) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_async(t, Algorithm::kPushSum, Aggregate::kAverage, 3);
  EXPECT_TRUE(engine.run_until_error(1e-10, 500.0));
}

TEST(AsyncEngine, PushFlowConvergesWithoutSynchrony) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_async(t, Algorithm::kPushFlow, Aggregate::kAverage, 3);
  EXPECT_TRUE(engine.run_until_error(1e-10, 500.0));
}

TEST(AsyncEngine, PcfConvergesWithoutSynchrony) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 3);
  EXPECT_TRUE(engine.run_until_error(1e-12, 800.0));
}

TEST(AsyncEngine, PcfSurvivesMessageLossAsync) {
  const auto t = net::Topology::hypercube(4);
  FaultPlan faults;
  faults.message_loss_prob = 0.25;
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5, faults);
  EXPECT_TRUE(engine.run_until_error(1e-11, 2500.0));
}

TEST(AsyncEngine, PcfEarlyLinkFailureGivesConsensusWithBoundedBias) {
  // A cable cut with traffic in flight destroys the in-transit mass — for an
  // EARLY failure (estimates far from converged) this leaves a small bias
  // relative to the original aggregate; the survivors still reach consensus.
  const auto t = net::Topology::hypercube(4);
  FaultPlan faults;
  faults.link_failures.push_back({30.0, 0, 1});
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7, faults);
  engine.run_until(2000.0);
  const auto est = engine.estimates();
  double spread = 0.0;
  for (double v : est) spread = std::max(spread, std::abs(v - est[0]));
  EXPECT_LT(spread, 1e-10);
  EXPECT_LT(engine.max_error(), 0.1);
}

TEST(AsyncEngine, PcfLateLinkFailureKeepsFullAccuracy) {
  // After convergence every flow's value ratio equals the aggregate, so the
  // mass destroyed by the cut is ratio-aligned: estimates are unaffected.
  const auto t = net::Topology::hypercube(4);
  FaultPlan faults;
  faults.link_failures.push_back({400.0, 0, 1});
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7, faults);
  engine.run_until(410.0);
  EXPECT_TRUE(engine.run_until_error(1e-11, 2500.0));
}

TEST(AsyncEngine, NodeCrashRetargetsOracleApproximately) {
  // The async network always has packets in flight, so a crash loses some
  // in-transit mass and the oracle retarget is a snapshot approximation (see
  // the note on AsyncEngine). Contract: survivors reach consensus, and the
  // consensus is within the in-flight mass bound of the retargeted oracle.
  const auto t = net::Topology::hypercube(3);
  FaultPlan faults;
  faults.node_crashes.push_back({20.0, 2});
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7, faults);
  const double before = engine.oracle().target();
  engine.run_until(25.0);
  EXPECT_FALSE(engine.node_alive(2));
  EXPECT_NE(engine.oracle().target(), before);
  engine.run_until(2000.0);
  const auto est = engine.estimates();
  double spread = 0.0;
  for (double v : est) spread = std::max(spread, std::abs(v - est[0]));
  EXPECT_LT(spread, 1e-10);           // consensus
  EXPECT_LT(engine.max_error(), 0.05);  // bounded bias vs the snapshot target
}

TEST(AsyncEngine, CrashRetargetIncludesInFlightMass) {
  // Regression test for the in-flight-mass retarget bug: the old kDetect
  // handler snapshotted only the survivors' local masses, missing the mass
  // carried by kDelivery events still queued on live links. For push-sum
  // (additive payloads) and push-flow (absolute last-writer-wins mirrors)
  // the corrected snapshot is EXACT — once the queued packets land, the
  // survivors conserve precisely the retargeted total — so consensus must
  // match the oracle to near machine precision, not just the coarse
  // in-flight-bias bound the PCF test above allows.
  for (const auto algorithm : {Algorithm::kPushSum, Algorithm::kPushFlow}) {
    // Dense graph + crash mid-gossip = plenty of packets in flight at the
    // moment of the crash (seed 11 has in-flight mass on live links at t=5).
    const auto t = net::Topology::complete(8);
    FaultPlan faults;
    faults.node_crashes.push_back({5.0, 3});
    auto engine = make_async(t, algorithm, Aggregate::kAverage, 11, faults);
    engine.run_until(6.0);
    ASSERT_FALSE(engine.node_alive(3));
    engine.run_until(2000.0);
    const auto est = engine.estimates();
    double spread = 0.0;
    for (double v : est) spread = std::max(spread, std::abs(v - est[0]));
    EXPECT_LT(spread, 1e-10) << core::to_string(algorithm);
    EXPECT_LT(engine.max_error(), 1e-9) << core::to_string(algorithm);
  }
}

TEST(AsyncEngine, DeterministicGivenSeed) {
  const auto t = net::Topology::ring(8);
  auto a = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 17);
  auto b = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 17);
  a.run_until(50.0);
  b.run_until(50.0);
  EXPECT_EQ(a.estimates(), b.estimates());
  EXPECT_EQ(a.messages_delivered(), b.messages_delivered());
}

TEST(AsyncEngine, TimeAdvancesMonotonically) {
  const auto t = net::Topology::ring(4);
  auto engine = make_async(t, Algorithm::kPushSum, Aggregate::kAverage, 1);
  engine.run_until(5.0);
  EXPECT_GE(engine.now(), 5.0);
  engine.run_until(10.0);
  EXPECT_GE(engine.now(), 10.0);
  // run_until into the past is a no-op, not a rewind
  engine.run_until(3.0);
  EXPECT_GE(engine.now(), 10.0);
}

TEST(AsyncEngine, MessageRateMatchesTickRate) {
  const auto t = net::Topology::complete(8);
  const auto values = test::random_values(8, 3);
  auto masses = masses_from_values(values, Aggregate::kAverage);
  AsyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushSum;
  cfg.seed = 3;
  cfg.tick_rate = 2.0;
  AsyncEngine engine(t, masses, cfg);
  engine.run_until(200.0);
  // 8 nodes × rate 2 × 200 time units ≈ 3200 messages (Poisson, ±10%).
  EXPECT_NEAR(static_cast<double>(engine.messages_delivered()), 3200.0, 320.0);
}

TEST(AsyncEngine, RejectsBadLatencyRange) {
  const auto t = net::Topology::ring(4);
  const std::vector<core::Mass> masses(4, core::Mass::scalar(1.0, 1.0));
  AsyncEngineConfig cfg;
  cfg.latency_min = 0.5;
  cfg.latency_max = 0.1;
  EXPECT_THROW(AsyncEngine(t, masses, cfg), ContractViolation);
}

}  // namespace
}  // namespace pcf::sim
