#include "sim/engine_sync.hpp"

#include <gtest/gtest.h>

#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;
using test::make_engine;

TEST(SyncEngine, RejectsMismatchedInitialMasses) {
  const auto t = net::Topology::ring(4);
  const std::vector<core::Mass> masses(3, core::Mass::scalar(1.0, 1.0));
  SyncEngineConfig cfg;
  EXPECT_THROW(SyncEngine(t, masses, cfg), ContractViolation);
}

TEST(SyncEngine, RejectsDisconnectedTopology) {
  const std::vector<std::pair<net::NodeId, net::NodeId>> edges{{0, 1}, {2, 3}};
  const auto t = net::Topology::from_edges(4, edges);
  const std::vector<core::Mass> masses(4, core::Mass::scalar(1.0, 1.0));
  SyncEngineConfig cfg;
  EXPECT_THROW(SyncEngine(t, masses, cfg), ContractViolation);
}

TEST(SyncEngine, RejectsUnknownLinkInFaultPlan) {
  const auto t = net::Topology::ring(4);
  const std::vector<core::Mass> masses(4, core::Mass::scalar(1.0, 1.0));
  SyncEngineConfig cfg;
  cfg.faults.link_failures.push_back({1.0, 0, 2});  // ring(4): no edge 0-2
  EXPECT_THROW(SyncEngine(t, masses, cfg), ContractViolation);
}

TEST(SyncEngine, DeterministicAcrossRuns) {
  const auto t = net::Topology::hypercube(4);
  auto a = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 33);
  auto b = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 33);
  a.run(100);
  b.run(100);
  const auto ea = a.estimates();
  const auto eb = b.estimates();
  for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);  // bit-identical
}

TEST(SyncEngine, DifferentSeedsGiveDifferentSchedules) {
  const auto t = net::Topology::hypercube(4);
  auto a = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 1);
  auto b = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 2);
  a.run(10);
  b.run(10);
  EXPECT_NE(a.estimates(), b.estimates());
}

TEST(SyncEngine, SameSeedSameScheduleAcrossAlgorithms) {
  // The property behind Figs. 4 vs 7: PF and PCF runs with the same seed use
  // identical communication schedules, so their trajectories agree (to
  // rounding) until a failure is handled.
  const auto t = net::Topology::hypercube(5);
  auto pf = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 99);
  auto pcf = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 99);
  pf.run(40);
  pcf.run(40);
  const auto epf = pf.estimates();
  const auto epcf = pcf.estimates();
  for (std::size_t i = 0; i < epf.size(); ++i) EXPECT_NEAR(epf[i], epcf[i], 1e-10);
}

TEST(SyncEngine, MessageCountersAreConsistent) {
  const auto t = net::Topology::ring(6);
  FaultPlan faults;
  faults.message_loss_prob = 0.5;
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5, faults);
  engine.run(100);
  const auto& s = engine.stats();
  EXPECT_EQ(s.messages_sent, 600u);  // 6 nodes × 100 rounds
  EXPECT_GT(s.messages_dropped, 200u);
  EXPECT_LT(s.messages_dropped, 400u);
  EXPECT_EQ(s.messages_flipped, 0u);
}

TEST(SyncEngine, RunUntilErrorStopsEarly) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5);
  const auto stats = engine.run_until_error(1e-6, 10000);
  EXPECT_TRUE(stats.reached_target);
  EXPECT_LT(stats.rounds, 1000u);
  EXPECT_LE(engine.max_error(), 1e-6);
}

TEST(SyncEngine, RunUntilErrorHonorsCap) {
  const auto t = net::Topology::ring(16);
  auto engine = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 5);
  const auto stats = engine.run_until_error(1e-30, 50);  // unreachable target
  EXPECT_FALSE(stats.reached_target);
  EXPECT_EQ(engine.round(), 50u);
}

TEST(SyncEngine, LinkFailureCutsTransportBeforeDetection) {
  // With a detection delay, packets die on the failed link while senders
  // still select it — messages_dropped grows without any loss probability.
  const auto t = net::Topology::bus(2);
  FaultPlan faults;
  faults.detection_delay = 50.0;
  faults.link_failures.push_back({10.0, 0, 1});
  const std::vector<core::Mass> masses{core::Mass::scalar(1.0, 1.0),
                                       core::Mass::scalar(3.0, 1.0)};
  SyncEngineConfig cfg;
  cfg.algorithm = core::Algorithm::kPushFlow;
  cfg.faults = faults;
  cfg.seed = 1;
  SyncEngine engine(t, masses, cfg);
  engine.run(30);
  EXPECT_GT(engine.stats().messages_dropped, 10u);
  // Detection has not fired yet: nodes still think the link is alive.
  EXPECT_EQ(engine.node(0).live_degree(), 1u);
  engine.run(40);  // past round 60 = failure(10) + delay(50)
  EXPECT_EQ(engine.node(0).live_degree(), 0u);
}

TEST(SyncEngine, NodeCrashRemovesNodeFromEstimates) {
  const auto t = net::Topology::hypercube(3);
  FaultPlan faults;
  faults.node_crashes.push_back({5.0, 3});
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5, faults);
  engine.run(20);
  EXPECT_FALSE(engine.node_alive(3));
  EXPECT_EQ(engine.estimates().size(), 7u);
}

TEST(SyncEngine, OracleRetargetsAfterCrash) {
  const auto t = net::Topology::hypercube(3);
  FaultPlan faults;
  faults.node_crashes.push_back({5.0, 0});
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5, faults);
  const double before = engine.oracle().target();
  engine.run(600);
  const double after = engine.oracle().target();
  EXPECT_NE(before, after);
  // Survivors agree on the retargeted aggregate.
  EXPECT_LT(engine.max_error(), 1e-11);
}

TEST(SyncEngine, SampleReportsConsistentStatistics) {
  const auto t = net::Topology::ring(8);
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5);
  engine.run(10);
  const auto p = engine.sample();
  EXPECT_EQ(p.time, 10.0);
  EXPECT_GE(p.max_error, p.median_error);
  EXPECT_GE(p.max_error, p.mean_error);
  EXPECT_DOUBLE_EQ(p.max_error, engine.max_error());
  EXPECT_DOUBLE_EQ(p.median_error, engine.median_error());
  EXPECT_DOUBLE_EQ(p.max_abs_flow, engine.max_abs_flow());
}

TEST(SyncEngine, MutableFaultsChangeProbabilitiesMidRun) {
  const auto t = net::Topology::ring(6);
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5);
  engine.run(50);
  EXPECT_EQ(engine.stats().messages_dropped, 0u);
  engine.mutable_faults().message_loss_prob = 1.0;  // blackout
  engine.run(50);
  EXPECT_EQ(engine.stats().messages_dropped, 300u);  // 6 nodes x 50 rounds
  engine.mutable_faults().message_loss_prob = 0.0;
  engine.run(400);
  EXPECT_LT(engine.max_error(), 1e-10);  // fully recovered after the blackout
}

TEST(SyncEngine, CrossingModeStillConvergesForPushFlow) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 5);
  auto masses = masses_from_values(values, Aggregate::kAverage);
  SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushFlow;
  cfg.seed = 5;
  cfg.delivery = Delivery::kCrossing;
  SyncEngine engine(t, masses, cfg);
  engine.run(1000);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(SyncEngine, StarHubCrashFloodsNoticesAndRetargetsExactly) {
  // A hub crash produces one exclusion notice per incident edge — 2(n−1)
  // notices all due the same round, the worst case for the notification
  // queue (its compaction used to be quadratic). All spokes must be
  // notified, and the oracle must retarget to exactly the survivors' mass.
  const auto t = net::Topology::star(24);
  FaultPlan faults;
  faults.node_crashes.push_back({6.0, 0});  // node 0 is the hub
  faults.detection_delay = 2.0;
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 13, faults);
  engine.run(6);
  EXPECT_TRUE(engine.node_alive(0));
  engine.run(1);  // round 7 fires the crash; notices due at round 8
  EXPECT_FALSE(engine.node_alive(0));
  EXPECT_EQ(engine.node(1).live_degree(), 1u);  // not yet notified
  engine.run(2);
  double survivor_mass = 0.0, survivor_weight = 0.0;
  for (net::NodeId i = 1; i < t.size(); ++i) {
    EXPECT_EQ(engine.node(i).live_degree(), 0u) << "spoke " << i << " missed its notice";
    const auto m = engine.node(i).local_mass();
    survivor_mass += m.s[0];
    survivor_weight += m.w;
  }
  EXPECT_NEAR(engine.oracle().target(), survivor_mass / survivor_weight, 1e-12);
}

TEST(SyncEngine, CrossingModeCrashRetargetsAfterWireDrains) {
  // In crossing mode a round's packets are all in flight together and mirror
  // stale flows, so the survivors' mass sum at the round boundary right
  // after a crash is transiently off. The retarget is deferred until the
  // current round's wire has drained; survivors then reach consensus near
  // the retargeted value.
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 21 ^ 0xabcdef);
  auto masses = masses_from_values(values, Aggregate::kAverage);
  SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushFlow;
  cfg.seed = 21;
  cfg.delivery = Delivery::kCrossing;
  cfg.faults.node_crashes.push_back({25.0, 5});
  SyncEngine engine(t, masses, cfg);
  const double before = engine.oracle().target();
  engine.run(2000);
  EXPECT_FALSE(engine.node_alive(5));
  EXPECT_NE(engine.oracle().target(), before);
  const auto est = engine.estimates();
  double spread = 0.0;
  for (double v : est) spread = std::max(spread, std::abs(v - est[0]));
  EXPECT_LT(spread, 1e-10);  // consensus among survivors
  // Any crossing-mode crash snapshot is an approximation: the crossing
  // exchanges break exact pairwise flow antisymmetry mid-convergence, and
  // absorbing the flows toward the dead node (when the delayed notices fire)
  // shifts the survivors' conserved total slightly. Seed 21 lands at ~1.7e-3
  // with the post-drain snapshot; the bound pins that the deferred retarget
  // stays in that regime instead of diverging.
  EXPECT_LT(engine.max_error(), 5e-3);
}

TEST(SyncEngine, DetectionDelayZeroMatchesPaperSetup) {
  // With zero delay the failure is handled in the round it occurs, which is
  // the paper's "failure handling takes place after N iterations".
  const auto t = net::Topology::hypercube(3);
  FaultPlan faults;
  faults.link_failures.push_back({10.0, 0, 1});
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5, faults);
  engine.run(10);
  EXPECT_EQ(engine.node(0).live_degree(), 3u);
  engine.run(1);  // round 11 processes the failure due at t=10
  EXPECT_EQ(engine.node(0).live_degree(), 2u);
  EXPECT_EQ(engine.node(1).live_degree(), 2u);
}

}  // namespace
}  // namespace pcf::sim
