// Thread-count determinism: the sharded arena round loop must be
// BYTE-identical to the serial one at every shard count. Sharded sends merge
// per-shard wires in contiguous-node-block order (= serial wire order);
// sharded drains counting-sort the wire by receiver (stable, = serial
// delivery order per receiver). Anything observable — node state bits, run
// counters, oracle error — must not depend on `shards`.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Algorithm;

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::vector<std::uint64_t> fingerprint(const SyncEngine& engine, const net::Topology& t) {
  std::vector<std::uint64_t> fp;
  for (NodeId i = 0; i < t.size(); ++i) {
    fp.push_back(engine.node_alive(i) ? 1u : 0u);
    if (!engine.node_alive(i)) continue;
    const core::Reducer& n = engine.node(i);
    const core::Mass m = n.local_mass();
    for (std::size_t k = 0; k < m.dim(); ++k) fp.push_back(bits_of(m.s[k]));
    fp.push_back(bits_of(m.w));
    fp.push_back(bits_of(n.estimate(0)));
    fp.push_back(n.live_degree());
    fp.push_back(bits_of(n.max_abs_flow_component()));
    std::array<core::Mass, 2> flows{};
    for (const NodeId j : t.neighbors(i)) {
      const std::size_t count = n.flows_toward(j, flows);
      fp.push_back(count);
      for (std::size_t q = 0; q < count; ++q) {
        for (std::size_t k = 0; k < flows[q].dim(); ++k) fp.push_back(bits_of(flows[q].s[k]));
        fp.push_back(bits_of(flows[q].w));
      }
    }
  }
  return fp;
}

SyncEngine make_arena_engine(const net::Topology& topology, Algorithm algorithm,
                             std::size_t shards, const FaultPlan& plan, Delivery delivery) {
  const auto values = test::random_values(topology.size(), 1234);
  std::vector<core::Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], 1.0));
  }
  SyncEngineConfig cfg;
  cfg.algorithm = algorithm;
  cfg.faults = plan;
  cfg.seed = 99;
  cfg.delivery = delivery;
  cfg.mode = EngineMode::kArena;
  cfg.shards = shards;
  cfg.invariants.enabled = true;
  return SyncEngine(topology, masses, cfg);
}

class ArenaShards : public ::testing::TestWithParam<Algorithm> {};

// Crossing delivery routes every packet through the wire, which is the path
// the sharded send/drain phases actually parallelize.
TEST_P(ArenaShards, CrossingRunIsIdenticalAtEveryShardCount) {
  const auto topology = net::Topology::grid2d(6, 6, /*wrap=*/true);
  SyncEngine serial = make_arena_engine(topology, GetParam(), 1, {}, Delivery::kCrossing);
  serial.run(30);
  const auto expected = fingerprint(serial, topology);
  const auto expected_stats = serial.stats();

  for (const std::size_t shards : {2u, 4u, 8u}) {
    SyncEngine sharded = make_arena_engine(topology, GetParam(), shards, {}, Delivery::kCrossing);
    // Explicit shard counts are honored even above the core count
    // (oversubscription is deterministic by construction).
    EXPECT_GE(sharded.shards(), 1u);
    sharded.run(30);
    EXPECT_EQ(fingerprint(sharded, topology), expected) << "shards=" << shards;
    EXPECT_EQ(sharded.stats().messages_sent, expected_stats.messages_sent);
    EXPECT_EQ(sharded.stats().doubles_sent, expected_stats.doubles_sent);
    EXPECT_EQ(bits_of(sharded.max_error()), bits_of(serial.max_error()));
  }
}

// Fault events force the engine in and out of the shardable fast path
// (per-packet loss draws disable send sharding; the scheduled events run
// serially between rounds). The merge must stay byte-faithful across the
// transitions.
TEST_P(ArenaShards, LifecycleFaultsStayIdenticalAcrossShardCounts) {
  const auto topology = net::Topology::grid2d(6, 6, /*wrap=*/true);
  FaultPlan plan;
  plan.detection_delay = 1.0;
  plan.link_failures.push_back({5.0, 0, 1});
  plan.node_crashes.push_back({9.0, 7});
  plan.link_heals.push_back({15.0, 0, 1});
  plan.node_rejoins.push_back({20.0, 7});
  SyncEngine serial = make_arena_engine(topology, GetParam(), 1, plan, Delivery::kCrossing);
  serial.run(35);
  const auto expected = fingerprint(serial, topology);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    SyncEngine sharded = make_arena_engine(topology, GetParam(), shards, plan, Delivery::kCrossing);
    sharded.run(35);
    EXPECT_EQ(fingerprint(sharded, topology), expected) << "shards=" << shards;
    EXPECT_EQ(sharded.stats().messages_dropped, serial.stats().messages_dropped);
  }
}

// Duplicates and reordering disable the sharded drain (their RNG draws are
// inherently order-dependent); loss disables the sharded send. The dispatch
// must fall back to the serial phases and still match shards=1 exactly.
TEST_P(ArenaShards, AdversarialKnobsFallBackToSerialPhasesIdentically) {
  const auto topology = net::Topology::grid2d(5, 5, /*wrap=*/true);
  FaultPlan plan;
  plan.message_loss_prob = 0.05;
  plan.duplicate_prob = 0.1;
  plan.reorder_prob = 0.1;
  SyncEngine serial = make_arena_engine(topology, GetParam(), 1, plan, Delivery::kCrossing);
  serial.run(25);
  const auto expected = fingerprint(serial, topology);

  for (const std::size_t shards : {2u, 8u}) {
    SyncEngine sharded = make_arena_engine(topology, GetParam(), shards, plan, Delivery::kCrossing);
    sharded.run(25);
    EXPECT_EQ(fingerprint(sharded, topology), expected) << "shards=" << shards;
    EXPECT_EQ(sharded.stats().messages_duplicated, serial.stats().messages_duplicated);
    EXPECT_EQ(sharded.stats().messages_dropped, serial.stats().messages_dropped);
  }
}

// Sequential delivery never uses the wire, so sharding must be a no-op there
// too (the dispatcher routes it through the serial send phase).
TEST_P(ArenaShards, SequentialDeliveryUnaffectedByShards) {
  const auto topology = net::Topology::grid2d(5, 5, /*wrap=*/true);
  SyncEngine serial = make_arena_engine(topology, GetParam(), 1, {}, Delivery::kSequential);
  SyncEngine sharded = make_arena_engine(topology, GetParam(), 8, {}, Delivery::kSequential);
  serial.run(30);
  sharded.run(30);
  EXPECT_EQ(fingerprint(sharded, topology), fingerprint(serial, topology));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ArenaShards,
                         ::testing::Values(Algorithm::kPushSum, Algorithm::kPushFlow,
                                           Algorithm::kPushCancelFlow,
                                           Algorithm::kFlowUpdating),
                         [](const ::testing::TestParamInfo<Algorithm>& param) {
                           switch (param.param) {
                             case Algorithm::kPushSum: return "ps";
                             case Algorithm::kPushFlow: return "pf";
                             case Algorithm::kPushCancelFlow: return "pcf";
                             case Algorithm::kFlowUpdating: return "fu";
                           }
                           return "unknown";
                         });

TEST(ArenaShardsConfig, ZeroMeansHardwareConcurrency) {
  const auto topology = net::Topology::grid2d(4, 4, /*wrap=*/true);
  SyncEngine engine = make_arena_engine(topology, Algorithm::kPushSum, 0, {}, Delivery::kCrossing);
  EXPECT_GE(engine.shards(), 1u);
}

}  // namespace
}  // namespace pcf::sim
