#include "sim/statistics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace pcf::sim {
namespace {

struct Reference {
  double sum = 0, mean = 0, variance = 0, min = 0, max = 0;
};

Reference direct_stats(std::span<const double> values) {
  Reference r;
  r.min = *std::min_element(values.begin(), values.end());
  r.max = *std::max_element(values.begin(), values.end());
  for (double v : values) r.sum += v;
  r.mean = r.sum / static_cast<double>(values.size());
  for (double v : values) r.variance += (v - r.mean) * (v - r.mean);
  r.variance /= static_cast<double>(values.size());
  return r;
}

TEST(DistributedSummary, MatchesDirectComputationOnEveryNode) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 5);
  const auto ref = direct_stats(values);
  SummaryOptions options;
  options.seed = 5;
  const auto result = distributed_summary(t, values, options);
  EXPECT_TRUE(result.reached_target);
  for (const auto& s : result.per_node) {
    EXPECT_NEAR(s.count, 16.0, 1e-9);
    EXPECT_NEAR(s.sum, ref.sum, 1e-9);
    EXPECT_NEAR(s.mean, ref.mean, 1e-10);
    EXPECT_NEAR(s.variance, ref.variance, 1e-9);
    EXPECT_EQ(s.min, ref.min);  // extrema are exact, not approximate
    EXPECT_EQ(s.max, ref.max);
  }
}

TEST(DistributedSummary, WorksOnIrregularTopology) {
  Rng rng(3);
  const auto t = net::Topology::erdos_renyi(25, 0.15, rng);
  const auto values = test::random_values(t.size(), 7);
  const auto ref = direct_stats(values);
  SummaryOptions options;
  options.seed = 7;
  const auto result = distributed_summary(t, values, options);
  for (const auto& s : result.per_node) {
    EXPECT_NEAR(s.mean, ref.mean, 1e-9);
    EXPECT_EQ(s.min, ref.min);
  }
}

TEST(DistributedSummary, SurvivesMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 9);
  const auto ref = direct_stats(values);
  SummaryOptions options;
  options.seed = 9;
  options.faults.message_loss_prob = 0.2;
  options.max_rounds = 30000;
  const auto result = distributed_summary(t, values, options);
  EXPECT_TRUE(result.reached_target);
  for (const auto& s : result.per_node) {
    EXPECT_NEAR(s.mean, ref.mean, 1e-9);
    EXPECT_EQ(s.min, ref.min);
    EXPECT_EQ(s.max, ref.max);
  }
}

TEST(DistributedSummary, ConstantInputGivesZeroVariance) {
  const auto t = net::Topology::ring(8);
  const std::vector<double> values(8, 3.25);
  const auto result = distributed_summary(t, values, {});
  for (const auto& s : result.per_node) {
    EXPECT_NEAR(s.variance, 0.0, 1e-12);
    EXPECT_EQ(s.min, 3.25);
    EXPECT_EQ(s.max, 3.25);
  }
}

TEST(DistributedExtrema, ExactOnEveryTopology) {
  Rng rng(1);
  for (const auto& spec : {"bus:9", "ring:12", "hypercube:5", "star:7", "tree:10"}) {
    const auto t = net::Topology::parse(spec, rng);
    const auto values = test::random_values(t.size(), 11);
    const auto ref = direct_stats(values);
    const auto extrema = distributed_extrema(t, values, {});
    for (const auto& [mn, mx] : extrema) {
      EXPECT_EQ(mn, ref.min) << spec;
      EXPECT_EQ(mx, ref.max) << spec;
    }
  }
}

TEST(NetworkSize, EveryNodeEstimatesN) {
  for (const auto spec : {"hypercube:5", "ring:12", "torus3d:2"}) {
    Rng rng(1);
    const auto t = net::Topology::parse(spec, rng);
    SummaryOptions options;
    options.seed = 13;
    options.target_accuracy = 1e-11;
    const auto sizes = estimate_network_size(t, options);
    for (double n_est : sizes) {
      EXPECT_NEAR(n_est, static_cast<double>(t.size()), 1e-6 * static_cast<double>(t.size()))
          << spec;
    }
  }
}

TEST(NetworkSize, SurvivesMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  SummaryOptions options;
  options.faults.message_loss_prob = 0.25;
  options.target_accuracy = 1e-10;
  options.max_rounds = 30000;
  const auto sizes = estimate_network_size(t, options);
  for (double n_est : sizes) EXPECT_NEAR(n_est, 16.0, 1e-5);
}

TEST(DistributedExtrema, RejectsWrongValueCount) {
  const auto t = net::Topology::ring(4);
  const std::vector<double> values(3, 1.0);
  EXPECT_THROW(distributed_extrema(t, values, {}), ContractViolation);
}

}  // namespace
}  // namespace pcf::sim
