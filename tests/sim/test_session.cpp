#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Values;

std::vector<Values> scalar_inputs(std::span<const double> values) {
  std::vector<Values> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Values{v});
  return out;
}

TEST(ReductionSession, FirstQueryMatchesColdReduction) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 3);
  SessionOptions options;
  options.seed = 3;
  options.target_accuracy = 1e-11;
  ReductionSession session(t, scalar_inputs(values), options);
  const auto reply = session.query(scalar_inputs(values));
  EXPECT_TRUE(reply.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  for (net::NodeId i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(reply.estimate(i), expected, 1e-9 * std::abs(expected));
  }
}

TEST(ReductionSession, WarmQueriesAreMuchCheaperThanCold) {
  // Monitoring scenario: inputs drift by ~0.01% between queries. Rounds
  // scale with the decades of error to close: the cold start descends from
  // O(1) to 1e-10, a warm query only from the drift size (1e-4) — so warm
  // queries cost roughly (4+6)/10 → the ratio tracks
  // log(drift)/log(target).
  const auto t = net::Topology::hypercube(5);
  auto values = test::random_values(t.size(), 7);
  for (auto& v : values) v += 1.0;  // keep magnitudes comparable
  SessionOptions options;
  options.seed = 7;
  options.target_accuracy = 1e-10;
  ReductionSession session(t, scalar_inputs(values), options);
  const auto cold = session.query(scalar_inputs(values));
  ASSERT_TRUE(cold.reached_target);

  Rng drift(99);
  std::size_t warm_total = 0;
  for (int q = 0; q < 10; ++q) {
    for (auto& v : values) v *= 1.0 + drift.uniform(-1e-4, 1e-4);
    const auto reply = session.query(scalar_inputs(values));
    ASSERT_TRUE(reply.reached_target) << "query " << q;
    warm_total += reply.rounds;
    double expected = 0.0;
    for (double v : values) expected += v;
    EXPECT_NEAR(reply.estimate(0), expected, 1e-8 * expected);
  }
  const double mean_warm = static_cast<double>(warm_total) / 10.0;
  EXPECT_LT(mean_warm, 0.6 * static_cast<double>(cold.rounds))
      << "cold " << cold.rounds << " mean warm " << mean_warm;
}

TEST(ReductionSession, UnchangedQueryIsNearlyFree) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 9);
  SessionOptions options;
  options.seed = 9;
  options.target_accuracy = 1e-10;
  ReductionSession session(t, scalar_inputs(values), options);
  const auto cold = session.query(scalar_inputs(values));
  const auto again = session.query(scalar_inputs(values));
  EXPECT_TRUE(again.reached_target);
  EXPECT_LE(again.rounds, 2u);  // already at target; one probe round
  EXPECT_GT(cold.rounds, 20u);
}

TEST(ReductionSession, SurvivesLinkFailureBetweenQueries) {
  const auto t = net::Topology::hypercube(4);
  auto values = test::random_values(t.size(), 11);
  for (auto& v : values) v += 1.0;
  SessionOptions options;
  options.seed = 11;
  options.target_accuracy = 1e-10;
  ReductionSession session(t, scalar_inputs(values), options);
  ASSERT_TRUE(session.query(scalar_inputs(values)).reached_target);
  session.fail_link(0, 1);
  values[3] += 0.25;
  const auto reply = session.query(scalar_inputs(values));
  EXPECT_TRUE(reply.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  EXPECT_NEAR(reply.estimate(0), expected, 1e-8 * expected);
}

TEST(ReductionSession, SurvivesContinuousMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  auto values = test::random_values(t.size(), 13);
  for (auto& v : values) v += 1.0;
  SessionOptions options;
  options.seed = 13;
  options.target_accuracy = 1e-9;
  options.faults.message_loss_prob = 0.15;
  ReductionSession session(t, scalar_inputs(values), options);
  for (int q = 0; q < 4; ++q) {
    values[q] += 0.5;
    const auto reply = session.query(scalar_inputs(values));
    EXPECT_TRUE(reply.reached_target) << q;
  }
}

TEST(ReductionSession, VectorPayloadQueries) {
  const auto t = net::Topology::ring(6);
  std::vector<Values> inputs(6);
  for (std::size_t i = 0; i < 6; ++i) {
    inputs[i] = Values{static_cast<double>(i), 1.0};
  }
  SessionOptions options;
  options.target_accuracy = 1e-10;
  options.aggregate = core::Aggregate::kSum;
  ReductionSession session(t, inputs, options);
  auto reply = session.query(inputs);
  EXPECT_NEAR(reply.estimate(0, 0), 15.0, 1e-8);
  EXPECT_NEAR(reply.estimate(0, 1), 6.0, 1e-8);
  inputs[2][0] += 10.0;
  reply = session.query(inputs);
  EXPECT_NEAR(reply.estimate(0, 0), 25.0, 1e-8);
}

TEST(ReductionSession, RejectsDimensionChanges) {
  const auto t = net::Topology::ring(4);
  std::vector<Values> inputs(4, Values{1.0});
  ReductionSession session(t, inputs, {});
  std::vector<Values> wrong(4, Values{1.0, 2.0});
  EXPECT_THROW(session.query(wrong), ContractViolation);
}

TEST(ReductionSession, AverageAggregateSessions) {
  const auto t = net::Topology::hypercube(3);
  auto values = test::random_values(t.size(), 17);
  SessionOptions options;
  options.aggregate = core::Aggregate::kAverage;
  options.target_accuracy = 1e-11;
  ReductionSession session(t, scalar_inputs(values), options);
  values[5] += 2.0;
  const auto reply = session.query(scalar_inputs(values));
  double expected = 0.0;
  for (double v : values) expected += v;
  expected /= 8.0;
  EXPECT_NEAR(reply.estimate(4), expected, 1e-9);
}

TEST(ReductionSession, ForwardsEngineModeShardsAndInvariants) {
  // Regression: the session once forwarded only algorithm/reducer/faults/seed
  // to the engine, silently dropping mode and shards — every session ran
  // legacy single-shard no matter what the caller asked for.
  const auto t = net::Topology::ring(8);
  const auto values = test::random_values(t.size(), 23);
  SessionOptions legacy_options;
  legacy_options.seed = 23;
  legacy_options.target_accuracy = 1e-10;
  legacy_options.invariants.enabled = true;
  SessionOptions arena_options = legacy_options;
  arena_options.mode = EngineMode::kArena;
  arena_options.shards = 2;
  ReductionSession legacy(t, scalar_inputs(values), legacy_options);
  ReductionSession arena(t, scalar_inputs(values), arena_options);
  EXPECT_EQ(legacy.engine().fleet(), nullptr);
  ASSERT_NE(arena.engine().fleet(), nullptr) << "options.mode was not forwarded";
  EXPECT_NE(legacy.engine().invariants(), nullptr) << "options.invariants was not forwarded";
  const auto a = legacy.query(scalar_inputs(values));
  const auto b = arena.query(scalar_inputs(values));
  // The arena layout's contract is bitwise-identical output, so the two
  // sessions must agree exactly — which also proves the arena engine really
  // ran (a half-forwarded config would still pass the fleet() probe above).
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.estimates, b.estimates);
  EXPECT_EQ(legacy.engine().state_fingerprint(), arena.engine().state_fingerprint());
}

TEST(ReductionSession, BuffersUpdatesToDeadNodesAndReappliesOnRejoin) {
  // Regression: query() used to silently discard updates addressed to dead
  // nodes AND leave current_[i] stale, so the next query's delta shifted the
  // session's target. Now the desired value is buffered and the accumulated
  // drift is re-applied when the node rejoins.
  const auto t = net::Topology::hypercube(4);
  auto values = test::random_values(t.size(), 21);
  for (auto& v : values) v += 1.0;
  SessionOptions options;
  options.algorithm = core::Algorithm::kPushFlow;  // exact conservation on crash
  options.seed = 21;
  options.target_accuracy = 1e-10;
  options.max_rounds_per_query = 400;
  // The rejoin is scheduled far past the rounds any query below can consume
  // (the two queries measure ~84 + ~143 rounds), so the dead-node window is
  // guaranteed to span the buffered-update query.
  options.faults.node_crashes.push_back({5.0, 2});
  options.faults.node_rejoins.push_back({600.0, 2});
  ReductionSession session(t, scalar_inputs(values), options);
  ASSERT_TRUE(session.query(scalar_inputs(values)).reached_target);
  ASSERT_FALSE(session.engine().node_alive(2));  // the crash fired mid-query

  values[2] += 0.5;   // node 2 is dead: buffered, reported as dropped
  values[7] += 0.25;  // node 7 is alive: applied immediately
  const auto dropped_reply = session.query(scalar_inputs(values));
  EXPECT_EQ(dropped_reply.dropped_updates, 1u);
  EXPECT_EQ(dropped_reply.reapplied_updates, 0u);
  EXPECT_TRUE(std::isnan(dropped_reply.estimate(2)));

  // Run past the scheduled rejoin; count every re-applied update on the way.
  std::size_t reapplied = 0;
  while (session.total_rounds() < 610) reapplied += session.refresh().reapplied_updates;
  ASSERT_TRUE(session.engine().node_alive(2));
  const auto final_reply = session.refresh();
  reapplied += final_reply.reapplied_updates;
  EXPECT_EQ(reapplied, 1u);  // exactly once, despite many refreshes
  ASSERT_TRUE(final_reply.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  // The buffered +0.5 survived the crash: the session converges to the sum
  // of the CURRENT inputs, dead-node update included.
  EXPECT_NEAR(final_reply.estimate(2), expected, 1e-7 * expected);
}

TEST(ReductionSession, CheckpointRestoresWarmSessionAcrossRestart) {
  const auto t = net::Topology::hypercube(4);
  auto values = test::random_values(t.size(), 29);
  for (auto& v : values) v += 1.0;
  SessionOptions options;
  options.seed = 29;
  options.target_accuracy = 1e-10;
  ReductionSession live(t, scalar_inputs(values), options);
  ASSERT_TRUE(live.query(scalar_inputs(values)).reached_target);
  values[3] += 0.125;
  ASSERT_TRUE(live.query(scalar_inputs(values)).reached_target);

  const std::string blob = live.save_checkpoint();
  // "Restart": a fresh process reconstructs the session from the ORIGINAL
  // construction inputs and options, then restores the blob.
  auto original = test::random_values(t.size(), 29);
  for (auto& v : original) v += 1.0;
  ReductionSession revived(t, scalar_inputs(original), options);
  revived.restore(blob);
  EXPECT_EQ(revived.queries(), live.queries());
  EXPECT_EQ(revived.total_rounds(), live.total_rounds());
  EXPECT_EQ(revived.engine().state_fingerprint(), live.engine().state_fingerprint());

  // The revived session IS the live session: the next warm query matches
  // bitwise, round for round.
  values[5] += 0.25;
  const auto a = live.query(scalar_inputs(values));
  const auto b = revived.query(scalar_inputs(values));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.estimates, b.estimates);

  // Defensive paths: truncation and a bare engine blob (no session prelude).
  ReductionSession other(t, scalar_inputs(original), options);
  EXPECT_THROW(other.restore(std::string_view(blob).substr(0, blob.size() / 2)),
               CheckpointError);
  EXPECT_THROW(other.restore(other.engine().save_checkpoint()), CheckpointError);
}

}  // namespace
}  // namespace pcf::sim
