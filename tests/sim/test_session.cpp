#include "sim/session.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Values;

std::vector<Values> scalar_inputs(std::span<const double> values) {
  std::vector<Values> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Values{v});
  return out;
}

TEST(ReductionSession, FirstQueryMatchesColdReduction) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 3);
  SessionOptions options;
  options.seed = 3;
  options.target_accuracy = 1e-11;
  ReductionSession session(t, scalar_inputs(values), options);
  const auto reply = session.query(scalar_inputs(values));
  EXPECT_TRUE(reply.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  for (net::NodeId i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(reply.estimate(i), expected, 1e-9 * std::abs(expected));
  }
}

TEST(ReductionSession, WarmQueriesAreMuchCheaperThanCold) {
  // Monitoring scenario: inputs drift by ~0.01% between queries. Rounds
  // scale with the decades of error to close: the cold start descends from
  // O(1) to 1e-10, a warm query only from the drift size (1e-4) — so warm
  // queries cost roughly (4+6)/10 → the ratio tracks
  // log(drift)/log(target).
  const auto t = net::Topology::hypercube(5);
  auto values = test::random_values(t.size(), 7);
  for (auto& v : values) v += 1.0;  // keep magnitudes comparable
  SessionOptions options;
  options.seed = 7;
  options.target_accuracy = 1e-10;
  ReductionSession session(t, scalar_inputs(values), options);
  const auto cold = session.query(scalar_inputs(values));
  ASSERT_TRUE(cold.reached_target);

  Rng drift(99);
  std::size_t warm_total = 0;
  for (int q = 0; q < 10; ++q) {
    for (auto& v : values) v *= 1.0 + drift.uniform(-1e-4, 1e-4);
    const auto reply = session.query(scalar_inputs(values));
    ASSERT_TRUE(reply.reached_target) << "query " << q;
    warm_total += reply.rounds;
    double expected = 0.0;
    for (double v : values) expected += v;
    EXPECT_NEAR(reply.estimate(0), expected, 1e-8 * expected);
  }
  const double mean_warm = static_cast<double>(warm_total) / 10.0;
  EXPECT_LT(mean_warm, 0.6 * static_cast<double>(cold.rounds))
      << "cold " << cold.rounds << " mean warm " << mean_warm;
}

TEST(ReductionSession, UnchangedQueryIsNearlyFree) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 9);
  SessionOptions options;
  options.seed = 9;
  options.target_accuracy = 1e-10;
  ReductionSession session(t, scalar_inputs(values), options);
  const auto cold = session.query(scalar_inputs(values));
  const auto again = session.query(scalar_inputs(values));
  EXPECT_TRUE(again.reached_target);
  EXPECT_LE(again.rounds, 2u);  // already at target; one probe round
  EXPECT_GT(cold.rounds, 20u);
}

TEST(ReductionSession, SurvivesLinkFailureBetweenQueries) {
  const auto t = net::Topology::hypercube(4);
  auto values = test::random_values(t.size(), 11);
  for (auto& v : values) v += 1.0;
  SessionOptions options;
  options.seed = 11;
  options.target_accuracy = 1e-10;
  ReductionSession session(t, scalar_inputs(values), options);
  ASSERT_TRUE(session.query(scalar_inputs(values)).reached_target);
  session.fail_link(0, 1);
  values[3] += 0.25;
  const auto reply = session.query(scalar_inputs(values));
  EXPECT_TRUE(reply.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  EXPECT_NEAR(reply.estimate(0), expected, 1e-8 * expected);
}

TEST(ReductionSession, SurvivesContinuousMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  auto values = test::random_values(t.size(), 13);
  for (auto& v : values) v += 1.0;
  SessionOptions options;
  options.seed = 13;
  options.target_accuracy = 1e-9;
  options.faults.message_loss_prob = 0.15;
  ReductionSession session(t, scalar_inputs(values), options);
  for (int q = 0; q < 4; ++q) {
    values[q] += 0.5;
    const auto reply = session.query(scalar_inputs(values));
    EXPECT_TRUE(reply.reached_target) << q;
  }
}

TEST(ReductionSession, VectorPayloadQueries) {
  const auto t = net::Topology::ring(6);
  std::vector<Values> inputs(6);
  for (std::size_t i = 0; i < 6; ++i) {
    inputs[i] = Values{static_cast<double>(i), 1.0};
  }
  SessionOptions options;
  options.target_accuracy = 1e-10;
  options.aggregate = core::Aggregate::kSum;
  ReductionSession session(t, inputs, options);
  auto reply = session.query(inputs);
  EXPECT_NEAR(reply.estimate(0, 0), 15.0, 1e-8);
  EXPECT_NEAR(reply.estimate(0, 1), 6.0, 1e-8);
  inputs[2][0] += 10.0;
  reply = session.query(inputs);
  EXPECT_NEAR(reply.estimate(0, 0), 25.0, 1e-8);
}

TEST(ReductionSession, RejectsDimensionChanges) {
  const auto t = net::Topology::ring(4);
  std::vector<Values> inputs(4, Values{1.0});
  ReductionSession session(t, inputs, {});
  std::vector<Values> wrong(4, Values{1.0, 2.0});
  EXPECT_THROW(session.query(wrong), ContractViolation);
}

TEST(ReductionSession, AverageAggregateSessions) {
  const auto t = net::Topology::hypercube(3);
  auto values = test::random_values(t.size(), 17);
  SessionOptions options;
  options.aggregate = core::Aggregate::kAverage;
  options.target_accuracy = 1e-11;
  ReductionSession session(t, scalar_inputs(values), options);
  values[5] += 2.0;
  const auto reply = session.query(scalar_inputs(values));
  double expected = 0.0;
  for (double v : values) expected += v;
  expected /= 8.0;
  EXPECT_NEAR(reply.estimate(4), expected, 1e-9);
}

}  // namespace
}  // namespace pcf::sim
