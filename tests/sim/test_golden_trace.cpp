// Seeded golden-trace regression: the first rounds of PCF on the paper's
// bus-network case study (Section II-B: v_1 = n+1, v_i = 1, unit weights),
// pinned bit for bit. The whole simulation is a pure function of the seed —
// any change to the gossip schedule, the PCF handshake, or the floating-point
// evaluation order shows up here as an exact mismatch long before it is big
// enough to move a convergence sweep.
//
// When a change to the engine or the reducer is INTENDED to alter the
// numerics, regenerate the table below by printing (estimate(0) of node 0,
// estimate(0) of node 7, oracle max error) for the first 12 rounds with this
// exact configuration.
#include <gtest/gtest.h>

#include <array>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf {
namespace {

struct GoldenRow {
  double node0_estimate;
  double node7_estimate;
  double max_error;
};

// PCF (robust variant), bus(8), seed 1, sequential delivery, average.
constexpr std::array<GoldenRow, 12> kGolden{{
    {9, 1, 3.5},
    {4.7894736842105265, 1, 1.3947368421052633},
    {4.0891089108910892, 1, 1.0445544554455446},
    {3.965034965034965, 1, 0.9825174825174825},
    {3.9362435381964387, 1.0084656084656085, 0.96812176909821934},
    {3.9362435381964387, 1.0084656084656085, 0.96812176909821934},
    {3.9362435381964387, 1.0084656084656085, 0.96812176909821934},
    {3.358466812090994, 1.0110902313545485, 0.67923340604549698},
    {3.3153489842446064, 1.0110902313545485, 0.65767449212230322},
    {3.3063958924452179, 1.0121336846550524, 0.65319794622260896},
    {3.3063958924452179, 1.0122534664004381, 0.65319794622260896},
    {3.3063958924452179, 1.0122794696241839, 0.65319794622260896},
}};

TEST(GoldenTrace, PcfOnTheBusCaseStudyIsBitStable) {
  const auto masses = test::bus_case_study_masses(8);
  sim::SyncEngineConfig config;
  config.algorithm = core::Algorithm::kPushCancelFlow;
  config.seed = 1;
  config.invariants.enabled = true;
  sim::SyncEngine engine(net::Topology::bus(8), masses, config);

  ASSERT_DOUBLE_EQ(engine.oracle().target(), 2.0);  // (n+1 + 7·1) / 8
  for (std::size_t round = 0; round < kGolden.size(); ++round) {
    engine.step();
    // Exact binary equality, not near: the trace is deterministic.
    EXPECT_EQ(engine.node(0).estimate(), kGolden[round].node0_estimate) << "round " << round + 1;
    EXPECT_EQ(engine.node(7).estimate(), kGolden[round].node7_estimate) << "round " << round + 1;
    EXPECT_EQ(engine.max_error(), kGolden[round].max_error) << "round " << round + 1;
  }
}

// Correction allreduce, bus(8) (chain tree rooted at node 0), seed 1,
// sequential delivery, average. The early rows show the protocol's transient
// honestly: the root's FIRST published global view is its own input (9), and
// that stale view reaches the far leaf before the corrected one does — the
// periodic absolute resends then overwrite it (error is relative to the
// target 2, hence 3.5 = |9-2|/2 while the leaf still holds the stale view).
constexpr std::array<GoldenRow, 12> kGoldenCorrection{{
    {9, 1, 3.5},
    {3.6666666666666665, 1, 3.5},
    {3.6666666666666665, 1, 3.5},
    {3.6666666666666665, 1, 3.5},
    {3.6666666666666665, 9, 3.5},
    {3.6666666666666665, 9, 3.5},
    {3.6666666666666665, 9, 3.5},
    {2, 9, 3.5},
    {2, 9, 3.5},
    {2, 9, 3.5},
    {2, 9, 3.5},
    {2, 9, 3.5},
}};

TEST(GoldenTrace, CorrectionAllreduceOnTheBusCaseStudyIsBitStable) {
  const auto masses = test::bus_case_study_masses(8);
  sim::SyncEngineConfig config;
  config.algorithm = core::Algorithm::kCorrectionAllreduce;
  config.seed = 1;
  config.invariants.enabled = true;
  sim::SyncEngine engine(net::Topology::bus(8), masses, config);

  for (std::size_t round = 0; round < kGoldenCorrection.size(); ++round) {
    engine.step();
    EXPECT_EQ(engine.node(0).estimate(), kGoldenCorrection[round].node0_estimate)
        << "round " << round + 1;
    EXPECT_EQ(engine.node(7).estimate(), kGoldenCorrection[round].node7_estimate)
        << "round " << round + 1;
    EXPECT_EQ(engine.max_error(), kGoldenCorrection[round].max_error) << "round " << round + 1;
  }
}

// FU/MD hybrid, bus(8), seed 1, sequential delivery, average. The pairwise
// halving is visible immediately: node 0 jumps 9 → 5 the first time it halves
// against a neighbor's reported mass of 1.
constexpr std::array<GoldenRow, 12> kGoldenHybrid{{
    {9, 1, 3.5},
    {5, 1, 1.5},
    {5, 1, 1.5},
    {5, 1, 1.5},
    {5, 1, 1.5},
    {5, 1, 1.5},
    {5, 1, 1.5},
    {3.75, 1, 0.875},
    {3.75, 1, 0.875},
    {3.75, 1, 0.875},
    {3.75, 1, 0.875},
    {3.75, 1, 0.875},
}};

TEST(GoldenTrace, FuMassHybridOnTheBusCaseStudyIsBitStable) {
  const auto masses = test::bus_case_study_masses(8);
  sim::SyncEngineConfig config;
  config.algorithm = core::Algorithm::kFuMassHybrid;
  config.seed = 1;
  config.invariants.enabled = true;
  sim::SyncEngine engine(net::Topology::bus(8), masses, config);

  for (std::size_t round = 0; round < kGoldenHybrid.size(); ++round) {
    engine.step();
    EXPECT_EQ(engine.node(0).estimate(), kGoldenHybrid[round].node0_estimate)
        << "round " << round + 1;
    EXPECT_EQ(engine.node(7).estimate(), kGoldenHybrid[round].node7_estimate)
        << "round " << round + 1;
    EXPECT_EQ(engine.max_error(), kGoldenHybrid[round].max_error) << "round " << round + 1;
  }
}

// The same schedule must be drawn for a different algorithm with the same
// seed (the paper's "exactly the same random seed" comparability device) —
// pin push-flow's first round too, which shares the round-1 schedule.
TEST(GoldenTrace, SameSeedSameFirstRoundScheduleAcrossAlgorithms) {
  const auto masses = test::bus_case_study_masses(8);
  sim::SyncEngineConfig config;
  config.seed = 1;
  config.invariants.enabled = true;

  config.algorithm = core::Algorithm::kPushCancelFlow;
  sim::SyncEngine pcf_engine(net::Topology::bus(8), masses, config);
  config.algorithm = core::Algorithm::kPushFlow;
  sim::SyncEngine pf_engine(net::Topology::bus(8), masses, config);

  pcf_engine.step();
  pf_engine.step();
  // Round 1 of PF on the same schedule is numerically identical to PCF: every
  // edge is still in its first steady phase, where PCF degenerates to PF.
  for (net::NodeId i = 0; i < 8; ++i) {
    EXPECT_EQ(pf_engine.node(i).estimate(), pcf_engine.node(i).estimate()) << "node " << i;
  }
}

}  // namespace
}  // namespace pcf
