#include "sim/reduce.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;
using core::Values;

TEST(Reduce, ScalarAverageReachesTarget) {
  const auto t = net::Topology::hypercube(4);
  const std::vector<double> values = test::random_values(t.size(), 1);
  ReduceOptions opt;
  opt.target_accuracy = 1e-12;
  opt.seed = 7;
  const auto result = reduce(t, values, opt);
  EXPECT_TRUE(result.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  expected /= static_cast<double>(values.size());
  EXPECT_NEAR(result.target[0], expected, 1e-12);
  for (net::NodeId i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(result.estimate(i), expected, 1e-11 * std::abs(expected));
  }
}

TEST(Reduce, ScalarSumReachesTarget) {
  const auto t = net::Topology::hypercube(4);
  const std::vector<double> values = test::random_values(t.size(), 2);
  ReduceOptions opt;
  opt.aggregate = Aggregate::kSum;
  opt.target_accuracy = 1e-12;
  const auto result = reduce(t, values, opt);
  EXPECT_TRUE(result.reached_target);
  double expected = 0.0;
  for (double v : values) expected += v;
  EXPECT_NEAR(result.estimate(3), expected, 1e-10 * std::abs(expected));
}

TEST(Reduce, VectorPayloadReducesAllComponents) {
  const auto t = net::Topology::hypercube(3);
  std::vector<Values> values(t.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = Values{static_cast<double>(i), static_cast<double>(2 * i), 1.0};
  }
  ReduceOptions opt;
  opt.aggregate = Aggregate::kSum;
  opt.target_accuracy = 1e-12;
  const auto result = reduce_vectors(t, values, opt);
  EXPECT_TRUE(result.reached_target);
  EXPECT_NEAR(result.estimate(0, 0), 28.0, 1e-9);  // Σ i for i<8
  EXPECT_NEAR(result.estimate(0, 1), 56.0, 1e-9);
  EXPECT_NEAR(result.estimate(0, 2), 8.0, 1e-9);
}

TEST(Reduce, RespectsMaxRounds) {
  const auto t = net::Topology::ring(16);
  const std::vector<double> values = test::random_values(t.size(), 3);
  ReduceOptions opt;
  opt.algorithm = Algorithm::kPushSum;
  opt.target_accuracy = 1e-30;  // unreachable
  opt.max_rounds = 40;
  const auto result = reduce(t, values, opt);
  EXPECT_FALSE(result.reached_target);
  EXPECT_EQ(result.rounds, 40u);
}

TEST(Reduce, TraceRecordsRequestedCadence) {
  const auto t = net::Topology::hypercube(3);
  const std::vector<double> values = test::random_values(t.size(), 4);
  ReduceOptions opt;
  opt.trace_every = 10;
  opt.max_rounds = 100;
  opt.target_accuracy = 1e-30;
  const auto result = reduce(t, values, opt);
  EXPECT_EQ(result.trace.points().size(), 10u);
  EXPECT_EQ(result.trace.points()[0].time, 10.0);
  EXPECT_EQ(result.trace.points()[9].time, 100.0);
}

TEST(Reduce, CrashedNodeGetsNaNEstimates) {
  const auto t = net::Topology::hypercube(3);
  const std::vector<double> values = test::random_values(t.size(), 5);
  ReduceOptions opt;
  opt.faults.node_crashes.push_back({10.0, 2});
  opt.max_rounds = 300;
  opt.target_accuracy = 1e-11;
  const auto result = reduce(t, values, opt);
  EXPECT_TRUE(std::isnan(result.estimate(2)));
  EXPECT_FALSE(std::isnan(result.estimate(0)));
}

TEST(Reduce, RejectsWrongValueCount) {
  const auto t = net::Topology::ring(4);
  const std::vector<double> values(3, 1.0);
  EXPECT_THROW(reduce(t, values, {}), ContractViolation);
}

TEST(MassesFromValues, WeightLayouts) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const auto avg = masses_from_values(values, Aggregate::kAverage);
  const auto sum = masses_from_values(values, Aggregate::kSum);
  EXPECT_EQ(avg[2].w, 1.0);
  EXPECT_EQ(sum[0].w, 1.0);
  EXPECT_EQ(sum[1].w, 0.0);
  EXPECT_EQ(sum[2].w, 0.0);
}

TEST(ReduceWeighted, ConvergesToWeightedMean) {
  const auto t = net::Topology::hypercube(4);
  const std::vector<double> values = test::random_values(t.size(), 21);
  std::vector<double> weights(t.size());
  Rng rng(22);
  for (auto& w : weights) w = rng.uniform(0.5, 4.0);
  ReduceOptions opt;
  opt.target_accuracy = 1e-12;
  const auto result = reduce_weighted(t, values, weights, opt);
  EXPECT_TRUE(result.reached_target);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    num += weights[i] * values[i];
    den += weights[i];
  }
  for (net::NodeId i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(result.estimate(i), num / den, 1e-10);
  }
}

TEST(ReduceWeighted, UniformWeightsEqualPlainAverage) {
  const auto t = net::Topology::ring(8);
  const std::vector<double> values = test::random_values(t.size(), 23);
  const std::vector<double> weights(t.size(), 2.5);
  ReduceOptions opt;
  opt.target_accuracy = 1e-11;
  opt.max_rounds = 5000;
  const auto weighted = reduce_weighted(t, values, weights, opt);
  const auto plain = reduce(t, values, opt);
  EXPECT_NEAR(weighted.target[0], plain.target[0], 1e-12);
}

TEST(ReduceWeighted, RejectsNonPositiveWeights) {
  const auto t = net::Topology::ring(4);
  const std::vector<double> values(4, 1.0);
  const std::vector<double> weights{1.0, 0.0, 1.0, 1.0};
  EXPECT_THROW(reduce_weighted(t, values, weights, {}), ContractViolation);
}

TEST(Reduce, BandwidthAccountingMatchesWireFormat) {
  const auto t = net::Topology::ring(6);
  const std::vector<double> values = test::random_values(t.size(), 25);
  for (const auto& [alg, masses_on_wire] :
       {std::pair{Algorithm::kPushSum, std::size_t{1}},
        std::pair{Algorithm::kPushFlow, std::size_t{1}},
        std::pair{Algorithm::kPushCancelFlow, std::size_t{2}},
        std::pair{Algorithm::kFlowUpdating, std::size_t{2}},
        std::pair{Algorithm::kCorrectionAllreduce, std::size_t{2}},
        std::pair{Algorithm::kFuMassHybrid, std::size_t{2}}}) {
    ReduceOptions opt;
    opt.algorithm = alg;
    opt.max_rounds = 50;
    opt.target_accuracy = 1e-30;
    const auto result = reduce(t, values, opt);
    // 6 nodes x rounds x wire masses x (1 value + 1 weight) doubles. The
    // gossip algorithms run out the full 50 rounds; correction allreduce hits
    // the unreachable-looking target exactly (error is bitwise 0 once the
    // global view propagates) and stops early, so use the actual round count.
    EXPECT_EQ(result.stats.doubles_sent, 6u * result.rounds * masses_on_wire * 2u)
        << core::to_string(alg);
    if (alg != Algorithm::kCorrectionAllreduce) {
      EXPECT_EQ(result.rounds, 50u) << core::to_string(alg);
    }
  }
}

TEST(Reduce, AllAlgorithmsAgreeOnAverage) {
  const auto t = net::Topology::hypercube(4);
  const std::vector<double> values = test::random_values(t.size(), 6);
  for (const auto alg : {Algorithm::kPushSum, Algorithm::kPushFlow,
                         Algorithm::kPushCancelFlow, Algorithm::kFlowUpdating,
                         Algorithm::kCorrectionAllreduce, Algorithm::kFuMassHybrid}) {
    ReduceOptions opt;
    opt.algorithm = alg;
    opt.target_accuracy = 1e-11;
    opt.max_rounds = 5000;
    const auto result = reduce(t, values, opt);
    EXPECT_TRUE(result.reached_target) << core::to_string(alg);
  }
}

}  // namespace
}  // namespace pcf::sim
