// Regression tests for the recovery-and-churn fault layer: link heals, node
// rejoins, failure-detector false positives, probabilistic churn, and
// adversarial delivery (duplication + reordering) on both engines.
//
// Accuracy expectations are per algorithm:
//  * PF / FU / PS with symmetric exclusions and nothing in flight (sync
//    sequential delivery) conserve mass exactly — after a heal they
//    reconverge to the ORIGINAL aggregate at machine precision.
//  * PCF's cancellation handshake has a two-generals window: excluding an
//    edge while the initiator still holds a pending-absorbed flow costs up to
//    one in-flight flow of mass (seed-dependent). Tests asserting machine
//    precision for PCF use crash+rejoin plans (the rejoin retarget absorbs
//    the bias) or seeds verified to avoid the window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/engine_async.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;
using test::make_engine;

AsyncEngine make_async(const net::Topology& t, Algorithm alg, Aggregate agg,
                       std::uint64_t seed = 1, FaultPlan faults = {}) {
  const auto values = test::random_values(t.size(), seed ^ 0xabcdef);
  auto masses = masses_from_values(values, agg);
  AsyncEngineConfig cfg;
  cfg.algorithm = alg;
  cfg.faults = std::move(faults);
  cfg.seed = seed;
  cfg.invariants.enabled = true;
  return AsyncEngine(t, masses, cfg);
}

double spread_of(const std::vector<double>& est) {
  const auto [lo, hi] = std::minmax_element(est.begin(), est.end());
  return *hi - *lo;
}

// ---------------------------------------------------------------- sync engine

TEST(SyncRecovery, HealReconvergesExactlyForSymmetricAlgorithms) {
  // Fail a ring link, heal it later: PF / FU / PS lose no mass (sequential
  // delivery, symmetric exclusion), so the original aggregate returns at
  // machine precision once the topology is whole again.
  for (const auto algorithm : {Algorithm::kPushFlow, Algorithm::kFlowUpdating,
                               Algorithm::kPushSum, Algorithm::kFuMassHybrid}) {
    const auto t = net::Topology::ring(8);
    FaultPlan faults;
    faults.link_failures.push_back({40.0, 0, 1});
    faults.link_heals.push_back({120.0, 0, 1});
    auto engine = make_engine(t, algorithm, Aggregate::kAverage, 1, faults);
    engine.run(60);
    EXPECT_EQ(engine.node(0).live_degree(), 1u) << core::to_string(algorithm);
    engine.run(70);  // past the heal: the link is re-admitted
    EXPECT_EQ(engine.node(0).live_degree(), 2u) << core::to_string(algorithm);
    const auto stats = engine.run_until_error(1e-12, 4000);
    EXPECT_TRUE(stats.reached_target) << core::to_string(algorithm);
    const auto exposure = engine.fault_exposure();
    EXPECT_EQ(exposure.link_failures, 1u);
    EXPECT_EQ(exposure.link_heals, 1u);
  }
}

TEST(SyncRecovery, PcfCrashAndRejoinReconvergesToRetargetedOracle) {
  // The crashed node's mass leaves, then re-enters fresh at the rejoin; the
  // oracle retargets both times. The rejoin snapshot absorbs any exclusion
  // bias, so PCF reaches machine precision against the final target at ANY
  // seed — this is the recovery path the paper's Section IV machinery needs.
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.node_crashes.push_back({40.0, 3});
  faults.node_rejoins.push_back({120.0, 3});
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 1, faults);
  engine.run(60);
  EXPECT_FALSE(engine.node_alive(3));
  engine.run(70);
  EXPECT_TRUE(engine.node_alive(3));
  const auto stats = engine.run_until_error(1e-12, 4000);
  EXPECT_TRUE(stats.reached_target);
  const auto exposure = engine.fault_exposure();
  EXPECT_EQ(exposure.crashes, 1u);
  EXPECT_EQ(exposure.rejoins, 1u);
}

TEST(SyncRecovery, PcfHealReconvergesWhenHandshakeWindowAvoided) {
  // Seed verified to exclude the edge with no pending-absorbed flow on it
  // (two-generals window not hit): PCF heals back to machine precision. A
  // window-hitting seed instead carries a ~1e-4 one-flow bias — that case is
  // covered by the relaxed mass_fault_tol in the invariant layer.
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.link_failures.push_back({40.0, 0, 1});
  faults.link_heals.push_back({120.0, 0, 1});
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 2, faults);
  const auto stats = engine.run_until_error(1e-12, 4000);
  EXPECT_TRUE(stats.reached_target);
}

TEST(SyncRecovery, AllAlgorithmsReconvergeAfterCrashAndRejoin) {
  for (const auto algorithm : {Algorithm::kPushSum, Algorithm::kPushFlow,
                               Algorithm::kFlowUpdating, Algorithm::kFuMassHybrid}) {
    const auto t = net::Topology::hypercube(3);
    FaultPlan faults;
    faults.node_crashes.push_back({30.0, 5});
    faults.node_rejoins.push_back({90.0, 5});
    auto engine = make_engine(t, algorithm, Aggregate::kAverage, 3, faults);
    const auto stats = engine.run_until_error(1e-10, 4000);
    EXPECT_TRUE(stats.reached_target) << core::to_string(algorithm);
  }
}

TEST(SyncRecovery, FalseDetectExcludesThenReadmitsExactly) {
  // Detector false positive: the link is excluded while the transport stays
  // up, then "detected up" clear_delay later. PF's exclusion is symmetric and
  // nothing is in flight, so the episode is mass-neutral — the original
  // aggregate returns at machine precision.
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.false_detects.push_back({40.0, 0, 1, 30.0});
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 1, faults);
  engine.run(50);
  EXPECT_EQ(engine.node(0).live_degree(), 1u);  // wrongly excluded
  EXPECT_EQ(engine.node(1).live_degree(), 1u);
  engine.run(30);  // past round 70 = detect(40) + clear(30)
  EXPECT_EQ(engine.node(0).live_degree(), 2u);  // detected up again
  const auto stats = engine.run_until_error(1e-12, 4000);
  EXPECT_TRUE(stats.reached_target);
  EXPECT_EQ(engine.fault_exposure().false_detects, 1u);
  EXPECT_EQ(engine.fault_exposure().false_clears, 1u);
}

TEST(SyncRecovery, PcfFalseDetectClearPassesHandshakeChecker) {
  // Regression: the CLEAR of a false positive resets the PCF cycle counters
  // via on_link_up, exactly like the fire does — the handshake checker must
  // resynchronize at BOTH edges of the episode (FaultExposure.false_clears),
  // not just at the fire, or it reports "cycle counter went backwards".
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.false_detects.push_back({40.0, 0, 1, 30.0});
  auto engine =
      make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 1, faults);
  engine.run(200);  // would throw at the clear without the resync
  const auto exposure = engine.fault_exposure();
  EXPECT_EQ(exposure.false_detects, 1u);
  EXPECT_EQ(exposure.false_clears, 1u);
}

TEST(SyncRecovery, AdversarialDeliverySelfHealsUnderArmedCheckers) {
  // 150 rounds of duplication + reordering with the invariant monitor armed
  // (ctest also exports PCF_CHECK_INVARIANTS=1): no checker may fire. Flow
  // mirrors are idempotent and absolute, so once the knobs quiet down the
  // algorithms reconverge to the original aggregate.
  for (const auto algorithm : {Algorithm::kPushFlow, Algorithm::kPushCancelFlow,
                               Algorithm::kFlowUpdating, Algorithm::kFuMassHybrid}) {
    const auto t = net::Topology::ring(8);
    FaultPlan faults;
    faults.duplicate_prob = 0.2;
    faults.reorder_prob = 0.2;
    auto engine = make_engine(t, algorithm, Aggregate::kAverage, 7, faults);
    engine.run(150);
    EXPECT_GT(engine.stats().messages_duplicated, 0u) << core::to_string(algorithm);
    engine.mutable_faults().duplicate_prob = 0.0;
    engine.mutable_faults().reorder_prob = 0.0;
    const auto stats = engine.run_until_error(1e-10, 4000);
    EXPECT_TRUE(stats.reached_target) << core::to_string(algorithm);
  }
}

TEST(SyncRecovery, PushSumDuplicationIsToleratedByCheckers) {
  // Push-sum shares are NOT idempotent — duplicates add mass, which is the
  // asymmetry the fault model exists to expose. The conservation checkers
  // must suspend themselves (FaultExposure.messages_duplicated) rather than
  // fire on the expected violation.
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.duplicate_prob = 0.2;
  auto engine = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 7, faults);
  engine.run(200);  // would throw if a checker fired
  EXPECT_GT(engine.fault_exposure().messages_duplicated, 0u);
}

TEST(SyncRecovery, ChurnWithHealsReconvergesAfterQuieting) {
  // Probabilistic fail/heal cycling, then quiet the churn, heal the stragglers
  // and verify the original aggregate returns (PF: exactly conservative).
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.churn_fail_prob = 0.01;
  faults.churn_heal_rate = 0.1;
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5, faults);
  engine.run(200);
  const auto exposure = engine.fault_exposure();
  EXPECT_GE(exposure.link_failures, 1u);  // churn did something (seed-pinned)
  EXPECT_GE(exposure.link_heals, 1u);
  engine.mutable_faults().churn_fail_prob = 0.0;
  for (const auto& [a, b] : engine.dead_links()) engine.heal_link_now(a, b);
  const auto stats = engine.run_until_error(1e-10, 6000);
  EXPECT_TRUE(stats.reached_target);
}

TEST(SyncRecovery, HealLinkNowIsImmediateAndIdempotent) {
  const auto t = net::Topology::ring(6);
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 1);
  engine.run(20);
  engine.fail_link_now(0, 1);
  EXPECT_EQ(engine.node(0).live_degree(), 1u);
  engine.heal_link_now(0, 1);
  EXPECT_EQ(engine.node(0).live_degree(), 2u);
  engine.heal_link_now(0, 1);  // healing a live link is a no-op
  EXPECT_EQ(engine.node(0).live_degree(), 2u);
  const auto stats = engine.run_until_error(1e-12, 4000);
  EXPECT_TRUE(stats.reached_target);
}

TEST(SyncRecovery, RecoveryPlansAreDeterministicPerSeed) {
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.churn_fail_prob = 0.02;
  faults.churn_heal_rate = 0.1;
  faults.duplicate_prob = 0.1;
  faults.reorder_prob = 0.1;
  auto a = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 11, faults);
  auto b = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 11, faults);
  a.run(150);
  b.run(150);
  EXPECT_EQ(a.estimates(), b.estimates());  // bit-identical
  EXPECT_EQ(a.fault_exposure().link_failures, b.fault_exposure().link_failures);
  EXPECT_EQ(a.fault_exposure().link_heals, b.fault_exposure().link_heals);
  EXPECT_EQ(a.stats().messages_duplicated, b.stats().messages_duplicated);
}

// ----------------------------------------------- correction-based allreduce
//
// The tree algorithm's recovery story is structural, not mass-based: faults
// fragment or rewire the spanning tree, and a correction round (re-attach to
// the (depth, id)-minimal live neighbor of strictly smaller static depth)
// restores exactness wherever the survivors still span.

TEST(SyncRecovery, CorrectionRoundReattachesChildAfterParentCrash) {
  // 4x4 grid, BFS tree from node 0: node 9 attaches to node 5, but also
  // borders node 8 at the same depth. Crashing 5 mid-reduction forces the
  // correction round at 9 (re-attach to 8); the survivors' tree still spans,
  // so the retargeted aggregate is reached at machine precision.
  const auto t = net::Topology::grid2d(4, 4);
  FaultPlan faults;
  faults.node_crashes.push_back({30.0, 5});
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 3, faults);
  engine.run(40);
  EXPECT_FALSE(engine.node_alive(5));
  const auto stats = engine.run_until_error(1e-13, 1000);
  EXPECT_TRUE(stats.reached_target);
  EXPECT_EQ(engine.fault_exposure().crashes, 1u);
}

TEST(SyncRecovery, CorrectionRejoinRestoresStaticAttachment) {
  // After the crashed parent rejoins, the (depth, id)-minimal rule moves the
  // re-attached child back to its static parent and the FULL aggregate
  // (oracle retargeted at the rejoin) is exact again.
  const auto t = net::Topology::grid2d(4, 4);
  FaultPlan faults;
  faults.node_crashes.push_back({30.0, 5});
  faults.node_rejoins.push_back({90.0, 5});
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 3, faults);
  engine.run(100);
  EXPECT_TRUE(engine.node_alive(5));
  const auto stats = engine.run_until_error(1e-13, 1000);
  EXPECT_TRUE(stats.reached_target);
  EXPECT_EQ(engine.fault_exposure().rejoins, 1u);
}

TEST(SyncRecovery, CorrectionFragmentsOnChainCutThenHealsExactly) {
  // The graceful-degradation cliff, pinned: cutting the ring's 0-1 link
  // splits the chain tree into two fragments whose roots honestly report
  // DIFFERENT fragment aggregates (the estimates disagree), and the heal
  // reunites the tree and restores the global aggregate exactly.
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.link_failures.push_back({40.0, 0, 1});
  faults.link_heals.push_back({120.0, 0, 1});
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 1, faults);
  engine.run(60);
  EXPECT_GT(engine.max_error(), 1e-6);  // fragmented: no global agreement
  engine.run(70);                       // past the heal
  const auto stats = engine.run_until_error(1e-13, 1000);
  EXPECT_TRUE(stats.reached_target);
  EXPECT_EQ(engine.fault_exposure().link_heals, 1u);
}

TEST(SyncRecovery, CorrectionFalseDetectRewiresAndClearsExactly) {
  // A detector false positive on a tree edge with a spare upward neighbor:
  // node 9 temporarily hangs off node 8, the tree never stops spanning, and
  // exactness holds through the episode and after the clear.
  //
  // Built by hand rather than via make_engine: the tree protocol's error
  // response to a topology event is DELAYED by the re-propagation latency
  // (the excursion lands rounds after the event reset the envelope's
  // best-seen), so the default estimate-envelope checker misreads the
  // transient as a convergence fall-back. Widen its floor past the O(0.1)
  // transient; every other checker stays armed.
  const auto t = net::Topology::grid2d(4, 4);
  FaultPlan faults;
  faults.false_detects.push_back({40.0, 5, 9, 160.0});
  const auto values = test::random_values(t.size(), 1 ^ 0xabcdef);
  std::vector<core::Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], core::initial_weight(Aggregate::kAverage, i)));
  }
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kCorrectionAllreduce;
  cfg.faults = faults;
  cfg.seed = 1;
  cfg.invariants.enabled = true;
  cfg.invariants.envelope_floor = 0.5;
  sim::SyncEngine engine(t, masses, cfg);
  engine.run(160);  // deep inside the episode, well past the re-propagation
  EXPECT_LT(engine.max_error(), 1e-13) << "re-attached tree must stay exact";
  engine.run(60);  // past the clear at round 200
  const auto stats = engine.run_until_error(1e-13, 1000);
  EXPECT_TRUE(stats.reached_target);
  EXPECT_EQ(engine.fault_exposure().false_detects, 1u);
  EXPECT_EQ(engine.fault_exposure().false_clears, 1u);
}

// --------------------------------------------------------------- async engine

TEST(AsyncRecovery, LateFailThenHealKeepsFullAccuracy) {
  // After convergence the flows on the cut link are ratio-aligned, so the
  // outage (and the in-flight packets it kills) is estimate-neutral; the heal
  // re-admits the neighbor and full accuracy returns.
  const auto t = net::Topology::hypercube(4);
  FaultPlan faults;
  faults.link_failures.push_back({400.0, 0, 1});
  faults.link_heals.push_back({450.0, 0, 1});
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7, faults);
  engine.run_until(460.0);
  const auto exposure = engine.fault_exposure();
  EXPECT_EQ(exposure.link_failures, 1u);
  EXPECT_EQ(exposure.link_heals, 1u);
  EXPECT_TRUE(engine.run_until_error(1e-11, 2500.0));
}

TEST(AsyncRecovery, CrashThenRejoinReachesRetargetedConsensus) {
  // The rejoining node restarts from its initial mass with a fresh Poisson
  // clock (a crash orphans the old tick chain — the rejoin must restart it,
  // or the node would sit silent and consensus would never include it).
  const auto t = net::Topology::hypercube(3);
  FaultPlan faults;
  faults.node_crashes.push_back({20.0, 2});
  faults.node_rejoins.push_back({60.0, 2});
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7, faults);
  engine.run_until(25.0);
  EXPECT_FALSE(engine.node_alive(2));
  engine.run_until(65.0);
  EXPECT_TRUE(engine.node_alive(2));
  engine.run_until(2000.0);
  EXPECT_LT(spread_of(engine.estimates()), 1e-10);  // all 8 nodes, rejoiner too
  EXPECT_LT(engine.max_error(), 0.05);  // within the in-flight snapshot bound
  const auto exposure = engine.fault_exposure();
  EXPECT_EQ(exposure.crashes, 1u);
  EXPECT_EQ(exposure.rejoins, 1u);
}

TEST(AsyncRecovery, FalseDetectClearsAndReconverges) {
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.false_detects.push_back({5.0, 0, 1, 10.0});
  auto engine = make_async(t, Algorithm::kPushFlow, Aggregate::kAverage, 3, faults);
  engine.run_until(20.0);
  EXPECT_EQ(engine.fault_exposure().false_detects, 1u);
  engine.run_until(2000.0);
  EXPECT_LT(spread_of(engine.estimates()), 1e-10);
  EXPECT_LT(engine.max_error(), 0.05);
}

TEST(AsyncRecovery, ChurnCyclesLinksAndStaysDeterministic) {
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.churn_fail_prob = 0.02;  // per link per time unit
  faults.churn_heal_rate = 0.5;   // mean 2-unit outages
  auto a = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 13, faults);
  auto b = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 13, faults);
  a.run_until(300.0);
  b.run_until(300.0);
  EXPECT_EQ(a.estimates(), b.estimates());  // churn chains are seed-determined
  const auto exposure = a.fault_exposure();
  EXPECT_GE(exposure.link_failures, 1u);
  EXPECT_GE(exposure.link_heals, 1u);
  for (double e : a.estimates()) EXPECT_TRUE(std::isfinite(e));
}

TEST(AsyncRecovery, DuplicationAndReorderingSelfHealUnderArmedCheckers) {
  const auto t = net::Topology::ring(8);
  FaultPlan faults;
  faults.duplicate_prob = 0.15;
  faults.reorder_prob = 0.15;
  faults.reorder_jitter = 0.5;
  auto engine = make_async(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 9, faults);
  engine.run_until(150.0);
  EXPECT_GT(engine.fault_exposure().messages_duplicated, 0u);
  engine.mutable_faults().duplicate_prob = 0.0;
  engine.mutable_faults().reorder_prob = 0.0;
  EXPECT_TRUE(engine.run_until_error(1e-10, 2500.0));
}

}  // namespace
}  // namespace pcf::sim
