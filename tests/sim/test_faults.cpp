#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pcf::sim {
namespace {

core::Packet sample_packet() {
  core::Packet p;
  p.a = core::Mass(core::Values{1.0, 2.0}, 3.0);
  p.b = core::Mass(core::Values{4.0, 5.0}, 6.0);
  return p;
}

TEST(FlipRandomBit, ChangesExactlyOneDouble) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto original = sample_packet();
    auto flipped = sample_packet();
    flip_random_bit(flipped, rng, /*any_bit=*/false);
    int diffs = 0;
    for (std::size_t k = 0; k < 2; ++k) {
      if (flipped.a.s[k] != original.a.s[k]) ++diffs;
      if (flipped.b.s[k] != original.b.s[k]) ++diffs;
    }
    if (flipped.a.w != original.a.w) ++diffs;
    if (flipped.b.w != original.b.w) ++diffs;
    EXPECT_EQ(diffs, 1) << "trial " << trial;
  }
}

TEST(FlipRandomBit, MantissaSignOnlyStaysFinite) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/false);
    for (double v : p.a.s) EXPECT_TRUE(std::isfinite(v));
    for (double v : p.b.s) EXPECT_TRUE(std::isfinite(v));
    EXPECT_TRUE(std::isfinite(p.a.w));
    EXPECT_TRUE(std::isfinite(p.b.w));
  }
}

TEST(FlipRandomBit, SignFlipsDoOccur) {
  Rng rng(3);
  bool saw_sign_flip = false;
  for (int trial = 0; trial < 2000 && !saw_sign_flip; ++trial) {
    auto p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/false);
    saw_sign_flip = p.a.s[0] == -1.0 || p.a.s[1] == -2.0 || p.a.w == -3.0 ||
                    p.b.s[0] == -4.0 || p.b.s[1] == -5.0 || p.b.w == -6.0;
  }
  EXPECT_TRUE(saw_sign_flip);
}

TEST(FlipRandomBit, AnyBitCanProduceHugeValues) {
  Rng rng(4);
  double worst = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/true);
    for (double v : p.a.s) {
      if (std::isfinite(v)) worst = std::max(worst, std::fabs(v));
    }
  }
  EXPECT_GT(worst, 1e30);  // exponent-bit flips reached
}

TEST(FlipRandomBit, IsDeterministicGivenRngState) {
  Rng a(7), b(7);
  auto pa = sample_packet();
  auto pb = sample_packet();
  flip_random_bit(pa, a, false);
  flip_random_bit(pb, b, false);
  EXPECT_EQ(pa.a, pb.a);
  EXPECT_EQ(pa.b, pb.b);
}

TEST(FaultPlan, EmptyDetection) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.message_loss_prob = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.link_failures.push_back({1.0, 0, 1});
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.node_crashes.push_back({1.0, 0});
  EXPECT_FALSE(plan.empty());
}

}  // namespace
}  // namespace pcf::sim
