#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <utility>

namespace pcf::sim {
namespace {

core::Packet sample_packet() {
  core::Packet p;
  p.a = core::Mass(core::Values{1.0, 2.0}, 3.0);
  p.b = core::Mass(core::Values{4.0, 5.0}, 6.0);
  return p;
}

TEST(FlipRandomBit, ChangesExactlyOneDouble) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto original = sample_packet();
    auto flipped = sample_packet();
    flip_random_bit(flipped, rng, /*any_bit=*/false);
    int diffs = 0;
    for (std::size_t k = 0; k < 2; ++k) {
      if (flipped.a.s[k] != original.a.s[k]) ++diffs;
      if (flipped.b.s[k] != original.b.s[k]) ++diffs;
    }
    if (flipped.a.w != original.a.w) ++diffs;
    if (flipped.b.w != original.b.w) ++diffs;
    EXPECT_EQ(diffs, 1) << "trial " << trial;
  }
}

TEST(FlipRandomBit, MantissaSignOnlyStaysFinite) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/false);
    for (double v : p.a.s) EXPECT_TRUE(std::isfinite(v));
    for (double v : p.b.s) EXPECT_TRUE(std::isfinite(v));
    EXPECT_TRUE(std::isfinite(p.a.w));
    EXPECT_TRUE(std::isfinite(p.b.w));
  }
}

TEST(FlipRandomBit, SignFlipsDoOccur) {
  Rng rng(3);
  bool saw_sign_flip = false;
  for (int trial = 0; trial < 2000 && !saw_sign_flip; ++trial) {
    auto p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/false);
    saw_sign_flip = p.a.s[0] == -1.0 || p.a.s[1] == -2.0 || p.a.w == -3.0 ||
                    p.b.s[0] == -4.0 || p.b.s[1] == -5.0 || p.b.w == -6.0;
  }
  EXPECT_TRUE(saw_sign_flip);
}

TEST(FlipRandomBit, AnyBitCanProduceHugeValues) {
  Rng rng(4);
  double worst = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/true);
    for (double v : p.a.s) {
      if (std::isfinite(v)) worst = std::max(worst, std::fabs(v));
    }
  }
  EXPECT_GT(worst, 1e30);  // exponent-bit flips reached
}

TEST(FlipRandomBit, IsDeterministicGivenRngState) {
  Rng a(7), b(7);
  auto pa = sample_packet();
  auto pb = sample_packet();
  flip_random_bit(pa, a, false);
  flip_random_bit(pb, b, false);
  EXPECT_EQ(pa.a, pb.a);
  EXPECT_EQ(pa.b, pb.b);
}

TEST(FlipRandomBit, SlotAndBitDistributionIsUniformWithinBounds) {
  // The corruption model promises a uniformly random victim double (all six
  // slots of a dim-2 packet) and, in default mode, bits confined to the
  // mantissa (0..51) plus the sign (63) with uniform weight 1/53 each.
  Rng rng(99);
  constexpr int kTrials = 6000;
  std::array<int, 6> slot_hits{};
  std::array<int, 64> bit_hits{};
  for (int trial = 0; trial < kTrials; ++trial) {
    core::Packet clean = sample_packet();
    core::Packet p = sample_packet();
    flip_random_bit(p, rng, /*any_bit=*/false);
    const std::array<std::pair<double, double>, 6> pairs{{
        {clean.a.s[0], p.a.s[0]},
        {clean.a.s[1], p.a.s[1]},
        {clean.a.w, p.a.w},
        {clean.b.s[0], p.b.s[0]},
        {clean.b.s[1], p.b.s[1]},
        {clean.b.w, p.b.w},
    }};
    for (std::size_t slot = 0; slot < pairs.size(); ++slot) {
      std::uint64_t before = 0, after = 0;
      std::memcpy(&before, &pairs[slot].first, sizeof before);
      std::memcpy(&after, &pairs[slot].second, sizeof after);
      const std::uint64_t diff = before ^ after;
      if (diff == 0) continue;
      ++slot_hits[slot];
      ASSERT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
      int bit = 0;
      while (((diff >> bit) & 1u) == 0) ++bit;
      ASSERT_TRUE(bit <= 51 || bit == 63) << "exponent bit " << bit << " in default mode";
      ++bit_hits[static_cast<std::size_t>(bit)];
    }
  }
  // Each slot expects kTrials/6 = 1000 hits; allow a wide +-35% band (the
  // binomial sigma is ~29, so this is > 10 sigma — deterministic seed, no
  // flakes, still catches gross bias or a dead slot).
  for (std::size_t slot = 0; slot < slot_hits.size(); ++slot) {
    EXPECT_GT(slot_hits[slot], 650) << "slot " << slot;
    EXPECT_LT(slot_hits[slot], 1350) << "slot " << slot;
  }
  // Each of the 53 eligible bits expects kTrials/53 ~ 113 hits.
  int eligible_bits_hit = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (bit <= 51 || bit == 63) {
      if (bit_hits[static_cast<std::size_t>(bit)] > 0) ++eligible_bits_hit;
      EXPECT_LT(bit_hits[static_cast<std::size_t>(bit)], 250) << "bit " << bit;
    } else {
      EXPECT_EQ(bit_hits[static_cast<std::size_t>(bit)], 0) << "bit " << bit;
    }
  }
  EXPECT_GE(eligible_bits_hit, 50);  // near-complete coverage of the 53 bits
}

TEST(FaultPlan, EmptyDetection) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.message_loss_prob = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.link_failures.push_back({1.0, 0, 1});
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.node_crashes.push_back({1.0, 0});
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, EmptyDetectionCoversRecoveryAndDeliveryKnobs) {
  FaultPlan plan;
  plan.duplicate_prob = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.reorder_prob = 0.1;
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.churn_fail_prob = 0.01;
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.link_heals.push_back({5.0, 0, 1});
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.node_rejoins.push_back({5.0, 2});
  EXPECT_FALSE(plan.empty());
  plan = {};
  plan.false_detects.push_back({5.0, 0, 1, 2.0});
  EXPECT_FALSE(plan.empty());
  // Pure tuning knobs with no faults attached do not make the plan non-empty.
  plan = {};
  plan.detection_delay = 3.0;
  plan.reorder_jitter = 1.0;
  plan.churn_heal_rate = 0.5;
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, LatestEventTimeSpansAllListsAndClearDelays) {
  FaultPlan plan;
  EXPECT_EQ(plan.latest_event_time(), 0.0);
  plan.link_failures.push_back({40.0, 0, 1});
  plan.node_crashes.push_back({55.0, 2});
  plan.data_updates.push_back({60.0, 3, {}});
  plan.link_heals.push_back({120.0, 0, 1});
  plan.node_rejoins.push_back({130.0, 2});
  EXPECT_EQ(plan.latest_event_time(), 130.0);
  // A false detect extends to its clear time.
  plan.false_detects.push_back({125.0, 0, 1, 30.0});
  EXPECT_EQ(plan.latest_event_time(), 155.0);
  // Churn is unscheduled and contributes nothing.
  plan.churn_fail_prob = 0.5;
  EXPECT_EQ(plan.latest_event_time(), 155.0);
}

TEST(FaultPlan, FieldCountIsPinned) {
  // Structured bindings require naming EVERY field: this stops compiling the
  // moment FaultPlan grows or shrinks. If you are here because of a compile
  // error, first thread the new field through every consumer listed in the
  // NOTE above the struct in sim/faults.hpp, then extend this binding.
  FaultPlan plan;
  const auto& [message_loss_prob, bit_flip_prob, bit_flip_any_bit, state_flip_prob,
               detection_delay, duplicate_prob, reorder_prob, reorder_jitter, churn_fail_prob,
               churn_heal_rate, link_failures, node_crashes, data_updates, link_heals,
               node_rejoins, false_detects] = plan;
  EXPECT_EQ(message_loss_prob, 0.0);
  EXPECT_EQ(bit_flip_prob, 0.0);
  EXPECT_FALSE(bit_flip_any_bit);
  EXPECT_EQ(state_flip_prob, 0.0);
  EXPECT_EQ(detection_delay, 0.0);
  EXPECT_EQ(duplicate_prob, 0.0);
  EXPECT_EQ(reorder_prob, 0.0);
  EXPECT_EQ(reorder_jitter, 0.5);
  EXPECT_EQ(churn_fail_prob, 0.0);
  EXPECT_EQ(churn_heal_rate, 0.0);
  EXPECT_TRUE(link_failures.empty());
  EXPECT_TRUE(node_crashes.empty());
  EXPECT_TRUE(data_updates.empty());
  EXPECT_TRUE(link_heals.empty());
  EXPECT_TRUE(node_rejoins.empty());
  EXPECT_TRUE(false_detects.empty());
}

}  // namespace
}  // namespace pcf::sim
