// Memory soft errors: bits flip in STORED flow variables (as opposed to the
// in-transit packet corruption elsewhere in the suite). Contracts:
//  * push-flow and flow-updating heal completely — the corrupted variable is
//    overwritten by the next mirror, and no bookkeeping accumulates it;
//  * PCF/robust heals most flips: a flip is only baked in when it lands in
//    the completer's passive copy inside the window between alignment and
//    absorption (heavy-tailed but less frequent);
//  * PCF/fast bakes EVERY flip into its incremental ϕ (the delta enters at
//    the next mirror and never leaves) — the paper's Section III-A caveat
//    and the reason the robust variant exists;
//  * push-sum has no flow state to corrupt (hook returns false).
#include <gtest/gtest.h>

#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;

/// Runs a state-flip burst, then a clean recovery phase; returns the final
/// max error.
double error_after_memory_flips(Algorithm algorithm, core::PcfVariant variant,
                                std::uint64_t seed) {
  const auto t = net::Topology::hypercube(5);
  FaultPlan faults;
  faults.state_flip_prob = 0.01;
  core::ReducerConfig rc;
  rc.pcf_variant = variant;
  auto engine = test::make_engine(t, algorithm, Aggregate::kAverage, seed, faults, rc);
  engine.run(1500);
  EXPECT_GT(engine.stats().state_flips, 100u);
  engine.mutable_faults().state_flip_prob = 0.0;
  engine.run(2000);
  return engine.max_error();
}

TEST(StateCorruption, PushFlowHealsCompletely) {
  EXPECT_LT(error_after_memory_flips(Algorithm::kPushFlow, core::PcfVariant::kRobust, 3), 1e-10);
}

TEST(StateCorruption, FlowUpdatingHealsCompletely) {
  EXPECT_LT(error_after_memory_flips(Algorithm::kFlowUpdating, core::PcfVariant::kRobust, 3),
            1e-10);
}

TEST(StateCorruption, PcfFastBakesCorruptionIn) {
  // The per-seed residual bias is heavy-tailed (one sign-bit flip of a large
  // component dominates a run), so the contract is statistical over a fixed,
  // deterministic seed set: the fast variant's mean bias is well above the
  // robust variant's, and it is always permanently damaged in aggregate.
  double fast_total = 0.0;
  double robust_total = 0.0;
  for (const std::uint64_t seed : {1u, 4u, 5u, 6u, 7u, 8u}) {
    fast_total += error_after_memory_flips(Algorithm::kPushCancelFlow,
                                           core::PcfVariant::kFast, seed);
    robust_total += error_after_memory_flips(Algorithm::kPushCancelFlow,
                                             core::PcfVariant::kRobust, seed);
  }
  EXPECT_GT(fast_total, 1e-3);
  EXPECT_GT(fast_total, 2.0 * robust_total);
}

TEST(StateCorruption, SurvivorsStillReachConsensus) {
  // Even with baked-in bias, the network must agree on SOME value.
  const auto t = net::Topology::hypercube(4);
  FaultPlan faults;
  faults.state_flip_prob = 0.02;
  core::ReducerConfig rc;
  rc.pcf_variant = core::PcfVariant::kFast;
  auto engine = test::make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7, faults,
                                  rc);
  engine.run(800);
  engine.mutable_faults().state_flip_prob = 0.0;
  engine.run(2000);
  const auto est = engine.estimates();
  double spread = 0.0;
  for (double e : est) spread = std::max(spread, std::abs(e - est[0]));
  EXPECT_LT(spread, 1e-9 * std::max(1.0, std::abs(est[0])));
}

TEST(StateCorruption, PushSumHasNoFlowStateToCorrupt) {
  auto reducer = core::make_reducer(Algorithm::kPushSum);
  const std::vector<net::NodeId> nb{1};
  reducer->init(0, nb, core::Mass::scalar(1.0, 1.0));
  Rng rng(1);
  EXPECT_FALSE(reducer->corrupt_stored_flow(rng));
}

TEST(StateCorruption, HookActuallyMutatesState) {
  auto reducer = core::make_reducer(Algorithm::kPushFlow);
  const std::vector<net::NodeId> nb{1};
  reducer->init(0, nb, core::Mass::scalar(1.0, 1.0));
  Rng send_rng(1);
  (void)reducer->make_message(send_rng);  // put a nonzero value in the flow
  const double before = reducer->max_abs_flow_component();
  Rng rng(2);
  bool changed = false;
  for (int i = 0; i < 16 && !changed; ++i) {
    ASSERT_TRUE(reducer->corrupt_stored_flow(rng));
    changed = reducer->max_abs_flow_component() != before;
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace pcf::sim
