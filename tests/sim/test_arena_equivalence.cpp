// Differential suite: the SoA arena engine (EngineMode::kArena) must be
// BITWISE-identical to the legacy per-node-reducer engine for every
// algorithm, both delivery models, and every fault class — same flows, same
// masses, same estimates, same convergence rounds, same message counters.
// The arena replays the legacy reducers' per-scalar floating-point operation
// chains exactly (see src/core/arena.hpp), so any divergence, even in the
// last ulp, is a bug.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Algorithm;
using core::PcfVariant;

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

/// Exact engine-state fingerprint: per live node, the bit patterns of its
/// conserved mass, estimate, every per-neighbor flow, and the protocol
/// counters the Reducer interface exposes.
std::vector<std::uint64_t> fingerprint(const SyncEngine& engine, const net::Topology& t) {
  std::vector<std::uint64_t> fp;
  for (NodeId i = 0; i < t.size(); ++i) {
    fp.push_back(engine.node_alive(i) ? 1u : 0u);
    if (!engine.node_alive(i)) continue;
    const core::Reducer& n = engine.node(i);
    const core::Mass m = n.local_mass();
    for (std::size_t k = 0; k < m.dim(); ++k) fp.push_back(bits_of(m.s[k]));
    fp.push_back(bits_of(m.w));
    fp.push_back(bits_of(n.estimate(0)));
    fp.push_back(n.live_degree());
    fp.push_back(bits_of(n.max_abs_flow_component()));
    fp.push_back(n.role_swaps());
    std::array<core::Mass, 2> flows{};
    for (const NodeId j : t.neighbors(i)) {
      const std::size_t count = n.flows_toward(j, flows);
      fp.push_back(count);
      for (std::size_t q = 0; q < count; ++q) {
        for (std::size_t k = 0; k < flows[q].dim(); ++k) fp.push_back(bits_of(flows[q].s[k]));
        fp.push_back(bits_of(flows[q].w));
      }
    }
  }
  return fp;
}

void expect_stats_equal(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_flipped, b.messages_flipped);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.doubles_sent, b.doubles_sent);
  EXPECT_EQ(a.state_flips, b.state_flips);
  EXPECT_EQ(a.reached_target, b.reached_target);
}

struct EquivCase {
  Algorithm algorithm;
  PcfVariant pcf_variant = PcfVariant::kRobust;
  bool pf_cached = false;
  const char* label = "";
};

std::vector<EquivCase> equiv_cases() {
  return {
      {Algorithm::kPushSum, PcfVariant::kRobust, false, "ps"},
      {Algorithm::kPushFlow, PcfVariant::kRobust, false, "pf"},
      {Algorithm::kPushFlow, PcfVariant::kRobust, true, "pf_cached"},
      {Algorithm::kPushCancelFlow, PcfVariant::kRobust, false, "pcf_robust"},
      {Algorithm::kPushCancelFlow, PcfVariant::kFast, false, "pcf_fast"},
      {Algorithm::kFlowUpdating, PcfVariant::kRobust, false, "fu"},
      {Algorithm::kCorrectionAllreduce, PcfVariant::kRobust, false, "corr"},
      {Algorithm::kFuMassHybrid, PcfVariant::kRobust, false, "fumd"},
  };
}

std::string case_name(const ::testing::TestParamInfo<EquivCase>& info) {
  return info.param.label;
}

/// The fault classes of the differential contract. "lifecycle" schedules a
/// crash, a rejoin, a link failure, a heal, a false detection, and a live
/// data update on a 4x4 torus; "noise" turns on every probabilistic knob at
/// once (loss, flips, stored-state flips, duplicates, reordering, churn).
FaultPlan lifecycle_plan() {
  FaultPlan plan;
  plan.detection_delay = 1.0;
  plan.link_failures.push_back({4.0, 0, 1});
  plan.node_crashes.push_back({8.0, 5});
  plan.false_detects.push_back({11.0, 2, 3, 4.0});
  plan.data_updates.push_back({14.0, 9, core::Mass::scalar(0.25, 0.0)});
  plan.link_heals.push_back({18.0, 0, 1});
  plan.node_rejoins.push_back({24.0, 5});
  return plan;
}

FaultPlan noise_plan() {
  FaultPlan plan;
  plan.message_loss_prob = 0.05;
  plan.bit_flip_prob = 0.02;
  plan.state_flip_prob = 0.01;
  plan.duplicate_prob = 0.05;
  plan.reorder_prob = 0.05;
  plan.churn_fail_prob = 0.01;
  plan.churn_heal_rate = 0.2;
  plan.detection_delay = 1.0;
  return plan;
}

class ArenaEquivalence : public ::testing::TestWithParam<EquivCase> {
 protected:
  void run_differential(const net::Topology& topology, FaultPlan plan, Delivery delivery,
                        std::size_t rounds, std::uint64_t seed) {
    const EquivCase& c = GetParam();
    core::ReducerConfig reducer;
    reducer.pcf_variant = c.pcf_variant;
    reducer.pf_cached_flow_sum = c.pf_cached;

    const auto values = test::random_values(topology.size(), seed ^ 0xabcdef);
    std::vector<core::Mass> masses;
    for (std::size_t i = 0; i < values.size(); ++i) {
      masses.push_back(core::Mass::scalar(values[i], 1.0));
    }

    SyncEngineConfig cfg;
    cfg.algorithm = c.algorithm;
    cfg.reducer = reducer;
    cfg.faults = plan;
    cfg.seed = seed;
    cfg.delivery = delivery;
    cfg.invariants.enabled = true;

    SyncEngineConfig arena_cfg = cfg;
    arena_cfg.mode = EngineMode::kArena;

    SyncEngine legacy(topology, masses, cfg);
    SyncEngine arena(topology, masses, arena_cfg);
    ASSERT_EQ(arena.fleet() != nullptr, true);
    ASSERT_EQ(legacy.fleet(), nullptr);

    for (std::size_t r = 0; r < rounds; ++r) {
      legacy.step();
      arena.step();
      ASSERT_EQ(fingerprint(legacy, topology), fingerprint(arena, topology))
          << "state diverged after round " << r + 1;
    }
    expect_stats_equal(legacy.stats(), arena.stats());
    EXPECT_EQ(legacy.perf().deliveries, arena.perf().deliveries);
    EXPECT_EQ(bits_of(legacy.max_error()), bits_of(arena.max_error()));
  }
};

TEST_P(ArenaEquivalence, CleanSequential) {
  run_differential(net::Topology::grid2d(4, 4, /*wrap=*/true), {}, Delivery::kSequential, 40, 11);
}

TEST_P(ArenaEquivalence, CleanCrossing) {
  run_differential(net::Topology::grid2d(4, 4, /*wrap=*/true), {}, Delivery::kCrossing, 40, 12);
}

TEST_P(ArenaEquivalence, LifecycleSequential) {
  run_differential(net::Topology::grid2d(4, 4, /*wrap=*/true), lifecycle_plan(), Delivery::kSequential, 40,
                   13);
}

TEST_P(ArenaEquivalence, LifecycleCrossing) {
  run_differential(net::Topology::grid2d(4, 4, /*wrap=*/true), lifecycle_plan(), Delivery::kCrossing, 40, 14);
}

TEST_P(ArenaEquivalence, NoiseSequential) {
  run_differential(net::Topology::grid2d(4, 4, /*wrap=*/true), noise_plan(), Delivery::kSequential, 40, 15);
}

TEST_P(ArenaEquivalence, NoiseCrossing) {
  run_differential(net::Topology::grid2d(4, 4, /*wrap=*/true), noise_plan(), Delivery::kCrossing, 40, 16);
}

TEST_P(ArenaEquivalence, IrregularTopologyConvergesIdentically) {
  // Same convergence round, not just same state: run-until-error on both.
  const EquivCase& c = GetParam();
  Rng topo_rng(77);
  const auto topology = net::Topology::parse("regular:24:4", topo_rng);
  core::ReducerConfig reducer;
  reducer.pcf_variant = c.pcf_variant;
  reducer.pf_cached_flow_sum = c.pf_cached;
  const auto values = test::random_values(topology.size(), 5);
  std::vector<core::Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], 1.0));
  }
  SyncEngineConfig cfg;
  cfg.algorithm = c.algorithm;
  cfg.reducer = reducer;
  cfg.seed = 21;
  cfg.invariants.enabled = true;
  SyncEngineConfig arena_cfg = cfg;
  arena_cfg.mode = EngineMode::kArena;
  SyncEngine legacy(topology, masses, cfg);
  SyncEngine arena(topology, masses, arena_cfg);
  const auto ls = legacy.run_until_error(1e-9, 2000);
  const auto as = arena.run_until_error(1e-9, 2000);
  EXPECT_TRUE(ls.reached_target);
  expect_stats_equal(ls, as);
  EXPECT_EQ(legacy.round(), arena.round());
  EXPECT_EQ(fingerprint(legacy, topology), fingerprint(arena, topology));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ArenaEquivalence, ::testing::ValuesIn(equiv_cases()),
                         case_name);

// ---- rejoin slot reuse (regression: rejoin must never grow the arena) ----

TEST(ArenaRejoin, RejoinedNodeReusesItsArenaRows) {
  const auto topology = net::Topology::grid2d(4, 4, /*wrap=*/true);
  const auto values = test::random_values(topology.size(), 3);
  std::vector<core::Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], 1.0));
  }
  SyncEngineConfig cfg;
  cfg.algorithm = core::Algorithm::kPushCancelFlow;
  cfg.seed = 9;
  cfg.mode = EngineMode::kArena;
  cfg.invariants.enabled = true;
  cfg.faults.node_crashes.push_back({5.0, 6});
  cfg.faults.node_rejoins.push_back({15.0, 6});
  SyncEngine engine(topology, masses, cfg);

  const core::ArenaFleet* fleet_before = engine.fleet();
  ASSERT_NE(fleet_before, nullptr);
  const std::size_t size_before = fleet_before->size();

  engine.run(12);
  ASSERT_FALSE(engine.node_alive(6));
  engine.run(8);
  ASSERT_TRUE(engine.node_alive(6));

  // Same fleet object, same node count — the node was reset in place.
  EXPECT_EQ(engine.fleet(), fleet_before);
  EXPECT_EQ(engine.fleet()->size(), size_before);
  // The facade is live again and the node gossips from its initial mass.
  EXPECT_EQ(engine.node(6).live_degree(), topology.neighbors(6).size());
  EXPECT_TRUE(std::isfinite(engine.node(6).estimate(0)));
  engine.run(40);
  EXPECT_LT(engine.max_error(), 1e-6);
}

// Repeated churn/rejoin cycles: the arena never grows; state stays exactly
// equal to the legacy engine's through every cycle (rejoin slot reuse is not
// just safe, it is bit-faithful).
TEST(ArenaRejoin, ChurnAndRepeatedRejoinsStayIdenticalToLegacy) {
  const auto topology = net::Topology::grid2d(4, 4, /*wrap=*/true);
  const auto values = test::random_values(topology.size(), 8);
  std::vector<core::Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], 1.0));
  }
  FaultPlan plan;
  plan.churn_fail_prob = 0.02;
  plan.churn_heal_rate = 0.25;
  for (double t = 6.0; t < 60.0; t += 12.0) {
    plan.node_crashes.push_back({t, 10});
    plan.node_rejoins.push_back({t + 6.0, 10});
  }
  SyncEngineConfig cfg;
  cfg.algorithm = core::Algorithm::kFlowUpdating;
  cfg.faults = plan;
  cfg.seed = 31;
  cfg.invariants.enabled = true;
  SyncEngineConfig arena_cfg = cfg;
  arena_cfg.mode = EngineMode::kArena;
  SyncEngine legacy(topology, masses, cfg);
  SyncEngine arena(topology, masses, arena_cfg);
  for (std::size_t r = 0; r < 70; ++r) {
    legacy.step();
    arena.step();
    ASSERT_EQ(fingerprint(legacy, topology), fingerprint(arena, topology))
        << "diverged after round " << r + 1;
  }
  expect_stats_equal(legacy.stats(), arena.stats());
}

}  // namespace
}  // namespace pcf::sim
