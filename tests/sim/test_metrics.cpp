#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pcf::sim {
namespace {

using core::Mass;
using core::Values;

TEST(Oracle, ComputesAverageTarget) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 1.0), Mass::scalar(3.0, 1.0)};
  const Oracle oracle(masses);
  EXPECT_DOUBLE_EQ(oracle.target(), 2.0);
}

TEST(Oracle, ComputesSumTarget) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 1.0), Mass::scalar(3.0, 0.0)};
  const Oracle oracle(masses);
  EXPECT_DOUBLE_EQ(oracle.target(), 4.0);
}

TEST(Oracle, PerComponentTargets) {
  const std::vector<Mass> masses{Mass(Values{1.0, 10.0}, 1.0), Mass(Values{3.0, 30.0}, 1.0)};
  const Oracle oracle(masses);
  EXPECT_EQ(oracle.dim(), 2u);
  EXPECT_DOUBLE_EQ(oracle.target(0), 2.0);
  EXPECT_DOUBLE_EQ(oracle.target(1), 20.0);
}

TEST(Oracle, ErrorOfRelativeAndAbsolute) {
  const std::vector<Mass> masses{Mass::scalar(4.0, 1.0), Mass::scalar(4.0, 1.0)};
  const Oracle oracle(masses);  // target 4
  EXPECT_DOUBLE_EQ(oracle.error_of(4.0), 0.0);
  EXPECT_DOUBLE_EQ(oracle.error_of(5.0), 0.25);
  EXPECT_DOUBLE_EQ(oracle.error_of(3.0), 0.25);
}

TEST(Oracle, ZeroTargetFallsBackToAbsoluteError) {
  const std::vector<Mass> masses{Mass::scalar(-1.0, 1.0), Mass::scalar(1.0, 1.0)};
  const Oracle oracle(masses);  // target 0
  EXPECT_DOUBLE_EQ(oracle.error_of(0.5), 0.5);
}

TEST(Oracle, NonFiniteEstimateIsInfiniteError) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 1.0)};
  const Oracle oracle(masses);
  EXPECT_TRUE(std::isinf(oracle.error_of(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isinf(oracle.error_of(std::numeric_limits<double>::infinity())));
}

TEST(Oracle, RetargetRecomputes) {
  std::vector<Mass> masses{Mass::scalar(1.0, 1.0), Mass::scalar(3.0, 1.0)};
  Oracle oracle(masses);
  EXPECT_DOUBLE_EQ(oracle.target(), 2.0);
  masses.pop_back();
  oracle.retarget(masses);
  EXPECT_DOUBLE_EQ(oracle.target(), 1.0);
}

TEST(Oracle, RejectsZeroTotalWeight) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 0.0)};
  EXPECT_THROW(Oracle{masses}, ContractViolation);
}

TEST(Oracle, RejectsInconsistentDimensions) {
  const std::vector<Mass> masses{Mass::zero(1), Mass::zero(2)};
  EXPECT_THROW(Oracle{masses}, ContractViolation);
}

TEST(Oracle, UsesCompensatedSummation) {
  // 1e16 and many 1.0s: a naive oracle would lose the small weights entirely.
  std::vector<Mass> masses{Mass::scalar(1e16, 1.0)};
  for (int i = 0; i < 1000; ++i) masses.push_back(Mass::scalar(1.0, 1.0));
  const Oracle oracle(masses);
  EXPECT_DOUBLE_EQ(oracle.target(), (1e16 + 1000.0) / 1001.0);
}

TEST(Oracle, ShiftAdjustsTargetExactly) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 1.0), Mass::scalar(3.0, 1.0)};
  Oracle oracle(masses);
  oracle.shift(Mass::scalar(4.0, 0.0));  // value-only update
  EXPECT_DOUBLE_EQ(oracle.target(), 4.0);  // (1+3+4)/2
  oracle.shift(Mass::scalar(0.0, 2.0));  // weight joins (e.g. nodes added)
  EXPECT_DOUBLE_EQ(oracle.target(), 2.0);  // 8/4
}

TEST(Oracle, ShiftRejectsDimensionMismatch) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 1.0)};
  Oracle oracle(masses);
  EXPECT_THROW(oracle.shift(Mass::zero(2)), ContractViolation);
}

TEST(Oracle, ShiftToZeroWeightRejected) {
  const std::vector<Mass> masses{Mass::scalar(1.0, 1.0)};
  Oracle oracle(masses);
  EXPECT_THROW(oracle.shift(Mass::scalar(0.0, -1.0)), ContractViolation);
}

TEST(Trace, RecordsPointsInOrder) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  trace.add({1.0, 0.5, 0.25, 0.3, 2.0});
  trace.add({2.0, 0.4, 0.2, 0.25, 1.5});
  ASSERT_EQ(trace.points().size(), 2u);
  EXPECT_EQ(trace.points()[0].time, 1.0);
  EXPECT_EQ(trace.points()[1].max_error, 0.4);
}

TEST(Trace, TableHasOneRowPerPoint) {
  Trace trace;
  trace.add({1.0, 0.5, 0.25, 0.3, 2.0});
  trace.add({2.0, 0.4, 0.2, 0.25, 1.5});
  testing::internal::CaptureStdout();
  trace.to_table().print();
  const std::string out = testing::internal::GetCapturedStdout();
  // header + separator + 2 rows
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace pcf::sim
