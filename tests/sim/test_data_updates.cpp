// Dynamic data updates (LiMoSense-style live monitoring): inputs change
// mid-computation and the reduction must track the moving aggregate.
#include <gtest/gtest.h>

#include "sim/engine_async.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;
using core::Mass;

class DataUpdateSweep : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, DataUpdateSweep,
                         ::testing::Values(Algorithm::kPushSum, Algorithm::kPushFlow,
                                           Algorithm::kPushCancelFlow,
                                           Algorithm::kFlowUpdating),
                         [](const auto& param_info) {
                           std::string name{core::to_string(param_info.param)};
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST_P(DataUpdateSweep, TracksAMovingAggregate) {
  const auto t = net::Topology::hypercube(4);
  FaultPlan plan;
  plan.data_updates.push_back({100.0, 3, Mass::scalar(5.0, 0.0)});
  plan.data_updates.push_back({100.0, 9, Mass::scalar(-2.0, 0.0)});
  plan.data_updates.push_back({220.0, 0, Mass::scalar(1.0, 0.0)});
  auto engine = test::make_engine(t, GetParam(), Aggregate::kAverage, 5, plan);
  const double target_before = engine.oracle().target();
  engine.run(99);
  EXPECT_LT(engine.max_error(), 1e-4);  // roughly converged before the update
  engine.run(2);  // updates at t=100 fire
  const double target_mid = engine.oracle().target();
  EXPECT_NEAR(target_mid, target_before + 3.0 / 16.0, 1e-12);
  engine.run(600);
  const double target_after = engine.oracle().target();
  EXPECT_NEAR(target_after, target_before + 4.0 / 16.0, 1e-12);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST_P(DataUpdateSweep, UpdateDoesNotBreakMassConservation) {
  if (GetParam() == Algorithm::kPushSum) GTEST_SKIP() << "no separate input state";
  const auto t = net::Topology::ring(8);
  FaultPlan plan;
  plan.data_updates.push_back({30.0, 2, Mass::scalar(7.0, 0.0)});
  auto engine = test::make_engine(t, GetParam(), Aggregate::kAverage, 11, plan);
  engine.run(25);
  const auto before = test::total_mass(engine);
  engine.run(100);
  const auto after = test::total_mass(engine);
  EXPECT_NEAR(after.s[0], before.s[0] + 7.0, 1e-9);
  EXPECT_NEAR(after.w, before.w, 1e-10);
}

TEST(DataUpdates, SumAggregateTracksUpdates) {
  const auto t = net::Topology::hypercube(4);
  FaultPlan plan;
  plan.data_updates.push_back({80.0, 5, Mass::scalar(10.0, 0.0)});
  auto engine =
      test::make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kSum, 3, plan);
  const double before = engine.oracle().target();
  engine.run(600);
  EXPECT_NEAR(engine.oracle().target(), before + 10.0, 1e-10);
  EXPECT_LT(engine.max_error(), 1e-11);
}

TEST(DataUpdates, ContinuousDriftIsTracked) {
  // A value drifts every 50 rounds; the estimates follow each step.
  const auto t = net::Topology::hypercube(4);
  FaultPlan plan;
  for (int k = 1; k <= 6; ++k) {
    plan.data_updates.push_back({50.0 * k, static_cast<net::NodeId>(k), Mass::scalar(0.5, 0.0)});
  }
  auto engine = test::make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 13, plan);
  engine.run(800);
  EXPECT_LT(engine.max_error(), 1e-11);
}

TEST(DataUpdates, AsyncEngineTracksUpdates) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 17);
  auto masses = masses_from_values(values, Aggregate::kAverage);
  AsyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 17;
  cfg.faults.data_updates.push_back({50.0, 4, Mass::scalar(3.0, 0.0)});
  AsyncEngine engine(t, masses, cfg);
  const double before = engine.oracle().target();
  engine.run_until(60.0);
  EXPECT_GT(engine.oracle().target(), before);  // retargeted upward
  EXPECT_TRUE(engine.run_until_error(1e-10, 1500.0));
}

TEST(DataUpdates, UpdateOnCrashedNodeIsIgnored) {
  const auto t = net::Topology::hypercube(3);
  FaultPlan plan;
  plan.node_crashes.push_back({20.0, 2});
  plan.data_updates.push_back({60.0, 2, Mass::scalar(100.0, 0.0)});
  auto engine = test::make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 19, plan);
  engine.run(600);
  // The dead node's update must not shift the target.
  EXPECT_LT(engine.max_error(), 1e-11);
}

TEST(DataUpdates, RejectsOutOfRangeNode) {
  const auto t = net::Topology::ring(4);
  const std::vector<core::Mass> masses(4, Mass::scalar(1.0, 1.0));
  SyncEngineConfig cfg;
  cfg.faults.data_updates.push_back({1.0, 9, Mass::scalar(1.0, 0.0)});
  EXPECT_THROW(SyncEngine(t, masses, cfg), ContractViolation);
}

}  // namespace
}  // namespace pcf::sim
