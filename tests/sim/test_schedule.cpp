#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/reduce.hpp"
#include "support/check.hpp"
#include "test_util.hpp"

namespace pcf::sim {
namespace {

using core::Aggregate;
using core::Algorithm;

TEST(BusMatchings, CoverAllEdgesExactlyOnce) {
  const auto ms = bus_matchings(7);
  ASSERT_EQ(ms.size(), 2u);
  std::size_t total = 0;
  for (const auto& m : ms) total += m.size();
  EXPECT_EQ(total, 6u);  // all bus edges
  // matchings are vertex-disjoint
  for (const auto& m : ms) {
    std::set<NodeId> seen;
    for (const auto& [a, b] : m) {
      EXPECT_TRUE(seen.insert(a).second);
      EXPECT_TRUE(seen.insert(b).second);
    }
  }
}

TEST(HypercubeMatchings, OneMatchingPerDimension) {
  const auto ms = hypercube_matchings(3);
  ASSERT_EQ(ms.size(), 3u);
  for (const auto& m : ms) EXPECT_EQ(m.size(), 4u);  // 8 nodes / 2
}

TEST(MatchingRunner, RejectsNonEdgeMatching) {
  const auto t = net::Topology::bus(4);
  const std::vector<core::Mass> masses(4, core::Mass::scalar(1.0, 1.0));
  std::vector<Matching> bad{{{0, 2}}};
  EXPECT_THROW(
      MatchingScheduleRunner(t, masses, Algorithm::kPushFlow, bad),
      ContractViolation);
}

TEST(MatchingRunner, PushFlowConvergesOnBus) {
  const std::size_t n = 8;
  const auto t = net::Topology::bus(n);
  const auto masses = test::bus_case_study_masses(n);
  MatchingScheduleRunner runner(t, masses, Algorithm::kPushFlow, bus_matchings(n));
  runner.run(2000);
  for (double e : runner.estimates()) EXPECT_NEAR(e, 2.0, 1e-10);
}

TEST(MatchingRunner, PcfConvergesOnHypercubeMatchings) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 9);
  const auto masses = masses_from_values(values, Aggregate::kAverage);
  MatchingScheduleRunner runner(t, masses, Algorithm::kPushCancelFlow,
                                hypercube_matchings(4));
  runner.run(400);
  const Oracle oracle(masses);
  for (double e : runner.estimates()) EXPECT_LT(oracle.error_of(e), 1e-12);
}

TEST(MatchingRunner, DeterministicNoRngInvolved) {
  const std::size_t n = 6;
  const auto t = net::Topology::bus(n);
  const auto masses = test::bus_case_study_masses(n);
  MatchingScheduleRunner a(t, masses, Algorithm::kPushCancelFlow, bus_matchings(n));
  MatchingScheduleRunner b(t, masses, Algorithm::kPushCancelFlow, bus_matchings(n));
  a.run(100);
  b.run(100);
  EXPECT_EQ(a.estimates(), b.estimates());
}

}  // namespace
}  // namespace pcf::sim
