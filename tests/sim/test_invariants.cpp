// The invariant-checker subsystem: enablement plumbing, engine integration,
// and — via hand-injected corruption the fault model did NOT declare — proof
// that each checker actually fires.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "core/push_cancel_flow.hpp"
#include "net/topology.hpp"
#include "sim/engine_async.hpp"
#include "sim/engine_sync.hpp"
#include "sim/invariants.hpp"
#include "test_util.hpp"

namespace pcf {
namespace {

using core::Algorithm;
using sim::FaultExposure;
using sim::InvariantConfig;
using sim::InvariantViolation;
using sim::InvariantViolationError;
using sim::SystemView;

bool has_violation(const std::vector<InvariantViolation>& violations, std::string_view checker) {
  for (const auto& v : violations) {
    if (v.checker == checker) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Enablement plumbing.

TEST(InvariantConfig, ExplicitSettingWinsOverEnvironment) {
  ASSERT_EQ(setenv("PCF_CHECK_INVARIANTS", "1", 1), 0);
  InvariantConfig config;
  config.enabled = false;
  EXPECT_FALSE(config.resolve_enabled());
  config.enabled = true;
  ASSERT_EQ(setenv("PCF_CHECK_INVARIANTS", "0", 1), 0);
  EXPECT_TRUE(config.resolve_enabled());
  ASSERT_EQ(setenv("PCF_CHECK_INVARIANTS", "1", 1), 0);
}

TEST(InvariantConfig, UnsetConsultsTheEnvironment) {
  InvariantConfig config;  // enabled not set
  ASSERT_EQ(setenv("PCF_CHECK_INVARIANTS", "1", 1), 0);
  EXPECT_TRUE(config.resolve_enabled());
  ASSERT_EQ(setenv("PCF_CHECK_INVARIANTS", "0", 1), 0);
  EXPECT_FALSE(config.resolve_enabled());
  ASSERT_EQ(unsetenv("PCF_CHECK_INVARIANTS"), 0);
  EXPECT_FALSE(config.resolve_enabled());
  ASSERT_EQ(setenv("PCF_CHECK_INVARIANTS", "1", 1), 0);  // restore the suite default
}

// ---------------------------------------------------------------------------
// Engine integration.

TEST(InvariantMonitor, RunsEveryRoundInsideTheSyncEngine) {
  auto engine = test::make_engine(net::Topology::hypercube(3), Algorithm::kPushCancelFlow,
                                  core::Aggregate::kAverage);
  ASSERT_NE(engine.invariants(), nullptr);
  engine.run(50);
  EXPECT_EQ(engine.invariants()->checks_run(), 50u);
  EXPECT_TRUE(engine.invariants()->violations().empty());
}

TEST(InvariantMonitor, HonorsTheCheckCadence) {
  sim::SyncEngineConfig config;
  config.algorithm = Algorithm::kPushFlow;
  config.invariants.enabled = true;
  config.invariants.check_every = 10;
  const auto masses = test::bus_case_study_masses(6);
  sim::SyncEngine engine(net::Topology::bus(6), masses, config);
  engine.run(100);
  EXPECT_EQ(engine.invariants()->checks_run(), 10u);
}

TEST(InvariantMonitor, CanBeDisabledPerEngine) {
  sim::SyncEngineConfig config;
  config.invariants.enabled = false;
  const auto masses = test::bus_case_study_masses(4);
  sim::SyncEngine engine(net::Topology::bus(4), masses, config);
  engine.run(20);
  EXPECT_EQ(engine.invariants(), nullptr);
}

TEST(InvariantMonitor, RunsInsideTheAsyncEngine) {
  sim::AsyncEngineConfig config;
  config.algorithm = Algorithm::kPushCancelFlow;
  config.invariants.enabled = true;
  const auto masses = test::bus_case_study_masses(8);
  sim::AsyncEngine engine(net::Topology::ring(8), masses, config);
  for (int t = 1; t <= 20; ++t) engine.run_until(t);
  ASSERT_NE(engine.invariants(), nullptr);
  EXPECT_EQ(engine.invariants()->checks_run(), 20u);
  EXPECT_TRUE(engine.invariants()->violations().empty());
}

// The headline property: corruption the fault model did NOT declare is caught
// by the per-round checks. (Declared corruption — state_flip_prob — is an
// expected violation and is filtered; see test_state_corruption.cpp.)
// A stored-flow bit flip always breaks the exact mirror property, whatever
// bit it lands on, so flow-antisymmetry is the checker that must fire.
TEST(InvariantMonitor, CatchesUndeclaredStateCorruption) {
  auto engine = test::make_engine(net::Topology::hypercube(3), Algorithm::kPushFlow,
                                  core::Aggregate::kAverage);
  engine.run(30);
  Rng rng(99);
  ASSERT_TRUE(engine.node(0).corrupt_stored_flow(rng));
  EXPECT_THROW(engine.check_invariants_now(), InvariantViolationError);
}

TEST(InvariantMonitor, AccumulatesInsteadOfThrowingWhenConfigured) {
  sim::SyncEngineConfig config;
  config.algorithm = Algorithm::kPushFlow;
  config.invariants.enabled = true;
  config.invariants.throw_on_violation = false;
  const auto masses = test::bus_case_study_masses(6);
  sim::SyncEngine engine(net::Topology::bus(6), masses, config);
  engine.run(30);
  Rng rng(99);
  ASSERT_TRUE(engine.node(2).corrupt_stored_flow(rng));
  EXPECT_NO_THROW(engine.check_invariants_now());
  const auto& violations = engine.invariants()->violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(has_violation(violations, "flow-antisymmetry"));
}

// Mass injected behind the engine's back (update_data without the matching
// oracle shift of apply_data_update) breaks global conservation by a full
// unit — the mass checker must see it.
TEST(InvariantMonitor, CatchesAnUndeclaredMassInjection) {
  sim::SyncEngineConfig config;
  config.algorithm = Algorithm::kPushCancelFlow;
  config.invariants.enabled = true;
  config.invariants.throw_on_violation = false;
  const auto masses = test::bus_case_study_masses(6);
  sim::SyncEngine engine(net::Topology::bus(6), masses, config);
  engine.run(30);
  engine.node(3).update_data(core::Mass::scalar(5.0, 0.0));
  engine.check_invariants_now();
  EXPECT_TRUE(has_violation(engine.invariants()->violations(), "mass-conservation"));
}

TEST(InvariantMonitor, EnvelopeCatchesAnUndeclaredEstimateJump) {
  sim::SyncEngineConfig config;
  config.algorithm = Algorithm::kPushCancelFlow;
  config.invariants.enabled = true;
  config.invariants.throw_on_violation = false;
  const auto masses = test::bus_case_study_masses(6);
  sim::SyncEngine engine(net::Topology::bus(6), masses, config);
  ASSERT_TRUE(engine.run_until_error(1e-9, 20000).reached_target);
  // A data update behind the engine's back: the oracle target is NOT shifted
  // (unlike apply_data_update), so every estimate suddenly looks wrong.
  engine.node(0).update_data(core::Mass::scalar(100.0, 0.0));
  engine.check_invariants_now();
  EXPECT_TRUE(has_violation(engine.invariants()->violations(), "estimate-envelope"));
}

TEST(InvariantMonitor, FiniteStateCatchesNonFiniteEstimates) {
  sim::SyncEngineConfig config;
  config.algorithm = Algorithm::kPushFlow;
  config.invariants.enabled = true;
  config.invariants.throw_on_violation = false;
  const auto masses = test::bus_case_study_masses(4);
  sim::SyncEngine engine(net::Topology::bus(4), masses, config);
  engine.run(10);
  engine.node(1).update_data(core::Mass::scalar(std::numeric_limits<double>::infinity(), 0.0));
  engine.check_invariants_now();
  EXPECT_TRUE(has_violation(engine.invariants()->violations(), "finite-state"));
}

// Declared faults must NOT trip the checkers: the whole fault-tolerance test
// suite runs with the monitor armed, so this is belt and braces for the
// fault-awareness gating.
TEST(InvariantMonitor, DeclaredFaultsAreExpectedViolations) {
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.2;
  faults.link_failures.push_back({30.0, 0, 1});
  faults.node_crashes.push_back({60.0, 5});
  auto engine = test::make_engine(net::Topology::hypercube(3), Algorithm::kPushCancelFlow,
                                  core::Aggregate::kAverage, 7, std::move(faults));
  EXPECT_NO_THROW(engine.run(400));
  EXPECT_TRUE(engine.invariants()->violations().empty());
}

// ---------------------------------------------------------------------------
// Individual checkers against a hand-built two-node system.

class PairView final : public SystemView {
 public:
  PairView(Algorithm algorithm, double v0, double v1)
      : algorithm_(algorithm),
        topology_(net::Topology::bus(2)),
        masses_{core::Mass::scalar(v0, 1.0), core::Mass::scalar(v1, 1.0)},
        oracle_(masses_) {
    for (net::NodeId i = 0; i < 2; ++i) {
      nodes_.push_back(core::make_reducer(algorithm, {}));
      nodes_.back()->init(i, topology_.neighbors(i), masses_[i]);
    }
  }

  [[nodiscard]] const net::Topology& topology() const override { return topology_; }
  [[nodiscard]] Algorithm algorithm() const override { return algorithm_; }
  [[nodiscard]] double time() const override { return 0.0; }
  [[nodiscard]] bool alive(net::NodeId) const override { return true; }
  [[nodiscard]] const core::Reducer& node(net::NodeId i) const override { return *nodes_.at(i); }
  [[nodiscard]] bool link_dead(net::NodeId, net::NodeId) const override { return false; }
  [[nodiscard]] const sim::Oracle& oracle() const override { return oracle_; }
  [[nodiscard]] FaultExposure faults() const override { return exposure; }

  core::Reducer& mutable_node(net::NodeId i) { return *nodes_.at(i); }
  FaultExposure exposure;  // defaults: clean sequential transport

 private:
  Algorithm algorithm_;
  net::Topology topology_;
  std::vector<core::Mass> masses_;
  sim::Oracle oracle_;
  std::vector<std::unique_ptr<core::Reducer>> nodes_;
};

TEST(PcfHandshakeChecker, ForgedCycleCounterViolatesTheSkewBound) {
  PairView view(Algorithm::kPushCancelFlow, 3.0, 1.0);
  // Forge an out-of-protocol packet: the completer (node 1) is told the
  // initiator finished a cancellation that never happened. It swaps and runs
  // one cycle ahead — the receipt-driven discipline forbids that state.
  core::Packet forged;
  forged.a = core::Mass::zero(1);
  forged.b = core::Mass::zero(1);
  forged.active_slot = 1;
  forged.role_count = 1;  // completer cycle (0) + 1
  view.mutable_node(1).on_receive(0, forged);

  auto checker = sim::make_pcf_handshake_checker();
  std::vector<InvariantViolation> out;
  checker->check(view, out);
  ASSERT_FALSE(out.empty());
  EXPECT_NE(out[0].detail.find("cycle skew"), std::string::npos) << out[0].detail;
}

TEST(PcfHandshakeChecker, CleanHandshakeHasNoViolations) {
  PairView view(Algorithm::kPushCancelFlow, 3.0, 1.0);
  // One long-lived checker so the cycle-monotonicity history is exercised too.
  auto checker = sim::make_pcf_handshake_checker();
  Rng rng(1);
  for (int round = 0; round < 25; ++round) {
    for (net::NodeId i : {net::NodeId{0}, net::NodeId{1}}) {
      auto out = view.mutable_node(i).make_message(rng);
      ASSERT_TRUE(out.has_value());
      view.mutable_node(out->to).on_receive(i, out->packet);
    }
    std::vector<InvariantViolation> violations;
    checker->check(view, violations);
    EXPECT_TRUE(violations.empty()) << violations.front().detail;
  }
}

TEST(FlowAntisymmetryChecker, ExactMirrorPassesAndCorruptionFails) {
  PairView view(Algorithm::kPushFlow, 2.0, 4.0);
  Rng rng(3);
  auto out = view.mutable_node(0).make_message(rng);
  ASSERT_TRUE(out.has_value());
  view.mutable_node(1).on_receive(0, out->packet);

  auto checker = sim::make_flow_antisymmetry_checker();
  std::vector<InvariantViolation> violations;
  checker->check(view, violations);
  EXPECT_TRUE(violations.empty());

  ASSERT_TRUE(view.mutable_node(0).corrupt_stored_flow(rng));
  checker->check(view, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].checker, "flow-antisymmetry");
}

TEST(MassConservationChecker, SkipsWhenPacketsAreInFlight) {
  PairView view(Algorithm::kPushFlow, 2.0, 4.0);
  // Mass IS broken (a unit appears out of nowhere, the oracle knows nothing)…
  view.mutable_node(0).update_data(core::Mass::scalar(1.0, 0.0));

  InvariantConfig config;
  auto checker = sim::make_mass_conservation_checker(config);
  std::vector<InvariantViolation> violations;
  view.exposure.in_flight = true;  // …but the checker must not claim exactness
  checker->check(view, violations);
  EXPECT_TRUE(violations.empty());

  view.exposure.in_flight = false;
  checker->check(view, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].checker, "mass-conservation");
}

TEST(MassConservationChecker, SkipsOnceTheTransportDroppedAMessage) {
  PairView view(Algorithm::kPushFlow, 2.0, 4.0);
  view.mutable_node(0).update_data(core::Mass::scalar(1.0, 0.0));
  view.exposure.messages_dropped = 1;  // a declared loss event explains it
  InvariantConfig config;
  auto checker = sim::make_mass_conservation_checker(config);
  std::vector<InvariantViolation> violations;
  checker->check(view, violations);
  EXPECT_TRUE(violations.empty());
}

}  // namespace
}  // namespace pcf
