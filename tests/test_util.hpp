// Shared helpers for the pcflow test suite.
#pragma once

#include <vector>

#include "core/mass.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "support/rng.hpp"

namespace pcf::test {

/// Scalar initial values drawn uniformly from [0, 1) with a fixed seed.
inline std::vector<double> random_values(std::size_t n, std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform();
  return v;
}

/// Initial masses for the paper's bus-network case study (Section II-B):
/// v_1 = n+1, v_i = 1 otherwise; unit weights (synchronous averaging).
inline std::vector<core::Mass> bus_case_study_masses(std::size_t n) {
  std::vector<core::Mass> masses;
  masses.reserve(n);
  masses.push_back(core::Mass::scalar(static_cast<double>(n) + 1.0, 1.0));
  for (std::size_t i = 1; i < n; ++i) masses.push_back(core::Mass::scalar(1.0, 1.0));
  return masses;
}

/// Builds an engine over random scalar values.
inline sim::SyncEngine make_engine(const net::Topology& topology, core::Algorithm algorithm,
                                   core::Aggregate aggregate, std::uint64_t seed = 1,
                                   sim::FaultPlan faults = {},
                                   core::ReducerConfig reducer = {}) {
  const auto values = random_values(topology.size(), seed ^ 0xabcdef);
  std::vector<core::Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], core::initial_weight(aggregate, i)));
  }
  sim::SyncEngineConfig cfg;
  cfg.algorithm = algorithm;
  cfg.faults = std::move(faults);
  cfg.seed = seed;
  cfg.reducer = reducer;
  // The runtime invariant checkers double every engine-based test as an
  // invariant test (ctest also sets PCF_CHECK_INVARIANTS=1; this makes the
  // suite safe to run bare too).
  cfg.invariants.enabled = true;
  return sim::SyncEngine(topology, masses, cfg);
}

/// Sum of local masses over all live nodes — the conserved quantity.
inline core::Mass total_mass(const sim::SyncEngine& engine) {
  core::Mass total;
  bool first = true;
  for (net::NodeId i = 0; i < engine.size(); ++i) {
    if (!engine.node_alive(i)) continue;
    if (first) {
      total = engine.node(i).local_mass();
      first = false;
    } else {
      total += engine.node(i).local_mass();
    }
  }
  return total;
}

}  // namespace pcf::test
