// D3 fixture: std random machinery outside src/support/rng. The include, the
// engine and the distribution must each fire separately.
#include <random>  // line 3: D3 (include)

double fixture() {
  std::mt19937 gen(42);                                // line 6: D3 (engine)
  std::uniform_real_distribution<double> dist(0, 1);   // line 7: D3 (distribution)
  return dist(gen);
}
