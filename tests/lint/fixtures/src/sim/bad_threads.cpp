// D4 fixture: raw threading primitives in a deterministic path. The includes
// and each std::-qualified primitive must fire separately; the sanctioned
// route is support/parallel.hpp (resolve_thread_count + parallel_for_index).
#include <thread>  // line 4: D4 (include)
#include <future>  // line 5: D4 (include)

void fixture() {
  std::thread worker([] {});                    // line 8: D4 (std::thread)
  std::jthread helper([] {});                   // line 9: D4 (std::jthread)
  auto f = std::async([] { return 1; });        // line 10: D4 (std::async)
  worker.join();
  (void)f;
}
