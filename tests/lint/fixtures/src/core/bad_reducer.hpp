// R1 fixture: Reducer subclasses with and without the full fault-hook set.
// The lint rule is lexical — these fake declarations never compile against
// the real core/reducer.hpp and do not need to.
#pragma once

struct NodeId {};
struct Mass {};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void on_link_down(NodeId j) = 0;
  virtual void on_link_up(NodeId j) {}
  virtual void update_data(const Mass& delta) = 0;
};

class ForgetfulReducer : public Reducer {  // line 17: R1 (no on_link_up/update_data)
 public:
  void on_link_down(NodeId j) override;
};

class CompleteReducer final : public Reducer {  // clean: declares all hooks
 public:
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
};

class Unrelated {  // clean: not a Reducer
 public:
  void nothing();
};

// The roster-shaped cases: missing exactly ONE hook must still be flagged —
// a tree reducer that handles link churn but ignores live data updates (or
// vice versa) is precisely the half-implemented state R1 exists to catch.
class TreeishReducer : public Reducer {  // R1 (update_data missing)
 public:
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
};

class HybridishReducer : public Reducer {  // R1 (on_link_up missing)
 public:
  void on_link_down(NodeId j) override;
  void update_data(const Mass& delta) override;
};
