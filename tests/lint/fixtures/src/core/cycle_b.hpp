// L1 cycle fixture, half B: closes the loop back to A. The DFS reaches A
// first (sorted order), so the back edge — and the diagnostic — lands here.
#pragma once
#include "core/cycle_a.hpp"

inline int cycle_b() { return 2; }
