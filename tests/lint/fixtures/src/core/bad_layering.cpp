// L1 fixture: core reaching UP the layer DAG. The downward includes (net
// graph layer, support) stay clean; the sim and runtime ones fire.
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "runtime/mailbox.hpp"

int core_stays_below_sim_and_runtime() { return 0; }
