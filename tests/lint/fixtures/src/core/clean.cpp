// Clean fixture: deterministic-path code that exercises the rules'
// look-alikes without violating any of them.
#include <map>

struct Clock {
  double time() const { return now_; }  // member named `time`: not ::time
  double now_ = 0.0;
};

double fixture() {
  std::map<int, double> ordered;  // ordered container: fine in deterministic paths
  ordered[1] = 2.5;
  Clock clock;
  double total = clock.time();
  for (const auto& [k, v] : ordered) total += v * k;
  if (total == 0.0) return 1.0;  // zero sentinel: sanctioned
  return total;
}
