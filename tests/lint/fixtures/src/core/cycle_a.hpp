// L1 cycle fixture, half A: same-layer include, so the per-file band check
// stays quiet — only the cross-TU cycle pass may complain.
#pragma once
#include "core/cycle_b.hpp"

inline int cycle_a() { return 1; }
