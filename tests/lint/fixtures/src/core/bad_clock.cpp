// D1 fixture: every nondeterminism source the rule must catch, plus the
// look-alikes it must NOT flag. tests/lint/test_lint.cpp asserts the exact
// rule IDs and line numbers below — keep line positions stable when editing.
#include <chrono>
#include <cstdlib>
#include <ctime>

struct View {
  double time() const { return 0.0; }  // declaration + member: not a call of ::time
};

double fixture() {
  View view;
  double acc = view.time();                              // member access: clean
  acc += static_cast<double>(std::time(nullptr));        // line 15: D1 (std::time)
  acc += static_cast<double>(time(nullptr));             // line 16: D1 (bare call)
  auto tp = std::chrono::steady_clock::now();            // line 17: D1 (steady_clock)
  auto wall = std::chrono::system_clock::now();          // line 18: D1 (system_clock)
  const char* home = std::getenv("HOME");                // line 19: D1 (getenv)
  acc += static_cast<double>(rand());                    // line 20: D1 (rand)
  (void)tp;
  (void)wall;
  (void)home;
  return acc;
}
