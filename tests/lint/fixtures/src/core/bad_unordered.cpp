// D2 fixture: unordered containers in a deterministic path. One naked use
// (must fire) and one declaration with a reasoned suppression (must not).
// The includes themselves fire too — pulling the header in is the first leak.
#include <unordered_map>  // line 4: D2
#include <unordered_set>  // line 5: D2

int fixture() {
  std::unordered_map<int, int> order_leaks;  // line 8: D2
  // pcflow-lint: allow(D2) lookup-only cache; nothing ever iterates it
  std::unordered_set<int> lookup_only;
  order_leaks[1] = 2;
  lookup_only.insert(3);
  return static_cast<int>(order_leaks.size() + lookup_only.size());
}
