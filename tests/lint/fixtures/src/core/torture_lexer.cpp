// Lexer-hardening fixture (CRLF line endings, written by a printf in the
// repo tooling): banned names inside a raw string stay literal, a comment
// splice swallows the next line, and only the real call below fires.
const char* kRaw = R"(std::rand() #include <unordered_map> time(nullptr))";
// the backslash splices the next line into this comment: \
std::mt19937 swallowed_by_the_comment;
long tick = std::time(nullptr);
