// LNT fixture: suppression hygiene. A reasonless allow, an unknown rule and
// an unused allow must each produce an LNT diagnostic; the reasonless allow
// must NOT silence the underlying D1 finding.
#include <cstdlib>

int fixture() {
  // pcflow-lint: allow(D1)
  const char* a = std::getenv("A");  // line 8: D1 still fires (no reason given)
  // pcflow-lint: allow(D9) not a rule
  const char* b = std::getenv("B");  // line 10: D1 fires (allow names unknown rule)
  // pcflow-lint: allow(D2) nothing on the next line iterates anything
  const char* c = std::getenv("C");  // line 12: D1 fires; the D2 allow is unused
  return (a != nullptr) + (b != nullptr) + (c != nullptr);
}
