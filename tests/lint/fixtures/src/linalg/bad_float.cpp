// F1 fixture: float in numeric state, equality against nonzero float
// literals. Comparison against the exact-zero sentinel must stay clean.
double fixture(double a, double b) {
  float truncated = static_cast<float>(a);  // line 4: F1 (x2: type + cast)
  if (a == 1.5) return b;                   // line 5: F1 (eq vs nonzero literal)
  if (b != 2.0e-3) return a;                // line 6: F1 (neq vs nonzero literal)
  if (a == 0.0) return 0.0;                 // clean: zero sentinel
  if (a == b) return a;                     // clean: lexical rule sees no literal
  return static_cast<double>(truncated);
}
