// S1 fixture: socket/process syscalls outside the boundary files. This path
// (src/runtime/, but NOT udp.* / socket_runtime.*) must stay
// transport-agnostic, so every include and call below fires; the same source
// under a boundary path stays clean (see the scoping tests). The clock read
// proves D1 now covers src/runtime too.
#include <sys/socket.h>  // line 6: S1 (include)
#include <sys/wait.h>    // line 7: S1 (include)
#include <poll.h>        // line 8: S1 (include)

void fixture() {
  int fd = socket(2, 2, 0);                     // line 11: S1 (socket)
  ::sendto(fd, nullptr, 0, 0, nullptr, 0);      // line 12: S1 (::sendto)
  poll(nullptr, 0, 0);                          // line 13: S1 (poll)
  int child = fork();                           // line 14: S1 (fork)
  kill(child, 9);                               // line 15: S1 (kill)
  waitpid(child, nullptr, 0);                   // line 16: S1 (waitpid)
  auto t = std::chrono::steady_clock::now();    // line 17: D1 (steady_clock)
  (void)fd;
  (void)t;
}
