// T1 fixture: plain data members clustered against a mutex member with no
// PCF_GUARDED_BY annotation. The method declaration above the mutex and the
// atomic below the cluster stay clean.
#pragma once
#include <atomic>
#include <mutex>

namespace fixture {

class BadGuard {
 public:
  void close();

 private:
  std::mutex mutex_;
  int counter_ = 0;
  bool closed_ = false;
  std::atomic<int> hits_{0};
};

}  // namespace fixture
