// Tests for pcflow-lint: the fixture tree under tests/lint/fixtures is a
// miniature project whose violations are annotated line by line; this suite
// asserts the exact (file, line, rule) tuples the tool reports, that
// suppressions suppress (and misbehaving ones do not), that rule toggles
// work, and that two runs over the same tree produce byte-identical reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"
#include "tools/lint/lint.hpp"

namespace pcf::lint {
namespace {

// Set by tests/CMakeLists.txt; points at tests/lint/fixtures in the source tree.
constexpr const char* kFixtureDir = PCF_LINT_FIXTURE_DIR;

/// Compact (file, line, rule) view of a diagnostic list for exact matching.
[[nodiscard]] std::vector<std::string> keys(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const auto& d : diags) {
    out.push_back(d.file + ":" + std::to_string(d.line) + ":" + std::string(to_string(d.rule)));
  }
  return out;
}

[[nodiscard]] std::vector<std::string> lint_keys(std::string_view path, std::string_view src,
                                                 const Options& options = {}) {
  return keys(lint_source(path, src, options));
}

// ------------------------------------------------------------ fixtures -----

TEST(LintFixtures, WholeTreeMatchesAnnotations) {
  const RunResult result = run_directory(kFixtureDir);
  EXPECT_EQ(result.files_scanned, 14u);
  const std::vector<std::string> expected = {
      "src/core/bad_clock.cpp:15:D1",      // std::time
      "src/core/bad_clock.cpp:16:D1",      // bare time( call
      "src/core/bad_clock.cpp:17:D1",      // steady_clock
      "src/core/bad_clock.cpp:18:D1",      // system_clock
      "src/core/bad_clock.cpp:19:D1",      // getenv
      "src/core/bad_clock.cpp:20:D1",      // rand
      "src/core/bad_layering.cpp:4:L1",    // core includes sim/
      "src/core/bad_layering.cpp:5:L1",    // core includes runtime/
      "src/core/bad_reducer.hpp:17:R1",    // ForgetfulReducer misses two hooks
      "src/core/bad_reducer.hpp:37:R1",    // TreeishReducer misses update_data
      "src/core/bad_reducer.hpp:43:R1",    // HybridishReducer misses on_link_up
      "src/core/bad_suppress.cpp:7:LNT",   // allow without reason
      "src/core/bad_suppress.cpp:8:D1",    // ...so the D1 still fires
      "src/core/bad_suppress.cpp:9:LNT",   // allow names unknown rule D9
      "src/core/bad_suppress.cpp:10:D1",   // ...so the D1 still fires
      "src/core/bad_suppress.cpp:11:LNT",  // unused D2 allow
      "src/core/bad_suppress.cpp:12:D1",   // the allow targeted the wrong rule
      "src/core/bad_unordered.cpp:4:D2",   // #include <unordered_map>
      "src/core/bad_unordered.cpp:5:D2",   // #include <unordered_set>
      "src/core/bad_unordered.cpp:8:D2",   // naked declaration
      "src/core/cycle_b.hpp:4:L1",         // include cycle back edge a -> b -> a
      "src/core/torture_lexer.cpp:7:D1",   // std::time — the one line the lexer
                                           // traps (CRLF/raw-string/splice) let through
      "src/linalg/bad_float.cpp:4:F1",     // float type
      "src/linalg/bad_float.cpp:4:F1",     // static_cast<float>
      "src/linalg/bad_float.cpp:5:F1",     // == 1.5
      "src/linalg/bad_float.cpp:6:F1",     // != 2.0e-3
      "src/runtime/bad_guard.hpp:16:T1",   // counter_ next to mutex_, unannotated
      "src/runtime/bad_guard.hpp:17:T1",   // closed_ likewise
      "src/runtime/bad_socket.cpp:6:S1",   // #include <sys/socket.h>
      "src/runtime/bad_socket.cpp:7:S1",   // #include <sys/wait.h>
      "src/runtime/bad_socket.cpp:8:S1",   // #include <poll.h>
      "src/runtime/bad_socket.cpp:11:S1",  // bare socket( call
      "src/runtime/bad_socket.cpp:12:S1",  // ::sendto
      "src/runtime/bad_socket.cpp:13:S1",  // bare poll( call
      "src/runtime/bad_socket.cpp:14:S1",  // bare fork( call
      "src/runtime/bad_socket.cpp:15:S1",  // bare kill( call
      "src/runtime/bad_socket.cpp:16:S1",  // bare waitpid( call
      "src/runtime/bad_socket.cpp:17:D1",  // steady_clock — D1 covers runtime now
      "src/sim/bad_rng.cpp:3:D3",          // #include <random>
      "src/sim/bad_rng.cpp:6:D3",          // std::mt19937
      "src/sim/bad_rng.cpp:7:D3",          // std::uniform_real_distribution
      "src/sim/bad_threads.cpp:4:D4",      // #include <thread>
      "src/sim/bad_threads.cpp:5:D4",      // #include <future>
      "src/sim/bad_threads.cpp:8:D4",      // std::thread
      "src/sim/bad_threads.cpp:9:D4",      // std::jthread
      "src/sim/bad_threads.cpp:10:D4",     // std::async
  };
  EXPECT_EQ(keys(result.diagnostics), expected);
}

TEST(LintFixtures, CleanFileIsClean) {
  const RunResult result = run_files(kFixtureDir, {"src/core/clean.cpp"});
  EXPECT_EQ(result.files_scanned, 1u);
  EXPECT_TRUE(result.diagnostics.empty()) << format_report(result);
}

TEST(LintFixtures, ReportIsByteDeterministic) {
  const std::string a = format_report(run_directory(kFixtureDir));
  const std::string b = format_report(run_directory(kFixtureDir));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("pcflow-lint: 14 file(s) scanned, 46 diagnostic(s)"), std::string::npos) << a;
}

// ------------------------------------------------------------- scoping -----

TEST(LintScoping, D1OnlyFiresInDeterministicPaths) {
  const std::string_view src = "int f() { return std::rand(); }\n";
  EXPECT_EQ(lint_keys("src/core/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/sim/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/net/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/bench/a.cpp", src).size(), 1u);
  // src/runtime is deterministic-scoped too — except the socket boundary,
  // which owns real clocks and sockets by design.
  EXPECT_EQ(lint_keys("src/runtime/a.cpp", src).size(), 1u);
  EXPECT_TRUE(lint_keys("src/runtime/udp.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/runtime/socket_runtime.cpp", src).empty());
  // The CLI, support and tools layers may read the environment / clock.
  EXPECT_TRUE(lint_keys("src/tools/a.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/support/a.cpp", src).empty());
}

TEST(LintScoping, D2AlsoCoversRuntimeAndLinalg) {
  const std::string_view src = "std::unordered_map<int, int> m;\n";
  EXPECT_EQ(lint_keys("src/runtime/a.cpp", src), (std::vector<std::string>{
                                                     "src/runtime/a.cpp:1:D2"}));
  EXPECT_EQ(lint_keys("src/linalg/a.cpp", src).size(), 1u);
  EXPECT_TRUE(lint_keys("src/support/a.cpp", src).empty());
}

TEST(LintScoping, D3AllowsOnlyTheRngModule) {
  const std::string_view src = "std::mt19937 gen(1);\n";
  EXPECT_TRUE(lint_keys("src/support/rng.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/support/rng.hpp", src).empty());
  EXPECT_EQ(lint_keys("src/support/stats.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/tools/a.cpp", src).size(), 1u);  // D3 is tree-wide
}

TEST(LintScoping, D4BansRawThreadsOnlyInDeterministicPaths) {
  const std::string_view src = "void f() { std::thread t([] {}); t.join(); }\n";
  EXPECT_EQ(lint_keys("src/core/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/sim/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/net/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/bench/a.cpp", src).size(), 1u);
  // Generic src/runtime files may NOT spawn threads either — only the named
  // thread owners (threaded runtime + socket boundary) and the support layer,
  // where support/parallel.hpp's workers live.
  EXPECT_EQ(lint_keys("src/runtime/a.cpp", src).size(), 1u);
  EXPECT_TRUE(lint_keys("src/runtime/threaded_runtime.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/runtime/socket_runtime.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/runtime/udp.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/support/parallel.hpp", src).empty());
}

TEST(LintScoping, S1AllowsOnlyTheSocketBoundary) {
  const std::string_view src = "int f() { return fork(); }\n";
  EXPECT_EQ(lint_keys("src/core/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/net/topology.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/sim/a.cpp", src).size(), 1u);
  EXPECT_EQ(lint_keys("src/linalg/a.cpp", src).size(), 1u);
  // Inside src/runtime only the two boundary files may touch the OS; even the
  // net-trial driver and mailbox stay syscall-free.
  EXPECT_EQ(lint_keys("src/runtime/net_trial.cpp", src),
            (std::vector<std::string>{"src/runtime/net_trial.cpp:1:S1"}));
  EXPECT_TRUE(lint_keys("src/runtime/udp.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/runtime/udp.hpp", src).empty());
  EXPECT_TRUE(lint_keys("src/runtime/socket_runtime.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/tools/a.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/support/a.cpp", src).empty());
}

TEST(LintRulesD4, UnqualifiedNamesAndMembersStayClean) {
  // `thread`/`async` are ordinary words; only the std::-qualified primitive
  // (or the header include) is hand-rolled concurrency.
  EXPECT_TRUE(lint_keys("src/sim/a.cpp",
                        "std::size_t resolve(std::size_t thread) { return thread; }\n"
                        "void g(Pool& p) { p.async(); }\n")
                  .empty());
  EXPECT_EQ(lint_keys("src/sim/a.cpp", "#include <thread>\n").size(), 1u);
  EXPECT_EQ(lint_keys("src/sim/a.cpp", "auto r = std::async(f);\n").size(), 1u);
}

TEST(LintScoping, F1EqualityExemptsOracleFiles) {
  const std::string_view src = "bool f(double x) { return x == 1.25; }\n";
  EXPECT_EQ(lint_keys("src/sim/reduce.cpp", src).size(), 1u);
  EXPECT_TRUE(lint_keys("src/sim/differential.cpp", src).empty());
  EXPECT_TRUE(lint_keys("src/linalg/eigen_ref.cpp", src).empty());
}

// --------------------------------------------------------------- rules -----

TEST(LintRules, D1MemberNamedTimeIsNotACall) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp", "double f(View v) { return v.time(); }\n").empty());
  EXPECT_TRUE(lint_keys("src/core/a.cpp", "struct S { double time() const; };\n").empty());
  EXPECT_EQ(lint_keys("src/core/a.cpp", "long f() { return time(nullptr); }\n").size(), 1u);
}

TEST(LintRules, D1NeverFiresInCommentsOrStrings) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "// calling std::rand() would break determinism\n"
                        "const char* kDoc = \"std::rand() is banned\";\n")
                  .empty());
}

TEST(LintRules, R1SeesThroughFinalAndTemplateBases) {
  // `final`, access specifiers and a template base before Reducer.
  const std::string_view src =
      "class Good final : public Mixin<int>, public Reducer {\n"
      " public:\n"
      "  void on_link_down(NodeId j) override;\n"
      "  void on_link_up(NodeId j) override;\n"
      "  void update_data(const Mass& d) override;\n"
      "};\n"
      "class Bad : public Reducer {\n"
      "  void on_link_down(NodeId j) override;\n"
      "};\n";
  EXPECT_EQ(lint_keys("src/core/a.hpp", src),
            (std::vector<std::string>{"src/core/a.hpp:7:R1"}));
}

TEST(LintRules, R1IgnoresNonReducerClasses) {
  EXPECT_TRUE(lint_keys("src/core/a.hpp",
                        "class A : public Widget {};\n"
                        "class Reducer { void on_link_down(); };\n"  // the base itself
                        "enum class Reducer2 : int {};\n")
                  .empty());
}

TEST(LintRulesS1, MemberAndForeignQualifiedNamesStayClean) {
  // `poll`/`kill`/`select` as member calls or names in another namespace are
  // ordinary words; only the raw syscall shape (bare call or ::-qualified)
  // marks OS-boundary code.
  EXPECT_TRUE(lint_keys("src/runtime/a.cpp",
                        "void f(Socket& s) { s.poll(); }\n"
                        "void g(Supervisor* s) { s->kill(3); }\n"
                        "void h() { os::select(); }\n"
                        "struct W { int fork() const; };\n")
                  .empty());
  EXPECT_EQ(lint_keys("src/runtime/a.cpp", "void f() { poll(nullptr, 0, 0); }\n").size(), 1u);
  EXPECT_EQ(lint_keys("src/runtime/a.cpp", "#include <sys/socket.h>\n").size(), 1u);
}

TEST(LintRulesS1, StdBindIsNotASocketCall) {
  // `bind` is deliberately absent from the banned-call list (std::bind is a
  // legitimate std name); hand-rolled socket binds are caught by the
  // <sys/socket.h> include they cannot avoid.
  EXPECT_TRUE(lint_keys("src/sim/a.cpp", "auto f = std::bind(&g, 1);\n").empty());
}

TEST(LintRulesS1, SuppressionWorksLikeEveryOtherRule) {
  EXPECT_TRUE(lint_keys("src/runtime/a.cpp",
                        "int f() { return fork(); }  "
                        "// pcflow-lint: allow(S1) fixture exercises the banned call\n")
                  .empty());
}

TEST(LintRules, F1ZeroSentinelStaysClean) {
  EXPECT_TRUE(lint_keys("src/sim/a.cpp", "bool f(double x) { return x == 0.0; }\n").empty());
  EXPECT_TRUE(lint_keys("src/sim/a.cpp", "bool f(double x) { return x != 0.; }\n").empty());
  EXPECT_EQ(lint_keys("src/sim/a.cpp", "bool f(double x) { return x == 1e-9; }\n").size(), 1u);
}

TEST(LintRules, F1FloatKeywordOnlyInStatePaths) {
  EXPECT_EQ(lint_keys("src/core/a.cpp", "float x = 0;\n").size(), 1u);
  EXPECT_TRUE(lint_keys("src/sim/a.cpp", "float x = 0;\n").empty());  // D1/D2/D3 path, not F1
}

// ------------------------------------------------------------------- L1 ----

TEST(LintRulesL1, BandChecksFollowTheLayerDag) {
  // Downward or same-layer includes are clean...
  EXPECT_TRUE(lint_keys("src/core/a.cpp", "#include \"net/topology.hpp\"\n").empty());
  EXPECT_TRUE(lint_keys("src/core/a.cpp", "#include \"support/check.hpp\"\n").empty());
  EXPECT_TRUE(lint_keys("src/net/transport.cpp", "#include \"core/packet.hpp\"\n").empty());
  EXPECT_TRUE(lint_keys("src/runtime/a.cpp", "#include \"sim/engine.hpp\"\n").empty());
  EXPECT_TRUE(lint_keys("src/sim/a.cpp", "#include \"linalg/power.hpp\"\n").empty());
  // ...upward ones fire. The graph half of src/net sits BELOW core;
  // transport.* sits above it, mirroring the pcf_net / pcf_transport split.
  EXPECT_EQ(lint_keys("src/core/a.cpp", "#include \"runtime/mailbox.hpp\"\n"),
            (std::vector<std::string>{"src/core/a.cpp:1:L1"}));
  EXPECT_EQ(lint_keys("src/core/a.cpp", "#include \"sim/engine.hpp\"\n").size(), 1u);
  EXPECT_EQ(lint_keys("src/net/topology.cpp", "#include \"core/packet.hpp\"\n").size(), 1u);
  EXPECT_EQ(lint_keys("src/support/a.hpp", "#include \"core/packet.hpp\"\n").size(), 1u);
  // System headers and paths outside the layered tree are no one's business
  // (of L1's — S1 still owns the OS-header bans).
  EXPECT_TRUE(lint_keys("src/core/a.cpp", "#include <vector>\n").empty());
  EXPECT_TRUE(lint_keys("tests/foo.cpp", "#include \"runtime/mailbox.hpp\"\n").empty());
}

TEST(LintRulesL1, SuppressionWorksForBandViolations) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "// pcflow-lint: allow(L1) fixture exercises the upward include\n"
                        "#include \"sim/engine.hpp\"\n")
                  .empty());
}

TEST(LintRulesL1, IncludeCycleIsReportedOnTheBackEdge) {
  const RunResult result =
      run_files(kFixtureDir, {"src/core/cycle_a.hpp", "src/core/cycle_b.hpp"});
  EXPECT_EQ(keys(result.diagnostics),
            (std::vector<std::string>{"src/core/cycle_b.hpp:4:L1"}));
  EXPECT_NE(result.diagnostics[0].message.find(
                "src/core/cycle_a.hpp -> src/core/cycle_b.hpp -> src/core/cycle_a.hpp"),
            std::string::npos);
  // Disabling L1 silences the cycle pass along with the band checks.
  Options no_l1;
  no_l1.enabled = {Rule::kD1, Rule::kLnt};
  EXPECT_TRUE(
      run_files(kFixtureDir, {"src/core/cycle_a.hpp", "src/core/cycle_b.hpp"}, no_l1)
          .diagnostics.empty());
}

// ------------------------------------------------------------------- T1 ----

TEST(LintRulesT1, FiresOnlyNearSyncMembersAndOnlyInRuntimePaths) {
  const std::string_view src =
      "class C {\n"
      "  int before_ = 0;\n"
      "  std::mutex mutex_;\n"
      "  int counter_ = 0;\n"
      "  std::vector<double> guarded_ PCF_GUARDED_BY(mutex_);\n"
      "  std::atomic<int> hits_{0};\n"
      "  void drain();\n"
      "};\n";
  // Only counter_: before_ precedes the mutex, guarded_ is annotated, hits_
  // is atomic, drain() is a function.
  EXPECT_EQ(lint_keys("src/runtime/a.hpp", src),
            (std::vector<std::string>{"src/runtime/a.hpp:4:T1"}));
  EXPECT_EQ(lint_keys("src/support/parallel.hpp", src).size(), 1u);  // in scope
  EXPECT_TRUE(lint_keys("src/sim/a.hpp", src).empty());              // out of scope
  EXPECT_TRUE(lint_keys("src/support/other.hpp", src).empty());      // ditto
}

TEST(LintRulesT1, ConditionVariableAndPcfMutexAnchorTheWindowToo) {
  EXPECT_EQ(lint_keys("src/runtime/a.hpp",
                      "class C {\n"
                      "  std::condition_variable space_;\n"
                      "  bool full_ = false;\n"
                      "};\n")
                .size(),
            1u);
  EXPECT_EQ(lint_keys("src/runtime/a.hpp",
                      "class C {\n"
                      "  Mutex mutex_;\n"
                      "  bool stop_ = false;\n"
                      "};\n")
                .size(),
            1u);
}

TEST(LintRulesT1, WindowExpiresFarFromTheLock) {
  // Eight 5-token method declarations put the next member 41 tokens past the
  // mutex — one past the 40-token window, so it no longer needs an annotation.
  const std::string_view src =
      "class C {\n"
      "  std::mutex mutex_;\n"
      "  void a(); void b(); void c(); void d();\n"
      "  void e(); void f(); void g(); void h();\n"
      "  int far_ = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_keys("src/runtime/a.hpp", src).empty());
}

TEST(LintRulesT1, NestedTypesAndFreeCodeStayClean) {
  // The nested struct's own members are scanned (none near a lock), the
  // using-alias and static member are exempt shapes, and locals inside
  // function bodies are invisible to a class-member rule.
  EXPECT_TRUE(lint_keys("src/runtime/a.hpp",
                        "class C {\n"
                        "  std::mutex mutex_;\n"
                        "  struct Inner { int x = 0; };\n"
                        "  using Clock = int;\n"
                        "  static constexpr int kN = 3;\n"
                        "};\n"
                        "void f() { std::mutex local; int unguarded = 0; }\n")
                  .empty());
}

// ------------------------------------------------------------------ json ---

TEST(LintJson, ReportIsByteDeterministicAndVersioned) {
  const std::string a = format_report_json(run_directory(kFixtureDir));
  const std::string b = format_report_json(run_directory(kFixtureDir));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"pcflow-lint\""), std::string::npos);
  EXPECT_NE(a.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"files_scanned\": 14"), std::string::npos);
  EXPECT_NE(a.find("\"diagnostic_count\": 46"), std::string::npos);
  EXPECT_NE(a.find("\"rule\": \"L1\""), std::string::npos);
  EXPECT_NE(a.find("\"rule\": \"T1\""), std::string::npos);
  EXPECT_EQ(a.back(), '\n');
}

TEST(LintJson, CleanRunStillCarriesTheEnvelope) {
  const std::string json =
      format_report_json(run_files(kFixtureDir, {"src/core/clean.cpp"}));
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostic_count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\": []"), std::string::npos);
}

// --------------------------------------------------------- suppression -----

TEST(LintSuppression, TrailingCommentCoversItsOwnLine) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "int f() { return std::rand(); }  "
                        "// pcflow-lint: allow(D1) fixture exercises the banned call\n")
                  .empty());
}

TEST(LintSuppression, StandaloneCommentCoversNextCodeLine) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "// pcflow-lint: allow(D1) fixture exercises the banned call\n"
                        "int f() { return std::rand(); }\n")
                  .empty());
}

TEST(LintSuppression, MultiRuleAllowCoversBothDiagnostics) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "// pcflow-lint: allow(D1,D2) both banned things, one proven-safe line\n"
                        "std::unordered_map<int, int> m; int x = std::rand();\n")
                  .empty());
}

TEST(LintSuppression, ReasonlessAllowSuppressesNothing) {
  const auto got = lint_keys("src/core/a.cpp",
                             "// pcflow-lint: allow(D1)\n"
                             "int f() { return std::rand(); }\n");
  EXPECT_EQ(got, (std::vector<std::string>{"src/core/a.cpp:1:LNT", "src/core/a.cpp:2:D1"}));
}

TEST(LintSuppression, UnusedAllowIsItselfADiagnostic) {
  const auto got = lint_keys("src/core/a.cpp",
                             "// pcflow-lint: allow(D2) nothing here iterates\n"
                             "int f() { return 1; }\n");
  EXPECT_EQ(got, (std::vector<std::string>{"src/core/a.cpp:1:LNT"}));
}

TEST(LintSuppression, LntCannotBeSuppressed) {
  const auto got = lint_keys("src/core/a.cpp",
                             "// pcflow-lint: allow(LNT) trying to silence the meta rule\n"
                             "int f() { return 1; }\n");
  EXPECT_EQ(got, (std::vector<std::string>{"src/core/a.cpp:1:LNT"}));
}

TEST(LintSuppression, ProseMentioningTheToolIsNotAnAnnotation) {
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "// pcflow-lint is documented in docs/TESTING.md\n"
                        "// the syntax is `pcflow-lint: allow(<rule>) <reason>`\n"
                        "int f() { return 1; }\n")
                  .empty());
}

TEST(LintSuppression, MalformedAnnotationIsReported) {
  const auto got = lint_keys("src/core/a.cpp",
                             "// pcflow-lint: disable(D1) wrong verb\n"
                             "int f() { return 1; }\n");
  EXPECT_EQ(got, (std::vector<std::string>{"src/core/a.cpp:1:LNT"}));
}

// -------------------------------------------------------------- toggles ----

TEST(LintToggles, DisabledRuleDoesNotFire) {
  Options only_d3;
  only_d3.enabled = {Rule::kD3};
  const std::string_view src =
      "std::unordered_map<int, int> m;\n"
      "std::mt19937 gen(1);\n";
  EXPECT_EQ(lint_keys("src/core/a.cpp", src, only_d3),
            (std::vector<std::string>{"src/core/a.cpp:2:D3"}));
}

TEST(LintToggles, SuppressionForDisabledRuleIsNotFlaggedUnused) {
  Options no_d2;
  no_d2.enabled = {Rule::kD1, Rule::kD3, Rule::kR1, Rule::kF1, Rule::kLnt};
  EXPECT_TRUE(lint_keys("src/core/a.cpp",
                        "// pcflow-lint: allow(D2) lookup-only cache\n"
                        "std::unordered_map<int, int> m;\n",
                        no_d2)
                  .empty());
}

TEST(LintToggles, ParseRuleRoundTripsAndRejectsUnknown) {
  for (const Rule rule : kAllRules) {
    EXPECT_EQ(parse_rule(to_string(rule)), rule);
  }
  EXPECT_EQ(parse_rule("d1"), Rule::kD1);  // case-insensitive
  EXPECT_THROW((void)parse_rule("D9"), ContractViolation);
}

// ------------------------------------------------------------------ cli ----

TEST(LintCli, ExitCodesMatchContract) {
  const std::string root_flag = std::string("--root=") + kFixtureDir;
  {
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--quiet"};
    EXPECT_EQ(run_cli(3, argv), 1);  // fixtures are full of violations
  }
  {
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--quiet",
                          "src/core/clean.cpp"};
    EXPECT_EQ(run_cli(4, argv), 0);
  }
  {
    const char* argv[] = {"pcflow-lint", "--root=/nonexistent-pcflow-lint-root"};
    EXPECT_EQ(run_cli(2, argv), 2);
  }
  {
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--rules=bogus"};
    EXPECT_EQ(run_cli(3, argv), 2);
  }
}

TEST(LintCli, RuleFilterFlagsWork) {
  const std::string root_flag = std::string("--root=") + kFixtureDir;
  {
    // Only R1: the sole finding is in bad_reducer.hpp, so linting the RNG
    // fixture is clean.
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--rules=R1", "--quiet",
                          "src/sim/bad_rng.cpp"};
    EXPECT_EQ(run_cli(5, argv), 0);
  }
  {
    // Everything but D3: same file, same result.
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--disable=D3,LNT", "--quiet",
                          "src/sim/bad_rng.cpp"};
    EXPECT_EQ(run_cli(5, argv), 0);
  }
}

TEST(LintCli, RuleSingularAliasMergesWithRules) {
  const std::string root_flag = std::string("--root=") + kFixtureDir;
  {
    // --rule=R1 alone behaves exactly like --rules=R1.
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--rule=R1", "--quiet",
                          "src/sim/bad_rng.cpp"};
    EXPECT_EQ(run_cli(5, argv), 0);
  }
  {
    // Merged with --rules: D3 joins the enabled set, so the RNG fixture fires.
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--rules=R1", "--rule=D3",
                          "--quiet", "src/sim/bad_rng.cpp"};
    EXPECT_EQ(run_cli(6, argv), 1);
  }
  {
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--rule=bogus"};
    EXPECT_EQ(run_cli(3, argv), 2);
  }
}

TEST(LintCli, ListRulesPinsTheCatalog) {
  testing::internal::CaptureStdout();
  const char* argv[] = {"pcflow-lint", "--list-rules"};
  EXPECT_EQ(run_cli(2, argv), 0);
  const std::string out = testing::internal::GetCapturedStdout();
  // ID-first (4-wide column), catalog order, every rule present exactly once.
  EXPECT_EQ(out.find("D1   "), 0u);
  std::size_t prev = 0;
  for (const Rule rule : kAllRules) {
    const std::size_t at = out.find("\n" + std::string(to_string(rule)) + " ");
    if (rule == Rule::kD1) continue;  // D1 opens the output, no leading newline
    EXPECT_NE(at, std::string::npos) << to_string(rule);
    EXPECT_GT(at, prev) << to_string(rule);
    prev = at;
  }
  EXPECT_NE(out.find("L1   layer DAG"), std::string::npos);
  EXPECT_NE(out.find("T1   members within 40 tokens"), std::string::npos);
  EXPECT_NE(out.find("LNT  suppression hygiene"), std::string::npos);
}

TEST(LintCli, JsonFormatFlagEmitsTheSchema) {
  const std::string root_flag = std::string("--root=") + kFixtureDir;
  {
    testing::internal::CaptureStdout();
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--format=json",
                          "src/core/bad_layering.cpp"};
    EXPECT_EQ(run_cli(4, argv), 1);  // exit code contract is format-independent
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(out.find("{"), 0u);
    EXPECT_NE(out.find("\"schema\": \"pcflow-lint\""), std::string::npos);
    EXPECT_NE(out.find("\"rule\": \"L1\""), std::string::npos);
    EXPECT_NE(out.find("\"file\": \"src/core/bad_layering.cpp\""), std::string::npos);
  }
  {
    const char* argv[] = {"pcflow-lint", root_flag.c_str(), "--format=yaml"};
    EXPECT_EQ(run_cli(3, argv), 2);  // unknown format is a usage error
  }
}

}  // namespace
}  // namespace pcf::lint
