// Shape-level reproductions of the paper's experimental claims, small enough
// to run in the test suite (the full sweeps live in bench/).
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf {
namespace {

using core::Aggregate;
using core::Algorithm;
using test::make_engine;

/// Best (minimum over rounds) max local error seen during a run — the
/// "globally achievable accuracy" of Figs. 3/6.
double best_accuracy(sim::SyncEngine& engine, std::size_t rounds) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < rounds; ++r) {
    engine.step();
    best = std::min(best, engine.max_error());
  }
  return best;
}

TEST(PaperClaims, Fig3PfAccuracyDegradesWithScale) {
  // Fig. 3: PF's achievable accuracy gets worse with increasing n.
  const auto small = net::Topology::hypercube(3);
  const auto large = net::Topology::hypercube(9);
  auto e_small = make_engine(small, Algorithm::kPushFlow, Aggregate::kAverage, 7);
  auto e_large = make_engine(large, Algorithm::kPushFlow, Aggregate::kAverage, 7);
  const double acc_small = best_accuracy(e_small, 2000);
  const double acc_large = best_accuracy(e_large, 2000);
  EXPECT_GT(acc_large, 5.0 * acc_small);
}

TEST(PaperClaims, Fig6PcfAccuracyStaysNearMachinePrecision) {
  // Fig. 6: PCF reaches ~1e-15 across scales.
  for (const std::size_t dims : {3u, 6u, 9u}) {
    const auto t = net::Topology::hypercube(dims);
    auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 7);
    EXPECT_LT(best_accuracy(engine, 2000), 2e-14) << "dims " << dims;
  }
}

TEST(PaperClaims, Fig4VsFig7FailureRecovery) {
  // Figs. 4/7 joint setup: 6D hypercube, single permanent link failure
  // handled at iteration 75, 200 iterations, same seed for both algorithms.
  const auto t = net::Topology::hypercube(6);
  const auto edges = t.edges();
  sim::FaultPlan faults;
  faults.link_failures.push_back({75.0, edges[42].first, edges[42].second});

  auto pf = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 12, faults);
  auto pcf = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 12, faults);

  std::vector<double> pf_err, pcf_err;
  for (int round = 0; round < 200; ++round) {
    pf.step();
    pcf.step();
    pf_err.push_back(pf.max_error());
    pcf_err.push_back(pcf.max_error());
  }
  // Identical trajectories before the failure (same schedule).
  for (int round = 0; round < 74; ++round) {
    EXPECT_NEAR(pf_err[static_cast<std::size_t>(round)],
                pcf_err[static_cast<std::size_t>(round)],
                1e-6 + 0.02 * pf_err[static_cast<std::size_t>(round)]);
  }
  // PF falls back by orders of magnitude right after the failure handling…
  EXPECT_GT(pf_err[80], 1e3 * pf_err[73]);
  // …PCF stays within a small factor of its pre-failure error and never
  // falls back to O(1).
  EXPECT_LT(pcf_err[80], 1e4 * pcf_err[73] + 1e-15);
  EXPECT_LT(pcf_err[80], 1e-3);
  // And 200 iterations are not enough for PF to recover to PCF's accuracy.
  EXPECT_GT(pf_err[199], 10.0 * pcf_err[199]);
}

TEST(PaperClaims, SectionIIIFlowMagnitudesExplainAccuracy) {
  // The mechanism: PF flow magnitudes outgrow PCF's by a large factor on the
  // same workload — cancellation keeps PCF flows at the data scale.
  const auto t = net::Topology::hypercube(8);
  auto pf = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 3);
  auto pcf = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 3);
  pf.run(2000);
  pcf.run(2000);
  EXPECT_GT(pf.max_abs_flow(), 4.0 * pcf.max_abs_flow());
}

TEST(PaperClaims, PushSumDivergesUnderLossWhereFlowsRecover) {
  // Section II-A: mass conservation is global for push-sum (one lost message
  // destroys the result) but local for flow algorithms.
  const auto t = net::Topology::hypercube(5);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.05;
  auto ps = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 31, faults);
  auto pcf = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 31, faults);
  ps.run(1500);
  pcf.run(1500);
  EXPECT_GT(ps.max_error(), 1e-6);
  EXPECT_LT(pcf.max_error(), 1e-11);
}

}  // namespace
}  // namespace pcf
