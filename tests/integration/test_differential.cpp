// Differential oracle harness: the same seeded scenario replayed through the
// full algorithm roster, cross-checked against each other and against the
// oracle's exact reference (see src/sim/differential.hpp). The matrix here is
// the acceptance bar: every algorithm × topology × fault-class combination
// must agree exactly where the paper says it must.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/differential.hpp"
#include "sim/engine_sync.hpp"
#include "sim/fault_spec.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf {
namespace {

using core::Algorithm;
using sim::DifferentialConfig;
using sim::DifferentialResult;
using sim::DifferentialScenario;

std::string join(const std::vector<std::string>& lines) {
  std::ostringstream os;
  for (const auto& line : lines) os << "\n  " << line;
  return os.str();
}

// The three fault classes of the acceptance matrix. Link failures are
// scheduled AFTER the slowest topology has numerically converged — the paper's
// exactness claim ("failures cause no fall-back") is about failures of a
// converged flow network; an early failure during a PCF cancellation handshake
// may legitimately bias the result (the two-generals window, see
// push_cancel_flow.cpp) and is covered by the bounded-error sweeps instead.
enum class FaultClass { kNone, kLoss, kLateLinkFailure };

DifferentialScenario make_scenario(const std::string& topology_spec, FaultClass fault_class,
                                   double failure_time) {
  DifferentialScenario scenario;
  scenario.topology_spec = topology_spec;
  scenario.seed = 11;
  scenario.max_rounds = 20000;
  switch (fault_class) {
    case FaultClass::kNone:
      scenario.name = "nofault";
      break;
    case FaultClass::kLoss:
      scenario.name = "loss";
      scenario.faults.message_loss_prob = 0.1;
      break;
    case FaultClass::kLateLinkFailure:
      scenario.name = "linkfail";
      scenario.faults.link_failures.push_back({failure_time, 0, 1});
      break;
  }
  return scenario;
}

struct MatrixCase {
  std::string topology;
  double failure_time;  // late enough that the flow network has converged
};

class DifferentialMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DifferentialMatrix, NoFault) {
  const auto result = run_differential(make_scenario(GetParam().topology, FaultClass::kNone, 0));
  EXPECT_FALSE(result.diverged()) << join(result.divergences);
  ASSERT_EQ(result.outcomes.size(), 6u);  // the full roster replays by default
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.trusted);  // nothing injected: even push-sum is exact
    EXPECT_TRUE(outcome.converged);
  }
}

TEST_P(DifferentialMatrix, MessageLoss) {
  const auto result = run_differential(make_scenario(GetParam().topology, FaultClass::kLoss, 0));
  EXPECT_FALSE(result.diverged()) << join(result.divergences);
  for (const auto& outcome : result.outcomes) {
    // Push-sum loses mass with every dropped packet; the flow algorithms heal.
    EXPECT_EQ(outcome.trusted, outcome.algorithm != Algorithm::kPushSum);
    if (outcome.trusted) {
      EXPECT_TRUE(outcome.converged);
    }
  }
}

TEST_P(DifferentialMatrix, LateLinkFailure) {
  const auto result = run_differential(
      make_scenario(GetParam().topology, FaultClass::kLateLinkFailure, GetParam().failure_time));
  EXPECT_FALSE(result.diverged()) << join(result.divergences);
  for (const auto& outcome : result.outcomes) {
    // Mass-conserving flow algorithms ride out the cut; push-sum loses its
    // in-flight share, and an exclusion can orphan a correction subtree
    // (fragment roots honestly report fragment aggregates) — the paper's
    // trade-off, encoded as "untrusted under exclusions".
    EXPECT_EQ(outcome.trusted, outcome.algorithm != Algorithm::kPushSum &&
                                   outcome.algorithm != Algorithm::kCorrectionAllreduce);
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DifferentialMatrix,
                         ::testing::Values(MatrixCase{"hypercube:4", 500},
                                           MatrixCase{"grid:4x5", 1500},
                                           MatrixCase{"ring:16", 4000}),
                         [](const auto& param_info) {
                           std::string name = param_info.param.topology;
                           for (char& c : name) {
                             if (c == ':' || c == 'x') c = '_';
                           }
                           return name;
                         });

TEST(Differential, IsDeterministic) {
  const auto scenario = make_scenario("hypercube:4", FaultClass::kLoss, 0);
  const auto first = run_differential(scenario);
  const auto second = run_differential(scenario);
  ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
  for (std::size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(first.outcomes[i].rounds, second.outcomes[i].rounds);
    // Bitwise equality: the whole replay (schedule, faults, arithmetic) is a
    // pure function of the seed.
    EXPECT_EQ(first.outcomes[i].max_error, second.outcomes[i].max_error);
    EXPECT_EQ(first.outcomes[i].consensus, second.outcomes[i].consensus);
  }
}

TEST(Differential, TrustTableMatchesThePaper) {
  sim::FaultPlan clean;
  EXPECT_TRUE(algorithm_trusted(Algorithm::kPushSum, clean));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kPushCancelFlow, clean));

  sim::FaultPlan lossy;
  lossy.message_loss_prob = 0.2;
  EXPECT_FALSE(algorithm_trusted(Algorithm::kPushSum, lossy));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kPushFlow, lossy));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kPushCancelFlow, lossy));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFlowUpdating, lossy));

  sim::FaultPlan corrupting;
  corrupting.bit_flip_prob = 1e-3;
  for (const auto algorithm :
       {Algorithm::kPushSum, Algorithm::kPushFlow, Algorithm::kPushCancelFlow,
        Algorithm::kFlowUpdating, Algorithm::kCorrectionAllreduce, Algorithm::kFuMassHybrid}) {
    EXPECT_FALSE(algorithm_trusted(algorithm, corrupting));
  }
}

TEST(Differential, RosterTrustTableEncodesTheTradeOff) {
  // The two roster additions split exactly along the paper's axis:
  // correction allreduce is EXACT under message-level faults (loss,
  // duplication, reordering, even live data updates) but fragments under any
  // exclusion; the FU/MD hybrid inherits FU's flow-discipline trust.
  sim::FaultPlan clean;
  EXPECT_TRUE(algorithm_trusted(Algorithm::kCorrectionAllreduce, clean));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFuMassHybrid, clean));

  sim::FaultPlan messaging;
  messaging.message_loss_prob = 0.2;
  messaging.duplicate_prob = 0.1;
  messaging.reorder_prob = 0.1;
  messaging.data_updates.push_back({10.0, 0, core::Mass::scalar(1.0, 0.0)});
  EXPECT_TRUE(algorithm_trusted(Algorithm::kCorrectionAllreduce, messaging));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFuMassHybrid, messaging));

  sim::FaultPlan cut;
  cut.link_failures.push_back({100.0, 0, 1});
  EXPECT_FALSE(algorithm_trusted(Algorithm::kCorrectionAllreduce, cut));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFuMassHybrid, cut));

  sim::FaultPlan crash;
  crash.node_crashes.push_back({100.0, 3});
  EXPECT_FALSE(algorithm_trusted(Algorithm::kCorrectionAllreduce, crash));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFuMassHybrid, crash));

  sim::FaultPlan flapping;
  flapping.false_detects.push_back({100.0, 0, 1, 10.0});
  EXPECT_FALSE(algorithm_trusted(Algorithm::kCorrectionAllreduce, flapping));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFuMassHybrid, flapping));

  sim::FaultPlan churning;
  churning.churn_fail_prob = 0.01;
  churning.churn_heal_rate = 0.2;
  EXPECT_FALSE(algorithm_trusted(Algorithm::kCorrectionAllreduce, churning));
  EXPECT_TRUE(algorithm_trusted(Algorithm::kFuMassHybrid, churning));
}

TEST(Differential, ReproCommandRoundTripsThroughTheFaultSpec) {
  DifferentialScenario scenario = make_scenario("ring:16", FaultClass::kLateLinkFailure, 4000);
  scenario.faults.node_crashes.push_back({6000.0, 7});
  scenario.faults.data_updates.push_back({5000.0, 3, core::Mass::scalar(2.5, 0.0)});
  scenario.faults.message_loss_prob = 0.05;

  const std::string command = repro_command(scenario, Algorithm::kPushCancelFlow);
  EXPECT_NE(command.find("--topology=ring:16"), std::string::npos) << command;
  EXPECT_NE(command.find("--algorithm=pcf"), std::string::npos) << command;
  EXPECT_NE(command.find("--seed=11"), std::string::npos) << command;
  EXPECT_NE(command.find("--loss=0.05"), std::string::npos) << command;
  EXPECT_NE(command.find("--link-fail=4000:0:1"), std::string::npos) << command;
  EXPECT_NE(command.find("--crash=6000:7"), std::string::npos) << command;
  EXPECT_NE(command.find("--update=5000:3:2.5"), std::string::npos) << command;

  // The spec strings embedded in the command parse back to the same plan.
  const auto plan = sim::parse_fault_spec(sim::format_link_failures(scenario.faults.link_failures),
                                          sim::format_node_crashes(scenario.faults.node_crashes),
                                          sim::format_data_updates(scenario.faults.data_updates));
  ASSERT_EQ(plan.link_failures.size(), 1u);
  EXPECT_EQ(plan.link_failures[0].time, 4000.0);
  EXPECT_EQ(plan.link_failures[0].a, 0u);
  EXPECT_EQ(plan.link_failures[0].b, 1u);
  ASSERT_EQ(plan.node_crashes.size(), 1u);
  EXPECT_EQ(plan.node_crashes[0].node, 7u);
  ASSERT_EQ(plan.data_updates.size(), 1u);
  EXPECT_EQ(plan.data_updates[0].delta.s[0], 2.5);
}

// Forcing a divergence (a round cap no algorithm can meet) must produce the
// repro CSV with replayable pcflow command lines.
TEST(Differential, DumpsAReproFileOnDivergence) {
  DifferentialScenario scenario;
  scenario.name = "forced_timeout";
  scenario.topology_spec = "ring:16";
  scenario.seed = 11;
  scenario.max_rounds = 40;  // far below ring:16 convergence time

  DifferentialConfig config;
  config.repro_dir = ::testing::TempDir();
  const auto result = run_differential(scenario, config);
  ASSERT_TRUE(result.diverged());
  ASSERT_FALSE(result.repro_path.empty());

  std::ifstream in(result.repro_path);
  ASSERT_TRUE(in.is_open()) << result.repro_path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("repro_pcf"), std::string::npos);
  EXPECT_NE(content.str().find("--topology=ring:16"), std::string::npos);
  EXPECT_NE(content.str().find("divergence"), std::string::npos);
}

// With a node crash each algorithm retargets from its own survivors, so only
// per-algorithm convergence is checkable — and it must still hold.
TEST(Differential, SurvivorsReconvergeAfterACrash) {
  DifferentialScenario scenario;
  scenario.name = "crash";
  scenario.topology_spec = "hypercube:4";
  scenario.seed = 11;
  scenario.max_rounds = 20000;
  scenario.faults.node_crashes.push_back({500.0, 3});

  const auto result = run_differential(scenario);
  EXPECT_FALSE(result.diverged()) << join(result.divergences);
  for (const auto& outcome : result.outcomes) {
    if (outcome.trusted) {
      EXPECT_TRUE(outcome.converged);
    }
  }
}

// ----------------------------------------------------- fault-plan corpus

/// A corpus of named fault plans spanning every fault class the engines
/// model. Each is replayed through the FULL algorithm roster in BOTH delivery
/// modes; the replay must be a pure function of the seed (bitwise-identical
/// estimates across repeats) with the invariant checkers armed throughout.
std::vector<std::pair<std::string, sim::FaultPlan>> fault_plan_corpus() {
  std::vector<std::pair<std::string, sim::FaultPlan>> corpus;
  corpus.emplace_back("clean", sim::FaultPlan{});
  {
    sim::FaultPlan p;
    p.message_loss_prob = 0.1;
    p.duplicate_prob = 0.1;
    p.reorder_prob = 0.1;
    corpus.emplace_back("noisy_delivery", p);
  }
  {
    sim::FaultPlan p;
    p.link_failures.push_back({20.0, 0, 1});
    p.link_heals.push_back({60.0, 0, 1});
    p.false_detects.push_back({40.0, 2, 3, 10.0});
    p.detection_delay = 1.0;
    corpus.emplace_back("lifecycle_links", p);
  }
  {
    sim::FaultPlan p;
    p.node_crashes.push_back({25.0, 5});
    p.node_rejoins.push_back({70.0, 5});
    p.data_updates.push_back({45.0, 2, core::Mass::scalar(0.5, 0.0)});
    corpus.emplace_back("crash_rejoin_update", p);
  }
  {
    sim::FaultPlan p;
    p.churn_fail_prob = 0.02;
    p.churn_heal_rate = 0.25;
    corpus.emplace_back("churn", p);
  }
  return corpus;
}

constexpr Algorithm kRoster[] = {Algorithm::kPushSum,          Algorithm::kPushFlow,
                                 Algorithm::kPushCancelFlow,   Algorithm::kFlowUpdating,
                                 Algorithm::kCorrectionAllreduce, Algorithm::kFuMassHybrid};

TEST(Differential, FaultPlanCorpusReplaysDeterministicallyInBothDeliveryModes) {
  const auto t = net::Topology::grid2d(3, 4);
  for (const auto& [name, plan] : fault_plan_corpus()) {
    for (const Algorithm algorithm : kRoster) {
      for (const sim::Delivery delivery : {sim::Delivery::kSequential, sim::Delivery::kCrossing}) {
        const auto run_once = [&] {
          const auto values = test::random_values(t.size(), 17 ^ 0xabcdef);
          sim::SyncEngineConfig cfg;
          cfg.algorithm = algorithm;
          cfg.faults = plan;
          cfg.seed = 17;
          cfg.delivery = delivery;
          cfg.invariants.enabled = true;
          sim::SyncEngine engine(t, sim::masses_from_values(values, core::Aggregate::kAverage),
                                 cfg);
          engine.run(150);  // armed checkers: any invariant violation throws
          return engine.estimates();
        };
        const auto first = run_once();
        const auto second = run_once();
        EXPECT_EQ(first, second) << name << " / " << core::to_string(algorithm) << " / "
                                 << (delivery == sim::Delivery::kSequential ? "sequential"
                                                                            : "crossing");
        for (const double e : first) {
          if (!std::isnan(e)) {
            EXPECT_TRUE(std::isfinite(e));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace pcf
