// Property-based sweeps: the core invariants must hold for every algorithm ×
// topology × aggregate × seed combination we ship.
#include <gtest/gtest.h>

#include <tuple>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf {
namespace {

using core::Aggregate;
using core::Algorithm;

struct SweepCase {
  Algorithm algorithm;
  std::string topology;
  Aggregate aggregate;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name{core::to_string(info.param.algorithm)};
  name += "_" + info.param.topology + "_" + std::string(core::to_string(info.param.aggregate)) +
          "_s" + std::to_string(info.param.seed);
  for (auto& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

class ReductionSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  net::Topology topology() const {
    Rng rng(1234);
    return net::Topology::parse(GetParam().topology, rng);
  }

  sim::SyncEngine engine(sim::FaultPlan faults = {}) const {
    return test::make_engine(topology(), GetParam().algorithm, GetParam().aggregate,
                             GetParam().seed, std::move(faults));
  }
};

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  const std::vector<Algorithm> algorithms{Algorithm::kPushSum, Algorithm::kPushFlow,
                                          Algorithm::kPushCancelFlow, Algorithm::kFlowUpdating};
#ifdef PCF_TEST_FAST
  // Instrumented (sanitizer) builds: one dense and one sparse topology, one
  // seed — same assertions, ~10× fewer runs.
  const std::vector<std::string> topologies{"hypercube:4", "ring:12"};
  const std::vector<std::uint64_t> seeds{11u};
#else
  const std::vector<std::string> topologies{"hypercube:4", "torus3d:2", "ring:12", "grid:3x5",
                                            "er:20:0.2"};
  const std::vector<std::uint64_t> seeds{11u, 29u};
#endif
  const std::vector<Aggregate> aggregates{Aggregate::kAverage, Aggregate::kSum};
  for (const auto alg : algorithms) {
    for (const auto& topo : topologies) {
      for (const auto agg : aggregates) {
        for (const std::uint64_t seed : seeds) {
          cases.push_back({alg, topo, agg, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, ReductionSweep, ::testing::ValuesIn(make_cases()),
                         case_name);

TEST_P(ReductionSweep, ConvergesToTheTrueAggregate) {
  auto e = engine();
  const auto stats = e.run_until_error(1e-9, 6000);
  EXPECT_TRUE(stats.reached_target) << "final error " << e.max_error();
}

TEST_P(ReductionSweep, MassIsConservedThroughoutTheRun) {
  auto e = engine();
  const auto initial = test::total_mass(e);
  for (int chunk = 0; chunk < 5; ++chunk) {
    e.run(40);
    const auto current = test::total_mass(e);
    const double scale = std::max(1.0, std::abs(initial.s[0]));
    EXPECT_NEAR(current.s[0], initial.s[0], 1e-9 * scale) << "chunk " << chunk;
    EXPECT_NEAR(current.w, initial.w, 1e-9) << "chunk " << chunk;
  }
}

TEST_P(ReductionSweep, EstimatesStayFiniteForever) {
  auto e = engine();
  e.run(500);
  for (double est : e.estimates()) EXPECT_TRUE(std::isfinite(est));
}

class FaultToleranceSweep : public ReductionSweep {};

std::vector<SweepCase> make_fault_tolerant_cases() {
  // Push-sum excluded: it is the non-fault-tolerant baseline.
  std::vector<SweepCase> cases;
  // Only 2-edge-connected topologies: a link failure or node crash must not
  // partition the network (a partitioned gossip computation has no global
  // aggregate to converge to).
#ifdef PCF_TEST_FAST
  const std::vector<std::string> topologies{"hypercube:4", "ring:12"};
  const std::vector<std::uint64_t> seeds{5u};
#else
  const std::vector<std::string> topologies{"hypercube:4", "ring:12", "torus2d:3x4"};
  const std::vector<std::uint64_t> seeds{5u, 23u};
#endif
  for (const auto alg :
       {Algorithm::kPushFlow, Algorithm::kPushCancelFlow, Algorithm::kFlowUpdating}) {
    for (const auto& topo : topologies) {
      for (const std::uint64_t seed : seeds) {
        cases.push_back({alg, topo, Aggregate::kAverage, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FlowAlgorithms, FaultToleranceSweep,
                         ::testing::ValuesIn(make_fault_tolerant_cases()), case_name);

TEST_P(FaultToleranceSweep, ConvergesDespiteMessageLoss) {
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.2;
  auto e = engine(std::move(faults));
  const auto stats = e.run_until_error(1e-9, 20000);
  EXPECT_TRUE(stats.reached_target) << "final error " << e.max_error();
}

TEST_P(FaultToleranceSweep, ConvergesDespiteEarlyLinkFailure) {
  // A failure EARLY in the run, while flows are still far from the aggregate
  // ratio. Contract: the survivors always reach consensus, and the consensus
  // is the true aggregate up to a small bias bounded by the mass the
  // exclusion removed. (For PCF a failure can interrupt a cancellation
  // handshake — a two-generals window — losing up to one flow's mass; the
  // lost flow's value ratio approaches the aggregate as the run converges,
  // which is why LATE failures cause no error at all; see the test below.)
  const auto topo = topology();
  sim::FaultPlan faults;
  const auto edges = topo.edges();
  faults.link_failures.push_back(
      {20.0, edges[edges.size() / 2].first, edges[edges.size() / 2].second});
  auto e = engine(std::move(faults));
  e.run(20000);
  const auto est = e.estimates();
  double spread = 0.0;
  for (double v : est) spread = std::max(spread, std::abs(v - est[0]));
  EXPECT_LT(spread, 1e-9 * std::max(1.0, std::abs(est[0])));  // consensus reached
  // Bias is bounded by the mass of one flow (≈ half a node's mass relative
  // to the aggregate at failure time).
  EXPECT_LT(e.max_error(), 0.15);
}

TEST_P(FaultToleranceSweep, ConvergesExactlyAfterLateLinkFailure) {
  // A failure after the flows have converged: exclusion is ratio-preserving
  // and the survivors must reach the ORIGINAL aggregate to full accuracy.
  const auto topo = topology();
  sim::FaultPlan faults;
  const auto edges = topo.edges();
  faults.link_failures.push_back(
      {400.0, edges[edges.size() / 2].first, edges[edges.size() / 2].second});
  auto e = engine(std::move(faults));
  e.run(410);  // run through the failure first, then demand full accuracy
  const auto stats = e.run_until_error(1e-9, 20000);
  EXPECT_TRUE(stats.reached_target) << "final error " << e.max_error();
}

TEST_P(FaultToleranceSweep, ConvergesDespiteNodeCrash) {
  const auto topo = topology();
  sim::FaultPlan faults;
  faults.node_crashes.push_back({25.0, static_cast<net::NodeId>(topo.size() / 2)});
  auto e = engine(std::move(faults));
  const auto stats = e.run_until_error(1e-9, 20000);
  EXPECT_TRUE(stats.reached_target) << "final error " << e.max_error();
}

}  // namespace
}  // namespace pcf
