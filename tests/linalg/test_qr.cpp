#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pcf::linalg {
namespace {

class QrBothAlgorithms : public ::testing::TestWithParam<bool> {
 protected:
  QrResult factorize(const Matrix& v) const {
    return GetParam() ? householder_qr(v) : mgs_qr(v);
  }
};

INSTANTIATE_TEST_SUITE_P(Algorithms, QrBothAlgorithms, ::testing::Values(false, true),
                         [](const auto& param_info) { return param_info.param ? "householder" : "mgs"; });

TEST_P(QrBothAlgorithms, ReconstructsSquareMatrix) {
  Rng rng(1);
  const auto v = Matrix::random_uniform(8, 8, rng);
  const auto qr = factorize(v);
  EXPECT_LT(factorization_error(v, qr.q, qr.r), 1e-14);
}

TEST_P(QrBothAlgorithms, ReconstructsTallMatrix) {
  Rng rng(2);
  const auto v = Matrix::random_uniform(40, 8, rng);
  const auto qr = factorize(v);
  EXPECT_LT(factorization_error(v, qr.q, qr.r), 1e-14);
  EXPECT_EQ(qr.q.rows(), 40u);
  EXPECT_EQ(qr.q.cols(), 8u);
  EXPECT_EQ(qr.r.rows(), 8u);
}

TEST_P(QrBothAlgorithms, QHasOrthonormalColumns) {
  Rng rng(3);
  const auto v = Matrix::random_uniform(30, 10, rng);
  const auto qr = factorize(v);
  EXPECT_LT(orthogonality_error(qr.q), 1e-13);
}

TEST_P(QrBothAlgorithms, RIsUpperTriangular) {
  Rng rng(4);
  const auto v = Matrix::random_uniform(12, 6, rng);
  const auto qr = factorize(v);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(qr.r(i, j), 0.0) << i << "," << j;
  }
}

TEST_P(QrBothAlgorithms, RejectsWideMatrix) {
  const Matrix v(3, 5);
  EXPECT_THROW(factorize(v), ContractViolation);
}

TEST(MgsQr, DiagonalOfRIsPositive) {
  Rng rng(5);
  const auto v = Matrix::random_uniform(10, 4, rng);
  const auto qr = mgs_qr(v);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_GT(qr.r(j, j), 0.0);
}

TEST(MgsQr, RejectsRankDeficientColumn) {
  Matrix v(4, 2);  // second column all zeros after elimination of nothing
  v(0, 0) = 1.0;
  EXPECT_THROW(mgs_qr(v), ContractViolation);
}

TEST(MgsQr, MatchesHouseholderUpToSigns) {
  Rng rng(6);
  const auto v = Matrix::random_uniform(20, 5, rng);
  const auto a = mgs_qr(v);
  const auto b = householder_qr(v);
  // R factors agree up to column signs; with positive diagonals convention in
  // MGS, compare absolute values.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i; j < 5; ++j) {
      EXPECT_NEAR(std::abs(a.r(i, j)), std::abs(b.r(i, j)), 1e-12) << i << "," << j;
    }
  }
}

TEST(MgsQr, IllConditionedMatrixStillReconstructs) {
  // Nearly collinear columns: MGS loses orthogonality (that is expected) but
  // the factorization V = QR must still hold to machine precision.
  Rng rng(7);
  Matrix v(20, 3);
  for (std::size_t i = 0; i < 20; ++i) {
    const double base = rng.uniform(-1.0, 1.0);
    v(i, 0) = base;
    v(i, 1) = base + 1e-9 * rng.uniform(-1.0, 1.0);
    v(i, 2) = rng.uniform(-1.0, 1.0);
  }
  const auto qr = mgs_qr(v);
  EXPECT_LT(factorization_error(v, qr.q, qr.r), 1e-13);
}

}  // namespace
}  // namespace pcf::linalg
