#include "linalg/dmgs.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "support/check.hpp"

namespace pcf::linalg {
namespace {

using core::Algorithm;

Matrix test_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::random_uniform(rows, cols, rng);
}

TEST(Dmgs, PcfFactorizationIsAccurate) {
  const auto t = net::Topology::hypercube(4);
  const auto v = test_matrix(t.size(), 8, 1);
  DmgsOptions opt;
  opt.seed = 1;
  const auto res = dmgs(t, v, opt);
  EXPECT_LT(res.factorization_error(v), 1e-12);
  EXPECT_LT(res.orthogonality_error(), 1e-12);
  EXPECT_LT(res.self_consistency_error(v, t), 1e-14);
}

TEST(Dmgs, MatchesSequentialMgsClosely) {
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(t.size(), 4, 2);
  DmgsOptions opt;
  opt.seed = 2;
  const auto res = dmgs(t, v, opt);
  const auto ref = mgs_qr(v);
  // With (near-)exact reductions, dmGS *is* MGS: Q and node-0 R agree with
  // the sequential factorization to reduction accuracy.
  for (std::size_t i = 0; i < v.rows(); ++i) {
    for (std::size_t j = 0; j < v.cols(); ++j) {
      EXPECT_NEAR(res.q(i, j), ref.q(i, j), 1e-10) << i << "," << j;
    }
  }
  for (std::size_t i = 0; i < v.cols(); ++i) {
    for (std::size_t j = i; j < v.cols(); ++j) {
      EXPECT_NEAR(res.r[0](i, j), ref.r(i, j), 1e-10) << i << "," << j;
    }
  }
}

TEST(Dmgs, RIsUpperTriangularOnEveryNode) {
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(t.size(), 5, 3);
  DmgsOptions opt;
  const auto res = dmgs(t, v, opt);
  for (const auto& r : res.r) {
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
    }
  }
}

TEST(Dmgs, MultipleRowsPerNode) {
  // n = 4·N rows distributed round-robin.
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(4 * t.size(), 6, 4);
  DmgsOptions opt;
  const auto res = dmgs(t, v, opt);
  EXPECT_LT(res.factorization_error(v), 1e-12);
  EXPECT_LT(res.orthogonality_error(), 1e-12);
}

TEST(Dmgs, WideColumnCountUsesChunkedReductions) {
  // m−1 = 19 dots in step 0 exceed kMaxDim=16 ⇒ chunking path.
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(4 * t.size(), 20, 5);
  DmgsOptions opt;
  const auto res = dmgs(t, v, opt);
  EXPECT_LT(res.factorization_error(v), 1e-11);
}

TEST(Dmgs, PushFlowLessAccurateThanPcf) {
  // The Fig. 8 comparison at one size: with the same iteration cap, dmGS(PF)
  // leaves (weakly) larger disagreement between node R's than dmGS(PCF).
  const auto t = net::Topology::hypercube(5);
  const auto v = test_matrix(t.size(), 16, 6);
  DmgsOptions pf_opt, pcf_opt;
  pf_opt.algorithm = Algorithm::kPushFlow;
  pf_opt.seed = pcf_opt.seed = 7;
  pf_opt.max_rounds_per_reduction = pcf_opt.max_rounds_per_reduction = 1200;
  const auto pf = dmgs(t, v, pf_opt);
  const auto pcf = dmgs(t, v, pcf_opt);
  EXPECT_LT(pcf.factorization_error(v), pf.factorization_error(v));
  EXPECT_LT(pcf.orthogonality_error(), pf.orthogonality_error());
}

TEST(Dmgs, ReductionCountIsTwoPerColumnMinusOne) {
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(t.size(), 6, 8);
  DmgsOptions opt;
  const auto res = dmgs(t, v, opt);
  // 6 norms + 5 batched dot reductions (m−j−1 ≤ 16 each)
  EXPECT_EQ(res.reductions, 11u);
}

TEST(Dmgs, SurvivesMessageLossInsideReductions) {
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(t.size(), 4, 9);
  DmgsOptions opt;
  opt.faults.message_loss_prob = 0.15;
  opt.max_rounds_per_reduction = 4000;
  const auto res = dmgs(t, v, opt);
  EXPECT_LT(res.factorization_error(v), 1e-11);
}

TEST(Dmgs, SurvivesLinkFailureInsideEveryReduction) {
  const auto t = net::Topology::hypercube(4);
  const auto v = test_matrix(t.size(), 4, 10);
  DmgsOptions opt;
  opt.faults.link_failures.push_back({25.0, 0, 1});
  opt.max_rounds_per_reduction = 4000;
  const auto res = dmgs(t, v, opt);
  EXPECT_LT(res.factorization_error(v), 1e-11);
}

TEST(Dmgs, RejectsFewerRowsThanNodes) {
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(4, 2, 11);
  EXPECT_THROW(dmgs(t, v, {}), ContractViolation);
}

TEST(Dmgs, DeterministicGivenSeed) {
  const auto t = net::Topology::hypercube(3);
  const auto v = test_matrix(t.size(), 4, 12);
  DmgsOptions opt;
  opt.seed = 5;
  const auto a = dmgs(t, v, opt);
  const auto b = dmgs(t, v, opt);
  for (std::size_t i = 0; i < v.rows(); ++i) {
    for (std::size_t j = 0; j < v.cols(); ++j) EXPECT_EQ(a.q(i, j), b.q(i, j));
  }
}

}  // namespace
}  // namespace pcf::linalg
