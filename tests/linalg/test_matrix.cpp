#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pcf::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_EQ(m(0, 1), 7.0);
}

TEST(Matrix, IdentityIsDiagonal) {
  const auto i3 = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(i3(r, c), r == c ? 1.0 : 0.0);
  }
}

TEST(Matrix, RandomUniformInRange) {
  Rng rng(1);
  const auto m = Matrix::random_uniform(10, 10, rng);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      EXPECT_GE(m(r, c), -1.0);
      EXPECT_LT(m(r, c), 1.0);
    }
  }
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(2);
  const auto m = Matrix::random_uniform(3, 5, rng);
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  const auto tt = t.transposed();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) EXPECT_EQ(m(r, c), tt(r, c));
  }
}

TEST(Matrix, MultiplicationKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const auto c = a * b;
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplicationByIdentity) {
  Rng rng(3);
  const auto m = Matrix::random_uniform(4, 4, rng);
  const auto p = m * Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), p(r, c));
  }
}

TEST(Matrix, MultiplicationShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, ContractViolation);
}

TEST(Matrix, SubtractionAndNormInf) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 0.25);
  const auto d = a - b;
  EXPECT_DOUBLE_EQ(d.norm_inf(), 1.5);  // max row sum of 0.75s
}

TEST(Matrix, NormInfIsMaxAbsoluteRowSum) {
  Matrix m(2, 2);
  m(0, 0) = -3;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 1;
  EXPECT_DOUBLE_EQ(m.norm_inf(), 4.0);
}

TEST(Matrix, NormFro) {
  Matrix m(1, 2);
  m(0, 0) = 3;
  m(0, 1) = 4;
  EXPECT_DOUBLE_EQ(m.norm_fro(), 5.0);
}

TEST(Matrix, MaxAbs) {
  Matrix m(2, 2);
  m(1, 0) = -9.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 9.0);
}

TEST(ErrorMetrics, PerfectFactorizationHasTinyError) {
  // V = Q·R with Q orthonormal-ish by construction: I and R = V.
  Rng rng(4);
  const auto v = Matrix::random_uniform(4, 4, rng);
  EXPECT_LT(factorization_error(v, Matrix::identity(4), v), 1e-15);
}

TEST(ErrorMetrics, OrthogonalityOfIdentity) {
  EXPECT_DOUBLE_EQ(orthogonality_error(Matrix::identity(5)), 0.0);
}

}  // namespace
}  // namespace pcf::linalg
