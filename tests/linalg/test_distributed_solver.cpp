#include "linalg/distributed_solver.hpp"

#include <gtest/gtest.h>

#include "linalg/eigen_ref.hpp"
#include "support/check.hpp"

namespace pcf::linalg {
namespace {

/// Direct dense solve by Gaussian elimination (test oracle).
std::vector<double> dense_solve(const Matrix& a_in, std::span<const double> b_in) {
  const std::size_t n = a_in.rows();
  Matrix a = a_in;
  std::vector<double> b(b_in.begin(), b_in.end());
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    PCF_CHECK_MSG(std::fabs(a(pivot, col)) > 1e-14, "singular test system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a(r, c) * x[c];
    x[r] = acc / a(r, r);
  }
  return x;
}

/// Regularized Laplacian system (L + I)x = b — strictly diagonally dominant.
NetworkMatrix regularized_laplacian(const net::Topology& topology) {
  Matrix dense = laplacian_matrix(topology);
  for (std::size_t i = 0; i < topology.size(); ++i) dense(i, i) += 1.0;
  return NetworkMatrix(topology, dense);
}

TEST(DistributedSolver, MatchesDenseSolveOnRing) {
  const auto topology = net::Topology::ring(10);
  const auto m = regularized_laplacian(topology);
  Rng rng(3);
  std::vector<double> b(10);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  DistributedSolveOptions options;
  options.tolerance = 1e-10;
  const auto result = distributed_jacobi_solve(m, b, options);
  EXPECT_TRUE(result.converged);
  const auto expected = dense_solve(m.dense(), b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(result.x[i], expected[i], 1e-9) << i;
}

TEST(DistributedSolver, MatchesDenseSolveOnHypercube) {
  const auto topology = net::Topology::hypercube(4);
  const auto m = regularized_laplacian(topology);
  Rng rng(7);
  std::vector<double> b(topology.size());
  for (auto& v : b) v = rng.uniform(-2.0, 2.0);
  DistributedSolveOptions options;
  options.tolerance = 1e-11;
  const auto result = distributed_jacobi_solve(m, b, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.residual_norm, 1e-11);
  const auto expected = dense_solve(m.dense(), b);
  for (std::size_t i = 0; i < topology.size(); ++i) {
    EXPECT_NEAR(result.x[i], expected[i], 1e-9) << i;
  }
}

TEST(DistributedSolver, SurvivesFaultsInsideResidualChecks) {
  const auto topology = net::Topology::hypercube(3);
  const auto m = regularized_laplacian(topology);
  Rng rng(11);
  std::vector<double> b(topology.size());
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  DistributedSolveOptions options;
  options.tolerance = 1e-9;
  options.faults.message_loss_prob = 0.15;
  options.faults.link_failures.push_back({40.0, 0, 1});
  const auto result = distributed_jacobi_solve(m, b, options);
  EXPECT_TRUE(result.converged);
  const auto expected = dense_solve(m.dense(), b);
  for (std::size_t i = 0; i < topology.size(); ++i) {
    EXPECT_NEAR(result.x[i], expected[i], 1e-7) << i;
  }
}

TEST(DistributedSolver, ReportsNonConvergenceOnNonContractiveSystem) {
  // Plain Laplacian is singular (constant nullspace): Jacobi cannot converge
  // for a general right-hand side.
  const auto topology = net::Topology::ring(6);
  const auto dense = laplacian_matrix(topology);
  // Shift the diagonal just enough to be nonzero but NOT dominant.
  Matrix weak = dense;
  for (std::size_t i = 0; i < 6; ++i) weak(i, i) = 0.5;  // |offdiag row sum| = 2 > 0.5
  const NetworkMatrix m(topology, weak);
  std::vector<double> b(6, 1.0);
  DistributedSolveOptions options;
  options.max_iterations = 400;
  const auto result = distributed_jacobi_solve(m, b, options);
  EXPECT_FALSE(result.converged);
}

TEST(DistributedSolver, RejectsZeroDiagonal) {
  const auto topology = net::Topology::ring(4);
  const auto m = NetworkMatrix::adjacency(topology);  // zero diagonal
  const std::vector<double> b(4, 1.0);
  EXPECT_THROW(distributed_jacobi_solve(m, b, {}), ContractViolation);
}

TEST(DistributedSolver, RejectsWrongRhsSize) {
  const auto topology = net::Topology::ring(4);
  const auto m = regularized_laplacian(topology);
  const std::vector<double> b(3, 1.0);
  EXPECT_THROW(distributed_jacobi_solve(m, b, {}), ContractViolation);
}

TEST(DistributedSolver, CheckIntervalTradesReductionsForIterations) {
  const auto topology = net::Topology::ring(8);
  const auto m = regularized_laplacian(topology);
  const std::vector<double> b(8, 1.0);
  DistributedSolveOptions frequent;
  frequent.check_interval = 1;
  DistributedSolveOptions rare;
  rare.check_interval = 32;
  const auto a = distributed_jacobi_solve(m, b, frequent);
  const auto c = distributed_jacobi_solve(m, b, rare);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(c.converged);
  EXPECT_GT(a.residual_checks, c.residual_checks);
}

}  // namespace
}  // namespace pcf::linalg
