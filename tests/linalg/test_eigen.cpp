#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/distributed_eigen.hpp"
#include "linalg/eigen_ref.hpp"

namespace pcf::linalg {
namespace {

TEST(JacobiEigen, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix d(3, 3);
  d(0, 0) = 5.0;
  d(1, 1) = -2.0;
  d(2, 2) = 1.0;
  const auto eig = jacobi_eigen(d);
  EXPECT_DOUBLE_EQ(eig.values[0], 5.0);
  EXPECT_DOUBLE_EQ(eig.values[1], 1.0);
  EXPECT_DOUBLE_EQ(eig.values[2], -2.0);
}

TEST(JacobiEigen, TwoByTwoKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(JacobiEigen, ReconstructsRandomSymmetricMatrix) {
  Rng rng(3);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) a(i, j) = a(j, i) = rng.uniform(-1.0, 1.0);
  }
  const auto eig = jacobi_eigen(a);
  // A = V Λ Vᵀ
  Matrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = eig.values[i];
  const Matrix reconstructed = eig.vectors * lambda * eig.vectors.transposed();
  EXPECT_LT((a - reconstructed).norm_inf(), 1e-11);
  EXPECT_LT(orthogonality_error(eig.vectors), 1e-12);
}

TEST(JacobiEigen, RejectsAsymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  EXPECT_THROW(jacobi_eigen(a), ContractViolation);
}

TEST(JacobiEigen, HypercubeAdjacencySpectrumIsExact) {
  // The d-dimensional hypercube's adjacency eigenvalues are d − 2m with
  // multiplicity C(d, m).
  const std::size_t d = 4;
  const auto topology = net::Topology::hypercube(d);
  const auto eig = jacobi_eigen(adjacency_matrix(topology));
  std::vector<double> expected;
  const double binom[5] = {1, 4, 6, 4, 1};
  for (std::size_t mth = 0; mth <= d; ++mth) {
    for (int c = 0; c < binom[mth]; ++c) {
      expected.push_back(static_cast<double>(d) - 2.0 * static_cast<double>(mth));
    }
  }
  std::sort(expected.rbegin(), expected.rend());
  ASSERT_EQ(eig.values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(eig.values[i], expected[i], 1e-10) << i;
  }
}

TEST(JacobiEigen, CompleteGraphLaplacianSpectrum) {
  const auto topology = net::Topology::complete(6);
  const auto eig = jacobi_eigen(laplacian_matrix(topology));
  EXPECT_NEAR(eig.values[5], 0.0, 1e-11);  // connected graph: single zero
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(eig.values[i], 6.0, 1e-10);
}

TEST(NetworkMatrix, DenseConstructorValidates) {
  const auto topology = net::Topology::ring(4);
  Matrix bad(4, 4);
  bad(0, 2) = 1.0;  // ring(4) has no 0-2 edge
  bad(2, 0) = 1.0;
  EXPECT_THROW(NetworkMatrix(topology, bad), ContractViolation);
  Matrix asym(4, 4);
  asym(0, 1) = 1.0;  // edge exists but asymmetric
  EXPECT_THROW(NetworkMatrix(topology, asym), ContractViolation);
}

TEST(NetworkMatrix, DenseRoundTrip) {
  const auto topology = net::Topology::ring(5);
  const auto a = adjacency_matrix(topology);
  const NetworkMatrix m(topology, a);
  EXPECT_LT((m.dense() - a).norm_inf(), 1e-15);
  EXPECT_EQ(m.edge_weight(0, 1), 1.0);
}

TEST(NetworkMatrix, ApplyRowMatchesDenseProduct) {
  Rng rng(9);
  const auto topology = net::Topology::hypercube(3);
  const auto m = NetworkMatrix::shifted_laplacian(topology);
  const auto dense = m.dense();
  const auto y = Matrix::random_uniform(topology.size(), 3, rng);
  const Matrix expected = dense * y;
  std::vector<double> row(3);
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    m.apply_row(i, y, row);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(row[c], expected(i, c), 1e-12);
  }
}

TEST(DistributedEigen, MatchesJacobiOnBusAdjacency) {
  // Bus adjacency eigenvalues 2·cos(πj/(n+1)) are all simple; the path graph
  // is bipartite, so we iterate on the shifted operator A + c·I (same
  // eigenvectors, spectrum made one-signed) and compare against Jacobi on
  // the same shifted matrix.
  const std::size_t n = 8;
  const auto topology = net::Topology::bus(n);
  const auto m = NetworkMatrix::shifted_adjacency(topology);
  DistributedEigenOptions options;
  options.num_pairs = 2;
  options.iterations = 250;  // subspace gap λ2/λ1 ≈ 0.93 ⇒ ~250 iters to 1e-8
  options.seed = 5;
  const auto result = distributed_eigen(m, options);
  const auto ref = jacobi_eigen(m.dense());
  EXPECT_NEAR(result.eigenvalues[0], ref.values[0], 1e-7);
  EXPECT_NEAR(result.eigenvalues[1], ref.values[1], 1e-7);
  // Eigenvector alignment up to sign: |⟨y_c, v_c⟩| ≈ 1.
  for (std::size_t c = 0; c < 2; ++c) {
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += result.eigenvectors(i, c) * ref.vectors(i, c);
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-5) << "pair " << c;
  }
}

TEST(DistributedEigen, ResidualsAreSmall) {
  // Hypercubes are bipartite (±d adjacency tie): iterate on A + 5·I, whose
  // Perron eigenvalue is d + 5 = 9 and strictly dominant.
  const auto topology = net::Topology::hypercube(4);
  const auto m = NetworkMatrix::shifted_adjacency(topology);
  DistributedEigenOptions options;
  options.num_pairs = 1;
  options.iterations = 80;
  const auto result = distributed_eigen(m, options);
  EXPECT_NEAR(result.eigenvalues[0], 9.0, 1e-9);
  EXPECT_LT(result.residuals(m)[0], 1e-7);
}

TEST(DistributedEigen, ShiftedLaplacianFindsConstantAndFiedler) {
  // Two 6-cliques joined by one edge: the Fiedler vector separates them.
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;
  for (net::NodeId a = 0; a < 6; ++a) {
    for (net::NodeId b = a + 1; b < 6; ++b) {
      edges.push_back({a, b});
      edges.push_back({static_cast<net::NodeId>(a + 6), static_cast<net::NodeId>(b + 6)});
    }
  }
  edges.push_back({0, 6});
  const auto topology = net::Topology::from_edges(12, edges, "barbell");
  const auto m = NetworkMatrix::shifted_laplacian(topology);
  DistributedEigenOptions options;
  options.num_pairs = 2;
  options.iterations = 300;
  const auto result = distributed_eigen(m, options);
  // Pair 0 is the constant vector (Laplacian eigenvalue 0). The tiny Fiedler
  // value makes the constant/Fiedler separation converge at rate
  // (c − λ_F)/c ≈ 0.99 per iteration, so pair 0 is only approximately pure
  // here — the sign structure of pair 1 (what partitioning uses) converges
  // much faster and is asserted exactly.
  for (std::size_t i = 1; i < 12; ++i) {
    EXPECT_NEAR(result.eigenvectors(i, 0), result.eigenvectors(0, 0),
                0.05 * std::fabs(result.eigenvectors(0, 0)));
  }
  // Pair 1 is the Fiedler vector: consistent sign inside each clique,
  // opposite signs across.
  const double sign_a = result.eigenvectors(1, 1);
  const double sign_b = result.eigenvectors(7, 1);
  EXPECT_LT(sign_a * sign_b, 0.0);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_GT(result.eigenvectors(i, 1) * sign_a, 0.0);
  for (std::size_t i = 7; i < 12; ++i) EXPECT_GT(result.eigenvectors(i, 1) * sign_b, 0.0);
}

TEST(DistributedEigen, SurvivesLinkFailureInsideReductions) {
  const auto topology = net::Topology::hypercube(3);
  const auto m = NetworkMatrix::shifted_adjacency(topology);  // Perron = 3 + 4
  DistributedEigenOptions options;
  options.num_pairs = 1;
  options.iterations = 50;
  options.faults.link_failures.push_back({60.0, 0, 1});
  const auto result = distributed_eigen(m, options);
  EXPECT_NEAR(result.eigenvalues[0], 7.0, 1e-6);
}

TEST(DistributedEigen, NodesAgreeOnEigenvalues) {
  // The eigenvalue estimates every node derives from its own reduction
  // results must agree to near the reduction accuracy for both algorithms
  // (the PF-vs-PCF accuracy comparison at scale lives in
  // bench/ablation_eigensolver, where the effect is measurable).
  const auto topology = net::Topology::hypercube(5);
  const auto m = NetworkMatrix::shifted_adjacency(topology);
  DistributedEigenOptions options;
  options.num_pairs = 1;
  options.iterations = 60;  // gap 9/11 ⇒ residual angle ~0.8^60
  options.max_rounds_per_reduction = 900;
  for (const auto alg : {core::Algorithm::kPushFlow, core::Algorithm::kPushCancelFlow}) {
    options.algorithm = alg;
    const auto result = distributed_eigen(m, options);
    EXPECT_LT(result.eigenvalue_disagreement, 1e-10) << core::to_string(alg);
    EXPECT_NEAR(result.eigenvalues[0], 11.0, 1e-8) << core::to_string(alg);  // 5 + 6
  }
}

TEST(DistributedEigen, RejectsBadPairCount) {
  const auto topology = net::Topology::ring(4);
  const auto m = NetworkMatrix::adjacency(topology);
  DistributedEigenOptions options;
  options.num_pairs = 0;
  EXPECT_THROW(distributed_eigen(m, options), ContractViolation);
  options.num_pairs = 4;  // == n
  EXPECT_THROW(distributed_eigen(m, options), ContractViolation);
}

}  // namespace
}  // namespace pcf::linalg
