# End-to-end smoke test for the pcflow CLI, run via `cmake -P`.
#
# Expects:
#   PCFLOW   — path to the pcflow executable
#   WORK_DIR — writable scratch directory
#
# Checks: a faulted run exits 0 and prints the "final:" summary; the CSV trace
# it writes has the documented header and numeric rows; malformed input exits
# with code 2 (the ContractViolation path).

if(NOT PCFLOW OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DPCFLOW=<exe> -DWORK_DIR=<dir> -P smoke_pcflow_cli.cmake")
endif()

set(csv "${WORK_DIR}/pcflow_smoke_trace.csv")
file(REMOVE "${csv}")

execute_process(
  COMMAND "${PCFLOW}" --topology=ring:10 --algorithm=pcf --rounds=150
          --link-fail=50:0:1 --update=80:3:2.5 --trace-every=25 --seed=7 --csv=${csv}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pcflow exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "final:  max error")
  message(FATAL_ERROR "pcflow stdout is missing the final summary line:\n${out}")
endif()
if(NOT out MATCHES "target aggregate")
  message(FATAL_ERROR "pcflow stdout is missing the target line:\n${out}")
endif()

if(NOT EXISTS "${csv}")
  message(FATAL_ERROR "pcflow did not write the CSV trace to ${csv}")
endif()
file(STRINGS "${csv}" lines)
list(LENGTH lines line_count)
if(line_count LESS 2)
  message(FATAL_ERROR "CSV trace has no data rows (${line_count} lines)")
endif()
list(GET lines 0 header)
if(NOT header STREQUAL "round,max_error,median_error,p99_error,max_abs_flow,target")
  message(FATAL_ERROR "unexpected CSV header: '${header}'")
endif()
# Every data row: integer round followed by five numeric fields. (CMake's
# regex engine has no {n} repetition, so the field pattern is spelled out.)
set(num ",[-+0-9.eEnaif]+")
math(EXPR last "${line_count} - 1")
foreach(i RANGE 1 ${last})
  list(GET lines ${i} row)
  if(NOT row MATCHES "^[0-9]+${num}${num}${num}${num}${num}$")
    message(FATAL_ERROR "CSV row ${i} does not parse as numbers: '${row}'")
  endif()
endforeach()

# Malformed input must exit with code 2 (ContractViolation), not crash.
execute_process(
  COMMAND "${PCFLOW}" --topology=nonsense
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad topology should exit 2, got ${rc}\nstderr:\n${err}")
endif()
execute_process(
  COMMAND "${PCFLOW}" --topology=ring:10 --link-fail=banana
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad fault spec should exit 2, got ${rc}\nstderr:\n${err}")
endif()

message(STATUS "pcflow CLI smoke test passed")
