#include "runtime/threaded_runtime.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "sim/metrics.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::runtime {
namespace {

using core::Aggregate;
using core::Algorithm;

std::vector<core::Mass> random_masses(std::size_t n, Aggregate agg, std::uint64_t seed) {
  return sim::masses_from_values(test::random_values(n, seed), agg);
}

TEST(ThreadedRuntime, PcfConvergesWithRealThreads) {
  const auto t = net::Topology::hypercube(4);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 1);
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  cfg.seed = 1;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(600);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-11);
}

TEST(ThreadedRuntime, PushFlowConvergesWithRealThreads) {
  const auto t = net::Topology::hypercube(4);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 2);
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::kPushFlow;
  cfg.num_threads = 3;  // uneven shard sizes
  cfg.seed = 2;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(600);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-10);
}

TEST(ThreadedRuntime, MassConservedAtQuiescence) {
  // run() drains all in-flight packets before returning, so pairwise flow
  // conservation holds and the total mass must equal the initial mass.
  const auto t = net::Topology::ring(12);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 3);
  double expected_s = 0.0;
  for (const auto& m : masses) expected_s += m.s[0];
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(200);
  const auto total = rt.total_mass();
  EXPECT_NEAR(total.s[0], expected_s, 1e-9);
  EXPECT_NEAR(total.w, static_cast<double>(t.size()), 1e-10);
}

TEST(ThreadedRuntime, MultiplePhasesAccumulate) {
  const auto t = net::Topology::hypercube(3);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 4);
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(50);
  const auto delivered_first = rt.messages_delivered();
  EXPECT_GT(delivered_first, 0u);
  rt.run(50);
  EXPECT_GT(rt.messages_delivered(), delivered_first);
}

TEST(ThreadedRuntime, LinkFailureBetweenPhasesIsTolerated) {
  const auto t = net::Topology::hypercube(4);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 5);
  RuntimeConfig cfg;
  cfg.num_threads = 4;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(300);
  rt.fail_link(0, 1);
  rt.run(600);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-11);
}

TEST(ThreadedRuntime, HealLinkRestoresTopologyBetweenPhases) {
  // run() drains all in-flight packets before returning, so push-flow's
  // exclusion and re-admission are both symmetric and mass-neutral: after the
  // heal the ORIGINAL aggregate comes back at full accuracy. (PCF would not
  // do for this assertion — its cancellation handshake can rest mid-cycle
  // even at quiescence, where exclusion costs one absorbed half.)
  const auto t = net::Topology::hypercube(4);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 5);
  double expected_s = 0.0;
  for (const auto& m : masses) expected_s += m.s[0];
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::kPushFlow;
  cfg.num_threads = 4;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(200);
  rt.fail_link(0, 1);
  EXPECT_EQ(rt.node(0).live_degree(), 3u);
  rt.run(300);
  rt.heal_link(0, 1);
  EXPECT_EQ(rt.node(0).live_degree(), 4u);
  EXPECT_EQ(rt.node(1).live_degree(), 4u);
  rt.heal_link(0, 1);  // healing a live link is a no-op
  EXPECT_EQ(rt.node(0).live_degree(), 4u);
  rt.run(600);
  const auto total = rt.total_mass();
  EXPECT_NEAR(total.s[0], expected_s, 1e-9);  // the episode was mass-neutral
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-10);
}

TEST(ThreadedRuntime, HealLinkWhileWorkersRunIsCheckedIllegal) {
  // Same contract as fail_link: workers read dead_links_ without a lock, so
  // heal_link must throw while a run() phase is active and succeed between
  // phases.
  const auto t = net::Topology::ring(8);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 10);
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.seed = 10;
  ThreadedRuntime rt(t, masses, cfg);
  rt.fail_link(0, 1);
  std::thread phase([&rt] { rt.run(20000); });
  while (!rt.workers_active()) std::this_thread::yield();
  EXPECT_THROW(rt.heal_link(0, 1), ContractViolation);
  phase.join();
  EXPECT_FALSE(rt.workers_active());
  rt.heal_link(0, 1);  // between phases: legal, notifies both endpoints
  EXPECT_EQ(rt.node(0).live_degree(), 2u);
  EXPECT_EQ(rt.node(1).live_degree(), 2u);
}

TEST(ThreadedRuntime, HealLinkRejectsNonEdge) {
  const auto t = net::Topology::ring(6);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 6);
  ThreadedRuntime rt(t, masses, {});
  EXPECT_THROW(rt.heal_link(0, 3), ContractViolation);
}

TEST(ThreadedRuntime, FailLinkRejectsNonEdge) {
  const auto t = net::Topology::ring(6);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 6);
  ThreadedRuntime rt(t, masses, {});
  EXPECT_THROW(rt.fail_link(0, 3), ContractViolation);
}

TEST(ThreadedRuntime, SingleThreadDegenerateCaseWorks) {
  const auto t = net::Topology::bus(5);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 7);
  RuntimeConfig cfg;
  cfg.num_threads = 1;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(2000);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-10);
}

TEST(ThreadedRuntime, MoreThreadsThanNodesIsClamped) {
  const auto t = net::Topology::bus(3);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 8);
  RuntimeConfig cfg;
  cfg.num_threads = 64;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(800);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-9);
}

TEST(ThreadedRuntime, FailLinkWhileWorkersRunIsCheckedIllegal) {
  // Workers read dead_links_ without a lock, so fail_link during a run()
  // phase would be a data race. The contract makes it checked-illegal: the
  // call must throw while workers are up and succeed between phases.
  const auto t = net::Topology::ring(8);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 9);
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.seed = 9;
  ThreadedRuntime rt(t, masses, cfg);
  EXPECT_FALSE(rt.workers_active());

  // Enough steps that the phase comfortably outlasts the guarded call below
  // (the call fires within microseconds of workers_active flipping true).
  std::thread phase([&rt] { rt.run(20000); });
  while (!rt.workers_active()) std::this_thread::yield();
  EXPECT_THROW(rt.fail_link(0, 1), ContractViolation);
  phase.join();
  EXPECT_FALSE(rt.workers_active());

  rt.fail_link(0, 1);  // between phases: legal, notifies both endpoints
  EXPECT_EQ(rt.node(0).live_degree(), 1u);
  EXPECT_EQ(rt.node(1).live_degree(), 1u);
  rt.run(400);  // the runtime keeps working after the rejected call
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-8);
}

TEST(ThreadedRuntime, QueueFaultAppliesAtNextPhaseBoundary) {
  // Regression for the chaos-driver ergonomics: queue_fault may fire while a
  // phase is active (where fail_link would throw ContractViolation) and the
  // event lands at the phase boundary instead.
  const auto t = net::Topology::ring(8);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 11);
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  cfg.seed = 11;
  ThreadedRuntime rt(t, masses, cfg);

  std::thread phase([&rt] { rt.run(20000); });
  while (!rt.workers_active()) std::this_thread::yield();
  rt.queue_fault(0, 1, /*heal=*/false);  // mid-phase: no throw, just queued
  phase.join();

  // Applied when the phase's workers joined — before run() returned.
  EXPECT_EQ(rt.pending_faults(), 0u);
  EXPECT_EQ(rt.node(0).live_degree(), 1u);
  EXPECT_EQ(rt.node(1).live_degree(), 1u);

  // Queued while idle: applied by the next run() before its first step.
  rt.queue_fault(0, 1, /*heal=*/true);
  EXPECT_EQ(rt.pending_faults(), 1u);
  rt.run(400);
  EXPECT_EQ(rt.pending_faults(), 0u);
  EXPECT_EQ(rt.node(0).live_degree(), 2u);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-8);
}

TEST(ThreadedRuntime, QueueFaultOrderAndRedundancySemantics) {
  const auto t = net::Topology::ring(6);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 12);
  RuntimeConfig cfg;
  cfg.num_threads = 2;
  ThreadedRuntime rt(t, masses, cfg);

  EXPECT_THROW(rt.queue_fault(0, 3, false), ContractViolation);  // not an edge

  rt.queue_fault(0, 1, /*heal=*/false);
  rt.queue_fault(0, 1, /*heal=*/true);   // applied in order: net effect = live
  rt.queue_fault(2, 3, /*heal=*/true);   // healing a live link is a no-op
  rt.queue_fault(4, 5, /*heal=*/false);
  rt.queue_fault(4, 5, /*heal=*/false);  // failing a dead link is a no-op
  EXPECT_EQ(rt.pending_faults(), 5u);
  rt.run(100);
  EXPECT_EQ(rt.pending_faults(), 0u);
  EXPECT_EQ(rt.node(0).live_degree(), 2u);
  EXPECT_EQ(rt.node(2).live_degree(), 2u);
  EXPECT_EQ(rt.node(4).live_degree(), 1u);
  EXPECT_EQ(rt.node(5).live_degree(), 1u);
}

TEST(ThreadedRuntime, BoundedMailboxesStillConverge) {
  // A tight per-node bound forces the backpressure path (try_push → drain own
  // shard → retry → drop); sheds show up as mailbox counters and the gossip
  // reduction still converges because drops look exactly like wire loss.
  const auto t = net::Topology::hypercube(4);
  const auto masses = random_masses(t.size(), Aggregate::kAverage, 13);
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::kPushFlow;  // loss-tolerant by construction
  cfg.num_threads = 4;
  cfg.seed = 13;
  cfg.mailbox_capacity = 2;
  ThreadedRuntime rt(t, masses, cfg);
  rt.run(800);
  const auto& perf = rt.perf();
  EXPECT_GT(perf.mailbox_high_watermark, 0u);
  EXPECT_LE(perf.mailbox_high_watermark, 2u);  // the bound really held
  // The threaded runtime only ever try_pushes (blocking in a worker would
  // deadlock the step barrier), so backpressure must land in rejected, never
  // in blocked.
  EXPECT_EQ(perf.mailbox_blocked_pushes, 0u);
  const sim::Oracle oracle(masses);
  for (double e : rt.estimates()) EXPECT_LT(oracle.error_of(e), 1e-8);
}

TEST(Mailbox, PreservesFifoOrder) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    Envelope env;
    env.from = static_cast<net::NodeId>(i);
    box.push(std::move(env));
  }
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(drained[static_cast<std::size_t>(i)].from, i);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, DrainOnEmptyIsEmpty) {
  Mailbox box;
  EXPECT_TRUE(box.drain().empty());
}

}  // namespace
}  // namespace pcf::runtime
