// Tests for the process-per-shard loopback-UDP runtime (fork-based — this
// suite lives in its own non-`threaded` binary because TSan cannot follow
// children across fork). Nothing here asserts byte-determinism: the socket
// runtime's contract is convergence within the error envelope under whatever
// faults were MEASURED, so the assertions are about structure (shard/node
// assignment, counters, result files), supervision (a SIGKILLed shard comes
// back from its checkpoint), detection (a SIGSTOPped shard is a healed false
// positive) and accuracy vs. the exact oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "runtime/net_trial.hpp"
#include "runtime/socket_runtime.hpp"
#include "net/topology.hpp"
#include "sim/reduce.hpp"
#include "support/rng.hpp"

namespace pcf::runtime {
namespace {

/// Fresh scratch dir per test so checkpoints/results never cross-talk.
[[nodiscard]] std::string scratch_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / ("pcf_socket_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SocketRuntime, ShardsNodesRoundRobinAndReportsPerLinkCounters) {
  Rng rng(7);
  const net::Topology topology = net::Topology::parse("ring:8", rng);
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto masses = sim::masses_from_values(values, core::Aggregate::kAverage);

  SocketRuntimeConfig config;
  config.algorithm = core::Algorithm::kFlowUpdating;
  config.seed = 7;
  config.num_shards = 2;
  config.steps_per_node = 150;
  config.step_pacing_us = 500;  // gentle pace: structure test, not a stress test
  config.linger_ms = 200;
  config.run_dir = scratch_dir("structure");

  SocketRuntime runtime(topology, masses, config);
  EXPECT_EQ(runtime.shard_of(0), 0u);
  EXPECT_EQ(runtime.shard_of(5), 1u);

  const SocketTrialReport report = runtime.run();
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_EQ(report.failures, 0u);

  for (std::uint32_t s = 0; s < 2; ++s) {
    const ShardReport& shard = report.shards[s];
    EXPECT_TRUE(shard.produced);
    EXPECT_EQ(shard.shard, s);
    EXPECT_EQ(shard.epoch, 0u);  // nothing was killed
    ASSERT_EQ(shard.nodes.size(), 4u);
    for (std::size_t i = 0; i < shard.nodes.size(); ++i) {
      EXPECT_EQ(shard.nodes[i] % 2, s);  // round-robin assignment
    }
    ASSERT_EQ(shard.rx_from.size(), 2u);
    // A shard never counts datagrams from itself (same-shard delivery is
    // direct, not UDP).
    EXPECT_EQ(shard.rx_from[s].received, 0u);
    EXPECT_GT(shard.heartbeats_sent, 0u);
  }
  // Cross-shard gossip on a ring must actually cross the sockets.
  EXPECT_GT(report.rx_total().received, 0u);
  EXPECT_GT(report.datagrams_sent(), 0u);

  const auto estimates = report.estimates_by_node(8);
  ASSERT_EQ(estimates.size(), 8u);
  for (const double e : estimates) EXPECT_FALSE(std::isnan(e));
}

TEST(SocketNetTrial, SixtyFourNodesConvergeUnderMeasuredLoss) {
  NetTrialOptions options;
  options.topology_spec = "torus2d:8x8";
  options.algorithm = core::Algorithm::kFlowUpdating;
  options.seed = 11;
  options.runtime.num_shards = 4;
  options.runtime.steps_per_node = 400;
  options.runtime.step_pacing_us = 0;  // flat out: real kernel-drop backpressure
  options.runtime.mailbox_capacity = 64;
  options.runtime.socket_recv_buffer = 4096;
  options.runtime.linger_ms = 250;
  options.run_dir = scratch_dir("loss");
  options.session_baseline = true;

  const NetTrialReport report = run_net_trial(options);
  EXPECT_TRUE(report.trial.completed);
  EXPECT_EQ(report.nodes, 64u);
  EXPECT_EQ(report.reporting_nodes, 64u);
  EXPECT_GT(report.trial.rx_total().received, 0u);
  // Flat-out sends into a 4 KiB socket buffer behind a bounded mailbox make
  // kernel drops effectively certain; the point of the runtime is that this
  // loss is MEASURED, not injected.
  EXPECT_GT(report.trial.rx_total().lost, 0u);
  EXPECT_GT(report.trial.measured_loss_rate(), 0.0);
  EXPECT_LT(report.trial.measured_loss_rate(), 1.0);
  // Flow updating tolerates message loss (trust table), so the envelope is
  // binding — and the run must land inside it.
  EXPECT_TRUE(report.trusted);
  EXPECT_TRUE(report.within_envelope) << "max_rel_error=" << report.max_rel_error;
  EXPECT_TRUE(report.ok);
  // Warm-session baseline rode along.
  EXPECT_TRUE(report.session_compared);
  EXPECT_GT(report.session_cold_rounds, 0u);

  // The serialized report speaks the versioned schema CI validates.
  const std::string json = net_trial_report_to_json(options, report);
  EXPECT_NE(json.find("\"schema\": \"pcflow-net\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  // Minor 1 split the mailbox overflow counter in two; both keys must be
  // present (and the old one gone) wherever the report is consumed.
  EXPECT_NE(json.find("\"schema_minor\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mailbox_blocked_pushes\""), std::string::npos);
  EXPECT_NE(json.find("\"mailbox_rejected_pushes\""), std::string::npos);
  EXPECT_EQ(json.find("\"mailbox_overflow_blocks\""), std::string::npos);
  EXPECT_NE(json.find("\"measured\""), std::string::npos);
  EXPECT_NE(json.find("\"supervision\""), std::string::npos);
}

TEST(SocketNetTrial, SigkilledShardRestartsFromCheckpointAndConverges) {
  NetTrialOptions options;
  options.topology_spec = "torus2d:8x8";
  // Flow updating: edge state is idempotent (flow, estimate) pairs, so a
  // shard restored from a slightly stale checkpoint re-converges instead of
  // violating a conservation invariant the way rewound PCF flows would.
  options.algorithm = core::Algorithm::kFlowUpdating;
  options.seed = 13;
  options.runtime.num_shards = 4;
  options.runtime.steps_per_node = 500;
  options.runtime.step_pacing_us = 500;  // ~250 ms of stepping: the kill lands mid-run
  options.runtime.checkpoint_every_steps = 25;
  options.runtime.linger_ms = 400;
  options.chaos.kill_shard = 1;
  options.chaos.kill_after_ms = 100;
  options.run_dir = scratch_dir("kill");
  options.session_baseline = false;

  const NetTrialReport report = run_net_trial(options);
  EXPECT_EQ(report.trial.restarts, 1u);
  EXPECT_EQ(report.trial.failures, 0u);
  EXPECT_TRUE(report.trial.completed);
  ASSERT_EQ(report.trial.shards.size(), 4u);
  EXPECT_GE(report.trial.shards[1].epoch, 1u);  // the reborn incarnation reported
  // 100 ms at 500 us/step is ~200 steps — several checkpoints deep, so the
  // successor restored real progress rather than starting fresh.
  EXPECT_GT(report.trial.shards[1].restored_from_step, 0u);
  EXPECT_EQ(report.reporting_nodes, 64u);
  EXPECT_TRUE(report.ok) << "max_rel_error=" << report.max_rel_error;
}

TEST(SocketNetTrial, SigstoppedShardIsDetectedAndHealsAsFalsePositive) {
  NetTrialOptions options;
  options.topology_spec = "torus2d:8x8";
  options.algorithm = core::Algorithm::kFlowUpdating;
  options.seed = 17;
  options.runtime.num_shards = 4;
  options.runtime.steps_per_node = 700;
  options.runtime.step_pacing_us = 500;  // ~350 ms: peers still stepping at resume
  options.runtime.heartbeat_period_ms = 10;
  options.runtime.heartbeat_timeout_ms = 60;
  options.runtime.linger_ms = 400;
  options.chaos.stall_shard = 2;
  options.chaos.stall_after_ms = 60;
  options.chaos.stall_ms = 150;
  options.run_dir = scratch_dir("stall");
  options.session_baseline = false;

  const NetTrialReport report = run_net_trial(options);
  EXPECT_TRUE(report.trial.completed);
  EXPECT_EQ(report.trial.restarts, 0u);  // a stall is not a death

  std::uint64_t downs = 0;
  std::uint64_t ups = 0;
  for (const ShardReport& shard : report.trial.shards) {
    downs += shard.detector_downs;
    ups += shard.detector_ups;
  }
  // The 150 ms stall exceeds the 60 ms timeout: some peer must have declared
  // shard 2 down, and after SIGCONT its beacons must have healed the verdict.
  EXPECT_GE(downs, 1u);
  EXPECT_GE(ups, 1u);
  EXPECT_EQ(report.reporting_nodes, 64u);
  EXPECT_TRUE(report.ok) << "max_rel_error=" << report.max_rel_error;
}

}  // namespace
}  // namespace pcf::runtime
