#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/mass.hpp"

namespace pcf::runtime {
namespace {

Envelope make_envelope(net::NodeId from, double value) {
  Envelope e;
  e.from = from;
  e.packet.a = core::Mass::scalar(value, 1.0);
  return e;
}

TEST(Mailbox, StartsEmpty) {
  Mailbox box;
  EXPECT_TRUE(box.empty());
  EXPECT_TRUE(box.drain().empty());
}

TEST(Mailbox, DrainPreservesFifoOrderAndEmptiesTheBox) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) box.push(make_envelope(static_cast<net::NodeId>(i), i * 1.0));
  EXPECT_FALSE(box.empty());

  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(drained[static_cast<std::size_t>(i)].from, static_cast<net::NodeId>(i));
    EXPECT_EQ(drained[static_cast<std::size_t>(i)].packet.a.s[0], i * 1.0);
  }
  EXPECT_TRUE(box.empty());
  EXPECT_TRUE(box.drain().empty());
}

TEST(Mailbox, PushAfterDrainStartsAFreshBatch) {
  Mailbox box;
  box.push(make_envelope(1, 1.0));
  (void)box.drain();
  box.push(make_envelope(2, 2.0));
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].from, 2u);
}

TEST(Mailbox, UnboundedNeverOverflows) {
  Mailbox box;  // capacity 0 = unbounded
  EXPECT_EQ(box.capacity(), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(box.push(make_envelope(1, i * 1.0)));
  EXPECT_EQ(box.stats().blocked_pushes, 0u);
  EXPECT_EQ(box.stats().rejected_pushes, 0u);
  EXPECT_EQ(box.stats().high_watermark, 1000u);
}

TEST(Mailbox, TryPushFailsFastWhenFullAndCountsRejections) {
  Mailbox box(3);
  EXPECT_EQ(box.capacity(), 3u);
  EXPECT_TRUE(box.try_push(make_envelope(1, 1.0)));
  EXPECT_TRUE(box.try_push(make_envelope(1, 2.0)));
  EXPECT_TRUE(box.try_push(make_envelope(1, 3.0)));
  EXPECT_FALSE(box.try_push(make_envelope(1, 4.0)));
  EXPECT_FALSE(box.try_push(make_envelope(1, 5.0)));
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.stats().rejected_pushes, 2u);
  EXPECT_EQ(box.stats().blocked_pushes, 0u);  // try_push never blocks
  EXPECT_EQ(box.stats().high_watermark, 3u);

  (void)box.drain();
  EXPECT_TRUE(box.try_push(make_envelope(1, 6.0)));  // space again after drain
}

// Bounded blocking push: the producer parks on a full box and a concurrent
// drain releases it. TSan workload for the capacity/condvar interplay.
TEST(Mailbox, BlockingPushWaitsForDrain) {
  Mailbox box(2);
  EXPECT_TRUE(box.push(make_envelope(1, 1.0)));
  EXPECT_TRUE(box.push(make_envelope(1, 2.0)));

  std::thread producer([&box] {
    // Full: this blocks until the main thread drains.
    EXPECT_TRUE(box.push(make_envelope(2, 3.0)));
  });
  while (box.stats().blocked_pushes == 0) std::this_thread::yield();

  std::vector<Envelope> received = box.drain();
  producer.join();
  for (auto& envelope : box.drain()) received.push_back(envelope);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received.back().from, 2u);
  EXPECT_EQ(box.stats().blocked_pushes, 1u);
  EXPECT_EQ(box.stats().rejected_pushes, 0u);  // blocking path never rejects on full
}

// The two backpressure signals are independent: try_push rejections and
// blocking-push stalls land in separate counters, so an operator can tell
// load shedding (rejected) apart from producer stalls (blocked) in the
// pcflow-net report.
TEST(Mailbox, BlockedAndRejectedPushesAreCountedSeparately) {
  Mailbox box(1);
  EXPECT_TRUE(box.try_push(make_envelope(1, 1.0)));  // box now full
  EXPECT_FALSE(box.try_push(make_envelope(1, 2.0)));
  EXPECT_FALSE(box.try_push(make_envelope(1, 3.0)));
  EXPECT_EQ(box.stats().rejected_pushes, 2u);
  EXPECT_EQ(box.stats().blocked_pushes, 0u);

  std::thread producer([&box] { EXPECT_TRUE(box.push(make_envelope(2, 4.0))); });
  while (box.stats().blocked_pushes == 0) std::this_thread::yield();
  (void)box.drain();
  producer.join();

  EXPECT_EQ(box.stats().blocked_pushes, 1u);
  EXPECT_EQ(box.stats().rejected_pushes, 2u);  // untouched by the blocking path
}

// Shutdown-aware wakeup: producers blocked on a full box must exit with
// push() == false instead of hanging when nobody will drain again.
TEST(Mailbox, ShutdownWakesBlockedProducersAndRejectsLatePushes) {
  constexpr int kProducers = 3;
  Mailbox box(1);
  EXPECT_TRUE(box.push(make_envelope(0, 0.0)));  // box now full

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      EXPECT_FALSE(box.push(make_envelope(static_cast<net::NodeId>(p + 1), 1.0)));
    });
  }
  while (box.stats().blocked_pushes < kProducers) std::this_thread::yield();

  box.shutdown();
  for (auto& producer : producers) producer.join();

  EXPECT_FALSE(box.push(make_envelope(9, 9.0)));      // rejected after shutdown
  EXPECT_FALSE(box.try_push(make_envelope(9, 9.0)));  // ditto
  const auto drained = box.drain();  // pre-shutdown contents still readable
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].from, 0u);
}

// Bounded fill/drain race: producers block whenever the consumer lags, yet
// nothing is lost or duplicated and per-producer order survives. The TSan CI
// job's bounded-mailbox workload.
TEST(Mailbox, BoundedConcurrentFillDrainLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;

  Mailbox box(8);  // far smaller than the traffic: constant backpressure
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.push(make_envelope(static_cast<net::NodeId>(p), i * 1.0)));
      }
    });
  }

  std::vector<Envelope> received;
  received.reserve(kProducers * kPerProducer);
  while (received.size() < kProducers * kPerProducer) {
    for (auto& envelope : box.drain()) received.push_back(envelope);
  }
  for (auto& producer : producers) producer.join();
  for (auto& envelope : box.drain()) received.push_back(envelope);

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::vector<double> next_expected(kProducers, 0.0);
  for (const auto& envelope : received) {
    ASSERT_EQ(envelope.packet.a.s[0], next_expected[envelope.from]);
    next_expected[envelope.from] += 1.0;
  }
  EXPECT_LE(box.stats().high_watermark, 8u);  // the bound really held
}

// Concurrent producers with one draining consumer — the deployment shape of
// the threaded runtime (any thread delivers, only the owner drains). Checks
// nothing is lost or duplicated and each producer's envelopes arrive in its
// push order. This test is the TSan CI job's primary mailbox workload.
TEST(Mailbox, ConcurrentProducersLoseNothingAndKeepPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  Mailbox box;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(make_envelope(static_cast<net::NodeId>(p), i * 1.0));
      }
    });
  }

  // Consumer: drain concurrently with the producers, then once more after the
  // join to collect stragglers.
  std::vector<Envelope> received;
  received.reserve(kProducers * kPerProducer);
  while (received.size() < kProducers * kPerProducer) {
    for (auto& envelope : box.drain()) received.push_back(envelope);
  }
  for (auto& producer : producers) producer.join();
  for (auto& envelope : box.drain()) received.push_back(envelope);

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::vector<double> next_expected(kProducers, 0.0);
  for (const auto& envelope : received) {
    auto& expected = next_expected[envelope.from];
    EXPECT_EQ(envelope.packet.a.s[0], expected) << "producer " << envelope.from;
    expected += 1.0;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[static_cast<std::size_t>(p)], kPerProducer * 1.0);
  }
}

}  // namespace
}  // namespace pcf::runtime
