#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/mass.hpp"

namespace pcf::runtime {
namespace {

Envelope make_envelope(net::NodeId from, double value) {
  Envelope e;
  e.from = from;
  e.packet.a = core::Mass::scalar(value, 1.0);
  return e;
}

TEST(Mailbox, StartsEmpty) {
  Mailbox box;
  EXPECT_TRUE(box.empty());
  EXPECT_TRUE(box.drain().empty());
}

TEST(Mailbox, DrainPreservesFifoOrderAndEmptiesTheBox) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) box.push(make_envelope(static_cast<net::NodeId>(i), i * 1.0));
  EXPECT_FALSE(box.empty());

  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(drained[static_cast<std::size_t>(i)].from, static_cast<net::NodeId>(i));
    EXPECT_EQ(drained[static_cast<std::size_t>(i)].packet.a.s[0], i * 1.0);
  }
  EXPECT_TRUE(box.empty());
  EXPECT_TRUE(box.drain().empty());
}

TEST(Mailbox, PushAfterDrainStartsAFreshBatch) {
  Mailbox box;
  box.push(make_envelope(1, 1.0));
  (void)box.drain();
  box.push(make_envelope(2, 2.0));
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].from, 2u);
}

// Concurrent producers with one draining consumer — the deployment shape of
// the threaded runtime (any thread delivers, only the owner drains). Checks
// nothing is lost or duplicated and each producer's envelopes arrive in its
// push order. This test is the TSan CI job's primary mailbox workload.
TEST(Mailbox, ConcurrentProducersLoseNothingAndKeepPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  Mailbox box;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(make_envelope(static_cast<net::NodeId>(p), i * 1.0));
      }
    });
  }

  // Consumer: drain concurrently with the producers, then once more after the
  // join to collect stragglers.
  std::vector<Envelope> received;
  received.reserve(kProducers * kPerProducer);
  while (received.size() < kProducers * kPerProducer) {
    for (auto& envelope : box.drain()) received.push_back(envelope);
  }
  for (auto& producer : producers) producer.join();
  for (auto& envelope : box.drain()) received.push_back(envelope);

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::vector<double> next_expected(kProducers, 0.0);
  for (const auto& envelope : received) {
    auto& expected = next_expected[envelope.from];
    EXPECT_EQ(envelope.packet.a.s[0], expected) << "producer " << envelope.from;
    expected += 1.0;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[static_cast<std::size_t>(p)], kPerProducer * 1.0);
  }
}

}  // namespace
}  // namespace pcf::runtime
