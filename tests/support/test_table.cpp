#include "support/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "support/check.hpp"

namespace pcf {
namespace {

TEST(Table, RejectsEmptyHeaders) { EXPECT_THROW(Table({}), ContractViolation); }

TEST(Table, RejectsOversizedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1", "2", "3"}), ContractViolation);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b"});
  t.add_row({"1"});
  testing::internal::CaptureStdout();
  t.print_csv();
  EXPECT_EQ(testing::internal::GetCapturedStdout(), "a,b\n1,\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  testing::internal::CaptureStdout();
  t.print();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("name    v"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  testing::internal::CaptureStdout();
  t.print_csv();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, SciAndFixedFormatting) {
  EXPECT_EQ(Table::sci(0.000123, 2), "1.23e-04");
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(42), "42");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const auto path = std::filesystem::temp_directory_path() / "pcf_table_test.csv";
  ASSERT_TRUE(t.write_csv(path.string()));
  std::FILE* f = std::fopen(path.string().c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto read = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::filesystem::remove(path);
  EXPECT_EQ(std::string(buf, read), "a,b\n1,2\n");
}

TEST(Table, WriteCsvToBadPathReturnsFalse) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_zzz/file.csv"));
}

}  // namespace
}  // namespace pcf
