#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace pcf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversFullRangeWithoutBias) {
  Rng rng(3);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.below(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  const Rng base(99);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  const Rng base(99);
  Rng a = base.fork(5);
  Rng b = base.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ChanceZeroNeverFires) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(rng.chance(0.0));
}

TEST(Rng, ChanceOneAlwaysFires) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, NormalHasUnitVarianceAndZeroMean) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(std::span<int>(w));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(std::span<int>(w));
  EXPECT_NE(v, w);
}

TEST(Rng, PickReturnsElementFromSpan) {
  Rng rng(31);
  const std::vector<int> v{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(std::span<const int>(v)));
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, SplitmixIsReproducible) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace pcf
