#include "support/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pcf {
namespace {

TEST(Check, PassingExpressionDoesNotThrow) {
  EXPECT_NO_THROW(PCF_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PCF_CHECK_MSG(true, "never rendered"));
}

TEST(Check, FailureThrowsContractViolationWithExpressionAndLocation) {
  try {
    PCF_CHECK(2 > 3);
    FAIL() << "PCF_CHECK(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violated"), std::string::npos) << what;
    EXPECT_NE(what.find("2 > 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST(Check, MessageVersionStreamsTheMessage) {
  const int answer = 42;
  try {
    PCF_CHECK_MSG(answer == 7, "answer was " << answer);
    FAIL() << "PCF_CHECK_MSG(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("answer == 7"), std::string::npos) << what;
    EXPECT_NE(what.find("answer was 42"), std::string::npos) << what;
  }
}

TEST(Check, ContractViolationIsALogicError) {
  // Callers (the CLI's exit-code-2 path, tests) catch std::logic_error.
  EXPECT_THROW(PCF_CHECK(false), std::logic_error);
}

TEST(Check, MessageIsOnlyEvaluatedOnFailure) {
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return "expensive";
  };
  PCF_CHECK_MSG(true, count());
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, AssertMatchesTheBuildMode) {
#ifdef NDEBUG
  // Release builds compile PCF_ASSERT out entirely — including its side
  // effects' evaluation.
  int evaluated = 0;
  PCF_ASSERT(++evaluated > 0);
  EXPECT_EQ(evaluated, 0);
#else
  EXPECT_NO_THROW(PCF_ASSERT(true));
  EXPECT_THROW(PCF_ASSERT(false), ContractViolation);
#endif
}

}  // namespace
}  // namespace pcf
