#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace pcf {
namespace {

TEST(JsonWriter, GoldenSmallDocument) {
  JsonWriter json;
  json.begin_object();
  json.field("name", "bench");
  json.field("count", std::int64_t{3});
  json.key("values");
  json.begin_array();
  json.value(1.5);
  json.value(false);
  json.null();
  json.end_array();
  json.key("empty");
  json.begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"name\": \"bench\",\n"
            "  \"count\": 3,\n"
            "  \"values\": [\n"
            "    1.5,\n"
            "    false,\n"
            "    null\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoublesRoundTripAt17Digits) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1);
  json.value(1.0 / 3.0);
  json.end_array();
  EXPECT_EQ(json.str(),
            "[\n"
            "  0.10000000000000001,\n"
            "  0.33333333333333331\n"
            "]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(),
            "[\n"
            "  null,\n"
            "  null\n"
            "]");
}

TEST(JsonWriter, ScalarTopLevelValueWorks) {
  JsonWriter json;
  json.value(std::uint64_t{42});
  EXPECT_EQ(json.str(), "42");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), ContractViolation);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), ContractViolation);  // key inside array
    EXPECT_THROW(json.end_object(), ContractViolation);
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW((void)json.str(), ContractViolation);  // unterminated scope
  }
  {
    JsonWriter json;
    json.value(1.0);
    EXPECT_THROW(json.value(2.0), ContractViolation);  // two top-level values
  }
}

}  // namespace
}  // namespace pcf
