#include "support/inline_vector.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace pcf {
namespace {

using Vec = InlineVector<double, 4>;

TEST(InlineVector, DefaultIsEmpty) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(Vec::capacity(), 4u);
}

TEST(InlineVector, SizeConstructorFills) {
  Vec v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  for (double x : v) EXPECT_EQ(x, 1.5);
}

TEST(InlineVector, InitializerList) {
  Vec v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(InlineVector, PushBackAndOverflow) {
  Vec v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_THROW(v.push_back(9.0), ContractViolation);
}

TEST(InlineVector, ResizeGrowsWithFillAndShrinks) {
  Vec v{1.0};
  v.resize(3, 7.0);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 7.0);
  EXPECT_EQ(v[2], 7.0);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1.0);
}

TEST(InlineVector, ResizeBeyondCapacityThrows) {
  Vec v;
  EXPECT_THROW(v.resize(5), ContractViolation);
}

TEST(InlineVector, EqualityComparesSizeAndContent) {
  Vec a{1.0, 2.0};
  Vec b{1.0, 2.0};
  Vec c{1.0, 2.0, 3.0};
  Vec d{1.0, 9.0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(InlineVector, IterationAndAccumulate) {
  Vec v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(std::accumulate(v.begin(), v.end(), 0.0), 10.0);
}

TEST(InlineVector, SpanConstructorAndAsSpan) {
  const double raw[] = {5.0, 6.0};
  Vec v{std::span<const double>(raw)};
  auto s = v.as_span();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], 6.0);
}

TEST(InlineVector, ClearResets) {
  Vec v{1.0, 2.0};
  v.clear();
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace pcf
