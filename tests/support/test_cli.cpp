#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pcf {
namespace {

CliFlags standard_flags() {
  CliFlags flags;
  flags.define("count", std::int64_t{10}, "a count");
  flags.define("ratio", 0.5, "a ratio");
  flags.define("name", std::string("abc"), "a name");
  flags.define("verbose", false, "a switch");
  return flags;
}

bool parse(CliFlags& flags, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, DefaultsSurviveEmptyParse) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {}));
  EXPECT_EQ(flags.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.5);
  EXPECT_EQ(flags.get_string("name"), "abc");
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, EqualsSyntax) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {"--count=42", "--ratio=0.25", "--name=xyz"}));
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  EXPECT_EQ(flags.get_string("name"), "xyz");
}

TEST(CliFlags, SpaceSeparatedSyntax) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {"--count", "7"}));
  EXPECT_EQ(flags.get_int("count"), 7);
}

TEST(CliFlags, BareBooleanSetsTrue) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {"--verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, BooleanExplicitFalse) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {"--verbose=false"}));
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, UnknownFlagThrows) {
  auto flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--nope=1"}), ContractViolation);
}

TEST(CliFlags, MalformedIntThrows) {
  auto flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--count=abc"}), ContractViolation);
}

TEST(CliFlags, MalformedDoubleThrows) {
  auto flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--ratio=1.2.3"}), ContractViolation);
}

TEST(CliFlags, MissingValueThrows) {
  auto flags = standard_flags();
  EXPECT_THROW(parse(flags, {"--count"}), ContractViolation);
}

TEST(CliFlags, HelpReturnsFalse) {
  auto flags = standard_flags();
  EXPECT_FALSE(parse(flags, {"--help"}));
}

TEST(CliFlags, PositionalArgumentsCollected) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {"pos1", "--count=2", "pos2"}));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(CliFlags, WrongTypeAccessThrows) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {}));
  EXPECT_THROW((void)flags.get_int("ratio"), ContractViolation);
  EXPECT_THROW((void)flags.get_double("nonexistent"), ContractViolation);
}

TEST(CliFlags, NegativeNumbersAccepted) {
  auto flags = standard_flags();
  EXPECT_TRUE(parse(flags, {"--count=-3", "--ratio=-0.5"}));
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), -0.5);
}

}  // namespace
}  // namespace pcf
