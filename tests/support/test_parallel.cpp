#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pcf {
namespace {

TEST(ResolveThreadCount, ClampsToJobsAndNeverReturnsZero) {
  EXPECT_EQ(resolve_thread_count(4, 100), 4u);
  EXPECT_EQ(resolve_thread_count(8, 3), 3u);   // never more workers than jobs
  EXPECT_EQ(resolve_thread_count(1, 0), 1u);   // degenerate: no jobs
  EXPECT_GE(resolve_thread_count(0, 16), 1u);  // 0 = hardware concurrency
  EXPECT_LE(resolve_thread_count(0, 16), 16u);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_index(kN, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForIndex, ThreadedMatchesSerialWhenSlotsAreIndependent) {
  // The determinism recipe the bench runner relies on: each job derives its
  // value from its index alone and writes only its own slot, so the result
  // vector cannot depend on scheduling.
  constexpr std::size_t kN = 200;
  const auto fill = [](std::size_t threads) {
    std::vector<std::uint64_t> out(kN, 0);
    parallel_for_index(kN, threads, [&](std::size_t i) {
      std::uint64_t v = 0x9e3779b97f4a7c15ULL * (i + 1);
      for (int k = 0; k < 8; ++k) v = v * 6364136223846793005ULL + 1442695040888963407ULL;
      out[i] = v;
    });
    return out;
  };
  EXPECT_EQ(fill(1), fill(3));
  EXPECT_EQ(fill(1), fill(0));  // hardware concurrency
}

TEST(ParallelForIndex, ZeroJobsIsANoOp) {
  bool called = false;
  parallel_for_index(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForIndex, RethrowsFirstExceptionAfterDrainingSerial) {
  std::atomic<int> calls{0};
  const auto run = [&] {
    parallel_for_index(10, 1, [&](std::size_t i) {
      calls.fetch_add(1);
      if (i == 3) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
}

TEST(ParallelForIndex, RethrowsExceptionFromWorkerThread) {
  std::atomic<int> calls{0};
  const auto run = [&] {
    parallel_for_index(64, 4, [&](std::size_t i) {
      calls.fetch_add(1, std::memory_order_relaxed);
      if (i == 20) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // Remaining indices are still drained before the rethrow.
  EXPECT_EQ(calls.load(), 64);
}

}  // namespace
}  // namespace pcf
