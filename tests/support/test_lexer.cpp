// Tests for the lightweight C++ tokenizer behind pcflow-lint. The lint rules
// depend on exactly the properties pinned here: correct token kinds, exact
// 1-based line/column positions, comments as first-class tokens, and banned
// names never leaking out of strings, chars or raw strings.
#include "support/lexer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pcf::lex {
namespace {

[[nodiscard]] std::vector<std::string> texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const Token& t : tokens) out.emplace_back(t.text);
  return out;
}

TEST(Lexer, KindsAndPositions) {
  const std::string src = "int x = 42;\ndouble y = 1.5e-3;\n";
  const auto tokens = tokenize(src);
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].col, 1u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[3].col, 9u);
  EXPECT_EQ(tokens[8].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[8].text, "1.5e-3");  // exponent sign stays in the pp-number
  EXPECT_EQ(tokens[8].line, 2u);
}

TEST(Lexer, LongestMatchPunctuation) {
  const auto tokens = tokenize("a::b->c <=> d >>= e == f != g;");
  const std::vector<std::string> expected = {"a", "::", "b",  "->", "c", "<=>", "d", ">>=",
                                             "e", "==", "f",  "!=", "g", ";"};
  EXPECT_EQ(texts(tokens), expected);
  for (const Token& t : tokens) {
    if (t.text == "::" || t.text == "<=>" || t.text == ">>=") {
      EXPECT_EQ(t.kind, TokenKind::kPunct);
    }
  }
}

TEST(Lexer, CommentsAreFirstClassTokens) {
  const auto tokens = tokenize("x; // trailing note\n/* block\n spans lines */ y;");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[2].text, "// trailing note");
  EXPECT_EQ(tokens[2].line, 1u);
  EXPECT_EQ(tokens[2].col, 4u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[3].text, "/* block\n spans lines */");
  EXPECT_EQ(tokens[3].line, 2u);
  EXPECT_EQ(tokens[4].text, "y");
  EXPECT_EQ(tokens[4].line, 3u);  // position tracking continues after the block
}

TEST(Lexer, BannedNamesInsideLiteralsStayLiterals) {
  const auto tokens = tokenize(
      "const char* a = \"std::rand() inside a string\";\n"
      "char b = 'r';\n"
      "const char* c = R\"doc(rand() \" unbalanced quote)doc\";\n");
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand") << "identifier leaked out of a literal";
    }
  }
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[10].kind, TokenKind::kChar);
  EXPECT_EQ(tokens[10].text, "'r'");
}

TEST(Lexer, EscapedQuotesDoNotEndLiterals) {
  const auto tokens = tokenize("const char* s = \"a \\\" b\"; int x;");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "\"a \\\" b\"");
  EXPECT_EQ(tokens[7].text, "int");
}

TEST(Lexer, EncodingPrefixesStaySingleTokens) {
  const auto tokens = tokenize("auto a = u8\"x\"; auto b = L'\\0'; auto c = UR\"(y)\";");
  std::size_t strings = 0;
  std::size_t chars = 0;
  for (const Token& t : tokens) {
    strings += t.kind == TokenKind::kString ? 1u : 0u;
    chars += t.kind == TokenKind::kChar ? 1u : 0u;
    EXPECT_NE(t.text, "u8");
    EXPECT_NE(t.text, "L");
    EXPECT_NE(t.text, "UR");
  }
  EXPECT_EQ(strings, 2u);
  EXPECT_EQ(chars, 1u);
}

TEST(Lexer, IdentifierEndingInRIsNotARawString) {
  const auto tokens = tokenize("CHECKR\"not raw\";");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "CHECKR");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
}

TEST(Lexer, BackslashNewlineSplicesTokens) {
  // Phase-2 splicing: the macro body is one logical line; `rand` split across
  // a continuation must still come out as one identifier.
  const auto tokens = tokenize("#define M ra\\\nnd()\nint x;");
  bool found = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text.find("ra") == 0) {
      found = true;
      EXPECT_EQ(t.line, 1u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(tokens.back().text, ";");
  EXPECT_EQ(tokens.back().line, 3u);
}

TEST(Lexer, NumbersWithSeparatorsAndHexFloats) {
  const auto tokens = tokenize("auto a = 1'000'000; auto b = 0x1.8p-2; auto c = .5;");
  std::vector<std::string> numbers;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) numbers.emplace_back(t.text);
  }
  EXPECT_EQ(numbers, (std::vector<std::string>{"1'000'000", "0x1.8p-2", ".5"}));
}

TEST(Lexer, UnterminatedConstructsCloseAtEof) {
  // Lint must degrade gracefully on code that does not compile yet.
  EXPECT_EQ(tokenize("/* never closed").size(), 1u);
  EXPECT_EQ(tokenize("/* never closed")[0].kind, TokenKind::kComment);
  const auto tokens = tokenize("\"open string\n next_line");
  ASSERT_EQ(tokens.size(), 2u);  // string closes at newline, identifier follows
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "next_line");
}

TEST(Lexer, UnterminatedRawStringSwallowsRestOfFile) {
  // An unterminated raw string closes at EOF: everything after the opener is
  // literal text, so banned names in it must never surface as identifiers.
  const auto tokens = tokenize("auto s = R\"(std::rand() time(nullptr)\nstill inside");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "R\"(std::rand() time(nullptr)\nstill inside");
  // Same input twice: identical tokens (the EOF recovery is deterministic).
  const auto again = tokenize("auto s = R\"(std::rand() time(nullptr)\nstill inside");
  ASSERT_EQ(again.size(), tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(again[i].text, tokens[i].text);
    EXPECT_EQ(again[i].line, tokens[i].line);
    EXPECT_EQ(again[i].col, tokens[i].col);
  }
}

TEST(Lexer, CrlfLineEndingsKeepPositionsAndComments) {
  // Windows-style endings: `\r` is plain whitespace, `\n` still ends the
  // line, and a line comment keeps the `\r` but never eats the next line.
  const auto tokens = tokenize("int x; // note\r\nint y;\r\nint z;\r\n");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[3].text, "// note\r");
  EXPECT_EQ(tokens[4].text, "int");
  EXPECT_EQ(tokens[4].line, 2u);
  EXPECT_EQ(tokens[4].col, 1u);
  EXPECT_EQ(tokens[7].line, 3u);
}

TEST(Lexer, SplicedLineCommentSwallowsTheNextLine) {
  // A backslash-newline at the end of a `//` comment splices the next line
  // INTO the comment (C++ phase 2 runs before comment removal) — code on the
  // continuation line must not produce tokens, with LF or CRLF endings alike.
  for (const std::string_view ending : {"\\\n", "\\\r\n"}) {
    const std::string src =
        std::string("// swallowed ") + std::string(ending) + "std::rand();\nint after;\n";
    const auto tokens = tokenize(src);
    ASSERT_EQ(tokens.size(), 4u) << "ending bytes: " << ending.size();
    EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
    EXPECT_EQ(tokens[1].text, "int");
    EXPECT_EQ(tokens[1].line, 3u);  // the splice still advanced the line count
  }
}

TEST(Lexer, EmptyAndWhitespaceOnlyInputs) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("  \t\n\r\n").empty());
}

TEST(Lexer, TokenKindNamesAreStable) {
  EXPECT_EQ(to_string(TokenKind::kIdentifier), "identifier");
  EXPECT_EQ(to_string(TokenKind::kComment), "comment");
}

}  // namespace
}  // namespace pcf::lex
