#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace pcf {
namespace {

TEST(RunningStats, EmptyIsSane) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  const std::vector<double> values{1.5, -2.0, 3.25, 8.0, 0.0, -1.0, 4.5};
  for (std::size_t i = 0; i < values.size(); ++i) {
    all.add(values[i]);
    (i < 3 ? a : b).add(values[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(RunningStats, MergeWithSelfDoublesEverything) {
  // Aliased merge must read `other` before mutating `*this` — a natural use
  // when folding a vector of partial stats that happens to include the
  // accumulator itself.
  RunningStats s;
  for (double v : {1.0, 4.0, 7.0}) s.add(v);
  const double mean = s.mean();
  const double m2_variance = s.variance() * 2.0;  // m2 doubles, n-1: 2 -> 5
  s.merge(s);
  EXPECT_EQ(s.count(), 6u);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_DOUBLE_EQ(s.sum(), 24.0);
  EXPECT_NEAR(s.variance(), m2_variance * 2.0 / 5.0, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(RunningStats, MergePropagatesInfinities) {
  RunningStats a, b;
  a.add(1.0);
  b.add(std::numeric_limits<double>::infinity());
  b.add(-std::numeric_limits<double>::infinity());
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(a.max(), std::numeric_limits<double>::infinity());
}

TEST(Quantile, MedianOfOddCount) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(v), 2.0);
}

TEST(Quantile, MedianOfEvenCountInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolationNearEndpoints) {
  // pos = q * (n-1): the interpolation must clamp at the last element and be
  // exactly linear within the first/last gap.
  const std::vector<double> v{0.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 5.0);     // halfway into [0, 10]
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 55.0);    // halfway into [10, 100]
  EXPECT_DOUBLE_EQ(quantile(v, 0.999), 100.0 - 0.002 * 90.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 7.0);
}

TEST(Quantile, RejectsEmptyAndBadOrder) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile({}, 0.5), ContractViolation);
  EXPECT_THROW((void)quantile(v, 1.5), ContractViolation);
}

TEST(MaxValue, EmptyIsMinusInfinity) {
  EXPECT_EQ(max_value({}), -std::numeric_limits<double>::infinity());
}

TEST(MaxValue, FindsMaximum) {
  const std::vector<double> v{-5.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(max_value(v), 2.0);
}

TEST(KahanSum, ExactForSmallInputs) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(kahan_sum(v), 6.0);
}

TEST(KahanSum, BeatsNaiveSummation) {
  // Many tiny values next to a huge one: naive summation loses them all.
  std::vector<double> v{1e16};
  for (int i = 0; i < 10000; ++i) v.push_back(1.0);
  const double kahan = kahan_sum(v);
  EXPECT_DOUBLE_EQ(kahan, 1e16 + 10000.0);
}

}  // namespace
}  // namespace pcf
