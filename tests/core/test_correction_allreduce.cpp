#include "core/correction_allreduce.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "net/tree_schedule.hpp"
#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::make_engine;

ReducerConfig config_for(const net::Topology& t,
                         net::TreeKind kind = net::TreeKind::kAuto) {
  ReducerConfig c;
  c.tree = std::make_shared<const net::TreeSchedule>(net::build_tree_schedule(t, kind));
  return c;
}

core::ReducerConfig with_tree_kind(net::TreeKind kind) {
  ReducerConfig c;
  c.tree_kind = kind;
  return c;
}

TEST(CorrectionAllreduce, ConvergesOnBusChain) {
  const auto t = net::Topology::bus(8);
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 7);
  engine.run(200);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, ConvergesOnTorusBfs) {
  const auto t = net::Topology::grid2d(4, 4, /*wrap=*/true);
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 3);
  engine.run(400);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, ConvergesToSum) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kSum, 5);
  engine.run(400);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, ExplicitTreeKindIsHonored) {
  const auto t = net::Topology::ring(10);  // carries both chain and BFS trees
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 9, {},
                            with_tree_kind(net::TreeKind::kBfs));
  engine.run(200);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, SurvivesMessageLoss) {
  // The correction property: absolute idempotent reports, so loss only
  // delays convergence until the next periodic resend.
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.3;
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 5, faults);
  engine.run(1500);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, SurvivesDuplicationAndReordering) {
  const auto t = net::Topology::grid2d(3, 4);
  sim::FaultPlan faults;
  faults.duplicate_prob = 0.2;
  faults.reorder_prob = 0.2;
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 8, faults);
  engine.run(1000);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, MassNeverMoves) {
  const auto cfg = config_for(net::Topology::bus(3));
  CorrectionAllreduce a{cfg}, b{cfg};
  const std::vector<NodeId> na{1}, nb{0, 2};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b.init(1, nb, Mass::scalar(3.0, 1.0));
  const auto msg = b.make_message_to(0);
  ASSERT_TRUE(msg.has_value());
  a.on_receive(1, msg->packet);
  EXPECT_EQ(a.local_mass(), Mass::scalar(6.0, 1.0));
  EXPECT_EQ(b.local_mass(), Mass::scalar(3.0, 1.0));
  // Crashed senders therefore strand no in-flight mass.
  EXPECT_EQ(a.unreceived_mass(1, msg->packet), Mass::zero(1));
}

TEST(CorrectionAllreduce, ChildClaimsDriveSubtreeSums) {
  // Explicit chain 0 <- 1 <- 2 (auto would pick the star rooted at the hub 1).
  const auto cfg = config_for(net::Topology::bus(3), net::TreeKind::kChain);
  CorrectionAllreduce root{cfg}, mid{cfg}, leaf{cfg};
  root.init(0, std::vector<NodeId>{1}, Mass::scalar(6.0, 1.0));
  mid.init(1, std::vector<NodeId>{0, 2}, Mass::scalar(3.0, 1.0));
  leaf.init(2, std::vector<NodeId>{1}, Mass::scalar(9.0, 1.0));

  // Leaf reports its subtree (itself) upward; mid folds it in.
  const auto up1 = leaf.make_message_to(1);
  ASSERT_TRUE(up1.has_value());
  EXPECT_EQ(up1->packet.role_count, 2u);  // claims parent id 1
  mid.on_receive(2, up1->packet);
  const auto up2 = mid.make_message_to(0);
  ASSERT_TRUE(up2.has_value());
  EXPECT_EQ(up2->packet.a, Mass::scalar(12.0, 2.0));  // 3+9, both weights

  // Root folds mid's report: its subtree sum IS the global aggregate.
  root.on_receive(1, up2->packet);
  EXPECT_DOUBLE_EQ(root.estimate(), 18.0 / 3.0);

  // The root's packet publishes the global view (active_slot == 2)...
  const auto down = root.make_message_to(1);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->packet.active_slot, 2);
  EXPECT_EQ(down->packet.role_count, 0u);  // the root claims no parent
  // ...which the child adopts as its estimate.
  mid.on_receive(0, down->packet);
  EXPECT_DOUBLE_EQ(mid.estimate(), 18.0 / 3.0);
}

TEST(CorrectionAllreduce, RetransmissionIsIdempotent) {
  const auto cfg = config_for(net::Topology::bus(3));
  CorrectionAllreduce mid1{cfg}, mid2{cfg}, leaf{cfg};
  const std::vector<NodeId> nm{0, 2};
  mid1.init(1, nm, Mass::scalar(3.0, 1.0));
  mid2.init(1, nm, Mass::scalar(3.0, 1.0));
  leaf.init(2, std::vector<NodeId>{1}, Mass::scalar(9.0, 1.0));
  const auto report = leaf.make_message_to(1);
  ASSERT_TRUE(report.has_value());
  mid1.on_receive(2, report->packet);
  mid1.on_receive(2, report->packet);  // duplicate
  mid2.on_receive(2, report->packet);
  const auto m1 = mid1.make_message_to(0);
  const auto m2 = mid2.make_message_to(0);
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  EXPECT_EQ(m1->packet.a, m2->packet.a);  // absolute reports: duplicates are no-ops
}

TEST(CorrectionAllreduce, ReattachesToNextUpwardNeighborOnParentLoss) {
  // ring(6) resolves to the chain schedule (depth[i] == i). Node 5 has the
  // upward neighbors 0 (depth 0) and 4 (depth 4); the (depth, id)-minimal
  // rule picks 0 first, then 4 after the 5-0 link is excluded.
  const auto t = net::Topology::ring(6);
  const auto cfg = config_for(t);
  ASSERT_EQ(cfg.tree->kind, net::TreeKind::kChain);
  CorrectionAllreduce n5{cfg};
  n5.init(5, t.neighbors(5), Mass::scalar(1.0, 1.0));
  ASSERT_TRUE(n5.current_parent().has_value());
  EXPECT_EQ(*n5.current_parent(), 0u);

  n5.on_link_down(0);
  ASSERT_TRUE(n5.current_parent().has_value());
  EXPECT_EQ(*n5.current_parent(), 4u);  // correction round: re-attach upward

  // With no upward neighbor left the node becomes a fragment root and
  // honestly reports its fragment's aggregate — here just itself.
  n5.on_link_down(4);
  EXPECT_FALSE(n5.current_parent().has_value());
  EXPECT_DOUBLE_EQ(n5.estimate(), 1.0);

  // Healing restores the static attachment.
  n5.on_link_up(0);
  ASSERT_TRUE(n5.current_parent().has_value());
  EXPECT_EQ(*n5.current_parent(), 0u);
}

TEST(CorrectionAllreduce, LinkDownDiscardsChildReportAndGlobalView) {
  const auto cfg = config_for(net::Topology::bus(3), net::TreeKind::kChain);
  CorrectionAllreduce mid{cfg}, leaf{cfg};
  mid.init(1, std::vector<NodeId>{0, 2}, Mass::scalar(3.0, 1.0));
  leaf.init(2, std::vector<NodeId>{1}, Mass::scalar(9.0, 1.0));
  const auto report = leaf.make_message_to(1);
  ASSERT_TRUE(report.has_value());
  mid.on_receive(2, report->packet);
  {
    const auto up = mid.make_message_to(0);
    ASSERT_TRUE(up.has_value());
    EXPECT_EQ(up->packet.a, Mass::scalar(12.0, 2.0));
  }
  mid.on_link_down(2);
  {
    const auto up = mid.make_message_to(0);
    ASSERT_TRUE(up.has_value());
    EXPECT_EQ(up->packet.a, Mass::scalar(3.0, 1.0));  // stale report dropped
  }
  // Losing the parent also invalidates the inherited global view: the node
  // falls back to its own subtree sum until a new parent publishes one.
  Packet global;
  global.a = Mass::scalar(3.0, 1.0);
  global.b = Mass::scalar(18.0, 3.0);
  global.active_slot = 2;
  global.role_count = 0;
  mid.on_receive(0, global);
  EXPECT_DOUBLE_EQ(mid.estimate(), 6.0);
  mid.on_link_down(0);
  EXPECT_DOUBLE_EQ(mid.estimate(), 3.0);
}

TEST(CorrectionAllreduce, SurvivesLeafCrashInEngine) {
  const auto t = net::Topology::grid2d(4, 4);
  sim::FaultPlan faults;
  faults.node_crashes.push_back({40.0, 15});  // the deepest BFS leaf
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 11, faults);
  engine.run(600);
  // The leaf's parent drops its report; the intact remainder of the tree
  // reconverges on the survivors' aggregate (the oracle retargets on crash).
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(CorrectionAllreduce, ReattachesAfterParentLinkFailureInEngine) {
  // In the 4x4 grid's BFS tree, node 6 attaches to node 2 but also borders
  // node 5 at the same depth as 2 — losing the 2-6 link triggers the
  // correction round (re-attach to 5) and the tree stays global.
  const auto t = net::Topology::grid2d(4, 4);
  sim::FaultPlan faults;
  faults.link_failures.push_back({30.0, 2, 6});
  auto engine = make_engine(t, Algorithm::kCorrectionAllreduce, Aggregate::kAverage, 13, faults);
  engine.run(600);
  EXPECT_LT(engine.max_error(), 1e-12);
}

}  // namespace
}  // namespace pcf::core
