#include "core/push_flow.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/schedule.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::bus_case_study_masses;
using test::make_engine;
using test::total_mass;

TEST(PushFlow, VirtualSendFoldsHalfIntoFlow) {
  PushFlow node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(8.0, 2.0));
  Rng rng(1);
  const auto out = node.make_message(rng);
  ASSERT_TRUE(out.has_value());
  // Flow toward 1 now carries half; the local mass dropped to half.
  EXPECT_DOUBLE_EQ(node.flow_to(1).s[0], 4.0);
  EXPECT_DOUBLE_EQ(node.local_mass().s[0], 4.0);
  // Physical packet is the whole flow variable, not the delta.
  EXPECT_DOUBLE_EQ(out->packet.a.s[0], 4.0);
}

TEST(PushFlow, ReceiverMirrorsWithExactNegation) {
  PushFlow a{{}}, b{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b.init(1, nb, Mass::scalar(0.0, 1.0));
  Rng rng(1);
  const auto out = a.make_message(rng);
  ASSERT_TRUE(out.has_value());
  b.on_receive(0, out->packet);
  EXPECT_TRUE(b.flow_to(0).is_negation_of(a.flow_to(1)));
  // Mass moved: a has 3, b has 3 (their mass sum is conserved: 6).
  EXPECT_DOUBLE_EQ(a.local_mass().s[0], 3.0);
  EXPECT_DOUBLE_EQ(b.local_mass().s[0], 3.0);
}

TEST(PushFlow, RetransmissionIsIdempotent) {
  // Losing a packet and receiving the next one gives the same state as
  // receiving both — the flow is absolute, not a delta.
  PushFlow a{{}}, b1{{}}, b2{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b1.init(1, nb, Mass::scalar(0.0, 1.0));
  b2.init(1, nb, Mass::scalar(0.0, 1.0));
  Rng rng(1);
  const auto first = a.make_message(rng);
  const auto second = a.make_message(rng);
  // b1 receives both; b2 only the second.
  b1.on_receive(0, first->packet);
  b1.on_receive(0, second->packet);
  b2.on_receive(0, second->packet);
  EXPECT_EQ(b1.local_mass(), b2.local_mass());
}

TEST(PushFlow, BitFlipInFlowHealsAtNextDelivery) {
  PushFlow a{{}}, b{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b.init(1, nb, Mass::scalar(2.0, 1.0));
  Rng rng(1);
  b.on_receive(0, a.make_message(rng)->packet);
  // Corrupt b's mirrored flow (as a bit flip in memory would).
  Packet corrupt;
  corrupt.a = Mass::scalar(1234.5, -7.0);
  b.on_receive(0, corrupt);
  EXPECT_NE(b.local_mass().s[0], 5.0);
  // The next regular delivery from a overwrites the corruption.
  b.on_receive(0, a.make_message(rng)->packet);
  EXPECT_TRUE(b.flow_to(0).is_negation_of(a.flow_to(1)));
}

TEST(PushFlow, ConvergesOnHypercubeAvgAndSum) {
  for (const auto agg : {Aggregate::kAverage, Aggregate::kSum}) {
    const auto t = net::Topology::hypercube(5);
    auto engine = make_engine(t, Algorithm::kPushFlow, agg, 7);
    engine.run(400);
    EXPECT_LT(engine.max_error(), 1e-10) << to_string(agg);
  }
}

TEST(PushFlow, SurvivesHeavyMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.3;
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5, faults);
  engine.run(2000);
  EXPECT_LT(engine.max_error(), 1e-9);
}

TEST(PushFlow, SurvivesBitFlips) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.bit_flip_prob = 0.01;
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 5, faults);
  // Flips stop perturbing once messages stop being flipped; run a clean tail
  // by disabling flips via convergence: here we simply check the run does not
  // diverge and conservation is restored at the end of lossless rounds.
  engine.run(1500);
  EXPECT_LT(engine.median_error(), 1e-2);
}

TEST(PushFlow, BusCutInvariantMatchesFig2ClosedForm) {
  // Paper Fig. 2 / Section II-B: with v_0 = n+1 and v_i = 1 on a bus, PF's
  // converged flows transport the prefix surplus across every edge. In the
  // paper's weightless idealization f_{i,i+1} = n-1-i (0-based) exactly; in
  // the weighted algorithm the execution-independent statement is the cut
  // invariant  f_val(i,i+1) − a·f_w(i,i+1) = n-1-i  (a = 2 is the average),
  // which follows from antisymmetry plus per-node consensus s_i = a·w_i.
  // Either way, flow magnitudes grow linearly with n while the aggregate
  // stays 2 — the root cause of PF's cancellation errors.
  const std::size_t n = 8;
  const auto t = net::Topology::bus(n);
  const auto masses = bus_case_study_masses(n);
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushFlow;
  cfg.seed = 2;
  sim::SyncEngine engine(t, masses, cfg);
  engine.run_until_error(1e-13, 20000);
  ASSERT_LT(engine.max_error(), 1e-13);
  for (NodeId i = 0; i + 1 < n; ++i) {
    const auto& node = dynamic_cast<const PushFlow&>(engine.node(i));
    const auto& f = node.flow_to(i + 1);
    const double expected = static_cast<double>(n - 1 - i);
    EXPECT_NEAR(f.s[0] - 2.0 * f.w, expected, 1e-6) << "edge " << i;
  }
}

TEST(PushFlow, FlowsGrowLinearlyWithBusSize) {
  // The mechanism behind the paper's Fig. 3: PF flow magnitudes scale with n
  // even though the aggregate stays 2.
  double prev = 0.0;
  for (const std::size_t n : {8u, 16u, 32u}) {
    const auto t = net::Topology::bus(n);
    const auto masses = bus_case_study_masses(n);
    sim::SyncEngineConfig cfg;
    cfg.algorithm = Algorithm::kPushFlow;
    cfg.seed = 2;
    sim::SyncEngine engine(t, masses, cfg);
    engine.run_until_error(1e-12, static_cast<std::size_t>(n) * n * 8);
    const double flow = engine.max_abs_flow();
    EXPECT_GT(flow, 1.5 * prev);
    prev = flow;
  }
  EXPECT_GT(prev, 20.0);
}

TEST(PushFlow, LinkFailureCausesConvergenceFallback) {
  // Section II-C: excluding a failed link throws PF back to an early stage.
  const auto t = net::Topology::hypercube(6);
  sim::FaultPlan faults;
  const auto edges = t.edges();
  faults.link_failures.push_back({75.0, edges[17].first, edges[17].second});
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 4, faults);
  engine.run(74);
  const double before = engine.max_error();
  EXPECT_LT(before, 1e-4);
  engine.run(3);  // failure fires
  const double after = engine.max_error();
  EXPECT_GT(after, 1e3 * before);  // fell back by orders of magnitude
}

TEST(PushFlow, ExcludedLinkStillConverges) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.link_failures.push_back({10.0, 0, 1});
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 4, faults);
  engine.run(1200);
  EXPECT_LT(engine.max_error(), 1e-9);
}

TEST(PushFlow, MassConservationHoldsAfterQuiescence) {
  const auto t = net::Topology::ring(8);
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 9);
  engine.run(100);
  // In the sync engine every sent packet is delivered in the same round, so
  // pairwise conservation holds at round boundaries and the total mass is
  // exactly the initial mass (up to FP rounding of the flow sums).
  const auto total = total_mass(engine);
  double expected = 0.0;
  for (double v : test::random_values(8, 9 ^ 0xabcdef)) expected += v;
  EXPECT_NEAR(total.s[0], expected, 1e-9);
  EXPECT_NEAR(total.w, 8.0, 1e-12);
}

TEST(PushFlow, CachedFlowSumVariantAlsoConverges) {
  ReducerConfig rc;
  rc.pf_cached_flow_sum = true;
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 7, {}, rc);
  engine.run(400);
  EXPECT_LT(engine.max_error(), 1e-9);
}

}  // namespace
}  // namespace pcf::core
