// CSR round-trip property test: for any Topology::parse spec, the
// ArenaFleet's flat adjacency must reproduce the topology exactly — same
// degree sums, symmetric (j appears in i's row iff i appears in j's row, and
// the reverse-slot back-lookup agrees), no self-edges, neighbor rows sorted
// ascending, and every slot initially alive.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "net/topology.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

ArenaFleet make_fleet(const net::Topology& topology, Algorithm algorithm = Algorithm::kPushSum) {
  const auto values = test::random_values(topology.size(), 7);
  std::vector<Mass> masses;
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(Mass::scalar(values[i], 1.0));
  }
  return ArenaFleet(algorithm, ReducerConfig{}, topology, masses);
}

class ArenaCsr : public ::testing::TestWithParam<const char*> {};

TEST_P(ArenaCsr, RoundTripsTheTopology) {
  Rng rng(2024);
  const auto topology = net::Topology::parse(GetParam(), rng);
  const ArenaFleet fleet = make_fleet(topology);
  ASSERT_EQ(fleet.size(), topology.size());

  std::size_t degree_sum = 0;
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    const auto& nbrs = topology.neighbors(i);
    ASSERT_EQ(fleet.degree(i), nbrs.size()) << "node " << i;
    EXPECT_EQ(fleet.live_degree(i), nbrs.size()) << "node " << i;
    degree_sum += fleet.degree(i);
    net::NodeId prev = 0;
    for (std::size_t s = 0; s < fleet.degree(i); ++s) {
      const net::NodeId j = fleet.neighbor(i, s);
      // No self-edges, sorted strictly ascending (implies no duplicates).
      EXPECT_NE(j, i);
      if (s > 0) {
        EXPECT_LT(prev, j) << "node " << i << " slot " << s;
      }
      prev = j;
      EXPECT_TRUE(fleet.alive_at(i, s)) << "node " << i << " slot " << s;
      // Symmetry: the back-edge exists and slot_of inverts neighbor().
      const auto back = fleet.slot_of(j, i);
      ASSERT_TRUE(back.has_value()) << "edge " << i << "->" << j << " has no reverse";
      EXPECT_EQ(fleet.neighbor(j, *back), i);
      const auto fwd = fleet.slot_of(i, j);
      ASSERT_TRUE(fwd.has_value());
      EXPECT_EQ(*fwd, s);
    }
    // The CSR row is exactly the topology's (sorted) neighbor list.
    std::vector<net::NodeId> row;
    for (std::size_t s = 0; s < fleet.degree(i); ++s) row.push_back(fleet.neighbor(i, s));
    std::vector<net::NodeId> expected(nbrs.begin(), nbrs.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(row, expected);
  }
  // Handshake: sum of degrees = 2 * edge count.
  EXPECT_EQ(degree_sum % 2, 0u);
  EXPECT_EQ(degree_sum, 2 * topology.edge_count());

  // Non-neighbors (including self) have no slot.
  EXPECT_FALSE(fleet.slot_of(0, 0).has_value());
}

INSTANTIATE_TEST_SUITE_P(Specs, ArenaCsr,
                         ::testing::Values("bus:7", "ring:12", "grid:3x5", "torus2d:4x6",
                                           "torus3d:3", "hypercube:4", "complete:9", "star:10",
                                           "tree:13", "regular:20:4", "er:24:0.3",
                                           "smallworld:20:4:0.2", "ba:25:2"),
                         [](const ::testing::TestParamInfo<const char*>& param) {
                           std::string name = param.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// Liveness bookkeeping round-trip: link down compacts the live prefix, link
// up restores it, and degree() (the static CSR) never changes.
TEST(ArenaCsrLiveness, LinkDownUpRestoresLiveSlots) {
  const auto topology = net::Topology::grid2d(3, 3, /*wrap=*/true);
  ArenaFleet fleet = make_fleet(topology, Algorithm::kPushCancelFlow);
  const net::NodeId i = 4;
  const std::size_t degree = fleet.degree(i);
  const net::NodeId j = fleet.neighbor(i, 1);
  fleet.on_link_down(i, j);
  EXPECT_EQ(fleet.degree(i), degree);
  EXPECT_EQ(fleet.live_degree(i), degree - 1);
  EXPECT_FALSE(fleet.alive_at(i, 1));
  fleet.on_link_up(i, j);
  EXPECT_EQ(fleet.live_degree(i), degree);
  EXPECT_TRUE(fleet.alive_at(i, 1));
}

}  // namespace
}  // namespace pcf::core
