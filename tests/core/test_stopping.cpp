#include "core/stopping.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pcf::core {
namespace {

TEST(LocalStop, RequiresPatienceConsecutiveQuietRounds) {
  LocalStop stop(1, 1e-6, 3);
  EXPECT_FALSE(stop.observe(0, 1.0));  // first observation
  EXPECT_FALSE(stop.observe(0, 1.0));  // quiet 1
  EXPECT_FALSE(stop.observe(0, 1.0));  // quiet 2
  EXPECT_TRUE(stop.observe(0, 1.0));   // quiet 3
  EXPECT_TRUE(stop.all_converged());
}

TEST(LocalStop, ChangeResetsQuietCounter) {
  LocalStop stop(1, 1e-6, 2);
  stop.observe(0, 1.0);
  stop.observe(0, 1.0);
  EXPECT_FALSE(stop.observe(0, 2.0));  // big change
  EXPECT_FALSE(stop.observe(0, 2.0));
  EXPECT_TRUE(stop.observe(0, 2.0));
}

TEST(LocalStop, RelativeToleranceScalesWithMagnitude) {
  LocalStop stop(1, 1e-3, 1);
  stop.observe(0, 1e9);
  EXPECT_TRUE(stop.observe(0, 1e9 + 1.0));  // relative change 1e-9 ≤ 1e-3
}

TEST(LocalStop, CountsPerNodeIndependently) {
  LocalStop stop(2, 1e-6, 1);
  stop.observe(0, 1.0);
  stop.observe(1, 1.0);
  EXPECT_TRUE(stop.observe(0, 1.0));
  EXPECT_EQ(stop.converged_count(), 1u);
  EXPECT_FALSE(stop.all_converged());
  EXPECT_TRUE(stop.observe(1, 1.0));
  EXPECT_TRUE(stop.all_converged());
}

TEST(LocalStop, ResetRestartsDetection) {
  LocalStop stop(1, 1e-6, 1);
  stop.observe(0, 1.0);
  EXPECT_TRUE(stop.observe(0, 1.0));
  stop.reset(0);
  EXPECT_FALSE(stop.node_converged(0));
  EXPECT_FALSE(stop.observe(0, 1.0));  // needs a fresh quiet streak
  EXPECT_TRUE(stop.observe(0, 1.0));
}

TEST(LocalStop, RejectsBadConfiguration) {
  EXPECT_THROW(LocalStop(0, 1e-6, 1), ContractViolation);
  EXPECT_THROW(LocalStop(1, 0.0, 1), ContractViolation);
  EXPECT_THROW(LocalStop(1, 1e-6, 0), ContractViolation);
}

TEST(LocalStop, NonFiniteEstimateNeverConverges) {
  LocalStop stop(1, 1e-6, 1);
  stop.observe(0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(stop.observe(0, std::numeric_limits<double>::quiet_NaN()));
}

TEST(FixedPointStop, FiresAfterWindowUnchangedRounds) {
  FixedPointStop stop(2);
  const std::vector<double> a{1.0, 2.0};
  EXPECT_FALSE(stop.observe(a));  // baseline
  EXPECT_FALSE(stop.observe(a));  // quiet 1
  EXPECT_TRUE(stop.observe(a));   // quiet 2
}

TEST(FixedPointStop, AnyBitChangeResets) {
  FixedPointStop stop(1);
  std::vector<double> a{1.0};
  EXPECT_FALSE(stop.observe(a));
  a[0] = std::nextafter(1.0, 2.0);
  EXPECT_FALSE(stop.observe(a));  // changed
  EXPECT_TRUE(stop.observe(a));
}

TEST(FixedPointStop, NanStableComparison) {
  FixedPointStop stop(1);
  const std::vector<double> a{std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(stop.observe(a));
  EXPECT_TRUE(stop.observe(a));  // NaN == NaN treated as unchanged
}

TEST(FixedPointStop, SizeChangeResetsBaseline) {
  // A node crash shrinks the estimate vector; the detector must restart
  // rather than compare across different node sets.
  FixedPointStop stop(1);
  EXPECT_FALSE(stop.observe(std::vector<double>{1.0}));
  EXPECT_FALSE(stop.observe(std::vector<double>{1.0, 2.0}));  // new baseline
  EXPECT_TRUE(stop.observe(std::vector<double>{1.0, 2.0}));   // quiet round 1
}

}  // namespace
}  // namespace pcf::core
