#include "core/flow_updating.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::make_engine;
using test::total_mass;

TEST(FlowUpdating, ConvergesToAverageOnHypercube) {
  const auto t = net::Topology::hypercube(5);
  auto engine = make_engine(t, Algorithm::kFlowUpdating, Aggregate::kAverage, 7);
  engine.run(800);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(FlowUpdating, ConvergesToSumViaRatioOfAverages) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kFlowUpdating, Aggregate::kSum, 3);
  engine.run(800);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(FlowUpdating, ConvergesOnRing) {
  const auto t = net::Topology::ring(10);
  auto engine = make_engine(t, Algorithm::kFlowUpdating, Aggregate::kAverage, 5);
  engine.run(2000);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(FlowUpdating, ConservedMassIsInvariant) {
  const auto t = net::Topology::ring(8);
  auto engine = make_engine(t, Algorithm::kFlowUpdating, Aggregate::kAverage, 11);
  const auto before = total_mass(engine);
  engine.run(100);
  const auto after = total_mass(engine);
  EXPECT_NEAR(after.s[0], before.s[0], 1e-10);
  EXPECT_NEAR(after.w, before.w, 1e-10);
}

TEST(FlowUpdating, SurvivesMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.3;
  auto engine = make_engine(t, Algorithm::kFlowUpdating, Aggregate::kAverage, 5, faults);
  engine.run(3000);
  EXPECT_LT(engine.max_error(), 1e-9);
}

TEST(FlowUpdating, SurvivesLinkFailure) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.link_failures.push_back({50.0, 0, 1});
  auto engine = make_engine(t, Algorithm::kFlowUpdating, Aggregate::kAverage, 7, faults);
  engine.run(2000);
  EXPECT_LT(engine.max_error(), 1e-9);
}

TEST(FlowUpdating, RetransmissionIsIdempotent) {
  FlowUpdating a{{}}, b1{{}}, b2{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b1.init(1, nb, Mass::scalar(0.0, 1.0));
  b2.init(1, nb, Mass::scalar(0.0, 1.0));
  const auto first = a.make_message_to(1);
  const auto second = a.make_message_to(1);
  b1.on_receive(0, first->packet);
  b1.on_receive(0, second->packet);
  b2.on_receive(0, second->packet);
  EXPECT_EQ(b1.local_mass(), b2.local_mass());
  EXPECT_DOUBLE_EQ(b1.estimate(), b2.estimate());
}

TEST(FlowUpdating, FusedEstimateUsesNeighborReports) {
  FlowUpdating a{{}};
  const std::vector<NodeId> na{1};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  EXPECT_DOUBLE_EQ(a.estimate(), 6.0);  // no reports yet: own mass only
  Packet p;
  p.a = Mass::zero(1);               // no flow
  p.b = Mass::scalar(2.0, 1.0);      // neighbor reports estimate 2
  a.on_receive(1, p);
  EXPECT_DOUBLE_EQ(a.estimate(), 4.0);  // (6 + 2) / 2
}

TEST(FlowUpdating, LinkDownDiscardsNeighborState) {
  FlowUpdating a{{}};
  const std::vector<NodeId> na{1, 2};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  Packet p;
  p.a = Mass::scalar(1.0, 0.0);
  p.b = Mass::scalar(2.0, 1.0);
  a.on_receive(1, p);
  a.on_link_down(1);
  // Flow and estimate from node 1 are gone: mass back to the initial value.
  EXPECT_DOUBLE_EQ(a.local_mass().s[0], 6.0);
  EXPECT_DOUBLE_EQ(a.estimate(), 6.0);
}

}  // namespace
}  // namespace pcf::core
