#include "core/mass.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pcf::core {
namespace {

TEST(Mass, ZeroHasRequestedDimension) {
  const auto m = Mass::zero(3);
  EXPECT_EQ(m.dim(), 3u);
  EXPECT_TRUE(m.is_zero());
}

TEST(Mass, ScalarConstruction) {
  const auto m = Mass::scalar(4.0, 2.0);
  EXPECT_EQ(m.dim(), 1u);
  EXPECT_DOUBLE_EQ(m.s[0], 4.0);
  EXPECT_DOUBLE_EQ(m.w, 2.0);
  EXPECT_DOUBLE_EQ(m.estimate(), 2.0);
}

TEST(Mass, AdditionAndSubtraction) {
  auto a = Mass::scalar(3.0, 1.0);
  const auto b = Mass::scalar(1.0, 0.5);
  a += b;
  EXPECT_DOUBLE_EQ(a.s[0], 4.0);
  EXPECT_DOUBLE_EQ(a.w, 1.5);
  a -= b;
  EXPECT_DOUBLE_EQ(a.s[0], 3.0);
  EXPECT_DOUBLE_EQ(a.w, 1.0);
}

TEST(Mass, HalfIsExact) {
  const auto m = Mass::scalar(3.0, 1.0);
  const auto h = m.half();
  EXPECT_DOUBLE_EQ(h.s[0], 1.5);
  EXPECT_DOUBLE_EQ(h.w, 0.5);
  // halving twice then adding four copies restores exactly (powers of two)
  const auto q = h.half();
  EXPECT_DOUBLE_EQ(q.s[0] * 4.0, 3.0);
}

TEST(Mass, NegationIsExactAndInvolutive) {
  const auto m = Mass::scalar(0.1, 0.3);  // not representable exactly — even so
  const auto n = m.negated();
  EXPECT_TRUE(n.is_negation_of(m));
  EXPECT_TRUE(m.is_negation_of(n));
  EXPECT_EQ(n.negated(), m);
}

TEST(Mass, EqualityIsExact) {
  const auto a = Mass::scalar(1.0, 1.0);
  auto b = a;
  EXPECT_EQ(a, b);
  b.s[0] = std::nextafter(1.0, 2.0);
  EXPECT_FALSE(a == b);
}

TEST(Mass, ZeroIsItsOwnNegation) {
  const auto z = Mass::zero(2);
  EXPECT_TRUE(z.is_negation_of(z));
}

TEST(Mass, EstimateGuardsZeroWeight) {
  const auto m = Mass::scalar(5.0, 0.0);
  EXPECT_DOUBLE_EQ(m.estimate(), 0.0);
}

TEST(Mass, VectorPayloadEstimatePerComponent) {
  const Mass m(Values{2.0, 4.0, 6.0}, 2.0);
  EXPECT_DOUBLE_EQ(m.estimate(0), 1.0);
  EXPECT_DOUBLE_EQ(m.estimate(1), 2.0);
  EXPECT_DOUBLE_EQ(m.estimate(2), 3.0);
}

TEST(Mass, SetZeroClearsEverything) {
  Mass m(Values{1.0, 2.0}, 3.0);
  m.set_zero();
  EXPECT_TRUE(m.is_zero());
  EXPECT_EQ(m.dim(), 2u);  // dimension preserved
}

TEST(Mass, DimensionMismatchNotEqual) {
  EXPECT_FALSE(Mass::zero(1) == Mass::zero(2));
  EXPECT_FALSE(Mass::zero(1).is_negation_of(Mass::zero(2)));
}

TEST(Aggregate, InitialWeightConventions) {
  EXPECT_EQ(initial_weight(Aggregate::kAverage, 0), 1.0);
  EXPECT_EQ(initial_weight(Aggregate::kAverage, 5), 1.0);
  EXPECT_EQ(initial_weight(Aggregate::kSum, 0), 1.0);
  EXPECT_EQ(initial_weight(Aggregate::kSum, 5), 0.0);
}

TEST(Aggregate, Names) {
  EXPECT_EQ(to_string(Aggregate::kSum), "SUM");
  EXPECT_EQ(to_string(Aggregate::kAverage), "AVG");
}

}  // namespace
}  // namespace pcf::core
