// Randomized interleaving fuzz tests for the flow protocols.
//
// The delivery schedule is the adversary: send and delivery events on a
// two-node (and three-node) system are interleaved at random, with packets
// pipelined FIFO per direction. After quiescing (drain everything, then a few
// clean alternating exchanges) the total mass must equal the initial mass
// bit-for-bit up to FP rounding — this is the harness that uncovered the
// role-adoption and stale-absorption races in the paper's original PCF
// handshake (see push_cancel_flow.hpp).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <utility>

#include "core/push_cancel_flow.hpp"
#include "core/push_flow.hpp"
#include "core/reducer.hpp"

namespace pcf::core {
namespace {

struct TwoNodeHarness {
  std::unique_ptr<Reducer> a;
  std::unique_ptr<Reducer> b;
  std::deque<Packet> ab;
  std::deque<Packet> ba;

  TwoNodeHarness(Algorithm algorithm, const ReducerConfig& config) {
    a = make_reducer(algorithm, config);
    b = make_reducer(algorithm, config);
    const std::vector<NodeId> na{1}, nb{0};
    a->init(0, na, Mass::scalar(3.0, 1.0));
    b->init(1, nb, Mass::scalar(1.0, 1.0));
  }

  void op(int kind) {
    switch (kind) {
      case 0: ab.push_back(a->make_message_to(1)->packet); break;
      case 1: ba.push_back(b->make_message_to(0)->packet); break;
      case 2:
        if (!ab.empty()) {
          b->on_receive(0, ab.front());
          ab.pop_front();
        }
        break;
      case 3:
        if (!ba.empty()) {
          a->on_receive(1, ba.front());
          ba.pop_front();
        }
        break;
      case 6:
        // Adversarial duplication: the head packet is delivered twice
        // back-to-back (a retransmitting transport).
        if (!ab.empty()) {
          b->on_receive(0, ab.front());
          b->on_receive(0, ab.front());
          ab.pop_front();
        }
        break;
      case 7:
        if (!ba.empty()) {
          a->on_receive(1, ba.front());
          a->on_receive(1, ba.front());
          ba.pop_front();
        }
        break;
      // 8/9: bounded reordering — the two oldest pipelined packets swap
      // places, so the newer one overtakes on delivery.
      case 8:
        if (ab.size() >= 2) std::swap(ab[0], ab[1]);
        break;
      case 9:
        if (ba.size() >= 2) std::swap(ba[0], ba[1]);
        break;
      default: break;  // 4 = drop oldest a→b, 5 = drop oldest b→a
    }
    if (kind == 4 && !ab.empty()) ab.pop_front();
    if (kind == 5 && !ba.empty()) ba.pop_front();
  }

  void quiesce() {
    while (!ab.empty()) op(2);
    while (!ba.empty()) op(3);
    for (int r = 0; r < 10; ++r) {
      b->on_receive(0, a->make_message_to(1)->packet);
      a->on_receive(1, b->make_message_to(0)->packet);
    }
  }

  [[nodiscard]] Mass total() const { return a->local_mass() + b->local_mass(); }
};

class InterleavingFuzz : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(FlowAlgorithms, InterleavingFuzz,
                         ::testing::Values(Algorithm::kPushFlow, Algorithm::kPushCancelFlow,
                                           Algorithm::kFlowUpdating),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param)) == "push-flow"
                                      ? "pf"
                                      : (param_info.param == Algorithm::kPushCancelFlow ? "pcf" : "fu");
                         });

TEST_P(InterleavingFuzz, MassConservedUnderArbitraryLosslessInterleaving) {
  Rng rng(0xfade);
  for (int trial = 0; trial < 3000; ++trial) {
    TwoNodeHarness h(GetParam(), {});
    for (int op = 0; op < 60; ++op) h.op(static_cast<int>(rng.below(4)));
    h.quiesce();
    const Mass total = h.total();
    ASSERT_NEAR(total.s[0], 4.0, 1e-9) << "trial " << trial;
    ASSERT_NEAR(total.w, 2.0, 1e-9) << "trial " << trial;
  }
}

TEST_P(InterleavingFuzz, PcfVariantsConserveUnderInterleaving) {
  for (const auto variant : {PcfVariant::kFast, PcfVariant::kRobust}) {
    ReducerConfig config;
    config.pcf_variant = variant;
    Rng rng(0xbeef);
    for (int trial = 0; trial < 1000; ++trial) {
      TwoNodeHarness h(GetParam(), config);
      for (int op = 0; op < 60; ++op) h.op(static_cast<int>(rng.below(4)));
      h.quiesce();
      const Mass total = h.total();
      ASSERT_NEAR(total.s[0], 4.0, 1e-9) << "trial " << trial << " " << to_string(variant);
      ASSERT_NEAR(total.w, 2.0, 1e-9) << "trial " << trial << " " << to_string(variant);
    }
  }
}

TEST_P(InterleavingFuzz, MassConservedUnderInterleavingWithLoss) {
  // Ops 4/5 silently drop pipelined packets. Flow algorithms must still
  // conserve mass once the survivors re-exchange (self-healing by mirroring).
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 3000; ++trial) {
    TwoNodeHarness h(GetParam(), {});
    for (int op = 0; op < 60; ++op) h.op(static_cast<int>(rng.below(6)));
    h.quiesce();
    const Mass total = h.total();
    ASSERT_NEAR(total.s[0], 4.0, 1e-9) << "trial " << trial;
    ASSERT_NEAR(total.w, 2.0, 1e-9) << "trial " << trial;
  }
}

TEST_P(InterleavingFuzz, MassConservedUnderDuplicationAndReordering) {
  // The full adversarial-delivery op set: loss (4/5), duplication (6/7), and
  // head-of-queue reordering (8/9) on top of arbitrary interleaving. Flow
  // mirrors are idempotent and absolute, so duplicates are no-ops and a
  // reordered stale mirror is overwritten by the quiesce re-exchanges.
  Rng rng(0xd0d0);
  for (int trial = 0; trial < 3000; ++trial) {
    TwoNodeHarness h(GetParam(), {});
    for (int op = 0; op < 60; ++op) h.op(static_cast<int>(rng.below(10)));
    h.quiesce();
    const Mass total = h.total();
    ASSERT_NEAR(total.s[0], 4.0, 1e-9) << "trial " << trial;
    ASSERT_NEAR(total.w, 2.0, 1e-9) << "trial " << trial;
  }
}

TEST_P(InterleavingFuzz, PcfVariantsConserveUnderDuplicationAndReordering) {
  // Both PCF bookkeeping variants must keep their cancellation handshake
  // sound when handshake packets are duplicated or arrive out of order.
  for (const auto variant : {PcfVariant::kFast, PcfVariant::kRobust}) {
    ReducerConfig config;
    config.pcf_variant = variant;
    Rng rng(0x5eed);
    for (int trial = 0; trial < 1000; ++trial) {
      TwoNodeHarness h(GetParam(), config);
      for (int op = 0; op < 60; ++op) h.op(static_cast<int>(rng.below(10)));
      h.quiesce();
      const Mass total = h.total();
      ASSERT_NEAR(total.s[0], 4.0, 1e-9) << "trial " << trial << " " << to_string(variant);
      ASSERT_NEAR(total.w, 2.0, 1e-9) << "trial " << trial << " " << to_string(variant);
    }
  }
}

TEST(InterleavingFuzzThreeNodes, PcfConservesOnLineUnderInterleaving) {
  // Three nodes on a line: node 1 runs both roles (completer toward 0,
  // initiator toward 2) — exercises per-edge state independence.
  Rng rng(0xabc);
  for (int trial = 0; trial < 1500; ++trial) {
    std::vector<std::unique_ptr<Reducer>> nodes;
    const std::vector<NodeId> n0{1}, n1{0, 2}, n2{1};
    nodes.push_back(make_reducer(Algorithm::kPushCancelFlow, {}));
    nodes.push_back(make_reducer(Algorithm::kPushCancelFlow, {}));
    nodes.push_back(make_reducer(Algorithm::kPushCancelFlow, {}));
    nodes[0]->init(0, n0, Mass::scalar(5.0, 1.0));
    nodes[1]->init(1, n1, Mass::scalar(-1.0, 1.0));
    nodes[2]->init(2, n2, Mass::scalar(2.0, 1.0));
    // One FIFO queue per directed edge.
    std::map<std::pair<NodeId, NodeId>, std::deque<Packet>> wires;
    auto send = [&](NodeId from, NodeId to) {
      if (auto out = nodes[from]->make_message_to(to)) wires[{from, to}].push_back(out->packet);
    };
    auto deliver = [&](NodeId from, NodeId to) {
      auto& q = wires[{from, to}];
      if (!q.empty()) {
        nodes[to]->on_receive(from, q.front());
        q.pop_front();
      }
    };
    const std::vector<std::pair<NodeId, NodeId>> links{{0, 1}, {1, 0}, {1, 2}, {2, 1}};
    for (int op = 0; op < 80; ++op) {
      const auto [x, y] = links[rng.below(4)];
      if (rng.chance(0.5)) {
        send(x, y);
      } else {
        deliver(x, y);
      }
    }
    for (const auto& [x, y] : links) {
      while (!wires[{x, y}].empty()) deliver(x, y);
    }
    for (int r = 0; r < 12; ++r) {
      for (const auto& [x, y] : links) {
        send(x, y);
        deliver(x, y);
      }
    }
    Mass total = nodes[0]->local_mass();
    total += nodes[1]->local_mass();
    total += nodes[2]->local_mass();
    ASSERT_NEAR(total.s[0], 6.0, 1e-9) << "trial " << trial;
    ASSERT_NEAR(total.w, 3.0, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pcf::core
