#include "core/push_sum.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::make_engine;
using test::total_mass;

TEST(PushSum, InitRejectsDoubleInit) {
  PushSum node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(1.0, 1.0));
  EXPECT_THROW(node.init(0, nb, Mass::scalar(1.0, 1.0)), ContractViolation);
}

TEST(PushSum, InitRejectsEmptyNeighborhood) {
  PushSum node{{}};
  EXPECT_THROW(node.init(0, {}, Mass::scalar(1.0, 1.0)), ContractViolation);
}

TEST(PushSum, SendPushesHalfTheMass) {
  PushSum node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(8.0, 2.0));
  Rng rng(1);
  const auto out = node.make_message(rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->to, 1u);
  EXPECT_DOUBLE_EQ(out->packet.a.s[0], 4.0);
  EXPECT_DOUBLE_EQ(out->packet.a.w, 1.0);
  EXPECT_DOUBLE_EQ(node.local_mass().s[0], 4.0);
}

TEST(PushSum, ReceiveAddsMass) {
  PushSum node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(1.0, 1.0));
  Packet p;
  p.a = Mass::scalar(3.0, 1.0);
  node.on_receive(1, p);
  EXPECT_DOUBLE_EQ(node.local_mass().s[0], 4.0);
  EXPECT_DOUBLE_EQ(node.estimate(), 2.0);
}

TEST(PushSum, IgnoresPacketsFromStrangers) {
  PushSum node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(1.0, 1.0));
  Packet p;
  p.a = Mass::scalar(100.0, 1.0);
  node.on_receive(42, p);
  EXPECT_DOUBLE_EQ(node.local_mass().s[0], 1.0);
}

TEST(PushSum, ConvergesToAverageOnHypercube) {
  const auto t = net::Topology::hypercube(5);
  auto engine = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 7);
  engine.run(300);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(PushSum, ConvergesToSumOnCompleteGraph) {
  const auto t = net::Topology::complete(16);
  auto engine = make_engine(t, Algorithm::kPushSum, Aggregate::kSum, 3);
  engine.run(400);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST(PushSum, MassIsConservedWithoutFailures) {
  const auto t = net::Topology::ring(10);
  auto engine = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 11);
  const auto before = total_mass(engine);
  engine.run(50);
  const auto after = total_mass(engine);
  EXPECT_NEAR(after.s[0], before.s[0], 1e-12 * std::abs(before.s[0]));
  EXPECT_NEAR(after.w, before.w, 1e-12 * before.w);
}

TEST(PushSum, MessageLossDestroysTheResult) {
  // The defining weakness: with lossy links push-sum converges to a WRONG
  // value (mass leaks), while flow-based algorithms still converge correctly.
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.2;
  auto engine = make_engine(t, Algorithm::kPushSum, Aggregate::kAverage, 5, faults);
  engine.run(2000);
  // Estimates agree with each other (consensus)…
  const auto est = engine.estimates();
  double spread = 0.0;
  for (double e : est) spread = std::max(spread, std::abs(e - est[0]));
  EXPECT_LT(spread, 1e-6);
  // …but on the wrong value.
  EXPECT_GT(engine.max_error(), 1e-4);
}

TEST(PushSum, NoLiveNeighborMeansNoMessage) {
  PushSum node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(1.0, 1.0));
  node.on_link_down(1);
  Rng rng(1);
  EXPECT_FALSE(node.make_message(rng).has_value());
  EXPECT_EQ(node.live_degree(), 0u);
}

TEST(PushSum, DuplicateLinkDownIsBenign) {
  PushSum node{{}};
  const std::vector<NodeId> nb{1, 2};
  node.init(0, nb, Mass::scalar(1.0, 1.0));
  node.on_link_down(1);
  node.on_link_down(1);
  EXPECT_EQ(node.live_degree(), 1u);
}

}  // namespace
}  // namespace pcf::core
