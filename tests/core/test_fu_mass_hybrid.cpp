#include "core/fu_mass_hybrid.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::make_engine;
using test::total_mass;

TEST(FuMassHybrid, ConvergesToAverageOnHypercube) {
  const auto t = net::Topology::hypercube(5);
  auto engine = make_engine(t, Algorithm::kFuMassHybrid, Aggregate::kAverage, 7);
  engine.run(800);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(FuMassHybrid, ConvergesToSumViaRatioOfAverages) {
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kFuMassHybrid, Aggregate::kSum, 3);
  engine.run(800);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(FuMassHybrid, ConvergesOnRing) {
  const auto t = net::Topology::ring(10);
  auto engine = make_engine(t, Algorithm::kFuMassHybrid, Aggregate::kAverage, 5);
  engine.run(2000);
  EXPECT_LT(engine.max_error(), 1e-10);
}

TEST(FuMassHybrid, ConservedMassIsInvariant) {
  const auto t = net::Topology::ring(8);
  auto engine = make_engine(t, Algorithm::kFuMassHybrid, Aggregate::kAverage, 11);
  const auto before = total_mass(engine);
  engine.run(100);
  const auto after = total_mass(engine);
  EXPECT_NEAR(after.s[0], before.s[0], 1e-10);
  EXPECT_NEAR(after.w, before.w, 1e-10);
}

TEST(FuMassHybrid, SurvivesMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.3;
  auto engine = make_engine(t, Algorithm::kFuMassHybrid, Aggregate::kAverage, 5, faults);
  engine.run(3000);
  EXPECT_LT(engine.max_error(), 1e-9);
}

TEST(FuMassHybrid, SurvivesLinkFailure) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.link_failures.push_back({50.0, 0, 1});
  auto engine = make_engine(t, Algorithm::kFuMassHybrid, Aggregate::kAverage, 7, faults);
  engine.run(2000);
  EXPECT_LT(engine.max_error(), 1e-9);
}

TEST(FuMassHybrid, PairwiseStepHalvesTheReportedGap) {
  // MD's two-node step through FU's flow bookkeeping: once a knows b's mass,
  // a single exchange equalizes both at the pairwise average.
  FuMassHybrid a{{}}, b{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b.init(1, nb, Mass::scalar(0.0, 1.0));
  // b reports first (no halving yet: no report of a's mass held).
  const auto hello = b.make_message_to(0);
  ASSERT_TRUE(hello.has_value());
  a.on_receive(1, hello->packet);
  EXPECT_DOUBLE_EQ(a.local_mass().s[0], 6.0);
  // a now halves the gap: Δ = (6 − 0) / 2 = 3 moves through the edge flow.
  const auto step = a.make_message_to(1);
  ASSERT_TRUE(step.has_value());
  EXPECT_DOUBLE_EQ(a.local_mass().s[0], 3.0);
  b.on_receive(0, step->packet);
  EXPECT_DOUBLE_EQ(b.local_mass().s[0], 3.0);
  // No mass was created or destroyed on the way.
  EXPECT_DOUBLE_EQ(a.local_mass().s[0] + b.local_mass().s[0], 6.0);
}

TEST(FuMassHybrid, RetransmissionIsIdempotent) {
  FuMassHybrid a{{}}, b1{{}}, b2{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b1.init(1, nb, Mass::scalar(0.0, 1.0));
  b2.init(1, nb, Mass::scalar(0.0, 1.0));
  const auto first = a.make_message_to(1);
  const auto second = a.make_message_to(1);
  ASSERT_TRUE(first.has_value() && second.has_value());
  b1.on_receive(0, first->packet);
  b1.on_receive(0, second->packet);
  b2.on_receive(0, second->packet);
  // Absolute flows: the duplicate delivery changes nothing.
  EXPECT_EQ(b1.local_mass(), b2.local_mass());
  EXPECT_DOUBLE_EQ(b1.estimate(), b2.estimate());
}

TEST(FuMassHybrid, LinkDownRestoresMovedMass) {
  FuMassHybrid a{{}};
  const std::vector<NodeId> na{1, 2};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  Packet p;
  p.a = Mass::zero(1);
  p.b = Mass::scalar(0.0, 1.0);  // neighbor 1 reports zero mass
  a.on_receive(1, p);
  const auto step = a.make_message_to(1);
  ASSERT_TRUE(step.has_value());
  EXPECT_DOUBLE_EQ(a.local_mass().s[0], 3.0);  // half the gap moved out
  a.on_link_down(1);
  // The excluded edge's flow is forgotten: the moved mass folds back.
  EXPECT_DOUBLE_EQ(a.local_mass().s[0], 6.0);
  EXPECT_DOUBLE_EQ(a.estimate(), 6.0);
}

TEST(FuMassHybrid, StaleReportStillConservesMass) {
  // The paper's point: halving against a stale report is a worse step but a
  // SAFE one — the flow discipline conserves Σ m regardless.
  FuMassHybrid a{{}}, b{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(8.0, 1.0));
  b.init(1, nb, Mass::scalar(2.0, 1.0));
  const auto hello = b.make_message_to(0);
  ASSERT_TRUE(hello.has_value());
  a.on_receive(1, hello->packet);
  // Two sends from a against the SAME report of b (b never answers): the
  // second halving uses stale data, yet a + b stays 10 after each delivery.
  for (int i = 0; i < 2; ++i) {
    const auto step = a.make_message_to(1);
    ASSERT_TRUE(step.has_value());
    b.on_receive(0, step->packet);
    EXPECT_NEAR(a.local_mass().s[0] + b.local_mass().s[0], 10.0, 1e-12);
  }
}

}  // namespace
}  // namespace pcf::core
