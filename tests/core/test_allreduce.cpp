#include "core/allreduce.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pcf::core {
namespace {

TEST(RecursiveDoubling, SumsPowerOfTwo) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto r = recursive_doubling_sum(v);
  EXPECT_EQ(r.rounds, 2u);
  for (double x : r.per_node) EXPECT_DOUBLE_EQ(x, 10.0);
}

TEST(RecursiveDoubling, AllNodesIdenticalResult) {
  Rng rng(3);
  std::vector<double> v(64);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const auto r = recursive_doubling_sum(v);
  EXPECT_EQ(r.rounds, 6u);
  for (double x : r.per_node) EXPECT_EQ(x, r.per_node[0]);  // bit-identical
}

TEST(RecursiveDoubling, RejectsNonPowerOfTwo) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_THROW(recursive_doubling_sum(v), ContractViolation);
}

TEST(RecursiveDoubling, SingleNodeNoRounds) {
  const std::vector<double> v{5.0};
  const auto r = recursive_doubling_sum(v);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_DOUBLE_EQ(r.per_node[0], 5.0);
}

TEST(RecursiveDoubling, MessageCountIsNLogN) {
  std::vector<double> v(16, 1.0);
  const auto r = recursive_doubling_sum(v);
  EXPECT_EQ(r.messages, 16u * 4u);
}

TEST(TreeSum, SumsArbitraryCount) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = tree_sum(v);
  for (double x : r.per_node) EXPECT_DOUBLE_EQ(x, 15.0);
}

TEST(TreeSum, WorksForSingleElement) {
  const std::vector<double> v{7.0};
  const auto r = tree_sum(v);
  EXPECT_DOUBLE_EQ(r.per_node[0], 7.0);
}

TEST(TreeSum, MatchesRecursiveDoublingOnPowersOfTwo) {
  Rng rng(5);
  std::vector<double> v(32);
  for (auto& x : v) x = rng.uniform();
  const auto a = tree_sum(v);
  const auto b = recursive_doubling_sum(v);
  // Same value up to FP reassociation.
  EXPECT_NEAR(a.per_node[0], b.per_node[0], 1e-12);
}

}  // namespace
}  // namespace pcf::core
