// Cross-node protocol invariants of the re-derived PCF handshake, checked
// live during engine runs on both delivery models. These are the properties
// the push_cancel_flow.hpp design note claims; violating any of them would
// reopen a mass-leak window.
#include <gtest/gtest.h>

#include "core/push_cancel_flow.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::make_engine;

struct EdgeEnds {
  PushCancelFlow::EdgeView initiator;  // lower node id's view
  PushCancelFlow::EdgeView completer;
};

EdgeEnds edge_ends(const sim::SyncEngine& engine, NodeId a, NodeId b) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const auto& low_node = dynamic_cast<const PushCancelFlow&>(engine.node(lo));
  const auto& high_node = dynamic_cast<const PushCancelFlow&>(engine.node(hi));
  return {low_node.edge_state(hi), high_node.edge_state(lo)};
}

class PcfProtocolInvariants : public ::testing::TestWithParam<sim::Delivery> {};

INSTANTIATE_TEST_SUITE_P(DeliveryModels, PcfProtocolInvariants,
                         ::testing::Values(sim::Delivery::kSequential,
                                           sim::Delivery::kCrossing),
                         [](const auto& param_info) {
                           return param_info.param == sim::Delivery::kSequential ? "sequential"
                                                                                 : "crossing";
                         });

TEST_P(PcfProtocolInvariants, BilateralStateStaysCoherent) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 23);
  const auto masses = sim::masses_from_values(values, Aggregate::kAverage);
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 23;
  cfg.delivery = GetParam();
  sim::SyncEngine engine(t, masses, cfg);

  const auto edges = t.edges();
  for (int round = 0; round < 400; ++round) {
    engine.step();
    for (const auto& [a, b] : edges) {
      const auto ends = edge_ends(engine, a, b);
      // I1: the completer never runs ahead of the initiator, and the
      // initiator leads by at most one phase (in the sequential model; the
      // crossing model additionally has one round of in-flight slack).
      ASSERT_GE(ends.initiator.role_count + 1, ends.completer.role_count)
          << "edge " << a << "-" << b << " round " << round;
      ASSERT_LE(ends.initiator.role_count, ends.completer.role_count + 2)
          << "edge " << a << "-" << b << " round " << round;
      // I2: in an even (steady) phase with both endpoints synchronized, the
      // active slots agree.
      if (ends.initiator.role_count == ends.completer.role_count &&
          ends.initiator.role_count % 2 == 0) {
        ASSERT_EQ(ends.initiator.active_slot, ends.completer.active_slot)
            << "edge " << a << "-" << b << " round " << round;
      }
      // I3: right after the initiator's cancellation (odd phase, completer
      // not yet caught up), the initiator's passive slot is exactly zero.
      if (ends.initiator.role_count % 2 == 1 &&
          ends.initiator.role_count == ends.completer.role_count + 1) {
        const Mass& passive =
            ends.initiator.active_slot == 1 ? ends.initiator.flow2 : ends.initiator.flow1;
        ASSERT_TRUE(passive.is_zero()) << "edge " << a << "-" << b << " round " << round;
      }
    }
  }
  // And the run actually converges while all of that held.
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST_P(PcfProtocolInvariants, CyclesAdvanceOnEveryEdge) {
  const auto t = net::Topology::ring(10);
  const auto values = test::random_values(t.size(), 29);
  const auto masses = sim::masses_from_values(values, Aggregate::kAverage);
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 29;
  cfg.delivery = GetParam();
  sim::SyncEngine engine(t, masses, cfg);
  engine.run(600);
  for (const auto& [a, b] : t.edges()) {
    const auto ends = edge_ends(engine, a, b);
    EXPECT_GT(ends.initiator.role_count, 20u) << "edge " << a << "-" << b << " stalled";
  }
}

TEST_P(PcfProtocolInvariants, InvariantsHoldUnderLossAndFailures) {
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 31);
  const auto masses = sim::masses_from_values(values, Aggregate::kAverage);
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 31;
  cfg.delivery = GetParam();
  cfg.faults.message_loss_prob = 0.2;
  cfg.faults.link_failures.push_back({120.0, 2, 3});
  sim::SyncEngine engine(t, masses, cfg);
  const auto edges = t.edges();
  for (int round = 0; round < 400; ++round) {
    engine.step();
    for (const auto& [a, b] : edges) {
      if (a == 2 && b == 3 && round >= 120) continue;  // excluded edge
      const auto ends = edge_ends(engine, a, b);
      ASSERT_GE(ends.initiator.role_count + 1, ends.completer.role_count)
          << "edge " << a << "-" << b << " round " << round;
    }
  }
}

}  // namespace
}  // namespace pcf::core
