#include "core/push_cancel_flow.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "test_util.hpp"

namespace pcf::core {
namespace {

using test::bus_case_study_masses;
using test::make_engine;
using test::total_mass;

ReducerConfig fast_config() {
  ReducerConfig rc;
  rc.pcf_variant = PcfVariant::kFast;
  return rc;
}

ReducerConfig robust_config() {
  ReducerConfig rc;
  rc.pcf_variant = PcfVariant::kRobust;
  return rc;
}

class PcfBothVariants : public ::testing::TestWithParam<PcfVariant> {
 protected:
  ReducerConfig config() const {
    ReducerConfig rc;
    rc.pcf_variant = GetParam();
    return rc;
  }
};

INSTANTIATE_TEST_SUITE_P(Variants, PcfBothVariants,
                         ::testing::Values(PcfVariant::kFast, PcfVariant::kRobust),
                         [](const auto& param_info) {
                           return param_info.param == PcfVariant::kFast ? "fast" : "robust";
                         });

TEST_P(PcfBothVariants, ConvergesOnHypercubeAvgAndSum) {
  for (const auto agg : {Aggregate::kAverage, Aggregate::kSum}) {
    const auto t = net::Topology::hypercube(5);
    auto engine = make_engine(t, Algorithm::kPushCancelFlow, agg, 7, {}, config());
    engine.run(500);
    EXPECT_LT(engine.max_error(), 1e-13) << to_string(agg);
  }
}

TEST_P(PcfBothVariants, ConvergesOnTorusRingTreeStar) {
  // Note: on strongly irregular topologies (star, tree) push-based gossip
  // exhibits weight starvation — a leaf that is not picked by the hub for k
  // rounds halves its weight k times, so its relative error fluctuates even
  // after global convergence. The meaningful claim is that the target
  // accuracy is *reached*, not that it holds at one fixed round.
  for (const auto& t :
       {net::Topology::torus3d(2, 2, 2), net::Topology::ring(12), net::Topology::binary_tree(15),
        net::Topology::star(9)}) {
    auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 3, {}, config());
    const auto stats = engine.run_until_error(1e-12, 4000);
    EXPECT_TRUE(stats.reached_target) << t.name() << " err=" << engine.max_error();
  }
}

TEST_P(PcfBothVariants, RolesKeepSwapping) {
  // The cancellation handshake must cycle forever: active/passive roles swap
  // unboundedly often on every edge class we ship.
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5, {}, config());
  engine.run(200);
  std::uint64_t swaps_early = 0;
  for (NodeId i = 0; i < t.size(); ++i) swaps_early += engine.node(i).role_swaps();
  EXPECT_GT(swaps_early, 100u);
  engine.run(200);
  std::uint64_t swaps_late = 0;
  for (NodeId i = 0; i < t.size(); ++i) swaps_late += engine.node(i).role_swaps();
  EXPECT_GT(swaps_late, swaps_early + 100);  // still swapping after convergence
}

TEST_P(PcfBothVariants, FlowsStayBoundedOnBus) {
  // The paper's central claim (Section III): unlike PF, whose flows grow
  // linearly with n on the bus case study, PCF flow magnitudes stay at the
  // scale of the data because converged flows keep being cancelled.
  for (const std::size_t n : {8u, 16u, 32u}) {
    const auto t = net::Topology::bus(n);
    const auto masses = bus_case_study_masses(n);
    sim::SyncEngineConfig cfg;
    cfg.algorithm = Algorithm::kPushCancelFlow;
    cfg.reducer = config();
    cfg.seed = 2;
    sim::SyncEngine engine(t, masses, cfg);
    engine.run(static_cast<std::size_t>(n) * n * 8);
    EXPECT_LT(engine.max_error(), 1e-12) << "n=" << n;
    // PF reaches max |flow| ≈ n-1 here (see test_push_flow); PCF stays at
    // the scale of the initial data (v_0 = n+1 is pushed around in the first
    // rounds, so the bound is O(initial data), not O(1); the point is that it
    // does not *accumulate* transport like PF).
    EXPECT_LT(engine.max_abs_flow(), 2.0 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST_P(PcfBothVariants, LinkFailureCausesNoFallback) {
  // Fig. 7: after a permanent link failure, PCF keeps its accuracy.
  const auto t = net::Topology::hypercube(6);
  sim::FaultPlan faults;
  const auto edges = t.edges();
  faults.link_failures.push_back({75.0, edges[17].first, edges[17].second});
  auto engine =
      make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 4, faults, config());
  engine.run(74);
  const double before = engine.max_error();
  engine.run(6);
  const double after = engine.max_error();
  // Zeroing the edge perturbs masses whose value ratios match the aggregate
  // only up to the current error level, so a bump of a couple of orders of
  // magnitude is possible — in contrast to PF, which falls back by >1e6x to
  // O(1) error (see test_push_flow). No absolute fallback:
  EXPECT_LT(after, 2e3 * before + 1e-15);
  EXPECT_LT(after, 1e-4);
  engine.run(120);
  EXPECT_LT(engine.max_error(), 1e-13);
}

TEST_P(PcfBothVariants, SurvivesHeavyMessageLoss) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.message_loss_prob = 0.3;
  auto engine =
      make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5, faults, config());
  engine.run(2500);
  EXPECT_LT(engine.max_error(), 1e-12);
}

TEST_P(PcfBothVariants, NodeCrashExcludesAndReconverges) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.node_crashes.push_back({40.0, 11});
  auto engine =
      make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 9, faults, config());
  engine.run(1500);
  // After the crash the oracle retargets to the survivors' conserved mass;
  // the survivors must reach consensus on it.
  EXPECT_LT(engine.max_error(), 1e-12);
  EXPECT_FALSE(engine.node_alive(11));
}

TEST(PushCancelFlow, RobustVariantHealsBitFlips) {
  const auto t = net::Topology::hypercube(4);
  sim::FaultPlan faults;
  faults.bit_flip_prob = 0.005;
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 5, faults,
                            robust_config());
  engine.run(3000);
  EXPECT_LT(engine.median_error(), 1e-2);
}

TEST(PushCancelFlow, EquivalentToPushFlowUntilFirstFailure) {
  // Section III-B: "the PF algorithm and PCF algorithm behave identically for
  // the same communication schedules and initial data (if no failures
  // occur)". Theoretical identity; in floating point the trajectories agree
  // to rounding error until they converge.
  const auto t = net::Topology::hypercube(4);
  auto pf = make_engine(t, Algorithm::kPushFlow, Aggregate::kAverage, 77);
  auto pcf = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 77, {},
                         robust_config());
  for (int round = 0; round < 60; ++round) {
    pf.step();
    pcf.step();
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_NEAR(pf.node(i).estimate(), pcf.node(i).estimate(), 1e-9)
          << "round " << round << " node " << i;
    }
  }
}

TEST(PushCancelFlow, CancellationZeroesPassiveFlowPair) {
  // Drive a two-node system by hand through the handshake. A handshake can be
  // observed mid-flight (one side swapped, the other not yet), so we look for
  // the settled state — agreeing roles with both passive slots exactly zero —
  // which must recur within a few exchanges.
  PushCancelFlow a{robust_config()}, b{robust_config()};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  b.init(1, nb, Mass::scalar(2.0, 1.0));
  bool settled_state_seen = false;
  auto check_settled = [&] {
    const auto ea = a.edge_state(1);
    const auto eb = b.edge_state(0);
    if (ea.active_slot != eb.active_slot) return;
    const Mass& a_passive = ea.active_slot == 1 ? ea.flow2 : ea.flow1;
    const Mass& b_passive = eb.active_slot == 1 ? eb.flow2 : eb.flow1;
    if (a_passive.is_zero() && b_passive.is_zero() && ea.role_count >= 2) {
      settled_state_seen = true;
    }
  };
  for (int i = 0; i < 30; ++i) {
    b.on_receive(0, a.make_message_to(1)->packet);
    check_settled();  // the handshake settles between half-steps, so sample both
    a.on_receive(1, b.make_message_to(0)->packet);
    check_settled();
  }
  EXPECT_TRUE(settled_state_seen);
  EXPECT_GT(a.role_swaps() + b.role_swaps(), 0u);
  // Two-node average is 4; both sides converge.
  EXPECT_NEAR(a.estimate(), 4.0, 1e-12);
  EXPECT_NEAR(b.estimate(), 4.0, 1e-12);
}

TEST(PushCancelFlow, RoleCountersAreMonotoneAndAdvance) {
  const auto t = net::Topology::ring(6);
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 13, {},
                            fast_config());
  std::vector<std::uint64_t> last(6, 0);
  for (int round = 0; round < 200; ++round) {
    engine.step();
    for (NodeId i = 0; i < 6; ++i) {
      const auto& node = dynamic_cast<const PushCancelFlow&>(engine.node(i));
      const NodeId left = (i + 5) % 6;
      const auto view = node.edge_state(left);
      EXPECT_GE(view.role_count, last[i]) << "node " << i;
      last[i] = view.role_count;
    }
  }
  // Cycles must actually advance — the cancellation machinery never stalls.
  for (std::uint64_t r : last) EXPECT_GT(r, 10u);
}

TEST(PushCancelFlow, MassConservationWithPhiAccounting) {
  // ϕ bookkeeping must keep Σ_i (v_i − ϕ_i − Σ flows) ≡ Σ_i v_i (fast) and
  // likewise for the robust variant, across many cancellations.
  for (const auto variant : {PcfVariant::kFast, PcfVariant::kRobust}) {
    ReducerConfig rc;
    rc.pcf_variant = variant;
    const auto t = net::Topology::hypercube(3);
    auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 17, {}, rc);
    const auto before = total_mass(engine);
    engine.run(500);
    const auto after = total_mass(engine);
    EXPECT_NEAR(after.s[0], before.s[0], 1e-10) << to_string(variant);
    EXPECT_NEAR(after.w, before.w, 1e-10) << to_string(variant);
  }
}

TEST(PushCancelFlow, ConvergedFlowRatioApproachesAggregate) {
  // "All flow variables converge to the target aggregate": the value/weight
  // ratio of every nonzero flow approaches the aggregate — which is exactly
  // why zeroing them on failure does not perturb estimates.
  const auto t = net::Topology::hypercube(4);
  auto engine = make_engine(t, Algorithm::kPushCancelFlow, Aggregate::kAverage, 21, {},
                            robust_config());
  engine.run(600);
  ASSERT_LT(engine.max_error(), 1e-13);
  const double target = engine.oracle().target();
  for (NodeId i = 0; i < t.size(); ++i) {
    const auto& node = dynamic_cast<const PushCancelFlow&>(engine.node(i));
    for (const NodeId j : t.neighbors(i)) {
      const auto view = node.edge_state(j);
      for (const Mass* f : {&view.flow1, &view.flow2}) {
        if (std::abs(f->w) > 1e-6) {
          EXPECT_NEAR(f->s[0] / f->w, target, 1e-9) << "edge " << i << "-" << j;
        }
      }
    }
  }
}

TEST(PushCancelFlow, StalePacketAfterExclusionIsIgnored) {
  PushCancelFlow a{robust_config()};
  const std::vector<NodeId> na{1, 2};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  auto out = a.make_message_to(1);
  ASSERT_TRUE(out.has_value());
  a.on_link_down(1);
  const Mass before = a.local_mass();
  Packet stale;
  stale.a = Mass::scalar(123.0, 4.0);
  stale.b = Mass::scalar(-5.0, 1.0);
  stale.active_slot = 1;
  stale.role_count = 1;
  a.on_receive(1, stale);
  EXPECT_EQ(a.local_mass(), before);
}

TEST(PushCancelFlow, CorruptHeaderIsIgnored) {
  PushCancelFlow a{fast_config()};
  const std::vector<NodeId> na{1};
  a.init(0, na, Mass::scalar(6.0, 1.0));
  const Mass before = a.local_mass();
  Packet bad;
  bad.a = Mass::scalar(1.0, 1.0);
  bad.b = Mass::scalar(1.0, 1.0);
  bad.active_slot = 77;  // corrupted
  bad.role_count = 1;
  a.on_receive(1, bad);
  EXPECT_EQ(a.local_mass(), before);
}

TEST(PushCancelFlow, SimultaneousCancellationRaceResolves) {
  // Force the mutual-cancel race: both endpoints observe conservation in the
  // same round (packets cross), both start cancellation, r counters stay in
  // lockstep. The protocol must still converge and keep cancelling.
  const auto t = net::Topology::bus(2);
  const std::vector<Mass> masses{Mass::scalar(4.0, 1.0), Mass::scalar(0.0, 1.0)};
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 3;
  cfg.delivery = sim::Delivery::kCrossing;
  sim::SyncEngine engine(t, masses, cfg);
  // In a 2-node bus every round is a mutual exchange with crossing packets —
  // the worst case for the handshake.
  engine.run(200);
  EXPECT_LT(engine.max_error(), 1e-12);
  const auto& a = dynamic_cast<const PushCancelFlow&>(engine.node(0));
  EXPECT_GE(a.edge_state(1).role_count, 2u);
}

TEST(PushCancelFlow, CrossingDeliveryStillConverges) {
  // The stress delivery model: every round all packets cross. Transient
  // conservation violations must self-heal.
  const auto t = net::Topology::hypercube(4);
  const auto values = test::random_values(t.size(), 5);
  auto masses = sim::masses_from_values(values, Aggregate::kAverage);
  sim::SyncEngineConfig cfg;
  cfg.algorithm = Algorithm::kPushCancelFlow;
  cfg.seed = 5;
  cfg.delivery = sim::Delivery::kCrossing;
  sim::SyncEngine engine(t, masses, cfg);
  engine.run(800);
  EXPECT_LT(engine.max_error(), 1e-12);
}

}  // namespace
}  // namespace pcf::core
