#include "core/neighbor_set.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "support/check.hpp"

namespace pcf::core {
namespace {

NeighborSet make_set(std::initializer_list<net::NodeId> ids) {
  NeighborSet set;
  set.init(std::vector<net::NodeId>(ids));
  return set;
}

TEST(NeighborSet, InitSortsTheIds) {
  const auto set = make_set({9, 2, 5});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.id_at(0), 2u);
  EXPECT_EQ(set.id_at(1), 5u);
  EXPECT_EQ(set.id_at(2), 9u);
  EXPECT_EQ(set.live_count(), 3u);
}

TEST(NeighborSet, InitRejectsDuplicateIds) {
  NeighborSet set;
  const std::array<net::NodeId, 3> ids{4, 7, 4};
  EXPECT_THROW(set.init(ids), ContractViolation);
}

TEST(NeighborSet, SlotOfIsTheSortedPosition) {
  const auto set = make_set({9, 2, 5});
  EXPECT_EQ(set.slot_of(2), std::optional<std::size_t>{0});
  EXPECT_EQ(set.slot_of(5), std::optional<std::size_t>{1});
  EXPECT_EQ(set.slot_of(9), std::optional<std::size_t>{2});
  EXPECT_FALSE(set.slot_of(3).has_value());
  EXPECT_FALSE(set.slot_of(10).has_value());
}

TEST(NeighborSet, MarkDeadReportsTheSlotExactlyOnce) {
  auto set = make_set({1, 3, 8});
  EXPECT_EQ(set.mark_dead(3), std::optional<std::size_t>{1});
  EXPECT_FALSE(set.alive_at(1));
  EXPECT_EQ(set.live_count(), 2u);
  // Duplicate failure notifications and unknown peers are benign no-ops.
  EXPECT_FALSE(set.mark_dead(3).has_value());
  EXPECT_FALSE(set.mark_dead(99).has_value());
  EXPECT_EQ(set.live_count(), 2u);
}

TEST(NeighborSet, PickLiveNeverReturnsADeadNeighbor) {
  auto set = make_set({0, 1, 2, 3});
  ASSERT_TRUE(set.mark_dead(1).has_value());
  ASSERT_TRUE(set.mark_dead(3).has_value());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto picked = set.pick_live(rng);
    ASSERT_TRUE(picked.has_value());
    EXPECT_TRUE(*picked == 0 || *picked == 2) << *picked;
  }
}

TEST(NeighborSet, PickLiveIsRoughlyUniform) {
  auto set = make_set({10, 20, 30});
  Rng rng(42);
  std::map<net::NodeId, int> counts;
  constexpr int kDraws = 3000;
  for (int i = 0; i < kDraws; ++i) {
    const auto picked = set.pick_live(rng);
    ASSERT_TRUE(picked.has_value());
    ++counts[*picked];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [id, count] : counts) {
    // Each neighbor expects kDraws/3 = 1000 hits; 6 sigma ≈ ±155.
    EXPECT_GT(count, 800) << "neighbor " << id;
    EXPECT_LT(count, 1200) << "neighbor " << id;
  }
}

TEST(NeighborSet, PickLiveIsExhaustedWhenAllNeighborsDied) {
  auto set = make_set({5, 6});
  ASSERT_TRUE(set.mark_dead(5).has_value());
  ASSERT_TRUE(set.mark_dead(6).has_value());
  EXPECT_EQ(set.live_count(), 0u);
  Rng rng(1);
  EXPECT_FALSE(set.pick_live(rng).has_value());
}

}  // namespace
}  // namespace pcf::core
