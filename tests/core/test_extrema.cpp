#include "core/extrema.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "support/check.hpp"

namespace pcf::core {
namespace {

TEST(ExtremaGossip, InitSeedsBothExtrema) {
  ExtremaGossip node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(4.5, 1.0));
  EXPECT_EQ(node.current_min(), 4.5);
  EXPECT_EQ(node.current_max(), 4.5);
  EXPECT_EQ(node.estimate(0), 4.5);
  EXPECT_EQ(node.estimate(1), 4.5);
}

TEST(ExtremaGossip, RejectsVectorSample) {
  ExtremaGossip node{{}};
  const std::vector<NodeId> nb{1};
  EXPECT_THROW(node.init(0, nb, Mass(Values{1.0, 2.0}, 1.0)), ContractViolation);
}

TEST(ExtremaGossip, MergeIsMonotone) {
  ExtremaGossip node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(5.0, 1.0));
  Packet p;
  p.a = Mass(Values{2.0, 9.0}, 1.0);
  node.on_receive(1, p);
  EXPECT_EQ(node.current_min(), 2.0);
  EXPECT_EQ(node.current_max(), 9.0);
  // A narrower report cannot shrink the range.
  p.a = Mass(Values{3.0, 4.0}, 1.0);
  node.on_receive(1, p);
  EXPECT_EQ(node.current_min(), 2.0);
  EXPECT_EQ(node.current_max(), 9.0);
}

TEST(ExtremaGossip, DuplicateDeliveryIsIdempotent) {
  ExtremaGossip node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(5.0, 1.0));
  Packet p;
  p.a = Mass(Values{1.0, 7.0}, 1.0);
  node.on_receive(1, p);
  const double min1 = node.current_min(), max1 = node.current_max();
  node.on_receive(1, p);
  node.on_receive(1, p);
  EXPECT_EQ(node.current_min(), min1);
  EXPECT_EQ(node.current_max(), max1);
}

TEST(ExtremaGossip, CorruptedDimensionIgnored) {
  ExtremaGossip node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(5.0, 1.0));
  Packet p;
  p.a = Mass::scalar(-100.0, 1.0);  // dim 1 instead of 2
  node.on_receive(1, p);
  EXPECT_EQ(node.current_min(), 5.0);
}

TEST(ExtremaGossip, UpdateDataMergesNewSample) {
  ExtremaGossip node{{}};
  const std::vector<NodeId> nb{1};
  node.init(0, nb, Mass::scalar(5.0, 1.0));
  node.update_data(Mass::scalar(1.5, 0.0));
  EXPECT_EQ(node.current_min(), 1.5);
  EXPECT_EQ(node.current_max(), 5.0);
}

TEST(ExtremaGossip, MessageCarriesCurrentRange) {
  ExtremaGossip a{{}}, b{{}};
  const std::vector<NodeId> na{1}, nb{0};
  a.init(0, na, Mass::scalar(3.0, 1.0));
  b.init(1, nb, Mass::scalar(8.0, 1.0));
  b.on_receive(0, a.make_message_to(1)->packet);
  EXPECT_EQ(b.current_min(), 3.0);
  EXPECT_EQ(b.current_max(), 8.0);
  a.on_receive(1, b.make_message_to(0)->packet);
  EXPECT_EQ(a.current_min(), 3.0);
  EXPECT_EQ(a.current_max(), 8.0);
}

}  // namespace
}  // namespace pcf::core
