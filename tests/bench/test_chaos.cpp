#include "bench/chaos.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace pcf::bench {
namespace {

TEST(MakeChaosCells, FastGridIsWellFormed) {
  const auto cells = make_chaos_cells(/*fast=*/true);
  ASSERT_FALSE(cells.empty());
  std::set<std::string> names, algorithms, topologies;
  for (const auto& c : cells) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate cell " << c.name;
    algorithms.insert(c.algorithm);
    topologies.insert(c.topology);
    EXPECT_GT(c.intensity, 0.0);
    EXPECT_GE(c.trials, 1u);
    EXPECT_GT(c.churn_rounds, 0u);
    EXPECT_GT(c.recovery_max_rounds, c.churn_rounds);
    EXPECT_GT(c.tol, 0.0);
  }
  EXPECT_TRUE(algorithms.count("pcf"));  // the paper's algorithm is always swept
  EXPECT_GE(topologies.size(), 2u);      // at least two topology families
}

TEST(MakeChaosCells, FullGridCoversAllAlgorithmsAndRampsIntensity) {
  const auto cells = make_chaos_cells(/*fast=*/false);
  std::set<std::string> algorithms;
  std::set<double> intensities;
  for (const auto& c : cells) {
    algorithms.insert(c.algorithm);
    intensities.insert(c.intensity);
  }
  EXPECT_EQ(algorithms, (std::set<std::string>{"ps", "pf", "pcf", "fu", "corr", "fumd"}));
  EXPECT_GE(intensities.size(), 3u);  // a ramp, not a single operating point
  EXPECT_GT(cells.size(), make_chaos_cells(true).size());
}

TEST(MakeChaosRestoreCells, GridsAreWellFormed) {
  for (const bool fast : {true, false}) {
    const auto cells = make_chaos_restore_cells(fast);
    ASSERT_FALSE(cells.empty());
    std::set<std::string> names, engines;
    for (const auto& c : cells) {
      EXPECT_TRUE(names.insert(c.name).second) << "duplicate cell " << c.name;
      engines.insert(c.engine);
      EXPECT_GE(c.trials, 1u);
      EXPECT_GT(c.checkpoint_every, 0u);
      EXPECT_GT(c.kill_round, c.checkpoint_every);
      // A kill on a checkpoint boundary would make the replay segment empty —
      // the race must always pay a real replay.
      EXPECT_NE(c.kill_round % c.checkpoint_every, 0u) << c.name;
      EXPECT_GT(c.max_rounds, c.kill_round);
      EXPECT_GT(c.tol, 0.0);
    }
    // Both state layouts must be raced — the blobs differ, the results must not.
    EXPECT_EQ(engines, (std::set<std::string>{"legacy", "arena"}));
  }
}

TEST(RunChaos, RestoreFamilyReplaysBitwiseAndConverges) {
  ChaosOptions options;
  options.fast = true;
  options.seed = 1;
  const auto report = run_chaos(options);
  ASSERT_EQ(report.restore_cells.size(), make_chaos_restore_cells(true).size());
  for (const auto& r : report.restore_cells) {
    // The tentpole acceptance bar: every restored replay reproduces the
    // pre-kill fingerprint bitwise, on both state layouts.
    EXPECT_EQ(r.fingerprint_matches, r.cell.trials) << r.cell.name;
    EXPECT_EQ(r.restore_converged, r.cell.trials) << r.cell.name;
    EXPECT_EQ(r.intrinsic_converged, r.cell.trials) << r.cell.name;
    EXPECT_GT(r.checkpoint_bytes_full, 0u) << r.cell.name;
    EXPECT_GT(r.checkpoint_bytes_light, 0u) << r.cell.name;
    // Sync blobs: the wire is empty at round boundaries, so light ≤ full.
    EXPECT_LE(r.checkpoint_bytes_light, r.checkpoint_bytes_full) << r.cell.name;
    EXPECT_GT(r.restore_rounds.p50, 0.0) << r.cell.name;
    EXPECT_GT(r.intrinsic_rounds.p50, 0.0) << r.cell.name;
    EXPECT_LE(r.restore_error.max, r.cell.tol) << r.cell.name;
    EXPECT_LE(r.intrinsic_error.max, r.cell.tol) << r.cell.name;
  }
}

TEST(RunChaos, SingleCellTrialRecoversConsensus) {
  // One small cell end to end: after the chaos phase quiets down, the
  // estimates must re-agree within the recovery budget in every trial.
  ChaosOptions options;
  options.fast = true;
  options.seed = 1;
  const auto report = run_chaos(options);
  ASSERT_EQ(report.cells.size(), make_chaos_cells(true).size());
  for (const auto& r : report.cells) {
    EXPECT_EQ(r.nodes, 16u) << r.cell.name;  // fast grid uses 16-node graphs
    EXPECT_EQ(r.consensus, r.cell.trials) << r.cell.name;
    EXPECT_LE(r.survived, r.consensus) << r.cell.name;
    EXPECT_GT(r.recovery_rounds.p50, 0.0) << r.cell.name;
    EXPECT_LT(r.recovery_rounds.max,
              static_cast<double>(r.cell.recovery_max_rounds)) << r.cell.name;
    EXPECT_GE(r.link_heals, 1u) << r.cell.name;  // churn + phase-2 heals fired
    EXPECT_GE(r.rejoins, 1u) << r.cell.name;  // the scripted crash+rejoin fired
    EXPECT_GT(r.messages_duplicated, 0u) << r.cell.name;
  }
}

TEST(ChaosReportToJson, ByteDeterministicPerSeed) {
  ChaosOptions options;
  options.fast = true;
  options.seed = 42;
  const auto a = chaos_report_to_json(run_chaos(options));
  const auto b = chaos_report_to_json(run_chaos(options));
  EXPECT_EQ(a, b);  // byte-identical — the CI contract
  options.seed = 43;
  const auto c = chaos_report_to_json(run_chaos(options));
  EXPECT_NE(a, c);  // the seed actually reaches the trials
}

TEST(ChaosReportToJson, EmitsVersionedSchema) {
  ChaosOptions options;
  options.fast = true;
  options.seed = 1;
  const auto report = run_chaos(options);
  const auto json = chaos_report_to_json(report);
  EXPECT_NE(json.find("\"schema\": \"pcflow-chaos\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"fast\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(json.find("\"restore_cells\": ["), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint_matches\": "), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_bytes_full\": "), std::string::npos);
  EXPECT_NE(json.find("\"intrinsic_rounds\": {"), std::string::npos);
  EXPECT_NE(json.find("\"recovery_rounds\": {"), std::string::npos);
  EXPECT_NE(json.find("\"final_error\": {"), std::string::npos);
  EXPECT_NE(json.find("\"survived\": "), std::string::npos);
  // No wall-clock fields may leak in — they would break byte determinism.
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(json.find("timing"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace pcf::bench
