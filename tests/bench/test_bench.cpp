#include "bench/bench.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "support/check.hpp"

namespace pcf::bench {
namespace {

TEST(TrialSeed, DeterministicAndDistinct) {
  EXPECT_EQ(trial_seed(1, 0), trial_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 256; ++i) seeds.insert(trial_seed(42, i));
  EXPECT_EQ(seeds.size(), 256u);  // no collisions across trial indices
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));  // suite seed matters
}

TEST(MakeSuite, FastSuiteCoversAllAlgorithmsAndFaults) {
  const auto suite = make_suite("fast");
  EXPECT_GE(suite.size(), 6u);  // the ISSUE floor for `pcflow bench --fast`
  std::set<std::string> algorithms, profiles, names;
  for (const auto& s : suite) {
    algorithms.insert(s.algorithm);
    profiles.insert(s.fault_profile);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario " << s.name;
    EXPECT_GE(s.trials, 1u);
    EXPECT_GT(s.max_rounds, 0u);
    EXPECT_GT(s.tol, 0.0);
  }
  EXPECT_EQ(algorithms, (std::set<std::string>{"ps", "pf", "pcf", "fu", "corr", "fumd"}));
  EXPECT_TRUE(profiles.count("none"));
  EXPECT_TRUE(profiles.count("loss"));
  EXPECT_TRUE(profiles.count("crash"));
}

TEST(MakeSuite, StandardSuiteIsASuperset) {
  const auto fast = make_suite("fast");
  const auto standard = make_suite("standard");
  EXPECT_GT(standard.size(), fast.size());
}

TEST(MakeSuite, UnknownSuiteIsCheckedIllegal) {
  EXPECT_THROW(make_suite("warp-speed"), ContractViolation);
}

TEST(RunBench, ParallelRunnerIsBitwiseIdenticalToSerial) {
  // The core determinism contract: with timing nulled out, the report must be
  // byte-identical no matter how many workers ran the trials.
  BenchOptions serial;
  serial.suite = "fast";
  serial.seed = 7;
  serial.threads = 1;
  serial.include_timing = false;
  BenchOptions parallel = serial;
  parallel.threads = 3;
  const auto a = report_to_json(run_bench(serial));
  const auto b = report_to_json(run_bench(parallel));
  EXPECT_EQ(a, b);
}

TEST(MakeSuite, ScaleSuitesUseTheArenaEngine) {
  for (const char* name : {"scale", "scale-fast"}) {
    const auto suite = make_suite(name);
    EXPECT_GE(suite.size(), 5u) << name;
    std::size_t arena_cells = 0, sharded_cells = 0;
    for (const auto& s : suite) {
      EXPECT_GT(s.fixed_rounds, 0u) << name << "/" << s.name;
      if (s.engine == "arena") ++arena_cells;
      if (s.shards != 1) ++sharded_cells;
    }
    EXPECT_GT(arena_cells, 0u) << name;
    EXPECT_GT(sharded_cells, 0u) << name;
  }
  // The baseline suite reaches 10^6 nodes (torus2d:1000x1000).
  const auto scale = make_suite("scale");
  const bool has_million = std::any_of(scale.begin(), scale.end(), [](const Scenario& s) {
    return s.topology == "torus2d:1000x1000";
  });
  EXPECT_TRUE(has_million);
}

TEST(RunBench, ScaleFastIsBitwiseIdenticalAcrossRunnerThreads) {
  // The scale cut must satisfy the same determinism contract as "fast":
  // byte-identical JSON regardless of runner worker count — which also pins
  // that the sharded arena cells (shards > 1) produce thread-independent
  // counters and errors.
  BenchOptions serial;
  serial.suite = "scale-fast";
  serial.seed = 11;
  serial.threads = 1;
  serial.include_timing = false;
  BenchOptions parallel = serial;
  parallel.threads = 4;
  const auto a = report_to_json(run_bench(serial));
  const auto b = report_to_json(run_bench(parallel));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"engine\": \"arena\""), std::string::npos);
}

TEST(RunBench, FaultFreeFastScenariosConverge) {
  BenchOptions options;
  options.suite = "fast";
  options.seed = 1;
  options.include_timing = false;
  const auto report = run_bench(options);
  EXPECT_EQ(report.scenarios.size(), make_suite("fast").size());
  for (const auto& r : report.scenarios) {
    EXPECT_EQ(r.nodes, 16u) << r.scenario.name;  // fast suite uses 16-node graphs
    EXPECT_GT(r.deliveries, 0u) << r.scenario.name;
    EXPECT_GT(r.messages_sent, 0u) << r.scenario.name;
    if (r.scenario.fault_profile == "none") {
      EXPECT_EQ(r.converged_trials, r.scenario.trials) << r.scenario.name;
      EXPECT_LT(r.final_max_error.max(), r.scenario.tol) << r.scenario.name;
    }
  }
}

TEST(ReportToJson, EmitsVersionedSchemaWithoutExecutionParameters) {
  BenchOptions options;
  options.suite = "fast";
  options.seed = 3;
  options.threads = 2;
  options.include_timing = false;
  const auto json = report_to_json(run_bench(options));
  EXPECT_NE(json.find("\"schema\": \"pcflow-bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  // v3: the algorithm enum grew corr and fumd (roster cells below).
  EXPECT_NE(json.find("\"algorithm\": \"corr\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\": \"fumd\""), std::string::npos);
  // v2 additions: the engine/shard/delivery cell parameters are part of the
  // scenario identity (CI gates diff on them).
  EXPECT_NE(json.find("\"engine\": \"legacy\""), std::string::npos);
  EXPECT_NE(json.find("\"delivery\": \"sequential\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\": "), std::string::npos);
  EXPECT_NE(json.find("\"fixed_rounds\": "), std::string::npos);
  EXPECT_NE(json.find("\"suite\": \"fast\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"scenarios\": ["), std::string::npos);
  EXPECT_NE(json.find("\"rounds\": {"), std::string::npos);
  EXPECT_NE(json.find("\"doubles_on_wire\": "), std::string::npos);
  // Execution parameters (worker count) must not leak into the document —
  // they would break the byte-compare determinism contract.
  EXPECT_EQ(json.find("\"threads\""), std::string::npos);
  // With timing disabled every timing block is the null literal.
  EXPECT_NE(json.find("\"timing\": null"), std::string::npos);
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(ReportToJson, TimingBlockPresentWhenEnabled) {
  BenchOptions options;
  options.suite = "fast";
  options.include_timing = true;
  const auto json = report_to_json(run_bench(options));
  EXPECT_EQ(json.find("\"timing\": null"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"phase_seconds\": {"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_per_sec\": "), std::string::npos);
  EXPECT_NE(json.find("\"deliveries_per_sec\": "), std::string::npos);
}

}  // namespace
}  // namespace pcf::bench
