#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/check.hpp"

namespace pcf::net {
namespace {

// Every generated topology must be an undirected simple graph: symmetric
// adjacency, no self loops, no duplicates.
void expect_valid_graph(const Topology& t) {
  for (NodeId i = 0; i < t.size(); ++i) {
    std::set<NodeId> seen;
    for (NodeId j : t.neighbors(i)) {
      EXPECT_NE(i, j) << "self loop at " << i;
      EXPECT_TRUE(seen.insert(j).second) << "duplicate edge " << i << "-" << j;
      EXPECT_TRUE(t.has_edge(j, i)) << "asymmetric edge " << i << "-" << j;
    }
  }
}

TEST(Topology, BusStructure) {
  const auto t = Topology::bus(5);
  expect_valid_graph(t);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.edge_count(), 4u);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(2), 2u);
  EXPECT_EQ(t.degree(4), 1u);
  EXPECT_TRUE(t.has_edge(1, 2));
  EXPECT_FALSE(t.has_edge(0, 2));
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, RingStructure) {
  const auto t = Topology::ring(6);
  expect_valid_graph(t);
  EXPECT_EQ(t.edge_count(), 6u);
  for (NodeId i = 0; i < 6; ++i) EXPECT_EQ(t.degree(i), 2u);
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(Topology, RingRejectsTooSmall) { EXPECT_THROW(Topology::ring(2), ContractViolation); }

TEST(Topology, Grid2dStructure) {
  const auto t = Topology::grid2d(3, 4);
  expect_valid_graph(t);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.edge_count(), 3u * 3u + 2u * 4u);  // horizontal + vertical
  EXPECT_EQ(t.degree(0), 2u);                    // corner
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(Topology, Torus2dIsRegular) {
  const auto t = Topology::grid2d(4, 4, /*wrap=*/true);
  expect_valid_graph(t);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(t.degree(i), 4u);
}

TEST(Topology, Torus3dIsSixRegular) {
  const auto t = Topology::torus3d(4, 4, 4);
  expect_valid_graph(t);
  EXPECT_EQ(t.size(), 64u);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(t.degree(i), 6u);
  EXPECT_EQ(t.edge_count(), 64u * 6u / 2u);
  EXPECT_EQ(t.diameter(), 6u);  // 3 dims × wraparound distance 2
}

TEST(Topology, Torus3dSideTwoHasNoDuplicateWrapEdges) {
  const auto t = Topology::torus3d(2, 2, 2);
  expect_valid_graph(t);
  // Side length 2: wrap edge would duplicate the mesh edge — degree must be 3.
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(t.degree(i), 3u);
}

TEST(Topology, HypercubeStructure) {
  const auto t = Topology::hypercube(4);
  expect_valid_graph(t);
  EXPECT_EQ(t.size(), 16u);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(t.degree(i), 4u);
  EXPECT_EQ(t.diameter(), 4u);
  // Neighbors differ in exactly one bit.
  for (NodeId i = 0; i < t.size(); ++i) {
    for (NodeId j : t.neighbors(i)) EXPECT_EQ(__builtin_popcount(i ^ j), 1);
  }
}

TEST(Topology, CompleteGraph) {
  const auto t = Topology::complete(5);
  expect_valid_graph(t);
  EXPECT_EQ(t.edge_count(), 10u);
  EXPECT_EQ(t.diameter(), 1u);
}

TEST(Topology, StarStructure) {
  const auto t = Topology::star(7);
  expect_valid_graph(t);
  EXPECT_EQ(t.degree(0), 6u);
  for (NodeId i = 1; i < 7; ++i) EXPECT_EQ(t.degree(i), 1u);
  EXPECT_EQ(t.diameter(), 2u);
}

TEST(Topology, BinaryTreeStructure) {
  const auto t = Topology::binary_tree(7);
  expect_valid_graph(t);
  EXPECT_EQ(t.edge_count(), 6u);
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(1), 3u);  // parent 0, children 3,4
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, RandomRegularHasExactDegree) {
  Rng rng(5);
  const auto t = Topology::random_regular(20, 4, rng);
  expect_valid_graph(t);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(t.degree(i), 4u);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, RandomRegularScalesViaEdgeSwapRepair) {
  // At this size a shuffled stub pairing contains a collision with
  // near-certainty, so the generator must take the edge-swap repair path
  // (wholesale rejection would exhaust every attempt). The result still has
  // to be a simple connected graph with the exact degree everywhere.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed);
    const auto t = Topology::random_regular(5000, 6, rng);
    expect_valid_graph(t);
    for (NodeId i = 0; i < t.size(); ++i) ASSERT_EQ(t.degree(i), 6u) << "seed " << seed;
    EXPECT_TRUE(t.is_connected()) << "seed " << seed;
    EXPECT_EQ(t.edge_count(), 5000u * 6u / 2u);
  }
}

TEST(Topology, RandomRegularRejectsOddProduct) {
  Rng rng(5);
  EXPECT_THROW(Topology::random_regular(5, 3, rng), ContractViolation);
}

TEST(Topology, ErdosRenyiIsAlwaysConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto t = Topology::erdos_renyi(30, 0.02, rng);
    expect_valid_graph(t);
    EXPECT_TRUE(t.is_connected()) << "seed " << seed;
  }
}

TEST(Topology, WattsStrogatzStaysConnectedAndSimple) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto t = Topology::watts_strogatz(30, 4, 0.3, rng);
    expect_valid_graph(t);
    EXPECT_EQ(t.size(), 30u);
    EXPECT_TRUE(t.is_connected()) << "seed " << seed;
    // Edge count is preserved by rewiring: n*k/2.
    EXPECT_EQ(t.edge_count(), 60u);
  }
}

TEST(Topology, WattsStrogatzZeroBetaIsRingLattice) {
  Rng rng(1);
  const auto t = Topology::watts_strogatz(12, 4, 0.0, rng);
  for (NodeId i = 0; i < 12; ++i) EXPECT_EQ(t.degree(i), 4u);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(0, 2));
  EXPECT_FALSE(t.has_edge(0, 3));
}

TEST(Topology, WattsStrogatzRewiringShortensDiameter) {
  Rng rng(5);
  const auto lattice = Topology::watts_strogatz(64, 4, 0.0, rng);
  const auto small_world = Topology::watts_strogatz(64, 4, 0.3, rng);
  EXPECT_LT(small_world.diameter(), lattice.diameter());
}

TEST(Topology, WattsStrogatzRejectsOddDegree) {
  Rng rng(1);
  EXPECT_THROW(Topology::watts_strogatz(10, 3, 0.1, rng), ContractViolation);
}

TEST(Topology, BarabasiAlbertIsConnectedScaleFree) {
  Rng rng(7);
  const auto t = Topology::barabasi_albert(100, 2, rng);
  expect_valid_graph(t);
  EXPECT_TRUE(t.is_connected());
  // Every non-seed node attaches with m = 2 edges; hubs accumulate degree.
  std::size_t max_degree = 0;
  for (NodeId i = 0; i < t.size(); ++i) max_degree = std::max(max_degree, t.degree(i));
  EXPECT_GE(max_degree, 8u);  // scale-free: hubs well above the minimum of 2
  EXPECT_EQ(t.edge_count(), 3u + 97u * 2u);  // seed clique + m per new node
}

TEST(Topology, BarabasiAlbertRejectsTinyN) {
  Rng rng(1);
  EXPECT_THROW(Topology::barabasi_albert(3, 3, rng), ContractViolation);
}

TEST(Topology, FromEdgesNormalizesDuplicates) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {1, 0}, {1, 2}};
  const auto t = Topology::from_edges(3, edges);
  expect_valid_graph(t);
  EXPECT_EQ(t.edge_count(), 2u);
}

TEST(Topology, FromEdgesRejectsSelfLoop) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 0}};
  EXPECT_THROW(Topology::from_edges(2, edges), ContractViolation);
}

TEST(Topology, FromEdgesRejectsOutOfRange) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 5}};
  EXPECT_THROW(Topology::from_edges(3, edges), ContractViolation);
}

TEST(Topology, BfsDistancesOnBus) {
  const auto t = Topology::bus(5);
  const auto d = t.bfs_distances(0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Topology, EdgesListMatchesCount) {
  const auto t = Topology::hypercube(3);
  const auto edges = t.edges();
  EXPECT_EQ(edges.size(), t.edge_count());
  for (const auto& [a, b] : edges) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(t.has_edge(a, b));
  }
}

TEST(Topology, ParseRoundTrip) {
  Rng rng(1);
  EXPECT_EQ(Topology::parse("bus:8", rng).size(), 8u);
  EXPECT_EQ(Topology::parse("ring:9", rng).size(), 9u);
  EXPECT_EQ(Topology::parse("hypercube:5", rng).size(), 32u);
  EXPECT_EQ(Topology::parse("torus3d:2", rng).size(), 8u);
  EXPECT_EQ(Topology::parse("torus3d:2x3x4", rng).size(), 24u);
  EXPECT_EQ(Topology::parse("grid:3x5", rng).size(), 15u);
  EXPECT_EQ(Topology::parse("complete:6", rng).size(), 6u);
  EXPECT_EQ(Topology::parse("star:4", rng).size(), 4u);
  EXPECT_EQ(Topology::parse("tree:10", rng).size(), 10u);
  EXPECT_EQ(Topology::parse("regular:10:3", rng).size(), 10u);
  EXPECT_EQ(Topology::parse("er:12:0.3", rng).size(), 12u);
  EXPECT_EQ(Topology::parse("smallworld:20:4:0.2", rng).size(), 20u);
  EXPECT_EQ(Topology::parse("ba:15:2", rng).size(), 15u);
}

TEST(Topology, ParseRejectsGarbage) {
  Rng rng(1);
  EXPECT_THROW(Topology::parse("nope:3", rng), ContractViolation);
  EXPECT_THROW(Topology::parse("bus", rng), ContractViolation);
  EXPECT_THROW(Topology::parse("grid:3", rng), ContractViolation);
  EXPECT_THROW(Topology::parse("bus:x", rng), ContractViolation);
}

TEST(Topology, NamesAreDescriptive) {
  EXPECT_EQ(Topology::bus(4).name(), "bus:4");
  EXPECT_EQ(Topology::hypercube(3).name(), "hypercube:3");
  EXPECT_EQ(Topology::torus3d(2, 2, 2).name(), "torus3d:2x2x2");
}

TEST(Topology, DotExportContainsEveryEdge) {
  const auto t = Topology::ring(4);
  const std::string dot = t.to_dot();
  EXPECT_NE(dot.find("graph \"ring:4\""), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_NE(dot.find("2 -- 3;"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 3;"), std::string::npos);
  // Undirected: no reversed duplicates.
  EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);
}

TEST(Topology, DiameterThrowsOnDisconnected) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}};
  const auto t = Topology::from_edges(3, edges);
  EXPECT_FALSE(t.is_connected());
  EXPECT_THROW((void)t.diameter(), ContractViolation);
}

}  // namespace
}  // namespace pcf::net
