// Transport framing wall — mirrors the checkpoint codec tests: round-trip
// property over representative packets of every algorithm, plus a rejection
// wall (truncation, corruption, version skew, unknown kind, trailing bytes).
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/mass.hpp"
#include "support/rng.hpp"

namespace pcf::net {
namespace {

using core::Mass;
using core::Packet;
using core::Values;

Mass random_mass(Rng& rng, std::size_t dim) {
  Values v;
  for (std::size_t k = 0; k < dim; ++k) v.push_back(rng.uniform(-1e6, 1e6));
  return Mass(std::move(v), rng.uniform(-4.0, 4.0));
}

/// Representative packets across every algorithm's field usage: push-sum/PF
/// (a only), PCF (a, b, active_slot, role_count), FU (a flow + b estimate),
/// corr (tree segments in a), plus degenerate shapes (zero mass, dim 0,
/// max dim, negative weights, denormals).
std::vector<Packet> representative_packets() {
  std::vector<Packet> packets;
  Rng rng(7);

  for (const std::size_t dim : {std::size_t{1}, std::size_t{3}, core::kMaxDim}) {
    Packet push_style;  // push-sum / push-flow: one mass pair
    push_style.a = random_mass(rng, dim);
    packets.push_back(push_style);

    Packet pcf;  // both slots + handshake bookkeeping
    pcf.a = random_mass(rng, dim);
    pcf.b = random_mass(rng, dim);
    pcf.active_slot = 2;
    pcf.role_count = 123456789ULL;
    packets.push_back(pcf);

    Packet fu;  // flow + sender estimate
    fu.a = random_mass(rng, dim);
    fu.b = random_mass(rng, dim);
    packets.push_back(fu);
  }

  Packet zero;  // dim-0 masses (pre-init shapes must still frame)
  packets.push_back(zero);

  Packet tiny;  // denormal + negative-zero payloads must survive bit-exactly
  tiny.a = Mass::scalar(5e-324, -0.0);
  tiny.b = Mass::scalar(-5e-324, 1.0);
  packets.push_back(tiny);

  return packets;
}

bool same_mass_bits(const Mass& x, const Mass& y) {
  if (x.dim() != y.dim()) return false;
  if (std::bit_cast<std::uint64_t>(x.w) != std::bit_cast<std::uint64_t>(y.w)) return false;
  for (std::size_t k = 0; k < x.dim(); ++k) {
    if (std::bit_cast<std::uint64_t>(x.s[k]) != std::bit_cast<std::uint64_t>(y.s[k])) {
      return false;
    }
  }
  return true;
}

TEST(Transport, DataFrameRoundTripsBitExactlyOverAllPacketShapes) {
  std::uint64_t seq = 0;
  for (const Packet& packet : representative_packets()) {
    DataFrame in;
    in.from = 17;
    in.to = 4093;
    in.seq = ++seq * 7919;
    in.packet = packet;

    const std::string bytes = encode_frame(in);
    const Frame out = decode_frame(bytes);
    ASSERT_EQ(out.kind, FrameKind::kData);
    EXPECT_EQ(out.data.from, in.from);
    EXPECT_EQ(out.data.to, in.to);
    EXPECT_EQ(out.data.seq, in.seq);
    EXPECT_TRUE(same_mass_bits(out.data.packet.a, packet.a));
    EXPECT_TRUE(same_mass_bits(out.data.packet.b, packet.b));
    EXPECT_EQ(out.data.packet.active_slot, packet.active_slot);
    EXPECT_EQ(out.data.packet.role_count, packet.role_count);
  }
}

TEST(Transport, HeartbeatFrameRoundTrips) {
  HeartbeatFrame in;
  in.shard = 11;
  in.epoch = 3;
  in.seq = 0xdeadbeefULL;
  const Frame out = decode_frame(encode_frame(in));
  ASSERT_EQ(out.kind, FrameKind::kHeartbeat);
  EXPECT_EQ(out.heartbeat.shard, 11u);
  EXPECT_EQ(out.heartbeat.epoch, 3u);
  EXPECT_EQ(out.heartbeat.seq, 0xdeadbeefULL);
}

TEST(Transport, EncodingIsDeterministic) {
  DataFrame frame;
  frame.from = 1;
  frame.to = 2;
  frame.seq = 3;
  frame.packet.a = Mass::scalar(1.5, 1.0);
  EXPECT_EQ(encode_frame(frame), encode_frame(frame));
}

TEST(Transport, TruncationAtEveryLengthIsRejected) {
  DataFrame frame;
  frame.from = 9;
  frame.to = 10;
  frame.seq = 42;
  frame.packet.a = Mass::scalar(2.0, 1.0);
  frame.packet.b = Mass::scalar(-2.0, -1.0);
  const std::string bytes = encode_frame(frame);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_frame(std::string_view(bytes).substr(0, len)), TransportError)
        << "length " << len;
  }
}

TEST(Transport, Everysingle_ByteCorruptionIsRejected) {
  HeartbeatFrame frame;
  frame.shard = 5;
  frame.epoch = 1;
  frame.seq = 99;
  const std::string bytes = encode_frame(frame);
  // Flipping any bit anywhere — header, body or trailer — must be caught by
  // the checksum (or, for trailer flips, by the mismatch it creates).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_THROW((void)decode_frame(corrupt), TransportError) << "byte " << i;
  }
}

TEST(Transport, TrailingBytesAreRejected) {
  HeartbeatFrame frame;
  const std::string bytes = encode_frame(frame) + std::string("x");
  EXPECT_THROW((void)decode_frame(bytes), TransportError);
}

/// Re-seals a tampered frame with a valid checksum, isolating the semantic
/// checks (magic, version, kind) from the corruption check.
std::string reseal(std::string bytes, std::size_t index, char value) {
  bytes[index] = value;
  const std::string_view body = std::string_view(bytes).substr(0, bytes.size() - 8);
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : body) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((h >> (8 * i)) & 0xffU);
  }
  return bytes;
}

TEST(Transport, VersionSkewIsRefusedWithDistinctMessage) {
  const std::string bytes = encode_frame(HeartbeatFrame{});
  const std::string skewed = reseal(bytes, kFrameMagic.size(), 99);  // version LSB
  try {
    (void)decode_frame(skewed);
    FAIL() << "version skew accepted";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string_view(e.what()).find("version skew"), std::string_view::npos);
  }
}

TEST(Transport, BadMagicIsRefused) {
  const std::string bytes = encode_frame(HeartbeatFrame{});
  const std::string alien = reseal(bytes, 0, 'X');
  try {
    (void)decode_frame(alien);
    FAIL() << "bad magic accepted";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string_view(e.what()).find("magic"), std::string_view::npos);
  }
}

TEST(Transport, UnknownFrameKindIsRefused) {
  const std::string bytes = encode_frame(HeartbeatFrame{});
  const std::string unknown = reseal(bytes, kFrameMagic.size() + 4, 77);  // kind byte
  EXPECT_THROW((void)decode_frame(unknown), TransportError);
}

TEST(Transport, OversizedMassDimensionInsidePacketIsRefused) {
  DataFrame frame;
  frame.packet.a = Mass::scalar(1.0, 1.0);
  std::string bytes = encode_frame(frame);
  // The packet body starts after magic+version+kind+from+to+seq; its first
  // byte is mass a's dimension. Blow it past kMaxDim and re-seal: the frame
  // is "intact" per checksum but semantically malformed.
  const std::size_t dim_index = kFrameMagic.size() + 4 + 1 + 4 + 4 + 8;
  const std::string malformed =
      reseal(bytes, dim_index, static_cast<char>(core::kMaxDim + 1));
  EXPECT_THROW((void)decode_frame(malformed), TransportError);
}

}  // namespace
}  // namespace pcf::net
