#include "net/tree_schedule.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pcf::net {
namespace {

// The load-bearing schedule invariants: every tree edge is a topology edge,
// the depth map strictly decreases toward the root, and the parent is the
// (depth, id)-minimal neighbor of strictly smaller depth — the same rule the
// correction reducer re-applies over its live neighbors.
void expect_valid_schedule(const Topology& t, const TreeSchedule& s) {
  ASSERT_EQ(s.parent.size(), t.size());
  ASSERT_EQ(s.depth.size(), t.size());
  EXPECT_NE(s.kind, TreeKind::kAuto) << "kind must be resolved";
  EXPECT_EQ(s.parent[s.root], s.root);
  for (NodeId i = 0; i < t.size(); ++i) {
    if (i == s.root) continue;
    const NodeId p = s.parent[i];
    EXPECT_TRUE(t.has_edge(i, p)) << "tree edge " << i << "-" << p << " not in topology";
    EXPECT_LT(s.depth[p], s.depth[i]) << "depth must strictly decrease toward root";
    // Parent must be the (depth, id)-minimal upward neighbor.
    for (const NodeId j : t.neighbors(i)) {
      if (s.depth[j] < s.depth[p]) {
        ADD_FAILURE() << "node " << i << " has a shallower neighbor " << j;
      } else if (s.depth[j] == s.depth[p] && j < p) {
        ADD_FAILURE() << "node " << i << " has a lower-id neighbor " << j << " at parent depth";
      }
    }
  }
}

TEST(TreeSchedule, AutoPicksStarOnStarTopology) {
  const auto t = Topology::star(9);
  const auto s = build_tree_schedule(t);
  EXPECT_EQ(s.kind, TreeKind::kStar);
  expect_valid_schedule(t, s);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_EQ(s.depth[i], i == s.root ? 0u : 1u);
  }
}

TEST(TreeSchedule, AutoPicksStarOnCompleteGraph) {
  // Complete graphs have a hub (every node); the smallest id wins.
  const auto t = Topology::complete(6);
  const auto s = build_tree_schedule(t);
  EXPECT_EQ(s.kind, TreeKind::kStar);
  EXPECT_EQ(s.root, 0u);
  expect_valid_schedule(t, s);
}

TEST(TreeSchedule, AutoPicksChainOnBus) {
  const auto t = Topology::bus(12);
  const auto s = build_tree_schedule(t);
  EXPECT_EQ(s.kind, TreeKind::kChain);
  expect_valid_schedule(t, s);
  for (NodeId i = 1; i < t.size(); ++i) EXPECT_EQ(s.parent[i], i - 1);
}

TEST(TreeSchedule, AutoPicksChainOnRing) {
  // A ring contains the id-order path 0-1-...-(n-1); the wrap edge is a chord.
  const auto t = Topology::ring(8);
  const auto s = build_tree_schedule(t);
  EXPECT_EQ(s.kind, TreeKind::kChain);
  expect_valid_schedule(t, s);
}

TEST(TreeSchedule, AutoPicksBinaryOnHeapTree) {
  const auto t = Topology::binary_tree(15);
  const auto s = build_tree_schedule(t);
  EXPECT_EQ(s.kind, TreeKind::kBinary);
  expect_valid_schedule(t, s);
  for (NodeId i = 1; i < t.size(); ++i) EXPECT_EQ(s.parent[i], (i - 1) / 2);
}

TEST(TreeSchedule, AutoFallsBackToBfsOnTorus) {
  const auto t = Topology::grid2d(5, 5, /*wrap=*/true);
  const auto s = build_tree_schedule(t);
  EXPECT_EQ(s.kind, TreeKind::kBfs);
  expect_valid_schedule(t, s);
}

TEST(TreeSchedule, BfsDepthIsGraphDistanceFromRoot) {
  const auto t = Topology::hypercube(4);
  const auto s = build_tree_schedule(t, TreeKind::kBfs);
  expect_valid_schedule(t, s);
  // On a hypercube, BFS depth from node 0 is the popcount of the id.
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_EQ(s.depth[i], static_cast<std::uint32_t>(__builtin_popcountll(i)));
  }
}

TEST(TreeSchedule, ExplicitShapeUnsupportedByTopologyIsRejected) {
  const auto ring = Topology::ring(6);
  EXPECT_THROW(build_tree_schedule(ring, TreeKind::kStar), ContractViolation);
  EXPECT_THROW(build_tree_schedule(ring, TreeKind::kBinary), ContractViolation);
  const auto cube = Topology::hypercube(3);
  EXPECT_THROW(build_tree_schedule(cube, TreeKind::kChain), ContractViolation);
}

TEST(TreeSchedule, BfsWorksOnEveryGeneratedTopology) {
  Rng rng(99);
  const Topology topologies[] = {
      Topology::bus(7),    Topology::ring(9),          Topology::grid2d(3, 5),
      Topology::star(6),   Topology::hypercube(3),     Topology::binary_tree(10),
      Topology::complete(5), Topology::random_regular(16, 4, rng),
  };
  for (const auto& t : topologies) {
    const auto s = build_tree_schedule(t, TreeKind::kBfs);
    expect_valid_schedule(t, s);
  }
}

TEST(TreeSchedule, ParseRoundTrips) {
  for (const auto kind : {TreeKind::kAuto, TreeKind::kChain, TreeKind::kBinary, TreeKind::kStar,
                          TreeKind::kBfs}) {
    EXPECT_EQ(parse_tree_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_tree_kind("dag"), ContractViolation);
}

}  // namespace
}  // namespace pcf::net
