// distributed_qr — factorize a matrix that no single node ever holds.
//
// 64 nodes on a 6D hypercube each own one row of V ∈ R^{64×8}. dmGS runs
// modified Gram-Schmidt where every column norm and dot product is a gossip
// reduction (push-cancel-flow), so the factorization tolerates the permanent
// link failure injected into every reduction. The result is compared against
// a sequential Householder QR computed with the gathered matrix.
//
//   $ distributed_qr [--dims D] [--cols M] [--seed S] [--fail-link]
#include <cstdio>

#include "linalg/dmgs.hpp"
#include "linalg/qr.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace pcf;

  CliFlags flags;
  flags.define("dims", std::int64_t{6}, "hypercube dimension (2^dims nodes)");
  flags.define("cols", std::int64_t{8}, "matrix columns");
  flags.define("seed", std::int64_t{11}, "seed for matrix and schedules");
  flags.define("fail-link", true, "inject a permanent link failure into every reduction");
  if (!flags.parse(argc, argv)) return 0;

  const auto topology = net::Topology::hypercube(static_cast<std::size_t>(flags.get_int("dims")));
  const auto cols = static_cast<std::size_t>(flags.get_int("cols"));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto v = linalg::Matrix::random_uniform(topology.size(), cols, rng);

  std::printf("factorizing V in R^{%zux%zu}, one row per node on %s\n", v.rows(), v.cols(),
              topology.name().c_str());

  linalg::DmgsOptions options;
  options.algorithm = core::Algorithm::kPushCancelFlow;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.reduction_accuracy = 1e-14;
  options.max_rounds_per_reduction = 3000;
  if (flags.get_bool("fail-link")) {
    // A link dies 150 rounds into EVERY reduction. By then PCF's flows carry
    // the aggregate's value ratio, so the exclusion perturbs nothing — the
    // failure is free (Fig. 7's claim; an EARLY failure would instead leave a
    // small bounded bias in each reduction, visible as orthogonality loss).
    options.faults.link_failures.push_back({150.0, 0, 1});
    std::printf("fault model: link 0-1 fails permanently inside every reduction\n");
  }

  const auto result = linalg::dmgs(topology, v, options);

  const auto reference = linalg::householder_qr(v);
  std::printf("\ndistributed reductions run : %zu (%zu rounds total, %zu hit the cap)\n",
              result.reductions, result.total_rounds, result.reductions_hit_cap);
  std::printf("factorization error        : %.3e  (max over every node's R)\n",
              result.factorization_error(v));
  std::printf("orthogonality  error       : %.3e\n", result.orthogonality_error());
  std::printf("R disagreement across nodes: %.3e\n", result.r_disagreement());
  std::printf("reference Householder      : fact %.3e, orth %.3e\n",
              linalg::factorization_error(v, reference.q, reference.r),
              linalg::orthogonality_error(reference.q));

  // Spot check: R's diagonal against the reference (sign convention matches).
  std::printf("\nR diagonal (node 0 vs. Householder):\n");
  for (std::size_t j = 0; j < cols; ++j) {
    std::printf("  r[%zu][%zu] = %12.8f   vs   %12.8f\n", j, j, result.r[0](j, j),
                std::abs(reference.r(j, j)));
  }
  return result.factorization_error(v) < 1e-10 ? 0 : 1;
}
