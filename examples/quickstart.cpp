// Quickstart — average a value across a network with one call.
//
// Eight "machines" on a 3D hypercube each hold a local measurement; a single
// pcf::sim::reduce() call runs the fault-tolerant push-cancel-flow gossip
// until every node's estimate of the global average is within 1e-12, even
// though 10% of all messages are lost.
//
//   $ quickstart
#include <cstdio>

#include "net/topology.hpp"
#include "sim/reduce.hpp"

int main() {
  using namespace pcf;

  // 1. The communication topology: who can talk to whom.
  const auto topology = net::Topology::hypercube(3);

  // 2. One local value per node (imagine a sensor reading).
  const std::vector<double> readings{21.4, 22.1, 20.9, 21.7, 22.3, 21.1, 20.8, 21.6};

  // 3. Configure the reduction: average, PCF algorithm, lossy network.
  sim::ReduceOptions options;
  options.algorithm = core::Algorithm::kPushCancelFlow;
  options.aggregate = core::Aggregate::kAverage;
  options.target_accuracy = 1e-12;
  options.faults.message_loss_prob = 0.10;  // every 10th message vanishes
  options.seed = 2024;

  // 4. Run it.
  const auto result = reduce(topology, readings, options);

  std::printf("true average    : %.12f\n", result.target[0]);
  std::printf("rounds needed   : %zu (with 10%% message loss)\n", result.rounds);
  std::printf("messages dropped: %zu of %zu\n", result.stats.messages_dropped,
              result.stats.messages_sent);
  std::printf("max local error : %.3e\n\n", result.max_error);
  for (std::size_t node = 0; node < topology.size(); ++node) {
    std::printf("node %zu estimates the average as %.12f\n", node, result.estimate(node));
  }
  return result.reached_target ? 0 : 1;
}
