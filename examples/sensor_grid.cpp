// sensor_grid — live monitoring of a failing sensor field.
//
// A 12×12 grid of temperature sensors (torus-wrapped, nearest-neighbor radio
// links) continuously gossips the field average with push-cancel-flow. The
// network is hostile: 15% of packets are lost, every 500th packet suffers a
// random bit flip, two radio links burn out mid-run, and one sensor dies
// completely. The example prints the evolving worst-case estimate error and
// shows the computation riding through every fault.
//
//   $ sensor_grid [--rows N] [--cols N] [--seed S]
#include <cstdio>

#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace pcf;

  CliFlags flags;
  flags.define("rows", std::int64_t{12}, "sensor grid rows");
  flags.define("cols", std::int64_t{12}, "sensor grid columns");
  flags.define("seed", std::int64_t{7}, "simulation seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto rows = static_cast<std::size_t>(flags.get_int("rows"));
  const auto cols = static_cast<std::size_t>(flags.get_int("cols"));
  const auto topology = net::Topology::grid2d(rows, cols, /*wrap=*/true);

  // Temperature field: a warm spot around the grid center plus noise.
  Rng field_rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<double> temperatures(topology.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double dr = (static_cast<double>(r) - static_cast<double>(rows) / 2) /
                        static_cast<double>(rows);
      const double dc = (static_cast<double>(c) - static_cast<double>(cols) / 2) /
                        static_cast<double>(cols);
      temperatures[r * cols + c] = 18.0 + 6.0 * (1.0 - dr * dr - dc * dc) +
                                   field_rng.uniform(-0.3, 0.3);
    }
  }

  sim::SyncEngineConfig config;
  config.algorithm = core::Algorithm::kPushCancelFlow;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.faults.message_loss_prob = 0.15;
  config.faults.bit_flip_prob = 0.002;
  // Two radio links burn out, then a sensor dies.
  config.faults.link_failures.push_back({120.0, 0, 1});
  config.faults.link_failures.push_back(
      {240.0, static_cast<net::NodeId>(cols), static_cast<net::NodeId>(cols + 1)});
  config.faults.node_crashes.push_back({400.0, static_cast<net::NodeId>(topology.size() / 2)});

  const auto masses = sim::masses_from_values(temperatures, core::Aggregate::kAverage);
  sim::SyncEngine engine(topology, masses, config);

  std::printf("%zu sensors on a wrapped %zux%zu grid; field average %.4f degC\n",
              topology.size(), rows, cols, engine.oracle().target());
  std::printf("faults: 15%% packet loss, 0.2%% bit flips, link failures @120/@240, "
              "sensor crash @400\n\n");
  std::printf("%8s  %14s  %14s  %12s\n", "round", "max error", "median error", "target");

  for (int checkpoint = 1; checkpoint <= 12; ++checkpoint) {
    engine.run(60);
    std::printf("%8zu  %14.3e  %14.3e  %12.6f%s\n", engine.round(), engine.max_error(),
                engine.median_error(), engine.oracle().target(),
                engine.round() == 420 ? "   <- target re-based after sensor crash" : "");
  }

  std::printf("\nsurviving sensors read %.6f degC (%zu messages, %zu lost, %zu corrupted)\n",
              engine.estimates()[0], engine.stats().messages_sent,
              engine.stats().messages_dropped, engine.stats().messages_flipped);
  std::printf("note: bit flips keep arriving, so the error floor tracks the corruption rate —\n"
              "      every flip is healed within a few exchanges, none is fatal.\n");
  // Success = the field estimate is within 0.1 degC despite everything.
  return engine.median_error() < 5e-3 ? 0 : 1;
}
