// spectral_partition — distributed community detection, no coordinator.
//
// Two communities of sensors connected by a few weak links. Every node runs
// gossip-based orthogonal iteration on the (shifted) graph Laplacian — all
// communication is nearest-neighbor push-cancel-flow reductions — until it
// knows its own component of the Fiedler vector. Each node then classifies
// ITSELF by the sign of that component: a fully distributed spectral
// bisection. A sequential Jacobi eigensolver checks the answer.
//
//   $ spectral_partition [--community N] [--bridges B] [--seed S]
#include <cstdio>

#include "linalg/distributed_eigen.hpp"
#include "linalg/eigen_ref.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace pcf;

  CliFlags flags;
  flags.define("community", std::int64_t{10}, "nodes per community");
  flags.define("bridges", std::int64_t{2}, "links between the communities");
  flags.define("seed", std::int64_t{17}, "seed for intra-community wiring");
  if (!flags.parse(argc, argv)) return 0;

  const auto community = static_cast<std::size_t>(flags.get_int("community"));
  const auto bridges = static_cast<std::size_t>(flags.get_int("bridges"));
  const auto n = 2 * community;

  // Build two dense-ish random communities plus a few bridges.
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;
  auto wire_community = [&](net::NodeId base) {
    for (net::NodeId a = 0; a < community; ++a) {
      // ring backbone for connectivity…
      edges.push_back({static_cast<net::NodeId>(base + a),
                       static_cast<net::NodeId>(base + (a + 1) % community)});
      // …plus random chords
      for (net::NodeId b = a + 2; b < community; ++b) {
        if (rng.chance(0.4)) {
          edges.push_back(
              {static_cast<net::NodeId>(base + a), static_cast<net::NodeId>(base + b)});
        }
      }
    }
  };
  wire_community(0);
  wire_community(static_cast<net::NodeId>(community));
  for (std::size_t b = 0; b < bridges; ++b) {
    edges.push_back({static_cast<net::NodeId>(rng.below(community)),
                     static_cast<net::NodeId>(community + rng.below(community))});
  }
  const auto topology = net::Topology::from_edges(n, edges, "two-communities");
  std::printf("%zu nodes, %zu links, %zu bridge(s) between the communities\n", topology.size(),
              topology.edge_count(), bridges);

  const auto m = linalg::NetworkMatrix::shifted_laplacian(topology);
  linalg::DistributedEigenOptions options;
  options.algorithm = core::Algorithm::kPushCancelFlow;
  options.num_pairs = 2;  // constant vector + Fiedler vector
  options.iterations = 250;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto result = linalg::distributed_eigen(m, options);

  std::printf("ran %zu gossip reductions (%zu rounds total)\n", result.reductions,
              result.total_reduction_rounds);

  // Every node classifies itself by the sign of ITS Fiedler component.
  std::printf("\nnode  fiedler     self-assigned  true community\n");
  std::size_t correct = 0;
  // Fix the orientation so community A is "+" (sign is arbitrary).
  const double orientation = result.eigenvectors(0, 1) >= 0 ? 1.0 : -1.0;
  for (net::NodeId i = 0; i < n; ++i) {
    const double f = orientation * result.eigenvectors(i, 1);
    const char assigned = f >= 0 ? 'A' : 'B';
    const char truth = i < community ? 'A' : 'B';
    if (assigned == truth) ++correct;
    std::printf("%4u  %+9.5f        %c              %c%s\n", i, f, assigned, truth,
                assigned == truth ? "" : "   <-- misclassified");
  }
  std::printf("\n%zu/%zu nodes classified themselves correctly\n", correct, n);

  // Sequential cross-check: Fiedler value from the full Laplacian.
  const auto ref = linalg::jacobi_eigen(linalg::laplacian_matrix(topology));
  const double fiedler_value = ref.values[ref.values.size() - 2];
  std::printf("algebraic connectivity (Fiedler value): %.6f (smaller = weaker coupling)\n",
              fiedler_value);
  return correct == n ? 0 : 1;
}
