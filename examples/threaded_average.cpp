// threaded_average — the same algorithms on real threads, no simulator.
//
// The reducers from src/core run unmodified inside the threaded runtime:
// nodes sharded over OS threads, packets through mailboxes, genuine
// nondeterministic interleaving. The example averages values across 32 nodes,
// kills a link mid-run, and verifies both convergence and exact mass
// conservation at quiescence.
//
//   $ threaded_average [--threads T] [--dims D]
#include <cstdio>

#include "runtime/threaded_runtime.hpp"
#include "sim/metrics.hpp"
#include "sim/reduce.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace pcf;

  CliFlags flags;
  flags.define("threads", std::int64_t{4}, "worker threads");
  flags.define("dims", std::int64_t{5}, "hypercube dimension (2^dims nodes)");
  flags.define("seed", std::int64_t{3}, "seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto topology = net::Topology::hypercube(static_cast<std::size_t>(flags.get_int("dims")));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<double> values(topology.size());
  for (auto& v : values) v = rng.uniform(0.0, 100.0);
  const auto masses = sim::masses_from_values(values, core::Aggregate::kAverage);
  const sim::Oracle oracle(masses);

  runtime::RuntimeConfig config;
  config.algorithm = core::Algorithm::kPushCancelFlow;
  config.num_threads = static_cast<std::size_t>(flags.get_int("threads"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  runtime::ThreadedRuntime rt(topology, masses, config);

  std::printf("averaging over %zu nodes on %zu threads; true average %.6f\n\n", topology.size(),
              config.num_threads, oracle.target());

  auto report = [&](const char* phase) {
    double worst = 0.0;
    for (double e : rt.estimates()) worst = std::max(worst, oracle.error_of(e));
    const auto total = rt.total_mass();
    std::printf("%-28s max error %.3e | total mass (%.6f, w=%.1f) | %zu msgs\n", phase, worst,
                total.s[0], total.w, rt.messages_delivered());
  };

  rt.run(150);
  report("after 150 steps/node:");
  rt.fail_link(0, 1);
  std::printf("  -> link 0-1 failed permanently\n");
  rt.run(150);
  report("after 150 more steps:");
  rt.run(300);
  report("after 300 more steps:");

  double worst = 0.0;
  for (double e : rt.estimates()) worst = std::max(worst, oracle.error_of(e));
  return worst < 1e-10 ? 0 : 1;
}
