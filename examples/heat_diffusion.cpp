// heat_diffusion — solve a steady-state field equation across the network
// itself, with every node computing only its own unknown.
//
// A torus grid of nodes models a plate with a few heat sources. The
// steady-state temperature with leakage solves (L + c·I)·x = b, where L is
// the grid's own Laplacian: node i iterates its Jacobi update from its
// NEIGHBORS' values only, and the global "are we done?" test — the residual
// norm — is a push-cancel-flow gossip reduction. The run rides through 20%
// message loss in every residual check, and a sequential elimination solve
// verifies the field.
//
//   $ heat_diffusion [--rows R] [--cols C] [--leak C]
#include <cstdio>

#include "linalg/distributed_solver.hpp"
#include "linalg/eigen_ref.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace pcf;

  CliFlags flags;
  flags.define("rows", std::int64_t{8}, "grid rows");
  flags.define("cols", std::int64_t{8}, "grid columns");
  flags.define("leak", 0.4, "leakage coefficient c (diagonal regularization)");
  flags.define("seed", std::int64_t{2}, "seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto rows = static_cast<std::size_t>(flags.get_int("rows"));
  const auto cols = static_cast<std::size_t>(flags.get_int("cols"));
  const double leak = flags.get_double("leak");
  const auto topology = net::Topology::grid2d(rows, cols, /*wrap=*/true);

  // System matrix (L + c·I) — strictly diagonally dominant for c > 0.
  auto dense = linalg::laplacian_matrix(topology);
  for (std::size_t i = 0; i < topology.size(); ++i) dense(i, i) += leak;
  const linalg::NetworkMatrix m(topology, dense);

  // Heat sources: two hot spots, one cold sink.
  std::vector<double> b(topology.size(), 0.0);
  b[1 * cols + 1] = 12.0;
  b[(rows - 2) * cols + (cols - 2)] = 8.0;
  b[(rows / 2) * cols + (cols / 2)] = -6.0;

  linalg::DistributedSolveOptions options;
  options.algorithm = core::Algorithm::kPushCancelFlow;
  options.tolerance = 1e-9;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.faults.message_loss_prob = 0.2;  // every residual check is lossy
  const auto result = linalg::distributed_jacobi_solve(m, b, options);

  std::printf("solved (L + %.2f I) x = b on a %zux%zu torus grid\n", leak, rows, cols);
  std::printf("jacobi iterations: %zu   residual checks: %zu (gossip, %zu rounds total)\n",
              result.iterations, result.residual_checks, result.total_reduction_rounds);
  std::printf("converged: %s   residual norm: %.3e\n\n", result.converged ? "yes" : "NO",
              result.residual_norm);

  // Render the field as ASCII art (each node prints only its own value in a
  // real deployment; the simulator gathers them for display).
  double lo = result.x[0], hi = result.x[0];
  for (double v : result.x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const char* shades = " .:-=+*#%@";
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = result.x[r * cols + c];
      const auto idx = static_cast<std::size_t>((v - lo) / (hi - lo + 1e-300) * 9.0);
      std::printf("%c%c", shades[idx], shades[idx]);
    }
    std::printf("\n");
  }

  // Sequential verification.
  auto dense_b = b;
  // (tiny Gaussian elimination, good enough for a demo check)
  {
    auto a = dense;
    const std::size_t n = topology.size();
    std::vector<double> xb(dense_b.begin(), dense_b.end());
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      for (std::size_t rr = col + 1; rr < n; ++rr) {
        if (std::fabs(a(rr, col)) > std::fabs(a(pivot, col))) pivot = rr;
      }
      for (std::size_t cc = 0; cc < n; ++cc) std::swap(a(col, cc), a(pivot, cc));
      std::swap(xb[col], xb[pivot]);
      for (std::size_t rr = col + 1; rr < n; ++rr) {
        const double f = a(rr, col) / a(col, col);
        for (std::size_t cc = col; cc < n; ++cc) a(rr, cc) -= f * a(col, cc);
        xb[rr] -= f * xb[col];
      }
    }
    std::vector<double> ref(n);
    for (std::size_t rr = n; rr-- > 0;) {
      double acc = xb[rr];
      for (std::size_t cc = rr + 1; cc < n; ++cc) acc -= a(rr, cc) * ref[cc];
      ref[rr] = acc / a(rr, rr);
    }
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, std::fabs(ref[i] - result.x[i]));
    std::printf("\nmax deviation from the sequential solve: %.3e\n", worst);
    return (result.converged && worst < 1e-7) ? 0 : 1;
  }
}
