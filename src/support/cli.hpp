// Minimal command-line flag parser shared by the bench harnesses and example
// programs. Supports `--name=value`, `--name value`, and boolean `--name`.
// Unknown flags are an error so that typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pcf {

class CliFlags {
 public:
  /// Registers a flag with a default value and a help string. Must be called
  /// before parse(). `kind` is inferred from the overload used.
  void define(const std::string& name, std::int64_t default_value, const std::string& help);
  void define(const std::string& name, double default_value, const std::string& help);
  void define(const std::string& name, const std::string& default_value, const std::string& help);
  void define(const std::string& name, bool default_value, const std::string& help);

  /// Parses argv. On `--help`, prints usage and returns false (caller should
  /// exit 0). Throws ContractViolation on unknown flags or malformed values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments collected during parse().
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  void print_help(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual representation
  };

  const Flag& lookup(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pcf
