#include "support/table.hpp"

#include <algorithm>
#include <cstdint>

#include "support/check.hpp"

namespace pcf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PCF_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PCF_CHECK_MSG(cells.size() <= headers_.size(), "row has more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, v);
  return buf;
}

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

namespace {
void csv_cell(std::FILE* out, const std::string& cell) {
  const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!quote) {
    std::fputs(cell.c_str(), out);
    return;
  }
  std::fputc('"', out);
  for (char ch : cell) {
    if (ch == '"') std::fputc('"', out);
    std::fputc(ch, out);
  }
  std::fputc('"', out);
}
}  // namespace

void Table::print_csv(std::FILE* out) const {
  auto row_out = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) std::fputc(',', out);
      csv_cell(out, row[c]);
    }
    std::fputc('\n', out);
  };
  row_out(headers_);
  for (const auto& row : rows_) row_out(row);
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not open %s for writing\n", path.c_str());
    return false;
  }
  print_csv(f);
  std::fclose(f);
  return true;
}

}  // namespace pcf
