// Lightweight precondition / invariant checking.
//
// PCF_CHECK   — always-on validation of user-facing configuration and API
//               contracts; throws pcf::ContractViolation with a formatted
//               message so callers (tests, examples) can observe the failure.
// PCF_ASSERT  — internal invariants; compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pcf {

/// Thrown when a PCF_CHECK contract is violated (bad configuration,
/// out-of-range argument, protocol misuse).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_contract(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace pcf

#define PCF_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::pcf::detail::raise_contract(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define PCF_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream pcf_check_os_;                                     \
      pcf_check_os_ << msg;                                                 \
      ::pcf::detail::raise_contract(#expr, __FILE__, __LINE__, pcf_check_os_.str()); \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define PCF_ASSERT(expr) ((void)0)
#else
#define PCF_ASSERT(expr) PCF_CHECK(expr)
#endif
