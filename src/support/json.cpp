#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace pcf {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(2 * scopes_.size(), ' ');
}

void JsonWriter::begin_value() {
  if (scopes_.empty()) {
    PCF_CHECK_MSG(out_.empty(), "JsonWriter: only one top-level value allowed");
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    PCF_CHECK_MSG(pending_key_, "JsonWriter: value inside an object requires key()");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  indent();
}

void JsonWriter::key(std::string_view name) {
  PCF_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                "JsonWriter: key() outside an object");
  PCF_CHECK_MSG(!pending_key_, "JsonWriter: key() after key()");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  indent();
  out_ += '"';
  out_ += escape(name);
  out_ += "\": ";
  pending_key_ = true;
}

void JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  PCF_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject && !pending_key_,
                "JsonWriter: end_object() without matching begin_object()");
  const bool had_items = has_items_.back();
  scopes_.pop_back();
  has_items_.pop_back();
  if (had_items) indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  PCF_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kArray,
                "JsonWriter: end_array() without matching begin_array()");
  const bool had_items = has_items_.back();
  scopes_.pop_back();
  has_items_.pop_back();
  if (had_items) indent();
  out_ += ']';
}

void JsonWriter::value(std::string_view s) {
  begin_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  begin_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  // %.17g never emits a locale decimal comma here because the bench tools run
  // in the "C" locale (we never call setlocale).
}

void JsonWriter::value(std::int64_t v) {
  begin_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  begin_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  begin_value();
  out_ += "null";
}

const std::string& JsonWriter::str() const {
  PCF_CHECK_MSG(scopes_.empty(), "JsonWriter: unterminated scopes");
  return out_;
}

}  // namespace pcf
