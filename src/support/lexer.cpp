#include "support/lexer.hpp"

#include <array>
#include <cctype>
#include <string>

namespace pcf::lex {
namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators, longest first so greedy matching works
/// (single characters fall through to the one-char default).
constexpr std::array<std::string_view, 26> kPuncts = {
    "<<=", ">>=", "...", "->*", "<=>",                                       // 3 chars
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",  // 2 chars
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
};

/// Cursor over the source that tracks line/column and treats a
/// backslash-newline as invisible glue (C++ phase-2 splicing) so tokens and
/// positions stay correct in macro-heavy code.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t col() const noexcept { return col_; }

  /// Current character, skipping any backslash-newline splices at the cursor.
  [[nodiscard]] char peek() noexcept {
    splice();
    return done() ? '\0' : src_[pos_];
  }

  [[nodiscard]] char peek2() noexcept {
    splice();
    return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
  }

  void advance() noexcept {
    splice();
    if (done()) return;
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

 private:
  void splice() noexcept {
    while (pos_ + 1 < src_.size() && src_[pos_] == '\\' &&
           (src_[pos_ + 1] == '\n' ||
            (src_[pos_ + 1] == '\r' && pos_ + 2 < src_.size() && src_[pos_ + 2] == '\n'))) {
      pos_ += src_[pos_ + 1] == '\r' ? 3 : 2;
      ++line_;
      col_ = 1;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src), cur_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_whitespace();
      if (cur_.done()) break;
      out.push_back(next_token());
    }
    return out;
  }

 private:
  void skip_whitespace() {
    while (!cur_.done()) {
      const char c = cur_.peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f') {
        cur_.advance();
      } else {
        break;
      }
    }
  }

  [[nodiscard]] Token make(TokenKind kind, std::size_t start, std::size_t line,
                           std::size_t col) const {
    return Token{kind, src_.substr(start, cur_.pos() - start), line, col};
  }

  Token next_token() {
    const std::size_t start = cur_.pos();
    const std::size_t line = cur_.line();
    const std::size_t col = cur_.col();
    const char c = cur_.peek();

    if (c == '/' && cur_.peek2() == '/') return lex_line_comment(start, line, col);
    if (c == '/' && cur_.peek2() == '*') return lex_block_comment(start, line, col);
    if (is_string_prefix(start)) return lex_string(start, line, col);
    if (c == '\'') return lex_char(start, line, col);
    if (is_ident_start(c)) return lex_identifier(start, line, col);
    // pp-number starts with a digit or `.digit`.
    if (is_digit(c) || (c == '.' && is_digit(cur_.peek2()))) return lex_number(start, line, col);
    return lex_punct(start, line, col);
  }

  Token lex_line_comment(std::size_t start, std::size_t line, std::size_t col) {
    while (!cur_.done() && cur_.peek() != '\n') cur_.advance();
    return make(TokenKind::kComment, start, line, col);
  }

  Token lex_block_comment(std::size_t start, std::size_t line, std::size_t col) {
    cur_.advance();  // '/'
    cur_.advance();  // '*'
    while (!cur_.done()) {
      if (cur_.peek() == '*' && cur_.peek2() == '/') {
        cur_.advance();
        cur_.advance();
        break;
      }
      cur_.advance();
    }
    return make(TokenKind::kComment, start, line, col);
  }

  /// True when the cursor sits on a string literal, including encoding
  /// prefixes (u8, u, U, L) and the raw-string R. The prefix must be exactly
  /// the identifier before the quote — `CHECKR"..."` is an identifier, not a
  /// raw string — which is why identifiers are lexed before this is consulted
  /// for non-prefix starts.
  [[nodiscard]] bool is_string_prefix(std::size_t start) const {
    static constexpr std::array<std::string_view, 9> kPrefixes = {
        "\"", "R\"", "u8\"", "u8R\"", "u\"", "uR\"", "U\"", "UR\"", "L\"",
    };
    const std::string_view rest = src_.substr(start);
    for (const auto p : kPrefixes) {
      if (rest.substr(0, p.size()) == p) return true;
    }
    return false;
  }

  Token lex_string(std::size_t start, std::size_t line, std::size_t col) {
    bool raw = false;
    while (cur_.peek() != '"') {  // consume the prefix
      if (cur_.peek() == 'R') raw = true;
      cur_.advance();
    }
    cur_.advance();  // opening quote
    if (raw) {
      // R"delim( ... )delim" — find the delimiter, then scan for `)delim"`.
      std::string delim;
      while (!cur_.done() && cur_.peek() != '(') {
        delim.push_back(cur_.peek());
        cur_.advance();
      }
      cur_.advance();  // '('
      const std::string closer = ")" + delim + "\"";
      while (!cur_.done()) {
        if (cur_.peek() == ')' && src_.substr(cur_.pos(), closer.size()) == closer) {
          for (std::size_t i = 0; i < closer.size(); ++i) cur_.advance();
          break;
        }
        cur_.advance();
      }
    } else {
      while (!cur_.done() && cur_.peek() != '"' && cur_.peek() != '\n') {
        if (cur_.peek() == '\\') cur_.advance();
        cur_.advance();
      }
      if (!cur_.done() && cur_.peek() == '"') cur_.advance();
    }
    return make(TokenKind::kString, start, line, col);
  }

  Token lex_char(std::size_t start, std::size_t line, std::size_t col) {
    cur_.advance();  // opening quote
    while (!cur_.done() && cur_.peek() != '\'' && cur_.peek() != '\n') {
      if (cur_.peek() == '\\') cur_.advance();
      cur_.advance();
    }
    if (!cur_.done() && cur_.peek() == '\'') cur_.advance();
    return make(TokenKind::kChar, start, line, col);
  }

  Token lex_identifier(std::size_t start, std::size_t line, std::size_t col) {
    while (!cur_.done() && is_ident_char(cur_.peek())) cur_.advance();
    // Encoding prefix directly attached to a quote: re-lex as a string so
    // `u8"x"` and `L'\0'`-style literals stay single tokens.
    if (!cur_.done() && (cur_.peek() == '"' || cur_.peek() == '\'')) {
      const std::string_view id = src_.substr(start, cur_.pos() - start);
      if (id == "R" || id == "u8" || id == "u8R" || id == "u" || id == "uR" || id == "U" ||
          id == "UR" || id == "L") {
        return cur_.peek() == '"' ? lex_string(start, line, col) : lex_char(start, line, col);
      }
    }
    return make(TokenKind::kIdentifier, start, line, col);
  }

  Token lex_number(std::size_t start, std::size_t line, std::size_t col) {
    // pp-number: digits, identifier chars, `'` separators, `.`, and sign
    // characters when they follow an exponent letter (1e+9, 0x1p-3).
    cur_.advance();
    while (!cur_.done()) {
      const char c = cur_.peek();
      if (is_ident_char(c) || c == '.' || c == '\'') {
        cur_.advance();
      } else if ((c == '+' || c == '-') && cur_.pos() > start) {
        const char prev = src_[cur_.pos() - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          cur_.advance();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    return make(TokenKind::kNumber, start, line, col);
  }

  Token lex_punct(std::size_t start, std::size_t line, std::size_t col) {
    const std::string_view rest = src_.substr(start);
    for (const auto p : kPuncts) {
      if (p.size() > 1 && rest.substr(0, p.size()) == p) {
        for (std::size_t i = 0; i < p.size(); ++i) cur_.advance();
        return make(TokenKind::kPunct, start, line, col);
      }
    }
    cur_.advance();
    return make(TokenKind::kPunct, start, line, col);
  }

  std::string_view src_;
  Cursor cur_;
};

}  // namespace

std::string_view to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kChar: return "char";
    case TokenKind::kPunct: return "punct";
    case TokenKind::kComment: return "comment";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace pcf::lex
