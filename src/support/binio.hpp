// Deterministic binary serialization primitives for the checkpoint layer.
//
// Checkpoints must be byte-identical across platforms and compilers (CI
// compares them and tests pin a golden format hash), so every integer is
// written little-endian byte by byte and every double travels as its IEEE-754
// bit pattern — never through locale- or precision-dependent text formatting.
// The reader is defensive: checkpoints come from disk and may be truncated or
// corrupted, so every read is bounds-checked and throws BinioError instead of
// reading past the end (the checkpoint layer converts that into a rejected
// restore, see sim/checkpoint.hpp).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pcf {

/// Malformed or truncated binary input. Never indicates a programming error —
/// callers feed untrusted bytes and handle this as a rejected input.
class BinioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width little-endian fields to a growing byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void raw(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// Length-prefixed byte string.
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
};

/// Cursor over a byte buffer; every read throws BinioError on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw BinioError("binio: boolean byte out of range");
    return v != 0;
  }

  [[nodiscard]] std::string_view raw(std::size_t size) {
    need(size);
    const std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  /// Length-prefixed byte string (see BinaryWriter::str).
  [[nodiscard]] std::string_view str() {
    const std::uint64_t size = u64();
    if (size > remaining()) throw BinioError("binio: string length exceeds input");
    return raw(static_cast<std::size_t>(size));
  }

  /// Bounds-checked element count for a sequence whose elements occupy at
  /// least `min_element_bytes` each — rejects counts a truncated or corrupted
  /// length prefix could not possibly satisfy before any allocation happens.
  [[nodiscard]] std::size_t count(std::size_t min_element_bytes) {
    const std::uint64_t n = u64();
    if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
      throw BinioError("binio: sequence count exceeds input");
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  /// Throws unless the input was consumed exactly — trailing bytes mean the
  /// buffer is not what the writer produced.
  void expect_end() const {
    if (pos_ != data_.size()) throw BinioError("binio: trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (n > remaining()) throw BinioError("binio: truncated input");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace pcf
