#include "support/rng.hpp"

#include <cmath>

namespace pcf {

double Rng::normal() noexcept {
  // Marsaglia polar method; loop terminates with probability 1.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double lambda) noexcept {
  PCF_ASSERT(lambda > 0.0);
  double u = uniform();
  // uniform() can return exactly 0; log(0) would be -inf.
  while (u == 0.0) u = uniform();
  return -std::log(u) / lambda;
}

}  // namespace pcf
