// Fixed-capacity inline vector used for reduction payloads.
//
// Gossip messages and per-edge flow state carry small value vectors (dimension
// 1 for scalar reductions, up to 16 for the batched dot products in the
// distributed QR). Keeping the storage inline avoids per-message heap traffic
// in the simulation engines, which exchange millions of messages per run.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>

#include "support/check.hpp"

namespace pcf {

template <typename T, std::size_t Capacity>
class InlineVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr InlineVector() noexcept = default;

  /// Size-constructed with value-initialized elements.
  explicit constexpr InlineVector(std::size_t n, const T& fill = T{}) { resize(n, fill); }

  constexpr InlineVector(std::initializer_list<T> init) {
    PCF_CHECK_MSG(init.size() <= Capacity, "InlineVector initializer too large");
    for (const T& v : init) push_back(v);
  }

  explicit constexpr InlineVector(std::span<const T> values) {
    PCF_CHECK_MSG(values.size() <= Capacity, "InlineVector span too large");
    for (const T& v : values) push_back(v);
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return Capacity; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr void clear() noexcept { size_ = 0; }

  constexpr void resize(std::size_t n, const T& fill = T{}) {
    PCF_CHECK_MSG(n <= Capacity, "InlineVector resize beyond capacity");
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  constexpr void push_back(const T& v) {
    PCF_CHECK_MSG(size_ < Capacity, "InlineVector overflow");
    data_[size_++] = v;
  }

  constexpr T& operator[](std::size_t i) noexcept {
    PCF_ASSERT(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const noexcept {
    PCF_ASSERT(i < size_);
    return data_[i];
  }

  [[nodiscard]] constexpr iterator begin() noexcept { return data_.data(); }
  [[nodiscard]] constexpr iterator end() noexcept { return data_.data() + size_; }
  [[nodiscard]] constexpr const_iterator begin() const noexcept { return data_.data(); }
  [[nodiscard]] constexpr const_iterator end() const noexcept { return data_.data() + size_; }
  [[nodiscard]] constexpr T* data() noexcept { return data_.data(); }
  [[nodiscard]] constexpr const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] constexpr std::span<const T> as_span() const noexcept {
    return {data_.data(), size_};
  }
  [[nodiscard]] constexpr std::span<T> as_span() noexcept { return {data_.data(), size_}; }

  friend constexpr bool operator==(const InlineVector& a, const InlineVector& b) noexcept {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::array<T, Capacity> data_{};
  std::size_t size_ = 0;
};

}  // namespace pcf
