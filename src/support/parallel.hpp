// Deterministic parallel execution of independent trials.
//
// The sweep and benchmark suites run many independent (scenario, seed) trials
// whose results must be bit-identical whether they run serially or on all
// cores. The recipe:
//  * every trial derives all of its randomness from its own index (the caller
//    seeds per-trial RNGs from the trial index, never from shared state);
//  * each trial writes only its own result slot, so completion order cannot
//    reorder results;
//  * the worker pool hands out indices from an atomic counter — scheduling
//    affects only timing, never values.
// parallel_for_index(n, 1, fn) is exactly the serial loop, which is what the
// determinism tests compare against.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "support/annotations.hpp"

namespace pcf {

/// Number of worker threads to use for `requested` (0 = hardware concurrency),
/// never more than `jobs`.
[[nodiscard]] inline std::size_t resolve_thread_count(std::size_t requested,
                                                      std::size_t jobs) noexcept {
  std::size_t threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > jobs) threads = jobs;
  return threads == 0 ? 1 : threads;
}

/// Runs fn(i) for every i in [0, n) on up to `threads` workers (0 = hardware
/// concurrency). Blocks until all calls finished. `fn` must be safe to call
/// concurrently for distinct indices; the first exception thrown by any call
/// is rethrown here (remaining indices are still drained, their results
/// discarded by the throwing caller).
template <typename Fn>
void parallel_for_index(std::size_t n, std::size_t threads, Fn&& fn) {
  if (n == 0) return;
  threads = resolve_thread_count(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  // error_mutex guards first_error (annotated lock type so the clang
  // thread-safety preset tracks the critical section; GUARDED_BY itself only
  // attaches to members, hence the comment-level contract here).
  std::exception_ptr first_error;
  Mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pcf
