#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pcf {

void RunningStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> values, double q) {
  PCF_CHECK_MSG(!values.empty(), "quantile of empty range");
  PCF_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile order out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double max_value(std::span<const double> values) noexcept {
  double best = -std::numeric_limits<double>::infinity();
  for (double v : values) best = std::max(best, v);
  return best;
}

double kahan_sum(std::span<const double> values) noexcept {
  double sum = 0.0;
  double carry = 0.0;
  for (double v : values) {
    const double y = v - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace pcf
