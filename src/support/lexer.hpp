// Lightweight C++ source tokenizer for project tooling (pcflow-lint).
//
// This is deliberately NOT a compiler front end: it has no preprocessor, no
// symbol table and no types. It splits a translation unit into the token
// stream a human sees — identifiers, literals, punctuation and comments —
// with exact line/column positions, which is all the project's lint rules
// need (they reason about banned names, call shapes and comment-based
// suppressions). Comments are kept as first-class tokens so the lint layer
// can parse `// pcflow-lint: allow(...)` annotations from the same stream.
//
// Handled correctly so rules never fire inside them: line/block comments,
// string and character literals (with escapes), raw string literals
// (R"delim(...)delim"), and backslash-newline continuations.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace pcf::lex {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (the lexer does not distinguish)
  kNumber,      ///< pp-number: integers, floats, hex, digit separators, suffixes
  kString,      ///< "..." including encoding prefixes and raw strings
  kChar,        ///< '...'
  kPunct,       ///< operators/punctuation, longest-match (e.g. `::`, `->`, `==`)
  kComment,     ///< // or /* */, full text including the delimiters
};

[[nodiscard]] std::string_view to_string(TokenKind kind) noexcept;

struct Token {
  TokenKind kind;
  std::string_view text;  ///< view into the source passed to tokenize()
  std::size_t line = 1;   ///< 1-based line of the first character
  std::size_t col = 1;    ///< 1-based column of the first character
};

/// Tokenizes `source` (which must outlive the returned tokens). Unterminated
/// literals/comments are closed at end of input rather than rejected — lint
/// must degrade gracefully on code that does not compile yet.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace pcf::lex
