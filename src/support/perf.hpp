// Performance counters for the engines and the benchmark harness.
//
// Every engine owns one PerfCounters instance and charges wall-clock time
// (std::chrono::steady_clock) to a fixed set of phases plus a handful of
// monotone event counters: events processed, messages and payload doubles on
// the wire, reallocations of the hot event queue. The bench subsystem reads
// the counters after a run to derive rounds/sec and deliveries/sec — the
// numbers every future optimisation PR is judged against (BENCH_pcflow.json).
//
// Design constraints:
//  * hot-path cost is one steady_clock::now() pair per timed phase entry and
//    plain increments for the counters — cheap enough to stay always-on;
//  * fixed phase slots (no map lookups, no allocation) keep the timer
//    branch-free and usable inside the engines' innermost loops;
//  * the counters are plain values, so snapshotting/diffing is trivial.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace pcf {

class PerfCounters {
 public:
  /// Phase slots. The engines charge to disjoint subsets:
  ///  * SyncEngine:      kFaults (fault processing), kGossip (send loop),
  ///                     kDelivery (crossing-mode wire drain);
  ///  * AsyncEngine:     kEvents (event dispatch loop);
  ///  * ThreadedRuntime: kRun (worker phase incl. join), kDrain (quiesce).
  enum class Phase : std::size_t { kFaults, kGossip, kDelivery, kEvents, kRun, kDrain, kCount };
  static constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

  [[nodiscard]] static std::string_view phase_name(Phase p) noexcept {
    switch (p) {
      case Phase::kFaults: return "faults";
      case Phase::kGossip: return "gossip";
      case Phase::kDelivery: return "delivery";
      case Phase::kEvents: return "events";
      case Phase::kRun: return "run";
      case Phase::kDrain: return "drain";
      case Phase::kCount: break;
    }
    return "?";
  }

  /// RAII phase timer; charges the elapsed time on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(PerfCounters& counters, Phase phase) noexcept
        : counters_(counters), phase_(phase), start_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      counters_.add_seconds(phase_, std::chrono::duration<double>(elapsed).count());
    }

   private:
    PerfCounters& counters_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] ScopedTimer time(Phase phase) noexcept { return ScopedTimer(*this, phase); }

  void add_seconds(Phase phase, double seconds) noexcept {
    phase_seconds_[static_cast<std::size_t>(phase)] += seconds;
  }
  [[nodiscard]] double seconds(Phase phase) const noexcept {
    return phase_seconds_[static_cast<std::size_t>(phase)];
  }
  /// Total wall-clock across all phases (phases are disjoint per engine).
  [[nodiscard]] double total_seconds() const noexcept {
    double total = 0.0;
    for (double s : phase_seconds_) total += s;
    return total;
  }

  // ---- monotone event counters (charged by the engines) ----
  std::uint64_t events_processed = 0;    ///< async: events handled
  std::uint64_t rounds = 0;              ///< sync: rounds stepped; runtime: gossip steps
  std::uint64_t messages_sent = 0;       ///< packets put on the wire
  std::uint64_t deliveries = 0;          ///< packets handed to on_receive
  std::uint64_t doubles_on_wire = 0;     ///< payload doubles transmitted
  std::uint64_t queue_reallocations = 0; ///< hot event-queue growth events

  // ---- socket/runtime transport counters (charged by the runtimes) ----
  // These count OBSERVED datagram faults (sequence gaps, duplicate or stale
  // sequence numbers), not injected ones — on the socket runtime UDP loss is
  // a measured quantity. Per-link breakdowns live in the runtime's own
  // LinkStats; these are the process-wide totals.
  std::uint64_t datagrams_sent = 0;       ///< frames written to the socket
  std::uint64_t datagrams_received = 0;   ///< frames decoded off the socket
  std::uint64_t datagrams_lost = 0;       ///< sequence gaps observed (real loss)
  std::uint64_t datagrams_duplicated = 0; ///< repeated sequence numbers dropped
  std::uint64_t datagrams_reordered = 0;  ///< stale sequence numbers dropped
  std::uint64_t frames_rejected = 0;      ///< undecodable datagrams (corrupt/skew)
  std::uint64_t heartbeats_sent = 0;      ///< failure-detector beacons emitted
  std::uint64_t detector_downs = 0;       ///< heartbeat timeouts fired (link-down)
  std::uint64_t detector_ups = 0;         ///< heartbeat resumptions (link-up)

  // ---- bounded-mailbox backpressure (threaded + socket runtimes) ----
  // Two distinct signals: blocked pushes stall a producer thread (socket RX
  // path), rejected pushes fail fast and make the caller drain-and-retry
  // (threaded workers). See Mailbox::Stats.
  std::uint64_t mailbox_blocked_pushes = 0;   ///< blocking push() calls that waited on a full box
  std::uint64_t mailbox_rejected_pushes = 0;  ///< try_push() calls that failed on a full box
  std::uint64_t mailbox_high_watermark = 0;   ///< max queue length (merge: max)
  std::uint64_t mailbox_dropped = 0;          ///< envelopes shed after retry failed

  /// Throughput rates against the total charged wall-clock; 0 when no time
  /// has been charged yet (so a fresh engine reports 0 instead of inf/NaN).
  [[nodiscard]] double rounds_per_sec() const noexcept { return rate(rounds); }
  [[nodiscard]] double deliveries_per_sec() const noexcept { return rate(deliveries); }
  [[nodiscard]] double events_per_sec() const noexcept { return rate(events_processed); }

 private:
  [[nodiscard]] double rate(std::uint64_t count) const noexcept {
    const double t = total_seconds();
    return t > 0.0 ? static_cast<double>(count) / t : 0.0;
  }

  std::array<double, kPhaseCount> phase_seconds_{};
};

}  // namespace pcf
