// Minimal JSON emission for machine-readable benchmark output.
//
// BENCH_pcflow.json must be (a) valid JSON for external tooling and (b)
// byte-deterministic for the CI drift check, so we write it ourselves instead
// of going through locale-sensitive iostreams: fixed key order (caller
// controlled), '.' decimal point, %.17g round-trip doubles, and "null" for
// non-finite values (JSON has no inf/nan).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pcf {

/// Streaming writer producing pretty-printed (2-space indent) JSON. The
/// caller opens/closes objects and arrays in order; the writer tracks nesting
/// and comma placement. Misuse (closing the wrong scope, a value where a key
/// is required) throws ContractViolation.
class JsonWriter {
 public:
  [[nodiscard]] static std::string escape(std::string_view s);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Starts `"key": ` inside an object; follow with a value or begin_*().
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void null();

  /// Convenience: key + scalar value.
  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// The completed document. All scopes must be closed.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope { kObject, kArray };
  void begin_value();
  void indent();

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace pcf
