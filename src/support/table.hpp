// Aligned ASCII table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints (a) a human-readable table reproducing the rows /
// series of the corresponding paper figure and (b), optionally, the same data
// as CSV for plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pcf {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cells beyond the header count are rejected.
  void add_row(std::vector<std::string> cells);

  /// Formats a double in scientific notation suitable for error magnitudes.
  [[nodiscard]] static std::string sci(double v, int digits = 3);
  /// Formats a double with fixed decimals.
  [[nodiscard]] static std::string fixed(double v, int digits = 3);
  [[nodiscard]] static std::string num(std::int64_t v);

  /// Writes the aligned table to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Writes RFC-4180-ish CSV to `out`.
  void print_csv(std::FILE* out = stdout) const;

  /// Writes CSV to a file path; returns false (and prints a warning) on I/O
  /// failure rather than aborting a long benchmark run.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcf
