// Streaming and batch descriptive statistics used by the metrics layer and
// the benchmark harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace pcf {

/// Welford streaming accumulator: mean / variance / min / max in one pass.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel reduction of statistics).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile q in [0,1] with linear interpolation; copies and sorts the input.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Convenience median (quantile 0.5).
[[nodiscard]] double median(std::span<const double> values);

/// Maximum element; -inf for an empty span.
[[nodiscard]] double max_value(std::span<const double> values) noexcept;

/// Kahan-compensated sum — used wherever the harness needs a reference value
/// that is more accurate than naive summation.
[[nodiscard]] double kahan_sum(std::span<const double> values) noexcept;

}  // namespace pcf
