// Deterministic, platform-independent pseudo-random number generation.
//
// The simulation results in bench/ must be bit-reproducible across compilers
// and standard libraries, so we implement xoshiro256** (Blackman & Vigna)
// seeded via splitmix64 instead of relying on std:: distributions, whose
// output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "support/check.hpp"

namespace pcf {

/// splitmix64 step; used for seeding and for deriving independent streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent generator (distinct stream) for entity `index`.
  /// Used to give every simulated node its own schedule stream so that
  /// injecting a fault never perturbs unrelated nodes' randomness.
  [[nodiscard]] Rng fork(std::uint64_t index) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    std::uint64_t mix = state_[3] + splitmix64(sm);
    return Rng(mix ^ (index << 1));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method, which is unbiased and avoids expensive 64-bit modulo.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    PCF_ASSERT(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> candidates) noexcept {
    PCF_ASSERT(!candidates.empty());
    return candidates[static_cast<std::size_t>(below(candidates.size()))];
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  [[nodiscard]] double normal() noexcept;

  /// Exponential with rate lambda (mean 1/lambda); used by the async engine's
  /// Poisson node clocks.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// The four xoshiro256** state words — exposed so checkpoints can freeze
  /// and resume a stream mid-sequence (sim/checkpoint.cpp).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

  /// Restores a stream captured by state(). An all-zero state is the one
  /// fixed point xoshiro256** can never leave, so it is rejected.
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    PCF_ASSERT(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0);
    state_ = state;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pcf
