#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace pcf {
namespace {

std::string bool_text(bool b) { return b ? "true" : "false"; }

}  // namespace

void CliFlags::define(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kInt, help, std::to_string(default_value)};
}

void CliFlags::define(const std::string& name, double default_value, const std::string& help) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", default_value);
  flags_[name] = Flag{Kind::kDouble, help, buf};
}

void CliFlags::define(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kString, help, default_value};
}

void CliFlags::define(const std::string& name, bool default_value, const std::string& help) {
  flags_[name] = Flag{Kind::kBool, help, bool_text(default_value)};
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    PCF_CHECK_MSG(it != flags_.end(), "unknown flag --" << name);
    Flag& flag = it->second;
    if (!have_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        PCF_CHECK_MSG(i + 1 < argc, "flag --" << name << " expects a value");
        value = argv[++i];
      }
    }
    // Validate the textual value eagerly so errors point at the bad flag.
    switch (flag.kind) {
      case Kind::kInt: {
        char* end = nullptr;
        (void)std::strtoll(value.c_str(), &end, 10);
        PCF_CHECK_MSG(end && *end == '\0' && !value.empty(),
                      "flag --" << name << " expects an integer, got '" << value << "'");
        break;
      }
      case Kind::kDouble: {
        char* end = nullptr;
        (void)std::strtod(value.c_str(), &end);
        PCF_CHECK_MSG(end && *end == '\0' && !value.empty(),
                      "flag --" << name << " expects a number, got '" << value << "'");
        break;
      }
      case Kind::kBool:
        PCF_CHECK_MSG(value == "true" || value == "false" || value == "1" || value == "0",
                      "flag --" << name << " expects true/false, got '" << value << "'");
        break;
      case Kind::kString:
        break;
    }
    flag.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::lookup(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  PCF_CHECK_MSG(it != flags_.end(), "flag --" << name << " was never defined");
  PCF_CHECK_MSG(it->second.kind == kind, "flag --" << name << " accessed with wrong type");
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::strtoll(lookup(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(lookup(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = lookup(name, Kind::kBool).value;
  return v == "true" || v == "1";
}

void CliFlags::print_help(const std::string& program) const {
  std::printf("usage: %s [flags]\n\nflags:\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::printf("  --%-18s %s (default: %s)\n", name.c_str(), flag.help.c_str(),
                flag.value.c_str());
  }
}

}  // namespace pcf
