#pragma once

/// \file
/// Clang Thread Safety Analysis annotations plus the annotated lock types the
/// concurrent layers use (DESIGN.md §11).
///
/// The macros expand to clang `capability` attributes when the compiler
/// understands them and to nothing everywhere else, so gcc builds stay clean
/// while the clang `thread-safety` preset turns every lock-discipline claim
/// into a compile error when violated. `std::mutex` itself carries no
/// capability attribute under libstdc++, so guarding a member with a raw
/// `std::mutex` would trip `-Wthread-safety-attributes`; pcf::Mutex wraps it
/// with the attribute attached, and pcf::MutexLock is the matching scoped
/// capability that still exposes the underlying `std::unique_lock` for
/// `std::condition_variable::wait`.
///
/// Annotations are advisory on gcc, which is why lint rule T1 (docs/TESTING.md)
/// independently checks that members declared next to a mutex carry
/// PCF_GUARDED_BY — the contract cannot silently rot on non-clang builds.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PCF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PCF_THREAD_ANNOTATION
#define PCF_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (a lock); the string names it in diagnostics.
#define PCF_CAPABILITY(x) PCF_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define PCF_SCOPED_CAPABILITY PCF_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read or written while holding the named capability.
#define PCF_GUARDED_BY(x) PCF_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is protected by the named capability.
#define PCF_PT_GUARDED_BY(x) PCF_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability to be held on entry (and keeps it held).
#define PCF_REQUIRES(...) PCF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability; it must not be held on entry.
#define PCF_ACQUIRE(...) PCF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability; it must be held on entry.
#define PCF_RELEASE(...) PCF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define PCF_TRY_ACQUIRE(result, ...) \
  PCF_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define PCF_EXCLUDES(...) PCF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define PCF_RETURN_CAPABILITY(x) PCF_THREAD_ANNOTATION(lock_returned(x))
/// Assert (not acquire) that the capability is held — for code reached only
/// while locked, e.g. callbacks invoked under the caller's lock.
#define PCF_ASSERT_CAPABILITY(x) PCF_THREAD_ANNOTATION(assert_capability(x))
/// Opt a function out of analysis entirely. Use with a written reason.
#define PCF_NO_THREAD_SAFETY_ANALYSIS PCF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pcf {

/// `std::mutex` with the clang capability attribute attached so members can be
/// declared PCF_GUARDED_BY(mutex_). Interface-compatible with std::mutex for
/// lock/unlock/try_lock; `native()` exposes the wrapped mutex for APIs that
/// need the real type (condition variables via MutexLock::native()).
class PCF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PCF_ACQUIRE() { m_.lock(); }
  void unlock() PCF_RELEASE() { m_.unlock(); }
  bool try_lock() PCF_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Escape hatch for std APIs; accesses through it are not analyzed.
  std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// Scoped lock for pcf::Mutex, annotated so clang tracks the critical section.
/// Wraps `std::unique_lock` (not `scoped_lock`) because the socket runtime and
/// mailbox park on condition variables: `cv.wait(lock.native())` keeps the
/// capability held across the wait from the analysis's point of view, which
/// matches the runtime guarantee that `wait` reacquires before returning.
class PCF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PCF_ACQUIRE(m) : lock_(m.native()) {}
  ~MutexLock() PCF_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for `std::condition_variable::wait`.
  std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace pcf
