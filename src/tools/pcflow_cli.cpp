// pcflow — command-line driver for the gossip reduction simulator.
//
// Run any algorithm on any topology with any fault plan and watch the error
// trace:
//
//   pcflow --topology=hypercube:6 --algorithm=pcf --rounds=200
//          --link-fail=75:0:1 --trace-every=5
//   pcflow --topology=torus3d:8 --algorithm=pf --aggregate=sum
//          --loss=0.1 --epsilon=1e-12
//   pcflow --topology=grid:8x8 --algorithm=pcf --update=100:3:5.0 --rounds=400
//
// The `bench` subcommand runs the standardized benchmark suite instead:
//
//   pcflow bench --suite=fast --out=BENCH_pcflow.json
//   pcflow bench --suite=standard --threads=8
//
// The `chaos` subcommand sweeps ramping churn intensity across
// algorithm × topology cells and reports recovery / survival quantiles:
//
//   pcflow chaos --fast --out=CHAOS_pcflow.json
//
// The `lint` subcommand runs the project's static-analysis rules
// (determinism, RNG-stream and reducer-protocol discipline):
//
//   pcflow lint --root=. --list-rules
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench/bench.hpp"
#include "bench/chaos.hpp"
#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/fault_spec.hpp"
#include "sim/reduce.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tools/lint/lint.hpp"

namespace pcf {
namespace {

int run_bench_cli(int argc, const char* const* argv) {
  CliFlags flags;
  flags.define("suite", std::string("fast"),
               "scenario suite: fast | standard | scale | scale-fast");
  flags.define("profile", std::string(),
               "alias for --suite (pcflow bench --profile=scale)");
  flags.define("fast", false, "shorthand for --suite=fast");
  flags.define("seed", std::int64_t{1}, "suite RNG seed");
  flags.define("threads", std::int64_t{1},
               "parallel trial workers (0 = hardware concurrency); results are "
               "identical for any value");
  flags.define("out", std::string("BENCH_pcflow.json"), "output path ('-' = stdout only)");
  flags.define("timing", true,
               "include wall-clock fields (disable for byte-deterministic output)");
  if (!flags.parse(argc, argv)) return 0;

  bench::BenchOptions options;
  options.suite = flags.get_bool("fast") ? "fast" : flags.get_string("suite");
  if (!flags.get_string("profile").empty()) options.suite = flags.get_string("profile");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.threads = static_cast<std::size_t>(flags.get_int("threads"));
  options.include_timing = flags.get_bool("timing");

  const bench::BenchReport report = bench::run_bench(options);
  const std::string json = bench::report_to_json(report);

  const std::string& out = flags.get_string("out");
  if (out == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    PCF_CHECK_MSG(file.good(), "bench: cannot open " << out << " for writing");
    file << json;
    PCF_CHECK_MSG(file.good(), "bench: write to " << out << " failed");
    std::size_t converged = 0, trials = 0;
    for (const auto& s : report.scenarios) {
      converged += s.converged_trials;
      trials += s.scenario.trials;
    }
    std::printf("pcflow bench: %zu scenarios (%zu/%zu trials converged) -> %s\n",
                report.scenarios.size(), converged, trials, out.c_str());
  }
  return 0;
}

int run_chaos_cli(int argc, const char* const* argv) {
  CliFlags flags;
  flags.define("fast", false, "CI-sized sweep (fewer cells, shorter runs)");
  flags.define("seed", std::int64_t{1}, "sweep RNG seed");
  flags.define("out", std::string("CHAOS_pcflow.json"), "output path ('-' = stdout only)");
  if (!flags.parse(argc, argv)) return 0;

  bench::ChaosOptions options;
  options.fast = flags.get_bool("fast");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const bench::ChaosReport report = bench::run_chaos(options);
  const std::string json = bench::chaos_report_to_json(report);

  const std::string& out = flags.get_string("out");
  if (out == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    PCF_CHECK_MSG(file.good(), "chaos: cannot open " << out << " for writing");
    file << json;
    PCF_CHECK_MSG(file.good(), "chaos: write to " << out << " failed");
    std::size_t survived = 0;
    for (const auto& c : report.cells) survived += c.survived;
    std::printf("pcflow chaos: %zu cells (%zu survived all trials) -> %s\n", report.cells.size(),
                survived, out.c_str());
  }
  return 0;
}

int run_cli(int argc, const char* const* argv) {
  if (argc > 1 && std::strcmp(argv[1], "bench") == 0) {
    return run_bench_cli(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "chaos") == 0) {
    return run_chaos_cli(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "lint") == 0) {
    return lint::run_cli(argc - 1, argv + 1);
  }
  CliFlags flags;
  flags.define("topology", std::string("hypercube:6"),
               "bus:N ring:N grid:RxC torus2d:RxC torus3d:L hypercube:D complete:N star:N "
               "tree:N regular:N:D er:N:P");
  flags.define("algorithm", std::string("pcf"), "ps | pf | pcf | fu");
  flags.define("aggregate", std::string("avg"), "avg | sum");
  flags.define("variant", std::string("robust"), "PCF bookkeeping: fast | robust");
  flags.define("rounds", std::int64_t{0}, "run exactly this many rounds (0 = run to --epsilon)");
  flags.define("epsilon", 1e-12, "target accuracy when --rounds is 0");
  flags.define("max-rounds", std::int64_t{100000}, "round cap for --epsilon runs");
  flags.define("loss", 0.0, "message loss probability");
  flags.define("flip", 0.0, "per-message bit flip probability");
  flags.define("detection-delay", 0.0, "failure detector delay in rounds");
  flags.define("duplicate", 0.0, "per-delivery duplication probability");
  flags.define("reorder", 0.0, "per-delivery reordering probability");
  flags.define("reorder-jitter", 0.5, "extra delay for reordered packets");
  flags.define("churn-fail", 0.0, "per-link per-round churn failure probability");
  flags.define("churn-heal", 0.0, "churn heal rate (Exp outage duration)");
  flags.define("link-fail", std::string{}, "link failures, T:A:B[,T:A:B...]");
  flags.define("crash", std::string{}, "node crashes, T:N[,T:N...]");
  flags.define("update", std::string{}, "live data updates, T:N:DELTA[,...]");
  flags.define("link-heal", std::string{}, "link heals, T:A:B[,T:A:B...]");
  flags.define("rejoin", std::string{}, "node rejoins, T:N[,T:N...]");
  flags.define("false-detect", std::string{},
               "failure-detector false positives, T:A:B:D[,...] (clears after D rounds)");
  flags.define("seed", std::int64_t{1}, "RNG seed");
  flags.define("engine", std::string("legacy"),
               "state layout: legacy (one Reducer per node) | arena (SoA flow arenas, "
               "bitwise-identical output, scales to 10^6 nodes)");
  flags.define("shards", std::int64_t{1},
               "arena engine only: shard the round loop over N threads "
               "(0 = hardware concurrency; output is identical for every value)");
  flags.define("trace-every", std::int64_t{0}, "print an error trace row every N rounds");
  flags.define("csv", std::string{}, "write the trace as CSV to this path");
  flags.define("estimates", false, "print every node's final estimate");
  if (!flags.parse(argc, argv)) return 0;

  Rng topo_rng(static_cast<std::uint64_t>(flags.get_int("seed")) ^ 0x7070ULL);
  const auto topology = net::Topology::parse(flags.get_string("topology"), topo_rng);

  sim::SyncEngineConfig config;
  config.algorithm = core::parse_algorithm(flags.get_string("algorithm"));
  const std::string& variant = flags.get_string("variant");
  PCF_CHECK_MSG(variant == "fast" || variant == "robust", "--variant wants fast|robust");
  config.reducer.pcf_variant =
      variant == "fast" ? core::PcfVariant::kFast : core::PcfVariant::kRobust;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::string& engine_name = flags.get_string("engine");
  PCF_CHECK_MSG(engine_name == "legacy" || engine_name == "arena", "--engine wants legacy|arena");
  config.mode = engine_name == "arena" ? sim::EngineMode::kArena : sim::EngineMode::kLegacy;
  config.shards = static_cast<std::size_t>(flags.get_int("shards"));
  PCF_CHECK_MSG(config.mode == sim::EngineMode::kArena || config.shards == 1,
                "--shards needs --engine=arena");
  sim::FaultSpecInput fault_spec;
  fault_spec.link_failures = flags.get_string("link-fail");
  fault_spec.node_crashes = flags.get_string("crash");
  fault_spec.data_updates = flags.get_string("update");
  fault_spec.link_heals = flags.get_string("link-heal");
  fault_spec.node_rejoins = flags.get_string("rejoin");
  fault_spec.false_detects = flags.get_string("false-detect");
  config.faults = sim::parse_fault_spec(fault_spec, topology.size());
  config.faults.message_loss_prob = flags.get_double("loss");
  config.faults.bit_flip_prob = flags.get_double("flip");
  config.faults.detection_delay = flags.get_double("detection-delay");
  config.faults.duplicate_prob = flags.get_double("duplicate");
  config.faults.reorder_prob = flags.get_double("reorder");
  config.faults.reorder_jitter = flags.get_double("reorder-jitter");
  config.faults.churn_fail_prob = flags.get_double("churn-fail");
  config.faults.churn_heal_rate = flags.get_double("churn-heal");

  const std::string& aggregate_name = flags.get_string("aggregate");
  PCF_CHECK_MSG(aggregate_name == "avg" || aggregate_name == "sum", "--aggregate wants avg|sum");
  const auto aggregate =
      aggregate_name == "sum" ? core::Aggregate::kSum : core::Aggregate::kAverage;

  Rng data_rng(config.seed ^ 0xda7aULL);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = data_rng.uniform();
  const auto masses = sim::masses_from_values(values, aggregate);

  sim::SyncEngine engine(topology, masses, config);
  std::printf("pcflow: %s on %s (%zu nodes, %zu links), %s aggregate, seed %lld\n",
              std::string(engine.node(0).name()).c_str(), topology.name().c_str(),
              topology.size(), topology.edge_count(), std::string(to_string(aggregate)).c_str(),
              static_cast<long long>(flags.get_int("seed")));
  std::printf("target aggregate: %.17g\n\n", engine.oracle().target());

  const auto cadence = static_cast<std::size_t>(flags.get_int("trace-every"));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  Table trace({"round", "max_error", "median_error", "p99_error", "max_abs_flow", "target"});
  auto sample_row = [&] {
    trace.add_row({Table::num(static_cast<std::int64_t>(engine.round())),
                   Table::sci(engine.max_error()), Table::sci(engine.median_error()),
                   Table::sci(engine.error_quantile(0.99)), Table::sci(engine.max_abs_flow()),
                   Table::fixed(engine.oracle().target(), 9)});
  };

  if (rounds > 0) {
    for (std::size_t r = 0; r < rounds; ++r) {
      engine.step();
      if (cadence > 0 && (engine.round() % cadence == 0 || r + 1 == rounds)) sample_row();
    }
  } else {
    const double epsilon = flags.get_double("epsilon");
    const auto cap = static_cast<std::size_t>(flags.get_int("max-rounds"));
    while (engine.round() < cap && engine.max_error() > epsilon) {
      engine.step();
      if (cadence > 0 && engine.round() % cadence == 0) sample_row();
    }
    sample_row();
  }

  if (cadence > 0 || rounds == 0) {
    trace.print();
    const std::string& csv = flags.get_string("csv");
    if (!csv.empty() && trace.write_csv(csv)) std::printf("trace csv written to %s\n", csv.c_str());
    std::printf("\n");
  }

  const auto& stats = engine.stats();
  std::printf("rounds: %zu   messages: %zu sent, %zu dropped, %zu corrupted\n", engine.round(),
              stats.messages_sent, stats.messages_dropped, stats.messages_flipped);
  std::printf("final:  max error %.3e, median %.3e, target %.17g\n", engine.max_error(),
              engine.median_error(), engine.oracle().target());

  if (flags.get_bool("estimates")) {
    std::printf("\n");
    for (net::NodeId i = 0; i < topology.size(); ++i) {
      if (engine.node_alive(i)) {
        std::printf("node %4u: %.17g\n", i, engine.node(i).estimate());
      } else {
        std::printf("node %4u: (crashed)\n", i);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace pcf

int main(int argc, char** argv) {
  try {
    return pcf::run_cli(argc, argv);
  } catch (const pcf::ContractViolation& e) {
    std::fprintf(stderr, "pcflow: %s\n", e.what());
    return 2;
  }
}
