// pcflow — command-line driver for the gossip reduction simulator.
//
// Run any algorithm on any topology with any fault plan and watch the error
// trace:
//
//   pcflow --topology=hypercube:6 --algorithm=pcf --rounds=200
//          --link-fail=75:0:1 --trace-every=5
//   pcflow --topology=torus3d:8 --algorithm=pf --aggregate=sum
//          --loss=0.1 --epsilon=1e-12
//   pcflow --topology=grid:8x8 --algorithm=pcf --update=100:3:5.0 --rounds=400
//
// The `bench` subcommand runs the standardized benchmark suite instead:
//
//   pcflow bench --suite=fast --out=BENCH_pcflow.json
//   pcflow bench --suite=standard --threads=8
//
// The `chaos` subcommand sweeps ramping churn intensity across
// algorithm × topology cells and reports recovery / survival quantiles:
//
//   pcflow chaos --fast --out=CHAOS_pcflow.json
//
// The `lint` subcommand runs the project's static-analysis rules
// (determinism, RNG-stream and reducer-protocol discipline):
//
//   pcflow lint --root=. --list-rules
// The `net-trial` subcommand (alias: `serve`) runs the scenario over the
// loopback UDP socket runtime — real processes, measured loss, heartbeat
// failure detection, checkpoint-backed restarts (DESIGN.md §10):
//
//   pcflow net-trial --topology=torus2d:8x8 --shards=4 --out=NET_pcflow.json
//   pcflow serve --algorithm=fu --kill-shard=1 --kill-after-ms=150
//
// The `checkpoint` subcommand saves, resumes and verifies engine state blobs
// (DESIGN.md §8):
//
//   pcflow checkpoint --action=save --at=100 --file=ck.bin [scenario flags]
//   pcflow checkpoint --action=resume --file=ck.bin --rounds=50 [scenario flags]
//   pcflow checkpoint --action=verify --file=ck.bin --rounds=50 [scenario flags]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench/bench.hpp"
#include "bench/chaos.hpp"
#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "runtime/net_trial.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine_sync.hpp"
#include "sim/fault_spec.hpp"
#include "sim/reduce.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tools/lint/lint.hpp"

namespace pcf {
namespace {

int run_bench_cli(int argc, const char* const* argv) {
  CliFlags flags;
  flags.define("suite", std::string("fast"),
               "scenario suite: fast | standard | scale | scale-fast");
  flags.define("profile", std::string(),
               "alias for --suite (pcflow bench --profile=scale)");
  flags.define("fast", false, "shorthand for --suite=fast");
  flags.define("seed", std::int64_t{1}, "suite RNG seed");
  flags.define("threads", std::int64_t{1},
               "parallel trial workers (0 = hardware concurrency); results are "
               "identical for any value");
  flags.define("out", std::string("BENCH_pcflow.json"), "output path ('-' = stdout only)");
  flags.define("timing", true,
               "include wall-clock fields (disable for byte-deterministic output)");
  if (!flags.parse(argc, argv)) return 0;

  bench::BenchOptions options;
  options.suite = flags.get_bool("fast") ? "fast" : flags.get_string("suite");
  if (!flags.get_string("profile").empty()) options.suite = flags.get_string("profile");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.threads = static_cast<std::size_t>(flags.get_int("threads"));
  options.include_timing = flags.get_bool("timing");

  const bench::BenchReport report = bench::run_bench(options);
  const std::string json = bench::report_to_json(report);

  const std::string& out = flags.get_string("out");
  if (out == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    PCF_CHECK_MSG(file.good(), "bench: cannot open " << out << " for writing");
    file << json;
    PCF_CHECK_MSG(file.good(), "bench: write to " << out << " failed");
    std::size_t converged = 0, trials = 0;
    for (const auto& s : report.scenarios) {
      converged += s.converged_trials;
      trials += s.scenario.trials;
    }
    std::printf("pcflow bench: %zu scenarios (%zu/%zu trials converged) -> %s\n",
                report.scenarios.size(), converged, trials, out.c_str());
  }
  return 0;
}

int run_chaos_cli(int argc, const char* const* argv) {
  CliFlags flags;
  flags.define("fast", false, "CI-sized sweep (fewer cells, shorter runs)");
  flags.define("seed", std::int64_t{1}, "sweep RNG seed");
  flags.define("out", std::string("CHAOS_pcflow.json"), "output path ('-' = stdout only)");
  if (!flags.parse(argc, argv)) return 0;

  bench::ChaosOptions options;
  options.fast = flags.get_bool("fast");
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const bench::ChaosReport report = bench::run_chaos(options);
  const std::string json = bench::chaos_report_to_json(report);

  const std::string& out = flags.get_string("out");
  if (out == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    PCF_CHECK_MSG(file.good(), "chaos: cannot open " << out << " for writing");
    file << json;
    PCF_CHECK_MSG(file.good(), "chaos: write to " << out << " failed");
    std::size_t survived = 0;
    for (const auto& c : report.cells) survived += c.survived;
    std::size_t bitwise = 0, restore_trials = 0;
    for (const auto& c : report.restore_cells) {
      bitwise += c.fingerprint_matches;
      restore_trials += c.cell.trials;
    }
    std::printf(
        "pcflow chaos: %zu cells (%zu survived all trials), %zu restore cells "
        "(%zu/%zu bitwise restores) -> %s\n",
        report.cells.size(), survived, report.restore_cells.size(), bitwise, restore_trials,
        out.c_str());
  }
  return 0;
}

/// `pcflow net-trial` (alias: `pcflow serve`) — the loopback UDP socket
/// runtime: forks one process per shard, runs the scenario over real
/// datagrams (loss MEASURED, not injected), supervises/restarts SIGKILLed
/// shards from their checkpoints, and emits the versioned "pcflow-net" JSON
/// report. Exit 0 when the run completed within the algorithm's envelope.
int run_net_cli(int argc, const char* const* argv) {
  CliFlags flags;
  flags.define("topology", std::string("torus2d:8x8"), "net::Topology::parse() spec");
  flags.define("algorithm", std::string("pcf"), "ps | pf | pcf | fu | corr | fumd");
  flags.define("aggregate", std::string("avg"), "avg | sum");
  flags.define("variant", std::string("robust"), "PCF bookkeeping: fast | robust");
  flags.define("tree", std::string("auto"),
               "corr schedule shape: auto | chain | binary | star | bfs");
  flags.define("seed", std::int64_t{1}, "RNG seed (same scenario derivation as pcflow)");
  flags.define("shards", std::int64_t{4}, "UDP processes; nodes assigned round-robin");
  flags.define("steps", std::int64_t{600}, "gossip sends per node");
  flags.define("pacing-us", std::int64_t{0}, "sleep between steps (0 = flat out)");
  flags.define("mailbox-capacity", std::int64_t{256},
               "bounded RX mailbox per node (0 = unbounded, no backpressure)");
  flags.define("recv-buffer", std::int64_t{4096},
               "requested SO_RCVBUF; small values turn backpressure into measured loss");
  flags.define("bind-attempts", std::int64_t{5}, "EADDRINUSE retries when binding");
  flags.define("heartbeat-period-ms", std::int64_t{10}, "failure-detector beacon period");
  flags.define("heartbeat-timeout-ms", std::int64_t{100},
               "silence threshold before on_link_down fires");
  flags.define("checkpoint-every", std::int64_t{50},
               "checkpoint cadence in steps (0 = restart from scratch)");
  flags.define("linger-ms", std::int64_t{300}, "receive-only tail after the step budget");
  flags.define("max-restarts", std::int64_t{3}, "supervisor restart budget per shard");
  flags.define("timeout-ms", std::int64_t{120000}, "hard wall-clock cap on the trial");
  flags.define("kill-shard", std::int64_t{-1}, "chaos: SIGKILL this shard once (-1 = never)");
  flags.define("kill-after-ms", std::int64_t{200}, "chaos: SIGKILL delay after launch");
  flags.define("stall-shard", std::int64_t{-1}, "chaos: SIGSTOP this shard once (-1 = never)");
  flags.define("stall-after-ms", std::int64_t{200}, "chaos: SIGSTOP delay after launch");
  flags.define("stall-ms", std::int64_t{250},
               "chaos: SIGCONT after this long (detector false positive)");
  flags.define("run-dir", std::string("pcflow-net-run"),
               "directory for checkpoints and per-shard results");
  flags.define("tol", 1e-3, "error envelope a trusted algorithm must land in");
  flags.define("session-baseline", true, "also run the warm in-process session baseline");
  flags.define("out", std::string("NET_pcflow.json"), "output path ('-' = stdout only)");
  if (!flags.parse(argc, argv)) return 0;

  runtime::NetTrialOptions options;
  options.topology_spec = flags.get_string("topology");
  options.algorithm = core::parse_algorithm(flags.get_string("algorithm"));
  const std::string& aggregate_name = flags.get_string("aggregate");
  PCF_CHECK_MSG(aggregate_name == "avg" || aggregate_name == "sum", "--aggregate wants avg|sum");
  options.aggregate = aggregate_name == "sum" ? core::Aggregate::kSum : core::Aggregate::kAverage;
  const std::string& variant = flags.get_string("variant");
  PCF_CHECK_MSG(variant == "fast" || variant == "robust", "--variant wants fast|robust");
  options.reducer.pcf_variant =
      variant == "fast" ? core::PcfVariant::kFast : core::PcfVariant::kRobust;
  options.reducer.tree_kind = net::parse_tree_kind(flags.get_string("tree"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.runtime.num_shards = static_cast<std::size_t>(flags.get_int("shards"));
  options.runtime.steps_per_node = static_cast<std::size_t>(flags.get_int("steps"));
  options.runtime.step_pacing_us = static_cast<int>(flags.get_int("pacing-us"));
  options.runtime.mailbox_capacity =
      static_cast<std::size_t>(flags.get_int("mailbox-capacity"));
  options.runtime.socket_recv_buffer = static_cast<int>(flags.get_int("recv-buffer"));
  options.runtime.bind_attempts = static_cast<int>(flags.get_int("bind-attempts"));
  options.runtime.heartbeat_period_ms = static_cast<int>(flags.get_int("heartbeat-period-ms"));
  options.runtime.heartbeat_timeout_ms =
      static_cast<int>(flags.get_int("heartbeat-timeout-ms"));
  options.runtime.checkpoint_every_steps =
      static_cast<std::size_t>(flags.get_int("checkpoint-every"));
  options.runtime.linger_ms = static_cast<int>(flags.get_int("linger-ms"));
  options.runtime.max_restarts = static_cast<std::size_t>(flags.get_int("max-restarts"));
  options.runtime.trial_timeout_ms = static_cast<int>(flags.get_int("timeout-ms"));
  options.chaos.kill_shard = static_cast<int>(flags.get_int("kill-shard"));
  options.chaos.kill_after_ms = static_cast<int>(flags.get_int("kill-after-ms"));
  options.chaos.stall_shard = static_cast<int>(flags.get_int("stall-shard"));
  options.chaos.stall_after_ms = static_cast<int>(flags.get_int("stall-after-ms"));
  options.chaos.stall_ms = static_cast<int>(flags.get_int("stall-ms"));
  options.run_dir = flags.get_string("run-dir");
  options.error_tol = flags.get_double("tol");
  options.session_baseline = flags.get_bool("session-baseline");

  const runtime::NetTrialReport report = runtime::run_net_trial(options);
  const std::string json = runtime::net_trial_report_to_json(options, report);

  const std::string& out = flags.get_string("out");
  if (out == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    PCF_CHECK_MSG(file.good(), "net-trial: cannot open " << out << " for writing");
    file << json;
    PCF_CHECK_MSG(file.good(), "net-trial: write to " << out << " failed");
    std::printf(
        "pcflow net-trial: %zu/%zu nodes reported, measured loss %.4f "
        "(dup %.4f, reorder %.4f), %zu restart(s), %zu failure(s), max error %.3e "
        "(%s, tol %.1e) -> %s\n",
        report.reporting_nodes, report.nodes, report.trial.measured_loss_rate(),
        report.trial.measured_duplicate_rate(), report.trial.measured_reorder_rate(),
        report.trial.restarts, report.trial.failures, report.max_rel_error,
        report.trusted ? "trusted" : "untrusted", options.error_tol, out.c_str());
  }
  if (!report.ok) {
    std::fprintf(stderr, "pcflow net-trial: run %s\n",
                 report.trial.completed ? "missed the error envelope" : "did not complete");
    return 1;
  }
  return 0;
}

/// Everything `pcflow` and `pcflow checkpoint` need to construct an engine
/// from the shared scenario flags. Construction is a pure function of the
/// flags, so two processes given the same flags build identical engines —
/// that is what lets a checkpoint saved by one invocation restore in another.
struct Scenario {
  net::Topology topology;
  sim::SyncEngineConfig config;
  std::vector<core::Mass> masses;
  core::Aggregate aggregate = core::Aggregate::kAverage;
};

void define_scenario_flags(CliFlags& flags) {
  flags.define("topology", std::string("hypercube:6"),
               "bus:N ring:N grid:RxC torus2d:RxC torus3d:L hypercube:D complete:N star:N "
               "tree:N regular:N:D er:N:P");
  flags.define("algorithm", std::string("pcf"), "ps | pf | pcf | fu | corr | fumd");
  flags.define("aggregate", std::string("avg"), "avg | sum");
  flags.define("variant", std::string("robust"), "PCF bookkeeping: fast | robust");
  flags.define("tree", std::string("auto"),
               "corr schedule shape: auto | chain | binary | star | bfs");
  flags.define("loss", 0.0, "message loss probability");
  flags.define("flip", 0.0, "per-message bit flip probability");
  flags.define("detection-delay", 0.0, "failure detector delay in rounds");
  flags.define("duplicate", 0.0, "per-delivery duplication probability");
  flags.define("reorder", 0.0, "per-delivery reordering probability");
  flags.define("reorder-jitter", 0.5, "extra delay for reordered packets");
  flags.define("churn-fail", 0.0, "per-link per-round churn failure probability");
  flags.define("churn-heal", 0.0, "churn heal rate (Exp outage duration)");
  flags.define("link-fail", std::string{}, "link failures, T:A:B[,T:A:B...]");
  flags.define("crash", std::string{}, "node crashes, T:N[,T:N...]");
  flags.define("update", std::string{}, "live data updates, T:N:DELTA[,...]");
  flags.define("link-heal", std::string{}, "link heals, T:A:B[,T:A:B...]");
  flags.define("rejoin", std::string{}, "node rejoins, T:N[,T:N...]");
  flags.define("false-detect", std::string{},
               "failure-detector false positives, T:A:B:D[,...] (clears after D rounds)");
  flags.define("seed", std::int64_t{1}, "RNG seed");
  flags.define("engine", std::string("legacy"),
               "state layout: legacy (one Reducer per node) | arena (SoA flow arenas, "
               "bitwise-identical output, scales to 10^6 nodes)");
  flags.define("shards", std::int64_t{1},
               "arena engine only: shard the round loop over N threads "
               "(0 = hardware concurrency; output is identical for every value)");
}

Scenario build_scenario(const CliFlags& flags) {
  Rng topo_rng(static_cast<std::uint64_t>(flags.get_int("seed")) ^ 0x7070ULL);
  Scenario s{.topology = net::Topology::parse(flags.get_string("topology"), topo_rng),
             .config = {},
             .masses = {}};

  s.config.algorithm = core::parse_algorithm(flags.get_string("algorithm"));
  const std::string& variant = flags.get_string("variant");
  PCF_CHECK_MSG(variant == "fast" || variant == "robust", "--variant wants fast|robust");
  s.config.reducer.pcf_variant =
      variant == "fast" ? core::PcfVariant::kFast : core::PcfVariant::kRobust;
  s.config.reducer.tree_kind = net::parse_tree_kind(flags.get_string("tree"));
  s.config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::string& engine_name = flags.get_string("engine");
  PCF_CHECK_MSG(engine_name == "legacy" || engine_name == "arena", "--engine wants legacy|arena");
  s.config.mode = engine_name == "arena" ? sim::EngineMode::kArena : sim::EngineMode::kLegacy;
  s.config.shards = static_cast<std::size_t>(flags.get_int("shards"));
  PCF_CHECK_MSG(s.config.mode == sim::EngineMode::kArena || s.config.shards == 1,
                "--shards needs --engine=arena");
  sim::FaultSpecInput fault_spec;
  fault_spec.link_failures = flags.get_string("link-fail");
  fault_spec.node_crashes = flags.get_string("crash");
  fault_spec.data_updates = flags.get_string("update");
  fault_spec.link_heals = flags.get_string("link-heal");
  fault_spec.node_rejoins = flags.get_string("rejoin");
  fault_spec.false_detects = flags.get_string("false-detect");
  s.config.faults = sim::parse_fault_spec(fault_spec, s.topology.size());
  s.config.faults.message_loss_prob = flags.get_double("loss");
  s.config.faults.bit_flip_prob = flags.get_double("flip");
  s.config.faults.detection_delay = flags.get_double("detection-delay");
  s.config.faults.duplicate_prob = flags.get_double("duplicate");
  s.config.faults.reorder_prob = flags.get_double("reorder");
  s.config.faults.reorder_jitter = flags.get_double("reorder-jitter");
  s.config.faults.churn_fail_prob = flags.get_double("churn-fail");
  s.config.faults.churn_heal_rate = flags.get_double("churn-heal");

  const std::string& aggregate_name = flags.get_string("aggregate");
  PCF_CHECK_MSG(aggregate_name == "avg" || aggregate_name == "sum", "--aggregate wants avg|sum");
  s.aggregate = aggregate_name == "sum" ? core::Aggregate::kSum : core::Aggregate::kAverage;

  Rng data_rng(s.config.seed ^ 0xda7aULL);
  std::vector<double> values(s.topology.size());
  for (auto& v : values) v = data_rng.uniform();
  s.masses = sim::masses_from_values(values, s.aggregate);
  return s;
}

int run_checkpoint_cli(int argc, const char* const* argv) {
  CliFlags flags;
  flags.define("action", std::string("save"),
               "save (run to --at, write blob) | resume (restore, run --rounds) | "
               "verify (restored continuation must fingerprint-match the uninterrupted run)");
  flags.define("at", std::int64_t{100}, "save: round to checkpoint at");
  flags.define("rounds", std::int64_t{50}, "resume/verify: rounds to continue after restore");
  flags.define("file", std::string("pcflow.ckpt"), "checkpoint blob path");
  flags.define("mode", std::string("full"), "full (wire-inclusive) | light (state-only)");
  define_scenario_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  const std::string& mode_name = flags.get_string("mode");
  PCF_CHECK_MSG(mode_name == "full" || mode_name == "light", "--mode wants full|light");
  const auto mode =
      mode_name == "full" ? sim::CheckpointMode::kFull : sim::CheckpointMode::kLightweight;
  const std::string& path = flags.get_string("file");
  const std::string& action = flags.get_string("action");
  const Scenario s = build_scenario(flags);

  if (action == "save") {
    sim::SyncEngine engine(s.topology, s.masses, s.config);
    engine.run(static_cast<std::size_t>(flags.get_int("at")));
    const std::string blob = engine.save_checkpoint(mode);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    PCF_CHECK_MSG(file.good(), "checkpoint: cannot open " << path << " for writing");
    file.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    PCF_CHECK_MSG(file.good(), "checkpoint: write to " << path << " failed");
    std::printf("pcflow checkpoint: saved round %zu (%s, %zu bytes) -> %s\n", engine.round(),
                std::string(to_string(mode)).c_str(), blob.size(), path.c_str());
    std::printf("fingerprint: %016llx\n",
                static_cast<unsigned long long>(engine.state_fingerprint()));
    return 0;
  }

  std::ifstream file(path, std::ios::binary);
  PCF_CHECK_MSG(file.good(), "checkpoint: cannot open " << path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string blob = buffer.str();
  const sim::CheckpointInfo info = sim::peek_checkpoint(blob);
  const auto resume_rounds = static_cast<std::size_t>(flags.get_int("rounds"));

  if (action == "resume") {
    sim::SyncEngine engine(s.topology, s.masses, s.config);
    engine.restore(blob);
    std::printf("pcflow checkpoint: restored round %zu (%s blob) from %s\n", engine.round(),
                std::string(to_string(info.mode)).c_str(), path.c_str());
    engine.run(resume_rounds);
    std::printf("round %zu: max error %.3e, fingerprint %016llx\n", engine.round(),
                engine.max_error(), static_cast<unsigned long long>(engine.state_fingerprint()));
    return 0;
  }

  PCF_CHECK_MSG(action == "verify", "--action wants save|resume|verify");
  // The uninterrupted reference run covers the checkpoint's own round span
  // plus the continuation; the restored engine only replays the continuation.
  // Fingerprints must agree at the restore point AND after the continuation.
  sim::SyncEngine reference(s.topology, s.masses, s.config);
  reference.run(static_cast<std::size_t>(info.position));
  sim::SyncEngine restored(s.topology, s.masses, s.config);
  restored.restore(blob);
  const bool match_at_restore = reference.state_fingerprint() == restored.state_fingerprint();
  reference.run(resume_rounds);
  restored.run(resume_rounds);
  const bool match_after = reference.state_fingerprint() == restored.state_fingerprint();
  std::printf("restore point (round %zu): %s\n", static_cast<std::size_t>(info.position),
              match_at_restore ? "fingerprints match" : "FINGERPRINT MISMATCH");
  std::printf("after %zu more rounds:     %s\n", resume_rounds,
              match_after ? "fingerprints match" : "FINGERPRINT MISMATCH");
  if (!(match_at_restore && match_after)) {
    std::fprintf(stderr, "pcflow checkpoint: restored run DIVERGED from the uninterrupted run\n");
    return 1;
  }
  std::printf("pcflow checkpoint: restored continuation is bitwise-identical\n");
  return 0;
}

int run_cli(int argc, const char* const* argv) {
  if (argc > 1 && std::strcmp(argv[1], "bench") == 0) {
    return run_bench_cli(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "chaos") == 0) {
    return run_chaos_cli(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "checkpoint") == 0) {
    return run_checkpoint_cli(argc - 1, argv + 1);
  }
  if (argc > 1 && (std::strcmp(argv[1], "net-trial") == 0 || std::strcmp(argv[1], "serve") == 0)) {
    return run_net_cli(argc - 1, argv + 1);
  }
  if (argc > 1 && std::strcmp(argv[1], "lint") == 0) {
    return lint::run_cli(argc - 1, argv + 1);
  }
  CliFlags flags;
  flags.define("rounds", std::int64_t{0}, "run exactly this many rounds (0 = run to --epsilon)");
  flags.define("epsilon", 1e-12, "target accuracy when --rounds is 0");
  flags.define("max-rounds", std::int64_t{100000}, "round cap for --epsilon runs");
  flags.define("trace-every", std::int64_t{0}, "print an error trace row every N rounds");
  flags.define("csv", std::string{}, "write the trace as CSV to this path");
  flags.define("estimates", false, "print every node's final estimate");
  define_scenario_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  const Scenario scenario = build_scenario(flags);
  const auto& topology = scenario.topology;
  const auto aggregate = scenario.aggregate;

  sim::SyncEngine engine(topology, scenario.masses, scenario.config);
  std::printf("pcflow: %s on %s (%zu nodes, %zu links), %s aggregate, seed %lld\n",
              std::string(engine.node(0).name()).c_str(), topology.name().c_str(),
              topology.size(), topology.edge_count(), std::string(to_string(aggregate)).c_str(),
              static_cast<long long>(flags.get_int("seed")));
  std::printf("target aggregate: %.17g\n\n", engine.oracle().target());

  const auto cadence = static_cast<std::size_t>(flags.get_int("trace-every"));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds"));
  Table trace({"round", "max_error", "median_error", "p99_error", "max_abs_flow", "target"});
  auto sample_row = [&] {
    trace.add_row({Table::num(static_cast<std::int64_t>(engine.round())),
                   Table::sci(engine.max_error()), Table::sci(engine.median_error()),
                   Table::sci(engine.error_quantile(0.99)), Table::sci(engine.max_abs_flow()),
                   Table::fixed(engine.oracle().target(), 9)});
  };

  if (rounds > 0) {
    for (std::size_t r = 0; r < rounds; ++r) {
      engine.step();
      if (cadence > 0 && (engine.round() % cadence == 0 || r + 1 == rounds)) sample_row();
    }
  } else {
    const double epsilon = flags.get_double("epsilon");
    const auto cap = static_cast<std::size_t>(flags.get_int("max-rounds"));
    while (engine.round() < cap && engine.max_error() > epsilon) {
      engine.step();
      if (cadence > 0 && engine.round() % cadence == 0) sample_row();
    }
    sample_row();
  }

  if (cadence > 0 || rounds == 0) {
    trace.print();
    const std::string& csv = flags.get_string("csv");
    if (!csv.empty() && trace.write_csv(csv)) std::printf("trace csv written to %s\n", csv.c_str());
    std::printf("\n");
  }

  const auto& stats = engine.stats();
  std::printf("rounds: %zu   messages: %zu sent, %zu dropped, %zu corrupted\n", engine.round(),
              stats.messages_sent, stats.messages_dropped, stats.messages_flipped);
  std::printf("final:  max error %.3e, median %.3e, target %.17g\n", engine.max_error(),
              engine.median_error(), engine.oracle().target());

  if (flags.get_bool("estimates")) {
    std::printf("\n");
    for (net::NodeId i = 0; i < topology.size(); ++i) {
      if (engine.node_alive(i)) {
        std::printf("node %4u: %.17g\n", i, engine.node(i).estimate());
      } else {
        std::printf("node %4u: (crashed)\n", i);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace pcf

int main(int argc, char** argv) {
  try {
    return pcf::run_cli(argc, argv);
  } catch (const pcf::ContractViolation& e) {
    std::fprintf(stderr, "pcflow: %s\n", e.what());
    return 2;
  } catch (const pcf::sim::CheckpointError& e) {
    std::fprintf(stderr, "pcflow: %s\n", e.what());
    return 2;
  }
}
