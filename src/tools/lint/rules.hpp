// Internal interface between the pcflow-lint driver (lint.cpp) and the rule
// implementations (rules.cpp). Not installed; include only from src/tools/lint.
#pragma once

#include <string_view>
#include <vector>

#include "support/lexer.hpp"
#include "tools/lint/lint.hpp"

namespace pcf::lint::detail {

/// Runs every enabled code rule over one file. `code` is the token stream
/// with comments already stripped (rules must never fire inside comments or
/// literals; the lexer guarantees the latter, the driver the former).
/// Appends raw diagnostics — the driver applies suppressions afterwards.
void run_rules(std::string_view path, const std::vector<lex::Token>& code,
               const Options& options, std::vector<Diagnostic>& out);

/// One `#include "..."` directive (quoted includes only — system headers are
/// not part of the project layer graph).
struct IncludeRef {
  std::string target;  ///< include string without the quotes
  std::size_t line = 0;
  std::size_t col = 0;
};

/// Extracts the quoted includes from a raw token stream (comments tolerated).
[[nodiscard]] std::vector<IncludeRef> collect_includes(const std::vector<lex::Token>& tokens);

/// Cross-TU half of L1: DFS over the file-level include graph of the scanned
/// set, one diagnostic per back edge found. Include targets are resolved
/// against the scanned set only ("src/" + target, then sibling-relative, then
/// verbatim), so the pass is filesystem-independent and deterministic.
/// Cycle diagnostics bypass suppressions by design: a cycle has no single
/// owning line to annotate.
void check_include_cycles(
    const std::vector<std::pair<std::string, std::vector<IncludeRef>>>& files,
    std::vector<Diagnostic>& out);

}  // namespace pcf::lint::detail
