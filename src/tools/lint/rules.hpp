// Internal interface between the pcflow-lint driver (lint.cpp) and the rule
// implementations (rules.cpp). Not installed; include only from src/tools/lint.
#pragma once

#include <string_view>
#include <vector>

#include "support/lexer.hpp"
#include "tools/lint/lint.hpp"

namespace pcf::lint::detail {

/// Runs every enabled code rule over one file. `code` is the token stream
/// with comments already stripped (rules must never fire inside comments or
/// literals; the lexer guarantees the latter, the driver the former).
/// Appends raw diagnostics — the driver applies suppressions afterwards.
void run_rules(std::string_view path, const std::vector<lex::Token>& code,
               const Options& options, std::vector<Diagnostic>& out);

}  // namespace pcf::lint::detail
