// pcflow-lint — project-specific static analysis for determinism, RNG-stream
// and reducer-protocol discipline.
//
// The paper's claims (machine-precision accuracy, exact fault recovery) are
// testable only because every engine run is bit-deterministic per seed: the
// golden traces, the byte-identical bench/chaos JSON contracts and the
// differential oracle all compare runs byte-for-byte. A single stray
// wall-clock read, raw std::mt19937 draw or unordered_map iteration breaks
// those layers silently. The runtime invariant checkers (sim/invariants.hpp)
// catch violations after they happen; this tool keeps the bug classes from
// compiling in the first place.
//
// Rule catalog (each individually toggleable; docs/TESTING.md has the full
// policy):
//   D1  no nondeterminism sources (std::rand, time(), system/steady clocks,
//       getenv) in deterministic paths: src/core, src/sim, src/net, src/bench.
//       PerfCounters (support/perf.hpp) is the one sanctioned clock owner.
//   D2  no std::unordered_{map,set,multimap,multiset} in deterministic paths
//       (iteration order is implementation-defined; a declaration needs a
//       suppression explaining why the order never escapes).
//   D3  RNG-stream discipline: std random engines/distributions and
//       #include <random> only inside src/support/rng.* — everything else
//       draws through the seeded pcf::Rng API so the documented stream
//       layout stays intact.
//   D4  sharding discipline: no raw threading primitives (std::thread,
//       std::jthread, std::async, #include <thread>/<future>) in
//       deterministic paths. Parallelism there must go through
//       support/parallel.hpp (resolve_thread_count + parallel_for_index),
//       whose fixed work partition is what keeps sharded output
//       byte-identical to serial. src/runtime owns its threads by design.
//   R1  reducer-protocol conformance: every class deriving from Reducer must
//       declare the full fault-hook set (on_link_down, on_link_up,
//       update_data) so a new algorithm cannot silently inherit a no-op.
//   F1  float discipline: no `float` in src/core / src/linalg numeric state;
//       no ==/!= against nonzero floating literals outside oracle files
//       (comparison against literal 0.0 is the sanctioned exact-sentinel
//       idiom; the accuracy claims are about double cancellation behavior).
//   S1  OS-boundary discipline: no socket/process syscalls (socket, sendto,
//       recvfrom, fork, waitpid, kill, poll, ...) or their headers
//       (<sys/socket.h>, <unistd.h>, <signal.h>, ...) outside the two files
//       that own the boundary — src/runtime/udp.* and
//       src/runtime/socket_runtime.*. The reducers, engines, topologies and
//       even the rest of src/runtime stay transport-agnostic; that is what
//       lets one protocol implementation run under the simulator, the
//       threaded runtime and real UDP unchanged.
//   L1  layer DAG: cross-directory includes must follow
//       support -> net.graph -> core -> {net.transport, sim, linalg} ->
//       {runtime, bench, tools} (src/net splits into the pure graph layer
//       below core and transport.* above it, mirroring the pcf_net /
//       pcf_transport CMake targets). src/core may never include sim/,
//       runtime/ or bench/. In whole-repo mode (run_directory / run_files)
//       L1 additionally builds the file-level include graph and reports any
//       cycle; cycle diagnostics are structural and cannot be suppressed.
//   T1  guarded-by presence: in src/runtime and support/parallel.hpp, a data
//       member declared within 40 tokens of a mutex / condition_variable
//       member must carry PCF_GUARDED_BY(...) (support/annotations.hpp).
//       Clang proves the annotations right (-Wthread-safety); T1 is what
//       keeps them from silently rotting on gcc builds, which ignore them.
//   LNT suppression hygiene: every `pcflow-lint: allow(...)` must name a
//       known rule, carry a non-empty reason, and actually suppress
//       something. LNT itself cannot be suppressed.
//
// Suppression syntax, on the offending line or on its own line directly
// above it:
//   foo();  // pcflow-lint: allow(D1) reason why this one use is safe
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace pcf::lint {

enum class Rule { kD1, kD2, kD3, kD4, kR1, kF1, kS1, kL1, kT1, kLnt };

inline constexpr Rule kAllRules[] = {Rule::kD1, Rule::kD2, Rule::kD3, Rule::kD4, Rule::kR1,
                                     Rule::kF1, Rule::kS1, Rule::kL1, Rule::kT1, Rule::kLnt};

[[nodiscard]] std::string_view to_string(Rule rule) noexcept;
/// One-line human description used by --list-rules.
[[nodiscard]] std::string_view describe(Rule rule) noexcept;
/// Parses "D1" | "d1" | ... Throws ContractViolation on unknown names.
[[nodiscard]] Rule parse_rule(std::string_view name);

struct Diagnostic {
  std::string file;  ///< root-relative path with forward slashes
  std::size_t line = 0;
  std::size_t col = 0;
  Rule rule = Rule::kLnt;
  std::string message;
};

struct Options {
  /// Rules to run. Empty = all rules.
  std::vector<Rule> enabled;
  [[nodiscard]] bool rule_enabled(Rule rule) const noexcept;
};

/// Lints one in-memory translation unit. `virtual_path` is the root-relative
/// path used for rule scoping (e.g. "src/core/foo.cpp" arms D1/D2/F1) — this
/// is also what lets tests feed fixture files under any path they like.
/// Diagnostics come back sorted by (line, col, rule).
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view virtual_path,
                                                  std::string_view source,
                                                  const Options& options = {});

struct RunResult {
  std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, col, rule)
  std::size_t files_scanned = 0;
};

/// Lints the project tree under `root`: every *.hpp / *.cpp beneath
/// src/, bench/ and examples/ (tests are exercised by their own harness and
/// may legitimately compare floats exactly or poke nondeterminism). File
/// discovery order is normalized by sorting, so output is byte-deterministic.
[[nodiscard]] RunResult run_directory(const std::filesystem::path& root,
                                      const Options& options = {});

/// Lints an explicit file list (paths relative to `root` or absolute).
/// This is also where the cross-TU half of L1 runs: the include graph over
/// the scanned set is checked for cycles (per-file band checks happen inside
/// lint_source like every other rule).
[[nodiscard]] RunResult run_files(const std::filesystem::path& root,
                                  const std::vector<std::string>& files,
                                  const Options& options = {});

/// Renders `file:line:col: RULE: message` lines plus a trailing summary.
/// Deterministic: same inputs, same bytes.
[[nodiscard]] std::string format_report(const RunResult& result, bool quiet = false);

/// Renders the same result as JSON (`pcflow lint --format=json`):
/// schema "pcflow-lint" version 1, fixed key order, byte-deterministic.
/// Shape: { schema, schema_version, files_scanned, diagnostic_count,
/// diagnostics: [{file, line, col, rule, message}...] } with diagnostics in
/// the same (file, line, col, rule, message) order as the text report.
[[nodiscard]] std::string format_report_json(const RunResult& result);

/// Entry point shared by the standalone `pcflow-lint` binary and the
/// `pcflow lint` subcommand. Returns the process exit code: 0 clean,
/// 1 diagnostics found, 2 usage/IO error.
[[nodiscard]] int run_cli(int argc, const char* const* argv);

}  // namespace pcf::lint
