// Rule implementations for pcflow-lint. Each rule is a token-stream scanner:
// no preprocessor, no types — the rules reason about banned names, call
// shapes and class-body structure, which covers the bug classes that break
// bit-determinism without needing a compiler front end. Known lexical
// limitations (and the reasoning behind each rule's scope) are documented in
// docs/TESTING.md; the clang-tidy/cppcheck layer in CI backstops what a
// lexical pass cannot see.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <sstream>
#include <string>

#include "tools/lint/rules.hpp"

namespace pcf::lint::detail {
namespace {

using lex::Token;
using lex::TokenKind;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool path_in(std::string_view path, std::initializer_list<std::string_view> dirs) {
  return std::any_of(dirs.begin(), dirs.end(),
                     [&](std::string_view d) { return starts_with(path, d); });
}

/// The files that own the OS boundary by design: the loopback UDP socket
/// wrapper and the process-per-shard socket runtime (real sockets, real
/// clocks, fork/kill/waitpid — DESIGN.md §10). Everything else in
/// src/runtime (threaded runtime, mailbox, net-trial driver) must stay free
/// of syscalls and wall-clock reads so the boundary stays auditable in two
/// files. Prefix match covers .hpp and .cpp alike.
[[nodiscard]] bool is_socket_boundary(std::string_view path) {
  return starts_with(path, "src/runtime/socket_runtime.") ||
         starts_with(path, "src/runtime/udp.");
}

/// Files allowed to spawn raw threads: support/parallel.hpp's workers live in
/// the support layer (out of scope anyway); inside src/runtime the threaded
/// runtime and the socket boundary own their threads by design.
[[nodiscard]] bool is_thread_owner(std::string_view path) {
  return starts_with(path, "src/runtime/threaded_runtime.") || is_socket_boundary(path);
}

/// Deterministic paths for D1: the engines, protocol state machines,
/// topologies and the bench/chaos harnesses whose JSON is byte-compared.
/// src/runtime is included MINUS the explicit socket-boundary exemptions —
/// the threaded runtime and the net-trial driver are scheduler-dependent but
/// must still not read clocks or the environment themselves.
[[nodiscard]] bool is_d1_path(std::string_view path) {
  if (is_socket_boundary(path)) return false;
  return path_in(path, {"src/core/", "src/sim/", "src/net/", "src/bench/", "src/runtime/"});
}

/// D2 adds the threaded runtime and linalg: their results feed the same
/// oracles, so container iteration order must not leak there either.
[[nodiscard]] bool is_d2_path(std::string_view path) {
  return is_d1_path(path) || path_in(path, {"src/runtime/", "src/linalg/"});
}

/// The one module allowed to own std::random machinery.
[[nodiscard]] bool is_rng_home(std::string_view path) {
  return path == "src/support/rng.hpp" || path == "src/support/rng.cpp";
}

/// F1 float-keyword scope: the numeric state the accuracy claims are about.
[[nodiscard]] bool is_f1_state_path(std::string_view path) {
  return path_in(path, {"src/core/", "src/linalg/"});
}

/// Oracle / reference files compare against exact expected values by design.
[[nodiscard]] bool is_oracle_path(std::string_view path) {
  return starts_with(path, "src/sim/differential.") ||
         starts_with(path, "src/linalg/eigen_ref.");
}

void emit(std::vector<Diagnostic>& out, std::string_view path, const Token& tok, Rule rule,
          std::string message) {
  out.push_back({std::string(path), tok.line, tok.col, rule, std::move(message)});
}

[[nodiscard]] bool is_ident(const Token& tok, std::string_view text) noexcept {
  return tok.kind == TokenKind::kIdentifier && tok.text == text;
}

[[nodiscard]] bool is_punct(const Token& tok, std::string_view text) noexcept {
  return tok.kind == TokenKind::kPunct && tok.text == text;
}

/// True when tokens[i] is qualified as `std::name` or (global) `::name`.
[[nodiscard]] bool is_std_qualified(const std::vector<Token>& code, std::size_t i) noexcept {
  if (i < 1 || !is_punct(code[i - 1], "::")) return false;
  if (i < 2) return true;  // leading `::name`
  if (is_ident(code[i - 2], "std") || is_ident(code[i - 2], "chrono")) return true;
  return code[i - 2].kind != TokenKind::kIdentifier;  // `::name` after non-ident → global
}

// ---------------------------------------------------------------- D1 -------

/// Names that are nondeterministic however they are reached.
constexpr std::array<std::string_view, 3> kD1Always = {
    "system_clock", "steady_clock", "high_resolution_clock"};

/// C-library calls that read the environment or the wall clock. Flagged when
/// std::/::-qualified, or unqualified in call position (see below).
constexpr std::array<std::string_view, 9> kD1Calls = {
    "rand", "srand", "random", "time", "clock", "getenv", "gmtime", "localtime", "mktime"};

/// Call-position heuristic for unqualified uses of kD1Calls: `name(` counts
/// as a call unless it is a member access (`x.time()`), a qualified name in
/// another namespace, or a declaration (`double time() const`). Previous
/// tokens that indicate a declaration or member access veto the match;
/// statement/expression contexts confirm it.
[[nodiscard]] bool is_bare_call(const std::vector<Token>& code, std::size_t i) {
  if (i + 1 >= code.size() || !is_punct(code[i + 1], "(")) return false;
  if (i == 0) return true;  // file starts with the call — pathological but a call
  const Token& prev = code[i - 1];
  if (prev.kind == TokenKind::kPunct) {
    static constexpr std::array<std::string_view, 5> kVeto = {".", "->", "::", "*", "&"};
    return std::find(kVeto.begin(), kVeto.end(), prev.text) == kVeto.end();
  }
  if (prev.kind == TokenKind::kIdentifier) {
    // `return time(...)` is a call; `double time()` is a declaration.
    static constexpr std::array<std::string_view, 5> kCallKeywords = {"return", "co_return",
                                                                     "co_yield", "case", "throw"};
    return std::find(kCallKeywords.begin(), kCallKeywords.end(), prev.text) != kCallKeywords.end();
  }
  return false;
}

void rule_d1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_d1_path(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kD1Always.begin(), kD1Always.end(), tok.text) != kD1Always.end()) {
      std::ostringstream os;
      os << "wall-clock source `" << tok.text
         << "` in deterministic path (PerfCounters in support/perf.hpp is the sanctioned owner)";
      emit(out, path, tok, Rule::kD1, os.str());
      continue;
    }
    if (std::find(kD1Calls.begin(), kD1Calls.end(), tok.text) != kD1Calls.end() &&
        (is_std_qualified(code, i) || is_bare_call(code, i))) {
      std::ostringstream os;
      os << "nondeterminism source `" << tok.text
         << "` in deterministic path (seeded state must come from config, not "
            "the environment or the clock)";
      emit(out, path, tok, Rule::kD1, os.str());
    }
  }
}

// ---------------------------------------------------------------- D2 -------

constexpr std::array<std::string_view, 4> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

void rule_d2(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_d2_path(path)) return;
  for (const Token& tok : code) {
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kUnorderedContainers.begin(), kUnorderedContainers.end(), tok.text) !=
        kUnorderedContainers.end()) {
      std::ostringstream os;
      os << "`std::" << tok.text
         << "` in deterministic path: iteration order is implementation-defined and leaks into "
            "traces (use std::map / sorted vector, or suppress with a proof the order never "
            "escapes)";
      emit(out, path, tok, Rule::kD2, os.str());
    }
  }
}

// ---------------------------------------------------------------- D3 -------

constexpr std::array<std::string_view, 20> kStdRandomNames = {
    "mt19937",
    "mt19937_64",
    "minstd_rand",
    "minstd_rand0",
    "ranlux24",
    "ranlux48",
    "knuth_b",
    "default_random_engine",
    "random_device",
    "uniform_int_distribution",
    "uniform_real_distribution",
    "normal_distribution",
    "bernoulli_distribution",
    "binomial_distribution",
    "poisson_distribution",
    "exponential_distribution",
    "geometric_distribution",
    "discrete_distribution",
    "piecewise_constant_distribution",
    "piecewise_linear_distribution",
};

void rule_d3(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (is_rng_home(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kStdRandomNames.begin(), kStdRandomNames.end(), tok.text) !=
        kStdRandomNames.end()) {
      std::ostringstream os;
      os << "`std::" << tok.text
         << "` outside src/support/rng: std engines/distributions are implementation-defined; "
            "draw through the seeded pcf::Rng API to preserve the documented stream layout";
      emit(out, path, tok, Rule::kD3, os.str());
      continue;
    }
    // #include <random> — tokens are `#` `include` `<` `random` `>`
    if (is_ident(tok, "random") && i >= 3 && i + 1 < code.size() &&
        is_punct(code[i - 3], "#") && is_ident(code[i - 2], "include") &&
        is_punct(code[i - 1], "<") && is_punct(code[i + 1], ">")) {
      emit(out, path, tok, Rule::kD3,
           "#include <random> outside src/support/rng: all randomness flows through pcf::Rng");
    }
  }
}

// ---------------------------------------------------------------- D4 -------

/// Raw threading primitives banned from deterministic paths when
/// std::-qualified. Parallelism there must go through support/parallel.hpp:
/// its fixed contiguous work partition (resolve_thread_count +
/// parallel_for_index) is what keeps sharded engine output byte-identical to
/// serial. `async` and `thread` are common enough words that only the
/// qualified spelling is flagged; the include check below catches the rest.
constexpr std::array<std::string_view, 3> kD4Primitives = {"thread", "jthread", "async"};

/// Headers whose presence in a deterministic path means hand-rolled
/// concurrency, whatever it is spelled like.
constexpr std::array<std::string_view, 2> kD4Headers = {"thread", "future"};

void rule_d4(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_d1_path(path) || is_thread_owner(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kD4Primitives.begin(), kD4Primitives.end(), tok.text) != kD4Primitives.end() &&
        is_std_qualified(code, i)) {
      std::ostringstream os;
      os << "`std::" << tok.text
         << "` in deterministic path: raw threads make shard output order scheduler-dependent — "
            "use support/parallel.hpp (parallel_for_index over a fixed partition)";
      emit(out, path, tok, Rule::kD4, os.str());
      continue;
    }
    // #include <thread> / <future> — tokens are `#` `include` `<` name `>`
    if (std::find(kD4Headers.begin(), kD4Headers.end(), tok.text) != kD4Headers.end() &&
        i >= 3 && i + 1 < code.size() && is_punct(code[i - 3], "#") &&
        is_ident(code[i - 2], "include") && is_punct(code[i - 1], "<") &&
        is_punct(code[i + 1], ">")) {
      std::ostringstream os;
      os << "#include <" << tok.text
         << "> in deterministic path: concurrency there goes through support/parallel.hpp";
      emit(out, path, tok, Rule::kD4, os.str());
    }
  }
}

// ---------------------------------------------------------------- R1 -------

/// The fault-hook set every Reducer subclass must declare explicitly. The
/// base class gives on_link_up a benign no-op default — exactly the silent
/// inheritance that would let a new algorithm pass the differential harness
/// while ignoring recoveries, which is why declaration is mandatory.
constexpr std::array<std::string_view, 3> kRequiredHooks = {"on_link_down", "on_link_up",
                                                            "update_data"};

/// Skips a balanced `<...>` template argument list starting at `i` (which
/// must point at `<`). Returns the index one past the closing `>`. Treats
/// `>>` as two closers (C++11 rule).
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& code, std::size_t i) {
  int depth = 0;
  while (i < code.size()) {
    const Token& tok = code[i];
    if (is_punct(tok, "<")) {
      ++depth;
    } else if (is_punct(tok, ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(tok, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (is_punct(tok, ";") || is_punct(tok, "{")) {
      return i;  // malformed; bail out without consuming the body
    }
    ++i;
  }
  return i;
}

void rule_r1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!(is_ident(code[i], "class") || is_ident(code[i], "struct"))) continue;
    if (i > 0 && is_ident(code[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    if (j >= code.size() || code[j].kind != TokenKind::kIdentifier) continue;
    const Token& name = code[j];
    ++j;
    if (j < code.size() && is_ident(code[j], "final")) ++j;
    if (j >= code.size() || !is_punct(code[j], ":")) continue;  // no base clause
    ++j;

    // Walk the base-specifier list up to `{`; find whether any base's
    // terminal identifier (before its template args, after its qualifiers)
    // is `Reducer`.
    bool derives_reducer = false;
    std::string_view last_ident;
    while (j < code.size() && !is_punct(code[j], "{") && !is_punct(code[j], ";")) {
      const Token& tok = code[j];
      if (tok.kind == TokenKind::kIdentifier) {
        last_ident = tok.text;
        ++j;
      } else if (is_punct(tok, "<")) {
        j = skip_template_args(code, j);
        last_ident = {};  // a template base's own args are not the base name
      } else if (is_punct(tok, ",")) {
        if (last_ident == "Reducer") derives_reducer = true;
        last_ident = {};
        ++j;
      } else {
        ++j;
      }
    }
    if (last_ident == "Reducer") derives_reducer = true;
    if (!derives_reducer || j >= code.size() || !is_punct(code[j], "{")) continue;

    // Collect `ident (` declarators at class-body depth 1.
    std::vector<std::string_view> declared;
    int depth = 0;
    std::size_t k = j;
    for (; k < code.size(); ++k) {
      if (is_punct(code[k], "{")) {
        ++depth;
      } else if (is_punct(code[k], "}")) {
        if (--depth == 0) break;
      } else if (depth == 1 && code[k].kind == TokenKind::kIdentifier && k + 1 < code.size() &&
                 is_punct(code[k + 1], "(")) {
        declared.push_back(code[k].text);
      }
    }

    std::vector<std::string_view> missing;
    for (const auto hook : kRequiredHooks) {
      if (std::find(declared.begin(), declared.end(), hook) == declared.end()) {
        missing.push_back(hook);
      }
    }
    if (!missing.empty()) {
      std::ostringstream os;
      os << "class `" << name.text << "` derives from Reducer but does not declare ";
      for (std::size_t m = 0; m < missing.size(); ++m) {
        os << (m ? ", " : "") << missing[m];
      }
      os << " — a silently inherited no-op fault hook would pass the differential harness "
            "while ignoring faults";
      emit(out, path, name, Rule::kR1, os.str());
    }
    i = k;  // resume after the class body
  }
}

// ---------------------------------------------------------------- F1 -------

/// True for floating-point literals (contains '.', a decimal exponent, or a
/// hex-float 'p' exponent).
[[nodiscard]] bool is_float_literal(const Token& tok) noexcept {
  if (tok.kind != TokenKind::kNumber) return false;
  const bool hex = starts_with(tok.text, "0x") || starts_with(tok.text, "0X");
  for (const char c : tok.text) {
    if (c == '.') return true;
    if (!hex && (c == 'e' || c == 'E')) return true;
    if (hex && (c == 'p' || c == 'P')) return true;
  }
  return false;
}

[[nodiscard]] bool is_zero_literal(const Token& tok) {
  const std::string text(tok.text);
  // Exact comparison against 0.0 is the sentinel idiom F1 itself sanctions.
  return std::strtod(text.c_str(), nullptr) == 0.0;
}

void rule_f1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (is_f1_state_path(path)) {
    for (const Token& tok : code) {
      if (is_ident(tok, "float")) {
        emit(out, path, tok, Rule::kF1,
             "`float` in numeric-state path: the paper's accuracy claims are about double "
             "cancellation behavior — use double");
      }
    }
  }
  if (is_oracle_path(path)) return;  // oracles compare exact expected values by design
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!(is_punct(code[i], "==") || is_punct(code[i], "!="))) continue;
    for (const std::size_t side : {i - 1, i + 1}) {
      if (side >= code.size()) continue;
      const Token& operand = code[side];
      if (is_float_literal(operand) && !is_zero_literal(operand)) {
        std::ostringstream os;
        os << "`" << code[i].text << "` against floating literal " << operand.text
           << ": exact comparison is only sanctioned against the 0.0 sentinel — compare with a "
              "tolerance or restructure";
        emit(out, path, code[i], Rule::kF1, os.str());
        break;
      }
    }
  }
}

// ---------------------------------------------------------------- S1 -------

/// S1 scope: everything that must stay transport-agnostic — the algorithm,
/// engine, topology and harness layers, plus the rest of src/runtime outside
/// the two socket-boundary files.
[[nodiscard]] bool is_s1_path(std::string_view path) {
  if (is_socket_boundary(path)) return false;
  return path_in(path, {"src/core/", "src/sim/", "src/net/", "src/bench/", "src/linalg/",
                        "src/runtime/"});
}

/// POSIX socket/process calls. Flagged when ::-qualified or in bare call
/// position (member accesses like `server.poll()` stay clean — same veto
/// logic as D1's call heuristic).
constexpr std::array<std::string_view, 16> kS1Calls = {
    "socket",  "sendto",  "recvfrom", "recvmsg", "sendmsg",   "setsockopt",
    "getsockname", "poll", "select",  "fork",    "vfork",     "execve",
    "waitpid", "kill",    "sigaction", "signal"};

/// Headers whose inclusion means OS-boundary code, however the calls are
/// spelled. (std::bind makes the `bind` identifier unflaggable, so the
/// <sys/socket.h> include is what catches hand-rolled binds.)
constexpr std::array<std::string_view, 12> kS1Headers = {
    "sys/socket.h", "netinet/in.h", "netinet/tcp.h", "arpa/inet.h",
    "poll.h",       "sys/poll.h",   "sys/select.h",  "sys/epoll.h",
    "sys/wait.h",   "unistd.h",     "signal.h",      "csignal"};

/// Reassembles the header name of an `#include <...>` whose `<` is at
/// code[i]; empty when code[i] does not open an include.
[[nodiscard]] std::string include_header_at(const std::vector<Token>& code, std::size_t i) {
  if (i < 2 || !is_punct(code[i], "<") || !is_ident(code[i - 1], "include") ||
      !is_punct(code[i - 2], "#")) {
    return {};
  }
  std::string header;
  for (std::size_t j = i + 1; j < code.size() && !is_punct(code[j], ">"); ++j) {
    header += code[j].text;
  }
  return header;
}

void rule_s1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_s1_path(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind == TokenKind::kPunct) {
      const std::string header = include_header_at(code, i);
      if (!header.empty() &&
          std::find(kS1Headers.begin(), kS1Headers.end(), header) != kS1Headers.end()) {
        std::ostringstream os;
        os << "#include <" << header
           << "> outside the socket boundary: OS transport/process code lives only in "
              "src/runtime/{udp,socket_runtime} so every other layer stays transport-agnostic";
        emit(out, path, tok, Rule::kS1, os.str());
      }
      continue;
    }
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kS1Calls.begin(), kS1Calls.end(), tok.text) != kS1Calls.end() &&
        (is_std_qualified(code, i) || is_bare_call(code, i))) {
      std::ostringstream os;
      os << "syscall `" << tok.text
         << "` outside the socket boundary: sockets, clocks-of-the-kernel and process "
            "control belong to src/runtime/{udp,socket_runtime} only";
      emit(out, path, tok, Rule::kS1, os.str());
    }
  }
}

}  // namespace

void run_rules(std::string_view path, const std::vector<Token>& code, const Options& options,
               std::vector<Diagnostic>& out) {
  if (options.rule_enabled(Rule::kD1)) rule_d1(path, code, out);
  if (options.rule_enabled(Rule::kD2)) rule_d2(path, code, out);
  if (options.rule_enabled(Rule::kD3)) rule_d3(path, code, out);
  if (options.rule_enabled(Rule::kD4)) rule_d4(path, code, out);
  if (options.rule_enabled(Rule::kR1)) rule_r1(path, code, out);
  if (options.rule_enabled(Rule::kF1)) rule_f1(path, code, out);
  if (options.rule_enabled(Rule::kS1)) rule_s1(path, code, out);
}

}  // namespace pcf::lint::detail
