// Rule implementations for pcflow-lint. Each rule is a token-stream scanner:
// no preprocessor, no types — the rules reason about banned names, call
// shapes and class-body structure, which covers the bug classes that break
// bit-determinism without needing a compiler front end. Known lexical
// limitations (and the reasoning behind each rule's scope) are documented in
// docs/TESTING.md; the clang-tidy/cppcheck layer in CI backstops what a
// lexical pass cannot see.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "tools/lint/rules.hpp"

namespace pcf::lint::detail {
namespace {

using lex::Token;
using lex::TokenKind;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool path_in(std::string_view path, std::initializer_list<std::string_view> dirs) {
  return std::any_of(dirs.begin(), dirs.end(),
                     [&](std::string_view d) { return starts_with(path, d); });
}

/// The files that own the OS boundary by design: the loopback UDP socket
/// wrapper and the process-per-shard socket runtime (real sockets, real
/// clocks, fork/kill/waitpid — DESIGN.md §10). Everything else in
/// src/runtime (threaded runtime, mailbox, net-trial driver) must stay free
/// of syscalls and wall-clock reads so the boundary stays auditable in two
/// files. Prefix match covers .hpp and .cpp alike.
[[nodiscard]] bool is_socket_boundary(std::string_view path) {
  return starts_with(path, "src/runtime/socket_runtime.") ||
         starts_with(path, "src/runtime/udp.");
}

/// Files allowed to spawn raw threads: support/parallel.hpp's workers live in
/// the support layer (out of scope anyway); inside src/runtime the threaded
/// runtime and the socket boundary own their threads by design.
[[nodiscard]] bool is_thread_owner(std::string_view path) {
  return starts_with(path, "src/runtime/threaded_runtime.") || is_socket_boundary(path);
}

/// Deterministic paths for D1: the engines, protocol state machines,
/// topologies and the bench/chaos harnesses whose JSON is byte-compared.
/// src/runtime is included MINUS the explicit socket-boundary exemptions —
/// the threaded runtime and the net-trial driver are scheduler-dependent but
/// must still not read clocks or the environment themselves.
[[nodiscard]] bool is_d1_path(std::string_view path) {
  if (is_socket_boundary(path)) return false;
  return path_in(path, {"src/core/", "src/sim/", "src/net/", "src/bench/", "src/runtime/"});
}

/// D2 adds the threaded runtime and linalg: their results feed the same
/// oracles, so container iteration order must not leak there either.
[[nodiscard]] bool is_d2_path(std::string_view path) {
  return is_d1_path(path) || path_in(path, {"src/runtime/", "src/linalg/"});
}

/// The one module allowed to own std::random machinery.
[[nodiscard]] bool is_rng_home(std::string_view path) {
  return path == "src/support/rng.hpp" || path == "src/support/rng.cpp";
}

/// F1 float-keyword scope: the numeric state the accuracy claims are about.
[[nodiscard]] bool is_f1_state_path(std::string_view path) {
  return path_in(path, {"src/core/", "src/linalg/"});
}

/// Oracle / reference files compare against exact expected values by design.
[[nodiscard]] bool is_oracle_path(std::string_view path) {
  return starts_with(path, "src/sim/differential.") ||
         starts_with(path, "src/linalg/eigen_ref.");
}

void emit(std::vector<Diagnostic>& out, std::string_view path, const Token& tok, Rule rule,
          std::string message) {
  out.push_back({std::string(path), tok.line, tok.col, rule, std::move(message)});
}

[[nodiscard]] bool is_ident(const Token& tok, std::string_view text) noexcept {
  return tok.kind == TokenKind::kIdentifier && tok.text == text;
}

[[nodiscard]] bool is_punct(const Token& tok, std::string_view text) noexcept {
  return tok.kind == TokenKind::kPunct && tok.text == text;
}

/// True when tokens[i] is qualified as `std::name` or (global) `::name`.
[[nodiscard]] bool is_std_qualified(const std::vector<Token>& code, std::size_t i) noexcept {
  if (i < 1 || !is_punct(code[i - 1], "::")) return false;
  if (i < 2) return true;  // leading `::name`
  if (is_ident(code[i - 2], "std") || is_ident(code[i - 2], "chrono")) return true;
  return code[i - 2].kind != TokenKind::kIdentifier;  // `::name` after non-ident → global
}

// ---------------------------------------------------------------- D1 -------

/// Names that are nondeterministic however they are reached.
constexpr std::array<std::string_view, 3> kD1Always = {
    "system_clock", "steady_clock", "high_resolution_clock"};

/// C-library calls that read the environment or the wall clock. Flagged when
/// std::/::-qualified, or unqualified in call position (see below).
constexpr std::array<std::string_view, 9> kD1Calls = {
    "rand", "srand", "random", "time", "clock", "getenv", "gmtime", "localtime", "mktime"};

/// Call-position heuristic for unqualified uses of kD1Calls: `name(` counts
/// as a call unless it is a member access (`x.time()`), a qualified name in
/// another namespace, or a declaration (`double time() const`). Previous
/// tokens that indicate a declaration or member access veto the match;
/// statement/expression contexts confirm it.
[[nodiscard]] bool is_bare_call(const std::vector<Token>& code, std::size_t i) {
  if (i + 1 >= code.size() || !is_punct(code[i + 1], "(")) return false;
  if (i == 0) return true;  // file starts with the call — pathological but a call
  const Token& prev = code[i - 1];
  if (prev.kind == TokenKind::kPunct) {
    static constexpr std::array<std::string_view, 5> kVeto = {".", "->", "::", "*", "&"};
    return std::find(kVeto.begin(), kVeto.end(), prev.text) == kVeto.end();
  }
  if (prev.kind == TokenKind::kIdentifier) {
    // `return time(...)` is a call; `double time()` is a declaration.
    static constexpr std::array<std::string_view, 5> kCallKeywords = {"return", "co_return",
                                                                     "co_yield", "case", "throw"};
    return std::find(kCallKeywords.begin(), kCallKeywords.end(), prev.text) != kCallKeywords.end();
  }
  return false;
}

void rule_d1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_d1_path(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kD1Always.begin(), kD1Always.end(), tok.text) != kD1Always.end()) {
      std::ostringstream os;
      os << "wall-clock source `" << tok.text
         << "` in deterministic path (PerfCounters in support/perf.hpp is the sanctioned owner)";
      emit(out, path, tok, Rule::kD1, os.str());
      continue;
    }
    if (std::find(kD1Calls.begin(), kD1Calls.end(), tok.text) != kD1Calls.end() &&
        (is_std_qualified(code, i) || is_bare_call(code, i))) {
      std::ostringstream os;
      os << "nondeterminism source `" << tok.text
         << "` in deterministic path (seeded state must come from config, not "
            "the environment or the clock)";
      emit(out, path, tok, Rule::kD1, os.str());
    }
  }
}

// ---------------------------------------------------------------- D2 -------

constexpr std::array<std::string_view, 4> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

void rule_d2(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_d2_path(path)) return;
  for (const Token& tok : code) {
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kUnorderedContainers.begin(), kUnorderedContainers.end(), tok.text) !=
        kUnorderedContainers.end()) {
      std::ostringstream os;
      os << "`std::" << tok.text
         << "` in deterministic path: iteration order is implementation-defined and leaks into "
            "traces (use std::map / sorted vector, or suppress with a proof the order never "
            "escapes)";
      emit(out, path, tok, Rule::kD2, os.str());
    }
  }
}

// ---------------------------------------------------------------- D3 -------

constexpr std::array<std::string_view, 20> kStdRandomNames = {
    "mt19937",
    "mt19937_64",
    "minstd_rand",
    "minstd_rand0",
    "ranlux24",
    "ranlux48",
    "knuth_b",
    "default_random_engine",
    "random_device",
    "uniform_int_distribution",
    "uniform_real_distribution",
    "normal_distribution",
    "bernoulli_distribution",
    "binomial_distribution",
    "poisson_distribution",
    "exponential_distribution",
    "geometric_distribution",
    "discrete_distribution",
    "piecewise_constant_distribution",
    "piecewise_linear_distribution",
};

void rule_d3(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (is_rng_home(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kStdRandomNames.begin(), kStdRandomNames.end(), tok.text) !=
        kStdRandomNames.end()) {
      std::ostringstream os;
      os << "`std::" << tok.text
         << "` outside src/support/rng: std engines/distributions are implementation-defined; "
            "draw through the seeded pcf::Rng API to preserve the documented stream layout";
      emit(out, path, tok, Rule::kD3, os.str());
      continue;
    }
    // #include <random> — tokens are `#` `include` `<` `random` `>`
    if (is_ident(tok, "random") && i >= 3 && i + 1 < code.size() &&
        is_punct(code[i - 3], "#") && is_ident(code[i - 2], "include") &&
        is_punct(code[i - 1], "<") && is_punct(code[i + 1], ">")) {
      emit(out, path, tok, Rule::kD3,
           "#include <random> outside src/support/rng: all randomness flows through pcf::Rng");
    }
  }
}

// ---------------------------------------------------------------- D4 -------

/// Raw threading primitives banned from deterministic paths when
/// std::-qualified. Parallelism there must go through support/parallel.hpp:
/// its fixed contiguous work partition (resolve_thread_count +
/// parallel_for_index) is what keeps sharded engine output byte-identical to
/// serial. `async` and `thread` are common enough words that only the
/// qualified spelling is flagged; the include check below catches the rest.
constexpr std::array<std::string_view, 3> kD4Primitives = {"thread", "jthread", "async"};

/// Headers whose presence in a deterministic path means hand-rolled
/// concurrency, whatever it is spelled like.
constexpr std::array<std::string_view, 2> kD4Headers = {"thread", "future"};

void rule_d4(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_d1_path(path) || is_thread_owner(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kD4Primitives.begin(), kD4Primitives.end(), tok.text) != kD4Primitives.end() &&
        is_std_qualified(code, i)) {
      std::ostringstream os;
      os << "`std::" << tok.text
         << "` in deterministic path: raw threads make shard output order scheduler-dependent — "
            "use support/parallel.hpp (parallel_for_index over a fixed partition)";
      emit(out, path, tok, Rule::kD4, os.str());
      continue;
    }
    // #include <thread> / <future> — tokens are `#` `include` `<` name `>`
    if (std::find(kD4Headers.begin(), kD4Headers.end(), tok.text) != kD4Headers.end() &&
        i >= 3 && i + 1 < code.size() && is_punct(code[i - 3], "#") &&
        is_ident(code[i - 2], "include") && is_punct(code[i - 1], "<") &&
        is_punct(code[i + 1], ">")) {
      std::ostringstream os;
      os << "#include <" << tok.text
         << "> in deterministic path: concurrency there goes through support/parallel.hpp";
      emit(out, path, tok, Rule::kD4, os.str());
    }
  }
}

// ---------------------------------------------------------------- R1 -------

/// The fault-hook set every Reducer subclass must declare explicitly. The
/// base class gives on_link_up a benign no-op default — exactly the silent
/// inheritance that would let a new algorithm pass the differential harness
/// while ignoring recoveries, which is why declaration is mandatory.
constexpr std::array<std::string_view, 3> kRequiredHooks = {"on_link_down", "on_link_up",
                                                            "update_data"};

/// Skips a balanced `<...>` template argument list starting at `i` (which
/// must point at `<`). Returns the index one past the closing `>`. Treats
/// `>>` as two closers (C++11 rule).
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& code, std::size_t i) {
  int depth = 0;
  while (i < code.size()) {
    const Token& tok = code[i];
    if (is_punct(tok, "<")) {
      ++depth;
    } else if (is_punct(tok, ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(tok, ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (is_punct(tok, ";") || is_punct(tok, "{")) {
      return i;  // malformed; bail out without consuming the body
    }
    ++i;
  }
  return i;
}

void rule_r1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!(is_ident(code[i], "class") || is_ident(code[i], "struct"))) continue;
    if (i > 0 && is_ident(code[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    if (j >= code.size() || code[j].kind != TokenKind::kIdentifier) continue;
    const Token& name = code[j];
    ++j;
    if (j < code.size() && is_ident(code[j], "final")) ++j;
    if (j >= code.size() || !is_punct(code[j], ":")) continue;  // no base clause
    ++j;

    // Walk the base-specifier list up to `{`; find whether any base's
    // terminal identifier (before its template args, after its qualifiers)
    // is `Reducer`.
    bool derives_reducer = false;
    std::string_view last_ident;
    while (j < code.size() && !is_punct(code[j], "{") && !is_punct(code[j], ";")) {
      const Token& tok = code[j];
      if (tok.kind == TokenKind::kIdentifier) {
        last_ident = tok.text;
        ++j;
      } else if (is_punct(tok, "<")) {
        j = skip_template_args(code, j);
        last_ident = {};  // a template base's own args are not the base name
      } else if (is_punct(tok, ",")) {
        if (last_ident == "Reducer") derives_reducer = true;
        last_ident = {};
        ++j;
      } else {
        ++j;
      }
    }
    if (last_ident == "Reducer") derives_reducer = true;
    if (!derives_reducer || j >= code.size() || !is_punct(code[j], "{")) continue;

    // Collect `ident (` declarators at class-body depth 1.
    std::vector<std::string_view> declared;
    int depth = 0;
    std::size_t k = j;
    for (; k < code.size(); ++k) {
      if (is_punct(code[k], "{")) {
        ++depth;
      } else if (is_punct(code[k], "}")) {
        if (--depth == 0) break;
      } else if (depth == 1 && code[k].kind == TokenKind::kIdentifier && k + 1 < code.size() &&
                 is_punct(code[k + 1], "(")) {
        declared.push_back(code[k].text);
      }
    }

    std::vector<std::string_view> missing;
    for (const auto hook : kRequiredHooks) {
      if (std::find(declared.begin(), declared.end(), hook) == declared.end()) {
        missing.push_back(hook);
      }
    }
    if (!missing.empty()) {
      std::ostringstream os;
      os << "class `" << name.text << "` derives from Reducer but does not declare ";
      for (std::size_t m = 0; m < missing.size(); ++m) {
        os << (m ? ", " : "") << missing[m];
      }
      os << " — a silently inherited no-op fault hook would pass the differential harness "
            "while ignoring faults";
      emit(out, path, name, Rule::kR1, os.str());
    }
    i = k;  // resume after the class body
  }
}

// ---------------------------------------------------------------- F1 -------

/// True for floating-point literals (contains '.', a decimal exponent, or a
/// hex-float 'p' exponent).
[[nodiscard]] bool is_float_literal(const Token& tok) noexcept {
  if (tok.kind != TokenKind::kNumber) return false;
  const bool hex = starts_with(tok.text, "0x") || starts_with(tok.text, "0X");
  for (const char c : tok.text) {
    if (c == '.') return true;
    if (!hex && (c == 'e' || c == 'E')) return true;
    if (hex && (c == 'p' || c == 'P')) return true;
  }
  return false;
}

[[nodiscard]] bool is_zero_literal(const Token& tok) {
  const std::string text(tok.text);
  // Exact comparison against 0.0 is the sentinel idiom F1 itself sanctions.
  return std::strtod(text.c_str(), nullptr) == 0.0;
}

void rule_f1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (is_f1_state_path(path)) {
    for (const Token& tok : code) {
      if (is_ident(tok, "float")) {
        emit(out, path, tok, Rule::kF1,
             "`float` in numeric-state path: the paper's accuracy claims are about double "
             "cancellation behavior — use double");
      }
    }
  }
  if (is_oracle_path(path)) return;  // oracles compare exact expected values by design
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!(is_punct(code[i], "==") || is_punct(code[i], "!="))) continue;
    for (const std::size_t side : {i - 1, i + 1}) {
      if (side >= code.size()) continue;
      const Token& operand = code[side];
      if (is_float_literal(operand) && !is_zero_literal(operand)) {
        std::ostringstream os;
        os << "`" << code[i].text << "` against floating literal " << operand.text
           << ": exact comparison is only sanctioned against the 0.0 sentinel — compare with a "
              "tolerance or restructure";
        emit(out, path, code[i], Rule::kF1, os.str());
        break;
      }
    }
  }
}

// ---------------------------------------------------------------- S1 -------

/// S1 scope: everything that must stay transport-agnostic — the algorithm,
/// engine, topology and harness layers, plus the rest of src/runtime outside
/// the two socket-boundary files.
[[nodiscard]] bool is_s1_path(std::string_view path) {
  if (is_socket_boundary(path)) return false;
  return path_in(path, {"src/core/", "src/sim/", "src/net/", "src/bench/", "src/linalg/",
                        "src/runtime/"});
}

/// POSIX socket/process calls. Flagged when ::-qualified or in bare call
/// position (member accesses like `server.poll()` stay clean — same veto
/// logic as D1's call heuristic).
constexpr std::array<std::string_view, 16> kS1Calls = {
    "socket",  "sendto",  "recvfrom", "recvmsg", "sendmsg",   "setsockopt",
    "getsockname", "poll", "select",  "fork",    "vfork",     "execve",
    "waitpid", "kill",    "sigaction", "signal"};

/// Headers whose inclusion means OS-boundary code, however the calls are
/// spelled. (std::bind makes the `bind` identifier unflaggable, so the
/// <sys/socket.h> include is what catches hand-rolled binds.)
constexpr std::array<std::string_view, 12> kS1Headers = {
    "sys/socket.h", "netinet/in.h", "netinet/tcp.h", "arpa/inet.h",
    "poll.h",       "sys/poll.h",   "sys/select.h",  "sys/epoll.h",
    "sys/wait.h",   "unistd.h",     "signal.h",      "csignal"};

/// Reassembles the header name of an `#include <...>` whose `<` is at
/// code[i]; empty when code[i] does not open an include.
[[nodiscard]] std::string include_header_at(const std::vector<Token>& code, std::size_t i) {
  if (i < 2 || !is_punct(code[i], "<") || !is_ident(code[i - 1], "include") ||
      !is_punct(code[i - 2], "#")) {
    return {};
  }
  std::string header;
  for (std::size_t j = i + 1; j < code.size() && !is_punct(code[j], ">"); ++j) {
    header += code[j].text;
  }
  return header;
}

void rule_s1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_s1_path(path)) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& tok = code[i];
    if (tok.kind == TokenKind::kPunct) {
      const std::string header = include_header_at(code, i);
      if (!header.empty() &&
          std::find(kS1Headers.begin(), kS1Headers.end(), header) != kS1Headers.end()) {
        std::ostringstream os;
        os << "#include <" << header
           << "> outside the socket boundary: OS transport/process code lives only in "
              "src/runtime/{udp,socket_runtime} so every other layer stays transport-agnostic";
        emit(out, path, tok, Rule::kS1, os.str());
      }
      continue;
    }
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (std::find(kS1Calls.begin(), kS1Calls.end(), tok.text) != kS1Calls.end() &&
        (is_std_qualified(code, i) || is_bare_call(code, i))) {
      std::ostringstream os;
      os << "syscall `" << tok.text
         << "` outside the socket boundary: sockets, clocks-of-the-kernel and process "
            "control belong to src/runtime/{udp,socket_runtime} only";
      emit(out, path, tok, Rule::kS1, os.str());
    }
  }
}

// ---------------------------------------------------------------- L1 -------

/// A file's place in the layer DAG. Ranks mirror the CMake target graph:
/// an include may only point at an equal or lower rank. src/net splits in
/// two because the build splits it in two: topology/tree_schedule are pure
/// graph data structures BELOW core (pcf_core links pcf_net), while
/// transport.* frames core::Packet and sits ABOVE core (pcf_transport links
/// pcf_core). Rank -1 = outside the layered tree (no band check).
struct Layer {
  std::string_view name;
  int rank = -1;
};

[[nodiscard]] Layer layer_of(std::string_view path) {
  if (starts_with(path, "src/support/")) return {"support", 0};
  if (starts_with(path, "src/net/transport.")) return {"net.transport", 3};
  if (starts_with(path, "src/net/")) return {"net.graph", 1};
  if (starts_with(path, "src/core/")) return {"core", 2};
  if (starts_with(path, "src/sim/")) return {"sim", 3};
  if (starts_with(path, "src/linalg/")) return {"linalg", 3};
  if (starts_with(path, "src/runtime/")) return {"runtime", 4};
  if (starts_with(path, "src/bench/")) return {"bench", 4};
  if (starts_with(path, "src/tools/")) return {"tools", 4};
  if (starts_with(path, "bench/")) return {"bench-harness", 5};
  if (starts_with(path, "examples/")) return {"examples", 5};
  return {};
}

/// Strips the surrounding quotes off a kString token holding an include path;
/// empty when the token is not a quoted string.
[[nodiscard]] std::string_view include_target(const Token& tok) noexcept {
  std::string_view text = tok.text;
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') return {};
  return text.substr(1, text.size() - 2);
}

void rule_l1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  const Layer from = layer_of(path);
  if (from.rank < 0) return;
  for (std::size_t i = 2; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kString || !is_ident(code[i - 1], "include") ||
        !is_punct(code[i - 2], "#")) {
      continue;
    }
    const std::string_view target = include_target(code[i]);
    if (target.empty()) continue;
    const Layer to = layer_of("src/" + std::string(target));
    if (to.rank < 0 || to.rank <= from.rank) continue;
    std::ostringstream os;
    os << "layering violation: `" << from.name << "` includes \"" << target << "\" (layer `"
       << to.name << "`); the layer DAG is support -> net.graph -> core -> "
          "{net.transport, sim, linalg} -> {runtime, bench, tools}";
    emit(out, path, code[i], Rule::kL1, os.str());
  }
}

// ---------------------------------------------------------------- T1 -------

/// T1 scope: the concurrent runtime plus the one concurrent support header.
[[nodiscard]] bool is_t1_path(std::string_view path) {
  return starts_with(path, "src/runtime/") || path == "src/support/parallel.hpp";
}

/// Member tokens that make a declaration a synchronization primitive —
/// std types plus the annotated pcf::Mutex wrapper.
constexpr std::array<std::string_view, 7> kT1SyncNames = {
    "mutex",    "shared_mutex",       "recursive_mutex",       "timed_mutex",
    "Mutex",    "condition_variable", "condition_variable_any"};

/// How far (in tokens of the original stream) past a sync member the
/// guarded-by requirement reaches. Skipped function bodies still count
/// toward the distance, so the window decays naturally inside big classes.
constexpr std::size_t kT1Window = 40;

/// Index one past the matching `}` for the `{` at `i`.
[[nodiscard]] std::size_t skip_braces(const std::vector<Token>& code, std::size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (is_punct(code[i], "{")) ++depth;
    if (is_punct(code[i], "}") && --depth == 0) return i + 1;
  }
  return i;
}

/// One class-body member declaration, split on `;` / skipped bodies.
struct MemberChunk {
  std::vector<const Token*> tokens;  ///< brace-skipped bodies excluded
  std::size_t begin = 0;             ///< original-stream index of first token
};

[[nodiscard]] bool chunk_has_ident(const MemberChunk& chunk, std::string_view name) {
  return std::any_of(chunk.tokens.begin(), chunk.tokens.end(),
                     [&](const Token* t) { return is_ident(*t, name); });
}

[[nodiscard]] bool chunk_is_sync(const MemberChunk& chunk) {
  return std::any_of(chunk.tokens.begin(), chunk.tokens.end(), [](const Token* t) {
    return t->kind == TokenKind::kIdentifier &&
           std::find(kT1SyncNames.begin(), kT1SyncNames.end(), t->text) != kT1SyncNames.end();
  });
}

/// Chunks that cannot (or need not) carry PCF_GUARDED_BY: nested type
/// definitions, aliases, functions (anything with a parameter list), and
/// atomics — atomics are their own synchronization story.
[[nodiscard]] bool chunk_is_exempt(const MemberChunk& chunk) {
  if (chunk.tokens.empty()) return true;
  static constexpr std::array<std::string_view, 9> kDeclKeywords = {
      "struct", "class", "enum", "union", "using", "friend", "typedef", "template", "static"};
  if (chunk.tokens.front()->kind == TokenKind::kIdentifier &&
      std::find(kDeclKeywords.begin(), kDeclKeywords.end(), chunk.tokens.front()->text) !=
          kDeclKeywords.end()) {
    return true;
  }
  if (std::any_of(chunk.tokens.begin(), chunk.tokens.end(),
                  [](const Token* t) { return is_punct(*t, "("); })) {
    return true;  // function-ish (declaration, definition or ctor)
  }
  return chunk_has_ident(chunk, "atomic");
}

/// The declared name: last identifier at template depth 0 before an
/// initializer. Falls back to the first token for pathological chunks.
[[nodiscard]] const Token* chunk_name(const MemberChunk& chunk) {
  const Token* name = chunk.tokens.front();
  int angle_depth = 0;
  for (const Token* t : chunk.tokens) {
    if (is_punct(*t, "<")) ++angle_depth;
    if (is_punct(*t, ">")) --angle_depth;
    if (is_punct(*t, ">>")) angle_depth -= 2;
    if (is_punct(*t, "=") || is_punct(*t, "{")) break;
    if (angle_depth <= 0 && t->kind == TokenKind::kIdentifier) name = t;
  }
  return name;
}

/// Scans one class body (code[open] == `{`); returns the index one past the
/// closing `}`. Recurses into nested class/struct/union definitions.
std::size_t t1_scan_class_body(std::string_view path, const std::vector<Token>& code,
                               std::size_t open, std::vector<Diagnostic>& out) {
  // No sync member seen yet: npos disarms the window.
  std::size_t anchor = std::string_view::npos;
  MemberChunk chunk;
  const auto flush = [&](std::size_t end_index) {
    // Leading access specifiers belong to the section, not the member.
    while (chunk.tokens.size() >= 2 &&
           (is_ident(*chunk.tokens[0], "public") || is_ident(*chunk.tokens[0], "private") ||
            is_ident(*chunk.tokens[0], "protected")) &&
           is_punct(*chunk.tokens[1], ":")) {
      chunk.tokens.erase(chunk.tokens.begin(), chunk.tokens.begin() + 2);
      if (!chunk.tokens.empty()) chunk.begin += 2;
    }
    if (chunk.tokens.empty()) return;
    if (chunk_is_sync(chunk)) {
      anchor = end_index;
    } else if (anchor != std::string_view::npos && chunk.begin - anchor <= kT1Window &&
               !chunk_is_exempt(chunk) && !chunk_has_ident(chunk, "PCF_GUARDED_BY") &&
               !chunk_has_ident(chunk, "PCF_PT_GUARDED_BY")) {
      const Token* name = chunk_name(chunk);
      std::ostringstream os;
      os << "member `" << name->text << "` sits within " << kT1Window
         << " tokens of a mutex/condition_variable member but carries no PCF_GUARDED_BY — "
            "annotate which lock guards it (support/annotations.hpp) or move it out of the "
            "lock cluster";
      emit(out, path, *name, Rule::kT1, os.str());
    }
  };

  std::size_t i = open + 1;
  while (i < code.size() && !is_punct(code[i], "}")) {
    const Token& tok = code[i];
    if (is_punct(tok, ";")) {
      flush(i);
      chunk = {};
      ++i;
      continue;
    }
    if (is_punct(tok, "{")) {
      const bool nested_type =
          !chunk.tokens.empty() && chunk.tokens.front()->kind == TokenKind::kIdentifier &&
          (chunk.tokens.front()->text == "struct" || chunk.tokens.front()->text == "class" ||
           chunk.tokens.front()->text == "union");
      if (nested_type) {
        i = t1_scan_class_body(path, code, i, out);
      } else {
        i = skip_braces(code, i);  // function body or brace initializer
      }
      continue;  // the chunk keeps accumulating until `;` (or ends unterminated)
    }
    if (chunk.tokens.empty()) chunk.begin = i;
    chunk.tokens.push_back(&tok);
    ++i;
  }
  flush(i);
  return i < code.size() ? i + 1 : i;
}

void rule_t1(std::string_view path, const std::vector<Token>& code,
             std::vector<Diagnostic>& out) {
  if (!is_t1_path(path)) return;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (is_ident(code[i], "template") && is_punct(code[i + 1], "<")) {
      i = skip_template_args(code, i + 1) - 1;  // `class T` here is not a definition
      continue;
    }
    if (!(is_ident(code[i], "class") || is_ident(code[i], "struct")) ||
        (i > 0 && is_ident(code[i - 1], "enum"))) {
      continue;
    }
    if (code[i + 1].kind != TokenKind::kIdentifier) continue;
    // Walk to the body `{`, skipping base clauses; bail on `;` (forward
    // declaration) or `(` (elaborated type in a declarator).
    std::size_t j = i + 2;
    bool found_body = false;
    while (j < code.size()) {
      if (is_punct(code[j], "{")) {
        found_body = true;
        break;
      }
      if (is_punct(code[j], ";") || is_punct(code[j], "(")) break;
      if (is_punct(code[j], "<")) {
        j = skip_template_args(code, j);
        continue;
      }
      ++j;
    }
    if (!found_body) continue;
    i = t1_scan_class_body(path, code, j, out) - 1;
  }
}

}  // namespace

void run_rules(std::string_view path, const std::vector<Token>& code, const Options& options,
               std::vector<Diagnostic>& out) {
  if (options.rule_enabled(Rule::kD1)) rule_d1(path, code, out);
  if (options.rule_enabled(Rule::kD2)) rule_d2(path, code, out);
  if (options.rule_enabled(Rule::kD3)) rule_d3(path, code, out);
  if (options.rule_enabled(Rule::kD4)) rule_d4(path, code, out);
  if (options.rule_enabled(Rule::kR1)) rule_r1(path, code, out);
  if (options.rule_enabled(Rule::kF1)) rule_f1(path, code, out);
  if (options.rule_enabled(Rule::kS1)) rule_s1(path, code, out);
  if (options.rule_enabled(Rule::kL1)) rule_l1(path, code, out);
  if (options.rule_enabled(Rule::kT1)) rule_t1(path, code, out);
}

std::vector<IncludeRef> collect_includes(const std::vector<Token>& tokens) {
  std::vector<IncludeRef> out;
  std::vector<const Token*> code;
  code.reserve(tokens.size());
  for (const Token& tok : tokens) {
    if (tok.kind != TokenKind::kComment) code.push_back(&tok);
  }
  for (std::size_t i = 2; i < code.size(); ++i) {
    if (code[i]->kind != TokenKind::kString || !is_ident(*code[i - 1], "include") ||
        !is_punct(*code[i - 2], "#")) {
      continue;
    }
    const std::string_view target = include_target(*code[i]);
    if (!target.empty()) {
      out.push_back({std::string(target), code[i]->line, code[i]->col});
    }
  }
  return out;
}

void check_include_cycles(
    const std::vector<std::pair<std::string, std::vector<IncludeRef>>>& files,
    std::vector<Diagnostic>& out) {
  std::vector<std::size_t> order(files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return files[a].first < files[b].first; });

  std::map<std::string_view, std::size_t> index;
  for (const std::size_t i : order) index.emplace(files[i].first, i);
  const auto resolve = [&](std::string_view from, const std::string& target) {
    const std::size_t slash = from.rfind('/');
    const std::string sibling =
        slash == std::string_view::npos ? target : std::string(from.substr(0, slash + 1)) + target;
    for (const std::string& candidate : {"src/" + target, sibling, target}) {
      const auto it = index.find(candidate);
      if (it != index.end()) return it->second;
    }
    return files.size();  // not part of the scanned set (system/external)
  };

  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::vector<std::size_t> stack;
  const auto dfs = [&](auto&& self, std::size_t u) -> void {
    color[u] = Color::kGray;
    stack.push_back(u);
    for (const IncludeRef& inc : files[u].second) {
      const std::size_t v = resolve(files[u].first, inc.target);
      if (v >= files.size()) continue;
      if (color[v] == Color::kGray) {
        std::ostringstream os;
        os << "include cycle: ";
        for (auto it = std::find(stack.begin(), stack.end(), v); it != stack.end(); ++it) {
          os << files[*it].first << " -> ";
        }
        os << files[v].first << " (the layer DAG must stay acyclic)";
        out.push_back({files[u].first, inc.line, inc.col, Rule::kL1, os.str()});
      } else if (color[v] == Color::kWhite) {
        self(self, v);
      }
    }
    stack.pop_back();
    color[u] = Color::kBlack;
  };
  for (const std::size_t i : order) {
    if (color[i] == Color::kWhite) dfs(dfs, i);
  }
}

}  // namespace pcf::lint::detail
