// pcflow-lint — standalone entry point. `pcflow lint` is the same code via
// the pcflow multitool; CI and the lint CMake target use this binary.
//
//   pcflow-lint --root=.                 # lint src/, bench/, examples/
//   pcflow-lint --root=. src/core/x.cpp  # lint specific files
//   pcflow-lint --list-rules
#include "tools/lint/lint.hpp"

int main(int argc, char** argv) { return pcf::lint::run_cli(argc, argv); }
