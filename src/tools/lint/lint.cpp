// pcflow-lint driver: file discovery, suppression handling, report
// formatting and the CLI. The rules themselves live in rules.cpp.
#include "tools/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <tuple>
#include <utility>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/lexer.hpp"
#include "tools/lint/rules.hpp"

namespace pcf::lint {
namespace {

using lex::Token;
using lex::TokenKind;

constexpr std::string_view kMarker = "pcflow-lint";

/// One parsed `pcflow-lint: allow(RULE[,RULE...]) reason` annotation.
struct Suppression {
  Rule rule;
  std::size_t target_line = 0;  ///< the source line whose diagnostics it covers
  std::size_t comment_line = 0;
  std::size_t comment_col = 0;
  bool used = false;
};

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] std::vector<std::string_view> split_commas(std::string_view s) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view piece = trim(s.substr(0, comma));
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

/// The source line a standalone comment annotates: the next line holding any
/// code token. A trailing comment (code before it on its own line) annotates
/// its own line.
[[nodiscard]] std::size_t suppression_target(const std::vector<Token>& code,
                                             const Token& comment) {
  for (const Token& tok : code) {
    if (tok.line == comment.line && tok.col < comment.col) return comment.line;
  }
  std::size_t best = comment.line;  // covers nothing if no code follows
  for (const Token& tok : code) {
    if (tok.line > comment.line) {
      best = tok.line;
      break;
    }
  }
  return best;
}

/// Parses the annotations out of one comment token. Emits LNT diagnostics
/// for malformed annotations (unknown rule, missing reason) directly.
/// The marker must be the comment's first content (`// pcflow-lint: ...`) —
/// prose that merely *mentions* the syntax mid-comment is not an annotation.
void parse_suppressions(std::string_view path, const Token& comment,
                        const std::vector<Token>& code, const Options& options,
                        std::vector<Suppression>& suppressions,
                        std::vector<Diagnostic>& out) {
  std::string_view text = comment.text;
  if (text.substr(0, 2) == "//" || text.substr(0, 2) == "/*") text.remove_prefix(2);
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  if (text.substr(0, kMarker.size()) != kMarker) return;
  text.remove_prefix(kMarker.size());
  text = trim(text);
  // Only `pcflow-lint:` is an annotation — prose that happens to lead with
  // the tool's name (file headers, usage examples) is not.
  if (text.empty() || text.front() != ':') return;
  text = trim(text.substr(1));
  if (text.substr(0, 6) != "allow(" ) {
    out.push_back({std::string(path), comment.line, comment.col, Rule::kLnt,
                   "malformed pcflow-lint annotation: only `allow(<rule>) <reason>` is "
                   "recognized"});
    return;
  }
  text.remove_prefix(6);
  const std::size_t close = text.find(')');
  if (close == std::string_view::npos) {
    out.push_back({std::string(path), comment.line, comment.col, Rule::kLnt,
                   "malformed pcflow-lint annotation: missing `)`"});
    return;
  }
  const std::vector<std::string_view> names = split_commas(text.substr(0, close));
  std::string_view reason = trim(text.substr(close + 1));
  if (comment.text.substr(0, 2) == "/*" && reason.size() >= 2 &&
      reason.substr(reason.size() - 2) == "*/") {
    reason = trim(reason.substr(0, reason.size() - 2));
  }
  if (names.empty()) {
    out.push_back({std::string(path), comment.line, comment.col, Rule::kLnt,
                   "suppression names no rule"});
    return;
  }
  const std::size_t target = suppression_target(code, comment);
  for (const std::string_view name : names) {
    Rule rule = Rule::kLnt;
    try {
      rule = parse_rule(name);
    } catch (const ContractViolation&) {
      std::ostringstream os;
      os << "suppression names unknown rule `" << name << "`";
      out.push_back({std::string(path), comment.line, comment.col, Rule::kLnt, os.str()});
      continue;
    }
    if (rule == Rule::kLnt) {
      out.push_back({std::string(path), comment.line, comment.col, Rule::kLnt,
                     "LNT (suppression hygiene) cannot itself be suppressed"});
      continue;
    }
    if (reason.empty()) {
      std::ostringstream os;
      os << "suppression of " << to_string(rule)
         << " carries no reason — every allow(...) must explain why the violation is safe";
      out.push_back({std::string(path), comment.line, comment.col, Rule::kLnt, os.str()});
      // Deliberately NOT registered: an unexplained suppression suppresses
      // nothing, so the underlying diagnostic still fires too.
      continue;
    }
    suppressions.push_back({rule, target, comment.line, comment.col, false});
  }
  (void)options;
}

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.col, a.rule, a.message) <
                     std::tie(b.file, b.line, b.col, b.rule, b.message);
            });
}

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  PCF_CHECK_MSG(in.good(), "pcflow-lint: cannot read " << path.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

[[nodiscard]] bool lintable_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

bool Options::rule_enabled(Rule rule) const noexcept {
  return enabled.empty() || std::find(enabled.begin(), enabled.end(), rule) != enabled.end();
}

std::string_view to_string(Rule rule) noexcept {
  switch (rule) {
    case Rule::kD1: return "D1";
    case Rule::kD2: return "D2";
    case Rule::kD3: return "D3";
    case Rule::kD4: return "D4";
    case Rule::kR1: return "R1";
    case Rule::kF1: return "F1";
    case Rule::kS1: return "S1";
    case Rule::kL1: return "L1";
    case Rule::kT1: return "T1";
    case Rule::kLnt: return "LNT";
  }
  return "?";
}

std::string_view describe(Rule rule) noexcept {
  switch (rule) {
    case Rule::kD1:
      return "no nondeterminism sources (rand/time/clocks/getenv) in src/{core,sim,net,bench}";
    case Rule::kD2:
      return "no std::unordered_{map,set,...} in deterministic paths (order leaks into traces)";
    case Rule::kD3:
      return "std random engines/distributions and <random> only inside src/support/rng";
    case Rule::kD4:
      return "no std::thread/jthread/async in deterministic paths — use support/parallel.hpp";
    case Rule::kR1:
      return "Reducer subclasses must declare on_link_down, on_link_up, update_data";
    case Rule::kF1:
      return "no `float` in src/{core,linalg}; no ==/!= against nonzero float literals";
    case Rule::kS1:
      return "socket/process syscalls only inside src/runtime/{udp,socket_runtime} — "
             "everything else stays transport-agnostic";
    case Rule::kL1:
      return "layer DAG: includes follow support -> net.graph -> core -> "
             "{net.transport,sim,linalg} -> {runtime,bench,tools}; include cycles are errors";
    case Rule::kT1:
      return "members within 40 tokens of a mutex/condition_variable member need "
             "PCF_GUARDED_BY (src/runtime + support/parallel.hpp)";
    case Rule::kLnt:
      return "suppression hygiene: allow(...) must name a known rule, carry a reason, and fire";
  }
  return "?";
}

Rule parse_rule(std::string_view name) {
  std::string upper(name);
  for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (const Rule rule : kAllRules) {
    if (upper == to_string(rule)) return rule;
  }
  throw ContractViolation("pcflow-lint: unknown rule '" + std::string(name) +
                          "' (known: D1 D2 D3 D4 R1 F1 S1 L1 T1 LNT)");
}

std::vector<Diagnostic> lint_source(std::string_view virtual_path, std::string_view source,
                                    const Options& options) {
  const std::vector<Token> tokens = lex::tokenize(source);
  std::vector<Token> code;
  code.reserve(tokens.size());
  std::vector<Token> comments;
  for (const Token& tok : tokens) {
    (tok.kind == TokenKind::kComment ? comments : code).push_back(tok);
  }

  std::vector<Diagnostic> raw;
  detail::run_rules(virtual_path, code, options, raw);

  std::vector<Diagnostic> out;
  std::vector<Suppression> suppressions;
  for (const Token& comment : comments) {
    parse_suppressions(virtual_path, comment, code, options, suppressions, out);
  }
  if (!options.rule_enabled(Rule::kLnt)) out.clear();

  for (Diagnostic& diag : raw) {
    const auto match = std::find_if(
        suppressions.begin(), suppressions.end(), [&](const Suppression& s) {
          return s.rule == diag.rule && s.target_line == diag.line;
        });
    if (match != suppressions.end()) {
      match->used = true;
    } else {
      out.push_back(std::move(diag));
    }
  }

  if (options.rule_enabled(Rule::kLnt)) {
    for (const Suppression& s : suppressions) {
      if (!s.used && options.rule_enabled(s.rule)) {
        std::ostringstream os;
        os << "unused suppression: no " << to_string(s.rule) << " diagnostic on line "
           << s.target_line << " — stale allows hide future violations; delete it";
        out.push_back({std::string(virtual_path), s.comment_line, s.comment_col, Rule::kLnt,
                       os.str()});
      }
    }
  }

  sort_diagnostics(out);
  return out;
}

RunResult run_files(const std::filesystem::path& root, const std::vector<std::string>& files,
                    const Options& options) {
  RunResult result;
  std::vector<std::pair<std::string, std::filesystem::path>> work;  // virtual path, disk path
  for (const std::string& file : files) {
    std::filesystem::path disk(file);
    if (disk.is_relative()) disk = root / disk;
    std::filesystem::path rel = disk.lexically_relative(root).lexically_normal();
    if (rel.empty() || rel.native().starts_with("..")) rel = disk.filename();
    work.emplace_back(rel.generic_string(), disk);
  }
  std::sort(work.begin(), work.end());
  std::vector<std::pair<std::string, std::vector<detail::IncludeRef>>> include_graph;
  for (const auto& [virtual_path, disk] : work) {
    const std::string source = read_file(disk);
    auto diags = lint_source(virtual_path, source, options);
    result.diagnostics.insert(result.diagnostics.end(),
                              std::make_move_iterator(diags.begin()),
                              std::make_move_iterator(diags.end()));
    if (options.rule_enabled(Rule::kL1)) {
      include_graph.emplace_back(virtual_path, detail::collect_includes(lex::tokenize(source)));
    }
    ++result.files_scanned;
  }
  if (options.rule_enabled(Rule::kL1)) {
    detail::check_include_cycles(include_graph, result.diagnostics);
  }
  sort_diagnostics(result.diagnostics);
  return result;
}

RunResult run_directory(const std::filesystem::path& root, const Options& options) {
  PCF_CHECK_MSG(std::filesystem::is_directory(root),
                "pcflow-lint: --root " << root.string() << " is not a directory");
  std::vector<std::string> files;
  for (const std::string_view top : {"src", "bench", "examples"}) {
    const std::filesystem::path dir = root / top;
    if (!std::filesystem::is_directory(dir)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable_extension(entry.path())) {
        files.push_back(entry.path().lexically_relative(root).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return run_files(root, files, options);
}

std::string format_report(const RunResult& result, bool quiet) {
  std::ostringstream os;
  for (const Diagnostic& diag : result.diagnostics) {
    os << diag.file << ':' << diag.line << ':' << diag.col << ": " << to_string(diag.rule)
       << ": " << diag.message << '\n';
  }
  if (!quiet) {
    os << "pcflow-lint: " << result.files_scanned << " file(s) scanned, "
       << result.diagnostics.size() << " diagnostic(s)\n";
  }
  return os.str();
}

std::string format_report_json(const RunResult& result) {
  JsonWriter json;
  json.begin_object();
  json.field("schema", "pcflow-lint");
  json.field("schema_version", std::int64_t{1});
  json.field("files_scanned", static_cast<std::uint64_t>(result.files_scanned));
  json.field("diagnostic_count", static_cast<std::uint64_t>(result.diagnostics.size()));
  json.key("diagnostics");
  json.begin_array();
  for (const Diagnostic& diag : result.diagnostics) {
    json.begin_object();
    json.field("file", diag.file);
    json.field("line", static_cast<std::uint64_t>(diag.line));
    json.field("col", static_cast<std::uint64_t>(diag.col));
    json.field("rule", to_string(diag.rule));
    json.field("message", diag.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

int run_cli(int argc, const char* const* argv) {
  try {
    CliFlags flags;
    flags.define("root", std::string("."), "project root to scan (src/, bench/, examples/)");
    flags.define("rules", std::string{},
                 "comma-separated rules to enable (default: all of D1,D2,D3,R1,F1,LNT)");
    flags.define("rule", std::string{}, "alias for --rules (merged with it)");
    flags.define("disable", std::string{}, "comma-separated rules to disable");
    flags.define("format", std::string("text"), "report format: text | json");
    flags.define("quiet", false, "omit the summary line (text format only)");
    flags.define("list-rules", false, "print the rule catalog and exit");
    if (!flags.parse(argc, argv)) return 0;

    const std::string format = flags.get_string("format");
    if (format != "text" && format != "json") {
      throw ContractViolation("pcflow-lint: unknown --format '" + format +
                              "' (known: text json)");
    }

    if (flags.get_bool("list-rules")) {
      for (const Rule rule : kAllRules) {
        std::printf("%-4s %s\n", std::string(to_string(rule)).c_str(),
                    std::string(describe(rule)).c_str());
      }
      return 0;
    }

    Options options;
    for (const std::string_view name : split_commas(flags.get_string("rules"))) {
      options.enabled.push_back(parse_rule(name));
    }
    for (const std::string_view name : split_commas(flags.get_string("rule"))) {
      const Rule rule = parse_rule(name);
      if (std::find(options.enabled.begin(), options.enabled.end(), rule) ==
          options.enabled.end()) {
        options.enabled.push_back(rule);
      }
    }
    const auto disabled = split_commas(flags.get_string("disable"));
    if (!disabled.empty()) {
      if (options.enabled.empty()) {
        options.enabled.assign(std::begin(kAllRules), std::end(kAllRules));
      }
      for (const std::string_view name : disabled) {
        const Rule rule = parse_rule(name);
        options.enabled.erase(std::remove(options.enabled.begin(), options.enabled.end(), rule),
                              options.enabled.end());
      }
    }

    const std::filesystem::path root(flags.get_string("root"));
    const RunResult result = flags.positional().empty()
                                 ? run_directory(root, options)
                                 : run_files(root, flags.positional(), options);
    const std::string report = format == "json"
                                   ? format_report_json(result)
                                   : format_report(result, flags.get_bool("quiet"));
    std::fputs(report.c_str(), stdout);
    return result.diagnostics.empty() ? 0 : 1;
  } catch (const ContractViolation& e) {
    std::fprintf(stderr, "pcflow-lint: %s\n", e.what());
    return 2;
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "pcflow-lint: %s\n", e.what());
    return 2;
  }
}

}  // namespace pcf::lint
