// Checkpoint/restore for the simulation engines (DESIGN.md §8).
//
// The checkpoint layer serializes the COMPLETE mutable state of an engine —
// reducer state for every node (legacy objects or arena spans), RNG streams,
// fault-plan progress cursors, PCF handshake phase, the oracle's conserved
// targets, and (async, full mode) the entire pending event heap — into a
// versioned binary blob. Restoring the blob into a freshly constructed engine
// with the identical topology, initial masses and configuration resumes the
// run so that every subsequent per-round state fingerprint is bitwise
// identical to the uninterrupted run. That guarantee is what the determinism
// contract (pcflow-lint D1–D4) buys, and what the property wall in
// tests/sim/test_checkpoint.cpp holds the implementation to.
//
// Immutable inputs (topology, initial masses, reducer config, scheduled fault
// events) are NOT serialized: the restorer reconstructs the engine from the
// same inputs, and the blob carries a compatibility hash over them so a
// checkpoint cannot be restored into a mismatched engine by accident.
//
// Two modes, following FTPregel's lightweight-checkpoint insight:
//  * kFull        — wire-inclusive. The async engine's event heap (including
//                   in-flight packet payloads) is saved verbatim; restore is
//                   bitwise-exact.
//  * kLightweight — state-only: pending kDelivery events are dropped and the
//                   heap is rebuilt from the surviving control events. The
//                   blob shrinks by the in-flight traffic; continuation is no
//                   longer bitwise-identical — the in-flight packets are
//                   simply *lost*, which the flow algorithms self-heal (their
//                   mirrors are absolute) while push-sum loses the in-flight
//                   mass. For the synchronous engine the wire is empty at
//                   every round boundary, so both modes produce the same body.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pcf::sim {

enum class CheckpointMode : std::uint8_t {
  kLightweight = 0,  ///< state-only; in-flight messages are dropped, not saved
  kFull = 1,         ///< wire-inclusive; bitwise-exact continuation
};

[[nodiscard]] constexpr std::string_view to_string(CheckpointMode m) noexcept {
  return m == CheckpointMode::kFull ? "full" : "light";
}

/// Bump on ANY change to the blob layout — old checkpoints are then rejected
/// instead of misread. tests/sim/test_checkpoint.cpp pins the format of the
/// current version with a golden hash so accidental drift fails in CI.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// 8-byte file magic ("PCFCKPT" + NUL).
inline constexpr std::string_view kCheckpointMagic{"PCFCKPT\0", 8};

/// A checkpoint that cannot be restored: truncated, corrupted, wrong version,
/// or saved from an engine incompatible with the restore target.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parsed checkpoint header — inspect a blob without an engine.
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint8_t engine_kind = 0;  ///< 1 = sync, 2 = async
  CheckpointMode mode = CheckpointMode::kFull;
  std::uint8_t algorithm = 0;    ///< core::Algorithm value
  std::uint8_t engine_mode = 0;  ///< sync only: 0 legacy, 1 arena
  std::uint64_t seed = 0;
  std::uint64_t nodes = 0;
  std::uint64_t dim = 0;
  std::uint64_t compat_hash = 0;  ///< over the immutable construction inputs
  double position = 0.0;          ///< round (sync) or simulation time (async)
};

/// Parses and validates the fixed-size header; throws CheckpointError on a
/// blob that is not a pcflow checkpoint of the current version.
[[nodiscard]] CheckpointInfo peek_checkpoint(std::string_view blob);

}  // namespace pcf::sim
