// Asynchronous event-driven gossip engine.
//
// Gossip reduction needs no synchronization — that is one of its selling
// points. This engine drops the round barrier of SyncEngine: every node owns
// a Poisson clock (rate `tick_rate`) and gossips whenever it fires, and every
// packet travels with a random latency drawn from [latency_min, latency_max).
// Per directed link, delivery is FIFO (arrival times are clamped to be
// monotone): the PCF handshake assumes in-order-or-lost delivery, which every
// realistic transport (TCP, MPI) provides.
//
// Used by integration tests and ablations to demonstrate that the accuracy /
// fault-tolerance results do not depend on the synchronous model.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/reducer.hpp"
#include "sim/checkpoint.hpp"
#include "sim/event_heap.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"
#include "sim/metrics.hpp"
#include "support/perf.hpp"

namespace pcf::sim {

struct AsyncEngineConfig {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::ReducerConfig reducer;
  FaultPlan faults;  // event times are in simulation time units
  std::uint64_t seed = 1;
  double tick_rate = 1.0;     ///< gossip sends per node per time unit
  double latency_min = 0.05;  ///< packet latency lower bound
  double latency_max = 0.5;   ///< packet latency upper bound (exclusive)
  InvariantConfig invariants;  ///< runtime invariant checking (see invariants.hpp)
};

// A note on node crashes and the oracle: unlike the synchronous engine
// (which processes faults at round boundaries when nothing is in flight), the
// asynchronous network always has packets in transit. The oracle's retarget
// therefore snapshots the survivors' local masses PLUS the mass still carried
// by queued deliveries on live links (each receiver's unreceived_mass() —
// additive shares for push-sum, last-writer-wins mirrors for the flow
// algorithms). Without the in-flight term the target is biased by whatever
// was on the wire at detection time — the historical bug this fixes.
class AsyncEngine {
 public:
  /// The engine stores its own copy of the topology, so temporaries are safe.
  AsyncEngine(net::Topology topology, std::span<const core::Mass> initial,
              AsyncEngineConfig config);

  /// Advances the simulation until `time` (processing all events due).
  void run_until(double time);

  /// Advances until oracle max error ≤ tol or until `deadline`. Checks the
  /// error every `check_interval` time units. Returns true on success.
  bool run_until_error(double tol, double deadline, double check_interval = 1.0);

  [[nodiscard]] double now() const noexcept { return now_; }
  /// Live access to the fault model between run_until() calls. Only the
  /// probabilistic knobs (loss / flip / state-flip / duplicate / reorder
  /// rates) may be changed; scheduled events are fixed at construction, and
  /// the churn event chains are seeded from the rates given at construction
  /// (setting churn_fail_prob afterwards starts no new chain).
  [[nodiscard]] FaultPlan& mutable_faults() noexcept { return config_.faults; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Oracle& oracle() const noexcept { return oracle_; }
  [[nodiscard]] core::Reducer& node(NodeId i) { return *nodes_.at(i); }
  [[nodiscard]] std::vector<double> estimates(std::size_t k = 0) const;
  [[nodiscard]] double max_error(std::size_t k = 0) const;
  [[nodiscard]] std::size_t messages_delivered() const noexcept { return delivered_; }
  [[nodiscard]] bool node_alive(NodeId i) const { return alive_.at(i); }
  /// Wall-clock / throughput counters (kEvents phase; see support/perf.hpp).
  [[nodiscard]] const PerfCounters& perf() const noexcept { return perf_; }

  /// Cumulative fault telemetry — exactly what the invariant checkers see.
  [[nodiscard]] FaultExposure fault_exposure() const;

  /// The invariant monitor, or nullptr when checking is disabled. Checks run
  /// at every run_until() boundary (there is no quiescent round boundary in
  /// an asynchronous network, so only the in-flight-safe checkers fire).
  [[nodiscard]] const InvariantMonitor* invariants() const noexcept { return monitor_.get(); }
  /// Runs all invariant checkers against the current state immediately.
  void check_invariants_now();

  // ---- checkpoint / restore (sim/checkpoint.cpp; DESIGN.md §8) ----

  /// Serializes the engine's complete mutable state between run_until()s.
  /// kFull saves the pending event heap verbatim (in-flight packets
  /// included) — restore continues bitwise-identically. kLightweight drops
  /// the queued kDelivery events (FTPregel-style state-only snapshot): the
  /// blob shrinks by the in-flight traffic, the flow algorithms re-mirror
  /// the lost packets away, and push-sum loses the in-flight mass.
  [[nodiscard]] std::string save_checkpoint(CheckpointMode mode = CheckpointMode::kFull) const;

  /// Restores a checkpoint written by save_checkpoint into this engine, which
  /// must have been constructed with the identical topology, initial masses
  /// and config (validated via the blob's compatibility hash). Throws
  /// CheckpointError on truncated/corrupted/version-skewed blobs or an
  /// incompatible engine; header and compatibility validation happen before
  /// any state is touched, but a throw from deeper body corruption leaves the
  /// engine in an unspecified state — discard it.
  void restore(std::string_view checkpoint);

  /// FNV-1a hash of the bit-exact live protocol state (see the sync engine's
  /// state_fingerprint). Includes now() but not the pending queue, so it
  /// compares node-state agreement at a common simulation time.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  struct View;
  struct Event {
    double time;
    enum class Kind {
      kTick,
      kDelivery,
      kLinkFailure,
      kCrash,
      kDetect,
      kDataUpdate,
      kLinkHeal,     // scheduled or churn: the link transports again
      kRejoin,       // a crashed node returns with fresh state
      kDetectUp,     // detector reports a healed link up at one endpoint
      kFalseDetect,  // detector false positive: live link wrongly excluded
      kFalseClear,   // the false positive clears ("detected up")
      kChurnFail,    // churn chain: the link fails
    } kind;
    NodeId a = 0;  // tick/crash/rejoin: node; delivery: sender; link: endpoint a
    NodeId b = 0;  // delivery: receiver; link: endpoint b; detect: peer
    std::uint64_t seq = 0;  // tie-break for deterministic ordering
    double aux = 0.0;       // false detect: clear delay
    core::Packet packet;
  };
  struct EventOrder {
    bool operator()(const Event& x, const Event& y) const {
      if (x.time != y.time) return x.time > y.time;  // min-heap by time
      return x.seq > y.seq;
    }
  };

  void push(Event e);
  void handle(const Event& e);
  void schedule_tick(NodeId node);
  void fail_link(NodeId a, NodeId b, bool independent);
  /// Revives a dead link between live nodes: packets queued before the heal
  /// are lost (heal-epoch purge), detectors report "up" after the detection
  /// delay, and the churn fail chain restarts. Returns false if the link was
  /// not dead.
  bool revive_link(NodeId a, NodeId b);
  /// Snapshots live local masses + in-flight mass and retargets the oracle.
  void retarget_now();
  /// Appends the mass carried by queued deliveries on live links to `masses`
  /// (the crash-retarget snapshot). See the class comment.
  void append_in_flight_mass(std::vector<core::Mass>& masses) const;
  /// True if the delivery was queued before its link's last heal (the packet
  /// was physically lost in the outage).
  [[nodiscard]] bool stale_delivery(const Event& e) const;

  net::Topology topology_;
  AsyncEngineConfig config_;
  std::vector<std::unique_ptr<core::Reducer>> nodes_;
  std::vector<Rng> node_rngs_;
  Rng net_rng_;
  Oracle oracle_;
  std::vector<core::Mass> initial_;  // per node — a rejoining node restarts from this
  std::vector<bool> alive_;
  std::set<std::pair<NodeId, NodeId>> dead_links_;
  /// Links that failed independently of a crash (scheduled or churn); a
  /// rejoin does not revive these.
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  /// Live links currently excluded by a failure-detector false positive.
  std::set<std::pair<NodeId, NodeId>> falsely_excluded_;
  /// Per healed link: the event seq at heal time. Earlier-queued deliveries
  /// were in flight when the cable was cut and are dropped on arrival.
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> heal_seq_;
  std::map<std::pair<NodeId, NodeId>, double> last_arrival_;  // FIFO clamp per directed link
  EventHeap<Event, EventOrder> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t delivered_ = 0;
  bool pending_retarget_ = false;
  std::size_t pending_detects_ = 0;  // kDetect events scheduled but not handled
  std::size_t pending_up_notices_ = 0;  // kDetectUp events scheduled but not handled
  std::unique_ptr<InvariantMonitor> monitor_;
  PerfCounters perf_;
  std::size_t link_failures_fired_ = 0;
  std::size_t crashes_fired_ = 0;
  std::size_t data_updates_fired_ = 0;
  std::size_t link_heals_fired_ = 0;
  std::size_t rejoins_fired_ = 0;
  std::size_t false_detects_fired_ = 0;
  std::size_t false_clears_fired_ = 0;
  std::size_t duplicates_injected_ = 0;
};

}  // namespace pcf::sim
