#include "sim/faults.hpp"

#include <cstring>

namespace pcf::sim {

void flip_random_bit(Packet& packet, Rng& rng, bool any_bit) {
  // Candidate doubles: all value components and weights of both masses.
  std::vector<double*> slots;
  slots.reserve(packet.a.dim() + packet.b.dim() + 2);
  for (auto& v : packet.a.s) slots.push_back(&v);
  slots.push_back(&packet.a.w);
  for (auto& v : packet.b.s) slots.push_back(&v);
  slots.push_back(&packet.b.w);

  double* victim = slots[static_cast<std::size_t>(rng.below(slots.size()))];
  // Mantissa bits 0..51 plus the sign bit 63 by default; exponent bits
  // (52..62) only when any_bit is requested.
  std::uint64_t bit_index;
  if (any_bit) {
    bit_index = rng.below(64);
  } else {
    bit_index = rng.below(53);
    if (bit_index == 52) bit_index = 63;  // map the 53rd choice to the sign bit
  }
  std::uint64_t bits;
  std::memcpy(&bits, victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit_index);
  std::memcpy(victim, &bits, sizeof bits);
}

}  // namespace pcf::sim
