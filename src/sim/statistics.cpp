#include "sim/statistics.hpp"

#include <cmath>

#include "core/extrema.hpp"
#include "support/check.hpp"

namespace pcf::sim {

SummaryResult distributed_summary(const net::Topology& topology, std::span<const double> values,
                                  const SummaryOptions& options) {
  PCF_CHECK_MSG(values.size() == topology.size(), "one value per node required");

  // One vector reduction: per-node contribution [x, x², 1], SUM semantics.
  std::vector<core::Values> contributions(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    contributions[i] = core::Values{values[i], values[i] * values[i], 1.0};
  }
  ReduceOptions reduce_options;
  reduce_options.algorithm = options.algorithm;
  reduce_options.aggregate = core::Aggregate::kSum;
  reduce_options.seed = options.seed;
  reduce_options.target_accuracy = options.target_accuracy;
  reduce_options.max_rounds = options.max_rounds;
  reduce_options.faults = options.faults;
  const auto reduced = reduce_vectors(topology, contributions, reduce_options);

  const auto extrema = distributed_extrema(topology, values, options);

  SummaryResult result;
  result.reduction_rounds = reduced.rounds;
  result.reached_target = reduced.reached_target;
  result.per_node.resize(topology.size());
  for (std::size_t i = 0; i < topology.size(); ++i) {
    NodeSummary& s = result.per_node[i];
    s.sum = reduced.estimate(i, 0);
    const double sumsq = reduced.estimate(i, 1);
    s.count = reduced.estimate(i, 2);
    if (std::isfinite(s.count) && s.count > 0.0) {
      s.mean = s.sum / s.count;
      s.variance = std::max(0.0, sumsq / s.count - s.mean * s.mean);
    } else {
      s.mean = s.variance = std::numeric_limits<double>::quiet_NaN();
    }
    s.min = extrema[i].first;
    s.max = extrema[i].second;
  }
  return result;
}

std::vector<double> estimate_network_size(const net::Topology& topology,
                                          const SummaryOptions& options) {
  std::vector<double> values(topology.size(), 0.0);
  values[0] = 1.0;
  ReduceOptions ro;
  ro.algorithm = options.algorithm;
  ro.aggregate = core::Aggregate::kAverage;
  ro.seed = options.seed ^ 0x512eULL;
  ro.target_accuracy = options.target_accuracy;
  ro.max_rounds = options.max_rounds;
  ro.faults = options.faults;
  const auto reduced = reduce(topology, values, ro);
  std::vector<double> out(topology.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double avg = reduced.estimate(i);
    out[i] = avg > 0.0 ? 1.0 / avg : std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

std::vector<std::pair<double, double>> distributed_extrema(const net::Topology& topology,
                                                           std::span<const double> values,
                                                           const SummaryOptions& options) {
  PCF_CHECK_MSG(values.size() == topology.size(), "one value per node required");
  std::vector<std::unique_ptr<core::Reducer>> nodes;
  nodes.reserve(topology.size());
  const Rng base(options.seed ^ 0xe87e5aULL);
  std::vector<Rng> rngs;
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    nodes.push_back(std::make_unique<core::ExtremaGossip>(core::ReducerConfig{}));
    nodes.back()->init(i, topology.neighbors(i), core::Mass::scalar(values[i], 1.0));
    rngs.push_back(base.fork(i));
  }
  std::size_t rounds = options.extrema_rounds;
  if (rounds == 0) {
    // Push-only extrema spread like a rumor: O(diameter + log n) rounds in
    // expectation; the 4x margin makes non-completion astronomically rare.
    const double n = static_cast<double>(topology.size());
    rounds = 4 * (topology.bfs_distances(0).size() > 0
                      ? static_cast<std::size_t>(std::log2(n) + 1)
                      : 1);
    // Diameter is expensive on big graphs; a BFS eccentricity from node 0 is
    // a 2-approximation and cheap.
    const auto dist = topology.bfs_distances(0);
    std::size_t ecc = 0;
    for (std::size_t d : dist) ecc = std::max(ecc, d);
    rounds += 4 * ecc;
  }
  Rng loss_rng(options.seed ^ 0x10575);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (net::NodeId i = 0; i < topology.size(); ++i) {
      auto out = nodes[i]->make_message(rngs[i]);
      if (!out) continue;
      if (options.faults.message_loss_prob > 0.0 &&
          loss_rng.chance(options.faults.message_loss_prob)) {
        continue;  // idempotent state: loss only delays
      }
      nodes[out->to]->on_receive(i, out->packet);
    }
  }
  std::vector<std::pair<double, double>> result;
  result.reserve(topology.size());
  for (const auto& node : nodes) {
    const auto& gossip = dynamic_cast<const core::ExtremaGossip&>(*node);
    result.emplace_back(gossip.current_min(), gossip.current_max());
  }
  return result;
}

}  // namespace pcf::sim
