#include "sim/engine_async.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pcf::sim {

namespace {
std::pair<NodeId, NodeId> norm_edge(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

/// Read-only adapter the invariant checkers observe the engine through.
struct AsyncEngine::View final : SystemView {
  explicit View(const AsyncEngine& e) : engine(e) {}
  [[nodiscard]] const net::Topology& topology() const override { return engine.topology_; }
  [[nodiscard]] core::Algorithm algorithm() const override { return engine.config_.algorithm; }
  [[nodiscard]] double time() const override { return engine.now_; }
  [[nodiscard]] bool alive(NodeId i) const override { return engine.alive_.at(i); }
  [[nodiscard]] const core::Reducer& node(NodeId i) const override { return *engine.nodes_.at(i); }
  [[nodiscard]] bool link_dead(NodeId a, NodeId b) const override {
    return engine.dead_links_.count(norm_edge(a, b)) != 0;
  }
  [[nodiscard]] const Oracle& oracle() const override { return engine.oracle_; }
  [[nodiscard]] FaultExposure faults() const override {
    const FaultPlan& plan = engine.config_.faults;
    FaultExposure f;
    f.in_flight = true;  // an asynchronous network always has packets in transit
    f.lossy_env = plan.message_loss_prob > 0.0 || plan.bit_flip_prob > 0.0 ||
                  plan.state_flip_prob > 0.0;
    f.any_bit_flips = plan.bit_flip_any_bit && plan.bit_flip_prob > 0.0;
    f.crash_settling = engine.pending_retarget_;
    f.link_failures = engine.link_failures_fired_;
    f.crashes = engine.crashes_fired_;
    f.data_updates = engine.data_updates_fired_;
    f.link_heals = engine.link_heals_fired_;
    f.rejoins = engine.rejoins_fired_;
    f.false_detects = engine.false_detects_fired_;
    f.false_clears = engine.false_clears_fired_;
    f.messages_duplicated = engine.duplicates_injected_;
    f.pending_up_notices = engine.pending_up_notices_;
    return f;
  }
  const AsyncEngine& engine;
};

void AsyncEngine::check_invariants_now() {
  if (!monitor_) return;
  const View view(*this);
  monitor_->check(view);
}

FaultExposure AsyncEngine::fault_exposure() const { return View(*this).faults(); }

AsyncEngine::AsyncEngine(net::Topology topology, std::span<const core::Mass> initial,
                         AsyncEngineConfig config)
    : topology_(topology),
      config_(std::move(config)),
      net_rng_(Rng(config_.seed).fork(topology.size() + 7)),
      oracle_(initial),
      initial_(initial.begin(), initial.end()) {
  PCF_CHECK_MSG(initial.size() == topology.size(), "one initial mass per node required");
  PCF_CHECK_MSG(config_.tick_rate > 0.0, "tick_rate must be positive");
  PCF_CHECK_MSG(config_.latency_min >= 0.0 && config_.latency_max >= config_.latency_min,
                "bad latency range");

  if (core::needs_tree_schedule(config_.algorithm) && !config_.reducer.tree) {
    config_.reducer.tree = std::make_shared<const net::TreeSchedule>(
        net::build_tree_schedule(topology_, config_.reducer.tree_kind));
  }

  const Rng base(config_.seed);
  nodes_.reserve(topology.size());
  for (NodeId i = 0; i < topology.size(); ++i) {
    nodes_.push_back(core::make_reducer(config_.algorithm, config_.reducer));
    nodes_.back()->init(i, topology.neighbors(i), initial[i]);
    node_rngs_.push_back(base.fork(i));
  }
  alive_.assign(topology.size(), true);
  for (NodeId i = 0; i < topology.size(); ++i) schedule_tick(i);
  for (const auto& f : config_.faults.link_failures) {
    PCF_CHECK_MSG(topology.has_edge(f.a, f.b), "fault plan: unknown link");
    push({f.time, Event::Kind::kLinkFailure, f.a, f.b});
  }
  for (const auto& c : config_.faults.node_crashes) {
    PCF_CHECK_MSG(c.node < topology.size(), "fault plan: crash node out of range");
    push({c.time, Event::Kind::kCrash, c.node});
  }
  for (const auto& u : config_.faults.data_updates) {
    PCF_CHECK_MSG(u.node < topology.size(), "fault plan: data update node out of range");
    Event e{u.time, Event::Kind::kDataUpdate, u.node, 0, 0, 0.0, {}};
    e.packet.a = u.delta;  // carry the delta in the payload slot
    push(std::move(e));
  }
  for (const auto& h : config_.faults.link_heals) {
    PCF_CHECK_MSG(topology.has_edge(h.a, h.b), "fault plan: heal for unknown link");
    push({h.time, Event::Kind::kLinkHeal, h.a, h.b, 0, 0.0, {}});
  }
  for (const auto& r : config_.faults.node_rejoins) {
    PCF_CHECK_MSG(r.node < topology.size(), "fault plan: rejoin node out of range");
    push({r.time, Event::Kind::kRejoin, r.node, 0, 0, 0.0, {}});
  }
  for (const auto& d : config_.faults.false_detects) {
    PCF_CHECK_MSG(topology.has_edge(d.a, d.b), "fault plan: false detect on unknown link");
    PCF_CHECK_MSG(d.clear_delay >= 0.0, "fault plan: negative false-detect clear delay");
    push({d.time, Event::Kind::kFalseDetect, d.a, d.b, 0, d.clear_delay, {}});
  }
  // Churn: every link carries an independent Exp(churn_fail_prob) failure
  // clock. A fired clock that finds its link already dead ends the chain;
  // the heal (or rejoin) that revives the link starts a fresh one.
  if (config_.faults.churn_fail_prob > 0.0) {
    for (const auto& [a, b] : topology.edges()) {
      push({net_rng_.exponential(config_.faults.churn_fail_prob), Event::Kind::kChurnFail, a, b,
            0, 0.0, {}});
    }
  }

  if (config_.invariants.resolve_enabled()) {
    monitor_ = std::make_unique<InvariantMonitor>(config_.invariants);
    monitor_->install_default_checkers();
  }
}

void AsyncEngine::push(Event e) {
  e.seq = seq_++;
  queue_.push(std::move(e));
}

void AsyncEngine::schedule_tick(NodeId node) {
  const double dt = node_rngs_[node].exponential(config_.tick_rate);
  push({now_ + dt, Event::Kind::kTick, node});
}

void AsyncEngine::fail_link(NodeId a, NodeId b, bool independent) {
  const auto edge = norm_edge(a, b);
  if (!dead_links_.insert(edge).second) return;
  if (independent) cut_links_.insert(edge);
  falsely_excluded_.erase(edge);  // a real failure supersedes a false positive
  const double due = now_ + config_.faults.detection_delay;
  push({due, Event::Kind::kDetect, a, b, 0, 0.0, {}});
  push({due, Event::Kind::kDetect, b, a, 0, 0.0, {}});
  pending_detects_ += 2;
  // Churn heal: independent failures between live nodes come back after an
  // exponentially distributed outage. Crash-induced failures are owned by the
  // rejoin event instead.
  if (independent && config_.faults.churn_heal_rate > 0.0 && alive_[a] && alive_[b]) {
    push({now_ + net_rng_.exponential(config_.faults.churn_heal_rate), Event::Kind::kLinkHeal, a,
          b, 0, 0.0, {}});
  }
}

bool AsyncEngine::revive_link(NodeId a, NodeId b) {
  const auto edge = norm_edge(a, b);
  if (dead_links_.erase(edge) == 0) return false;
  cut_links_.erase(edge);
  ++link_heals_fired_;
  // Packets queued while the cable was cut were physically lost; remember the
  // heal epoch so kDelivery (and the in-flight mass snapshot) drop them.
  heal_seq_[edge] = seq_;
  const double due = now_ + config_.faults.detection_delay;
  push({due, Event::Kind::kDetectUp, a, b, 0, 0.0, {}});
  push({due, Event::Kind::kDetectUp, b, a, 0, 0.0, {}});
  pending_up_notices_ += 2;
  if (config_.faults.churn_fail_prob > 0.0) {
    push({now_ + net_rng_.exponential(config_.faults.churn_fail_prob), Event::Kind::kChurnFail, a,
          b, 0, 0.0, {}});
  }
  return true;
}

void AsyncEngine::retarget_now() {
  std::vector<core::Mass> current;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) current.push_back(nodes_[i]->local_mass());
  }
  append_in_flight_mass(current);
  oracle_.retarget(current);
}

bool AsyncEngine::stale_delivery(const Event& e) const {
  const auto it = heal_seq_.find(norm_edge(e.a, e.b));
  return it != heal_seq_.end() && e.seq < it->second;
}

void AsyncEngine::handle(const Event& e) {
  switch (e.kind) {
    case Event::Kind::kTick: {
      const NodeId i = e.a;
      if (!alive_[i]) return;
      schedule_tick(i);
      if (config_.faults.state_flip_prob > 0.0 &&
          net_rng_.chance(config_.faults.state_flip_prob)) {
        (void)nodes_[i]->corrupt_stored_flow(net_rng_);  // memory soft error
      }
      auto out = nodes_[i]->make_message(node_rngs_[i]);
      if (!out) return;
      if (dead_links_.count(norm_edge(i, out->to)) != 0 || !alive_[out->to]) return;
      const auto& plan = config_.faults;
      if (plan.message_loss_prob > 0.0 && net_rng_.chance(plan.message_loss_prob)) return;
      core::Packet packet = std::move(out->packet);
      if (plan.bit_flip_prob > 0.0 && net_rng_.chance(plan.bit_flip_prob)) {
        flip_random_bit(packet, net_rng_, plan.bit_flip_any_bit);
      }
      double arrival = now_ + net_rng_.uniform(config_.latency_min, config_.latency_max);
      const bool reordered = plan.reorder_prob > 0.0 && net_rng_.chance(plan.reorder_prob);
      if (reordered) {
        // Adversarial delivery: delay the packet past the FIFO clamp without
        // advancing it, so later sends on the link can legitimately overtake.
        arrival += net_rng_.uniform(0.0, plan.reorder_jitter);
      } else {
        // FIFO per directed link: never deliver before an earlier packet on
        // the same link (the tiny epsilon keeps arrivals strictly ordered).
        auto& last = last_arrival_[{i, out->to}];
        arrival = std::max(arrival, last + 1e-9);
        last = arrival;
      }
      ++perf_.messages_sent;
      perf_.doubles_on_wire += nodes_[i]->wire_masses() * (packet.a.dim() + 1);
      if (plan.duplicate_prob > 0.0 && net_rng_.chance(plan.duplicate_prob)) {
        ++duplicates_injected_;
        Event dup{arrival + 1e-9, Event::Kind::kDelivery, i, out->to, 0, 0.0, packet};
        if (!reordered) last_arrival_[{i, out->to}] = dup.time;
        push(std::move(dup));
      }
      push({arrival, Event::Kind::kDelivery, i, out->to, 0, 0.0, std::move(packet)});
      return;
    }
    case Event::Kind::kDelivery: {
      // A packet already in flight when its link died is lost, matching a
      // physical cable cut rather than a graceful shutdown; one queued before
      // the link's last heal died with the outage (stale_delivery).
      if (dead_links_.count(norm_edge(e.a, e.b)) != 0 || !alive_[e.b]) return;
      if (stale_delivery(e)) return;
      nodes_[e.b]->on_receive(e.a, e.packet);
      ++delivered_;
      ++perf_.deliveries;
      return;
    }
    case Event::Kind::kLinkFailure:
      ++link_failures_fired_;
      fail_link(e.a, e.b, /*independent=*/true);
      return;
    case Event::Kind::kChurnFail: {
      const auto edge = norm_edge(e.a, e.b);
      // A dead link (or endpoint) ends this chain; revive_link starts a new one.
      if (!alive_[e.a] || !alive_[e.b] || dead_links_.count(edge) != 0) return;
      ++link_failures_fired_;
      fail_link(e.a, e.b, /*independent=*/true);
      return;
    }
    case Event::Kind::kCrash: {
      if (!alive_[e.a]) return;
      alive_[e.a] = false;
      ++crashes_fired_;
      for (const NodeId peer : topology_.neighbors(e.a)) {
        fail_link(e.a, peer, /*independent=*/false);
      }
      pending_retarget_ = true;
      return;
    }
    case Event::Kind::kRejoin: {
      const NodeId i = e.a;
      if (alive_[i]) return;
      alive_[i] = true;
      ++rejoins_fired_;
      // Fresh state: the node restarts from its initial input, as a machine
      // rebooted from its local data would.
      nodes_[i] = core::make_reducer(config_.algorithm, config_.reducer);
      nodes_[i]->init(i, topology_.neighbors(i), initial_[i]);
      for (const NodeId peer : topology_.neighbors(i)) {
        const auto edge = norm_edge(i, peer);
        if (!alive_[peer] || cut_links_.count(edge) != 0) {
          // The peer is down, or the cable failed independently of the crash
          // and is still cut — exclude it immediately.
          nodes_[i]->on_link_down(peer);
          continue;
        }
        (void)revive_link(i, peer);
      }
      schedule_tick(i);  // the crash orphaned the node's tick chain — restart it
      // The returning mass re-enters the computation: retarget immediately
      // (stale in-flight packets on the revived links are excluded by the
      // heal-epoch filter inside append_in_flight_mass).
      retarget_now();
      return;
    }
    case Event::Kind::kLinkHeal: {
      if (!alive_[e.a] || !alive_[e.b]) return;  // rejoin owns crashed ends
      (void)revive_link(e.a, e.b);
      return;
    }
    case Event::Kind::kDetectUp: {
      --pending_up_notices_;
      // Report "up" only if the link did not die again during the delay.
      if (alive_[e.a] && dead_links_.count(norm_edge(e.a, e.b)) == 0) {
        nodes_[e.a]->on_link_up(e.b);
      }
      return;
    }
    case Event::Kind::kFalseDetect: {
      const auto edge = norm_edge(e.a, e.b);
      // Only a live link between live nodes can be *falsely* suspected.
      if (!alive_[e.a] || !alive_[e.b] || dead_links_.count(edge) != 0) return;
      if (!falsely_excluded_.insert(edge).second) return;
      ++false_detects_fired_;
      // Both detectors report the link down; transport stays up, so packets
      // already in flight still arrive (and are dropped by the reducers).
      nodes_[e.a]->on_link_down(e.b);
      nodes_[e.b]->on_link_down(e.a);
      push({now_ + e.aux, Event::Kind::kFalseClear, e.a, e.b, 0, 0.0, {}});
      return;
    }
    case Event::Kind::kFalseClear: {
      const auto edge = norm_edge(e.a, e.b);
      if (falsely_excluded_.erase(edge) == 0) return;  // superseded by a real failure
      if (alive_[e.a] && alive_[e.b] && dead_links_.count(edge) == 0) {
        ++false_clears_fired_;
        nodes_[e.a]->on_link_up(e.b);
        nodes_[e.b]->on_link_up(e.a);
      }
      return;
    }
    case Event::Kind::kDataUpdate: {
      if (!alive_[e.a]) return;
      nodes_[e.a]->update_data(e.packet.a);
      // A live update changes the conserved mass by exactly delta — no
      // snapshot needed, so this is exact even with packets in flight.
      oracle_.shift(e.packet.a);
      ++data_updates_fired_;
      return;
    }
    case Event::Kind::kDetect: {
      --pending_detects_;
      // Skip the report if the link healed (or the node rejoined and revived
      // it) while the detector was still counting down.
      if (alive_[e.a] && dead_links_.count(norm_edge(e.a, e.b)) != 0) {
        nodes_[e.a]->on_link_down(e.b);
      }
      if (pending_retarget_) {
        // Survivors' local masses alone miss whatever is still on the wire
        // between live nodes; retarget_now() folds the queued deliveries in so
        // the target is the mass the system will actually conserve once they
        // land. Retarget on every detect while a crash settles; the final
        // detect leaves the correct conserved target and ends the window.
        retarget_now();
        if (pending_detects_ == 0) pending_retarget_ = false;
      }
      return;
    }
  }
}

void AsyncEngine::append_in_flight_mass(std::vector<core::Mass>& masses) const {
  // Deliveries to dead nodes or over dead links will be dropped on arrival —
  // their mass is genuinely lost and must NOT be counted. For additive
  // payloads (push-sum) every queued packet contributes its share. For the
  // flow algorithms deliveries are absolute mirrors and per-directed-link
  // FIFO makes them last-writer-wins: only the newest queued packet per link
  // determines the receiver's eventual flow state, so only it carries mass.
  std::map<std::pair<NodeId, NodeId>, const Event*> newest;
  for (const Event& e : queue_.items()) {
    if (e.kind != Event::Kind::kDelivery) continue;
    if (dead_links_.count(norm_edge(e.a, e.b)) != 0 || !alive_[e.b]) continue;
    if (stale_delivery(e)) continue;  // lost in a pre-heal outage
    if (nodes_[e.b]->in_flight_mass_accumulates()) {
      core::Mass m = nodes_[e.b]->unreceived_mass(e.a, e.packet);
      if (!m.is_zero()) masses.push_back(std::move(m));
    } else {
      const Event*& slot = newest[{e.a, e.b}];
      if (slot == nullptr || e.seq > slot->seq) slot = &e;
    }
  }
  for (const auto& [link, event] : newest) {
    core::Mass m = nodes_[event->b]->unreceived_mass(event->a, event->packet);
    if (!m.is_zero()) masses.push_back(std::move(m));
  }
}

void AsyncEngine::run_until(double time) {
  {
    const auto timer = perf_.time(PerfCounters::Phase::kEvents);
    while (!queue_.empty() && queue_.top().time <= time) {
      Event e = queue_.top();
      queue_.pop();
      now_ = e.time;
      handle(e);
      ++perf_.events_processed;
    }
  }
  perf_.queue_reallocations = queue_.reallocations();
  now_ = std::max(now_, time);
  check_invariants_now();
}

bool AsyncEngine::run_until_error(double tol, double deadline, double check_interval) {
  PCF_CHECK_MSG(check_interval > 0.0, "check interval must be positive");
  while (now_ < deadline) {
    run_until(std::min(now_ + check_interval, deadline));
    if (max_error() <= tol) return true;
  }
  return max_error() <= tol;
}

std::vector<double> AsyncEngine::estimates(std::size_t k) const {
  std::vector<double> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) out.push_back(nodes_[i]->estimate(k));
  }
  return out;
}

double AsyncEngine::max_error(std::size_t k) const {
  double worst = 0.0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) worst = std::max(worst, oracle_.error_of(nodes_[i]->estimate(k), k));
  }
  return worst;
}

}  // namespace pcf::sim
