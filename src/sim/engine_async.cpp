#include "sim/engine_async.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pcf::sim {

namespace {
std::pair<NodeId, NodeId> norm_edge(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

/// Read-only adapter the invariant checkers observe the engine through.
struct AsyncEngine::View final : SystemView {
  explicit View(const AsyncEngine& e) : engine(e) {}
  [[nodiscard]] const net::Topology& topology() const override { return engine.topology_; }
  [[nodiscard]] core::Algorithm algorithm() const override { return engine.config_.algorithm; }
  [[nodiscard]] double time() const override { return engine.now_; }
  [[nodiscard]] bool alive(NodeId i) const override { return engine.alive_.at(i); }
  [[nodiscard]] const core::Reducer& node(NodeId i) const override { return *engine.nodes_.at(i); }
  [[nodiscard]] bool link_dead(NodeId a, NodeId b) const override {
    return engine.dead_links_.count(norm_edge(a, b)) != 0;
  }
  [[nodiscard]] const Oracle& oracle() const override { return engine.oracle_; }
  [[nodiscard]] FaultExposure faults() const override {
    const FaultPlan& plan = engine.config_.faults;
    FaultExposure f;
    f.in_flight = true;  // an asynchronous network always has packets in transit
    f.lossy_env = plan.message_loss_prob > 0.0 || plan.bit_flip_prob > 0.0 ||
                  plan.state_flip_prob > 0.0;
    f.any_bit_flips = plan.bit_flip_any_bit && plan.bit_flip_prob > 0.0;
    f.crash_settling = engine.pending_retarget_;
    f.link_failures = engine.link_failures_fired_;
    f.crashes = engine.crashes_fired_;
    f.data_updates = engine.data_updates_fired_;
    return f;
  }
  const AsyncEngine& engine;
};

void AsyncEngine::check_invariants_now() {
  if (!monitor_) return;
  const View view(*this);
  monitor_->check(view);
}

AsyncEngine::AsyncEngine(net::Topology topology, std::span<const core::Mass> initial,
                         AsyncEngineConfig config)
    : topology_(topology),
      config_(std::move(config)),
      net_rng_(Rng(config_.seed).fork(topology.size() + 7)),
      oracle_(initial) {
  PCF_CHECK_MSG(initial.size() == topology.size(), "one initial mass per node required");
  PCF_CHECK_MSG(config_.tick_rate > 0.0, "tick_rate must be positive");
  PCF_CHECK_MSG(config_.latency_min >= 0.0 && config_.latency_max >= config_.latency_min,
                "bad latency range");

  const Rng base(config_.seed);
  nodes_.reserve(topology.size());
  for (NodeId i = 0; i < topology.size(); ++i) {
    nodes_.push_back(core::make_reducer(config_.algorithm, config_.reducer));
    nodes_.back()->init(i, topology.neighbors(i), initial[i]);
    node_rngs_.push_back(base.fork(i));
  }
  alive_.assign(topology.size(), true);
  for (NodeId i = 0; i < topology.size(); ++i) schedule_tick(i);
  for (const auto& f : config_.faults.link_failures) {
    PCF_CHECK_MSG(topology.has_edge(f.a, f.b), "fault plan: unknown link");
    push({f.time, Event::Kind::kLinkFailure, f.a, f.b, 0, {}});
  }
  for (const auto& c : config_.faults.node_crashes) {
    PCF_CHECK_MSG(c.node < topology.size(), "fault plan: crash node out of range");
    push({c.time, Event::Kind::kCrash, c.node, 0, 0, {}});
  }
  for (const auto& u : config_.faults.data_updates) {
    PCF_CHECK_MSG(u.node < topology.size(), "fault plan: data update node out of range");
    Event e{u.time, Event::Kind::kDataUpdate, u.node, 0, 0, {}};
    e.packet.a = u.delta;  // carry the delta in the payload slot
    push(std::move(e));
  }

  if (config_.invariants.resolve_enabled()) {
    monitor_ = std::make_unique<InvariantMonitor>(config_.invariants);
    monitor_->install_default_checkers();
  }
}

void AsyncEngine::push(Event e) {
  e.seq = seq_++;
  queue_.push(std::move(e));
}

void AsyncEngine::schedule_tick(NodeId node) {
  const double dt = node_rngs_[node].exponential(config_.tick_rate);
  push({now_ + dt, Event::Kind::kTick, node, 0, 0, {}});
}

void AsyncEngine::fail_link(NodeId a, NodeId b) {
  if (!dead_links_.insert(norm_edge(a, b)).second) return;
  const double due = now_ + config_.faults.detection_delay;
  push({due, Event::Kind::kDetect, a, b, 0, {}});
  push({due, Event::Kind::kDetect, b, a, 0, {}});
  pending_detects_ += 2;
}

void AsyncEngine::handle(const Event& e) {
  switch (e.kind) {
    case Event::Kind::kTick: {
      const NodeId i = e.a;
      if (!alive_[i]) return;
      schedule_tick(i);
      if (config_.faults.state_flip_prob > 0.0 &&
          net_rng_.chance(config_.faults.state_flip_prob)) {
        (void)nodes_[i]->corrupt_stored_flow(net_rng_);  // memory soft error
      }
      auto out = nodes_[i]->make_message(node_rngs_[i]);
      if (!out) return;
      if (dead_links_.count(norm_edge(i, out->to)) != 0 || !alive_[out->to]) return;
      const auto& plan = config_.faults;
      if (plan.message_loss_prob > 0.0 && net_rng_.chance(plan.message_loss_prob)) return;
      core::Packet packet = std::move(out->packet);
      if (plan.bit_flip_prob > 0.0 && net_rng_.chance(plan.bit_flip_prob)) {
        flip_random_bit(packet, net_rng_, plan.bit_flip_any_bit);
      }
      double arrival = now_ + net_rng_.uniform(config_.latency_min, config_.latency_max);
      // FIFO per directed link: never deliver before an earlier packet on the
      // same link (the tiny epsilon keeps arrivals strictly ordered).
      auto& last = last_arrival_[{i, out->to}];
      arrival = std::max(arrival, last + 1e-9);
      last = arrival;
      ++perf_.messages_sent;
      perf_.doubles_on_wire += nodes_[i]->wire_masses() * (packet.a.dim() + 1);
      push({arrival, Event::Kind::kDelivery, i, out->to, 0, std::move(packet)});
      return;
    }
    case Event::Kind::kDelivery: {
      // A packet already in flight when its link died is lost, matching a
      // physical cable cut rather than a graceful shutdown.
      if (dead_links_.count(norm_edge(e.a, e.b)) != 0 || !alive_[e.b]) return;
      nodes_[e.b]->on_receive(e.a, e.packet);
      ++delivered_;
      ++perf_.deliveries;
      return;
    }
    case Event::Kind::kLinkFailure:
      ++link_failures_fired_;
      fail_link(e.a, e.b);
      return;
    case Event::Kind::kCrash: {
      if (!alive_[e.a]) return;
      alive_[e.a] = false;
      ++crashes_fired_;
      for (const NodeId peer : topology_.neighbors(e.a)) fail_link(e.a, peer);
      pending_retarget_ = true;
      return;
    }
    case Event::Kind::kDataUpdate: {
      if (!alive_[e.a]) return;
      nodes_[e.a]->update_data(e.packet.a);
      // A live update changes the conserved mass by exactly delta — no
      // snapshot needed, so this is exact even with packets in flight.
      oracle_.shift(e.packet.a);
      ++data_updates_fired_;
      return;
    }
    case Event::Kind::kDetect: {
      --pending_detects_;
      if (alive_[e.a]) nodes_[e.a]->on_link_down(e.b);
      if (pending_retarget_) {
        std::vector<core::Mass> current;
        for (NodeId i = 0; i < nodes_.size(); ++i) {
          if (alive_[i]) current.push_back(nodes_[i]->local_mass());
        }
        // Survivors' local masses alone miss whatever is still on the wire
        // between live nodes; fold the queued deliveries in so the target is
        // the mass the system will actually conserve once they land.
        append_in_flight_mass(current);
        oracle_.retarget(current);
        // Retarget on every detect while a crash settles; the final detect
        // leaves the correct conserved target and ends the settling window.
        if (pending_detects_ == 0) pending_retarget_ = false;
      }
      return;
    }
  }
}

void AsyncEngine::append_in_flight_mass(std::vector<core::Mass>& masses) const {
  // Deliveries to dead nodes or over dead links will be dropped on arrival —
  // their mass is genuinely lost and must NOT be counted. For additive
  // payloads (push-sum) every queued packet contributes its share. For the
  // flow algorithms deliveries are absolute mirrors and per-directed-link
  // FIFO makes them last-writer-wins: only the newest queued packet per link
  // determines the receiver's eventual flow state, so only it carries mass.
  std::map<std::pair<NodeId, NodeId>, const Event*> newest;
  for (const Event& e : queue_.items()) {
    if (e.kind != Event::Kind::kDelivery) continue;
    if (dead_links_.count(norm_edge(e.a, e.b)) != 0 || !alive_[e.b]) continue;
    if (nodes_[e.b]->in_flight_mass_accumulates()) {
      core::Mass m = nodes_[e.b]->unreceived_mass(e.a, e.packet);
      if (!m.is_zero()) masses.push_back(std::move(m));
    } else {
      const Event*& slot = newest[{e.a, e.b}];
      if (slot == nullptr || e.seq > slot->seq) slot = &e;
    }
  }
  for (const auto& [link, event] : newest) {
    core::Mass m = nodes_[event->b]->unreceived_mass(event->a, event->packet);
    if (!m.is_zero()) masses.push_back(std::move(m));
  }
}

void AsyncEngine::run_until(double time) {
  {
    const auto timer = perf_.time(PerfCounters::Phase::kEvents);
    while (!queue_.empty() && queue_.top().time <= time) {
      Event e = queue_.top();
      queue_.pop();
      now_ = e.time;
      handle(e);
      ++perf_.events_processed;
    }
  }
  perf_.queue_reallocations = queue_.reallocations();
  now_ = std::max(now_, time);
  check_invariants_now();
}

bool AsyncEngine::run_until_error(double tol, double deadline, double check_interval) {
  PCF_CHECK_MSG(check_interval > 0.0, "check interval must be positive");
  while (now_ < deadline) {
    run_until(std::min(now_ + check_interval, deadline));
    if (max_error() <= tol) return true;
  }
  return max_error() <= tol;
}

std::vector<double> AsyncEngine::estimates(std::size_t k) const {
  std::vector<double> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) out.push_back(nodes_[i]->estimate(k));
  }
  return out;
}

double AsyncEngine::max_error(std::size_t k) const {
  double worst = 0.0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) worst = std::max(worst, oracle_.error_of(nodes_[i]->estimate(k), k));
  }
  return worst;
}

}  // namespace pcf::sim
