// Engine checkpoint/restore implementation (format: DESIGN.md §8).
//
// This TU implements member functions of both engines, so the serialization
// code reads private state directly instead of widening the engines' public
// surface. Layout discipline: the save and load functions for each section
// are adjacent and field-for-field parallel — when you touch one, touch both
// and bump kCheckpointVersion.

#include "sim/checkpoint.hpp"

#include <array>
#include <bit>
#include <string>
#include <utility>
#include <vector>

#include "core/state_io.hpp"
#include "sim/engine_async.hpp"
#include "sim/engine_sync.hpp"
#include "support/binio.hpp"

namespace pcf::sim {

namespace {

constexpr std::uint8_t kKindSync = 1;
constexpr std::uint8_t kKindAsync = 2;

/// FNV-1a over a stream of 64-bit words (fed byte-wise, little-endian).
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  void add_bits(double v) { add(std::bit_cast<std::uint64_t>(v)); }
};

void hash_mass(Fnv& h, const core::Mass& m) {
  h.add(m.dim());
  for (const double v : m.s) h.add_bits(v);
  h.add_bits(m.w);
}

/// The scheduled (immutable) half of the fault plan. Both engines sort the
/// event lists by time at construction, so identically-constructed engines
/// hash identically regardless of the order the plan was written in.
void hash_fault_schedule(Fnv& h, const FaultPlan& p) {
  h.add(p.link_failures.size());
  for (const auto& e : p.link_failures) {
    h.add_bits(e.time);
    h.add(e.a);
    h.add(e.b);
  }
  h.add(p.node_crashes.size());
  for (const auto& e : p.node_crashes) {
    h.add_bits(e.time);
    h.add(e.node);
  }
  h.add(p.data_updates.size());
  for (const auto& e : p.data_updates) {
    h.add_bits(e.time);
    h.add(e.node);
    hash_mass(h, e.delta);
  }
  h.add(p.link_heals.size());
  for (const auto& e : p.link_heals) {
    h.add_bits(e.time);
    h.add(e.a);
    h.add(e.b);
  }
  h.add(p.node_rejoins.size());
  for (const auto& e : p.node_rejoins) {
    h.add_bits(e.time);
    h.add(e.node);
  }
  h.add(p.false_detects.size());
  for (const auto& e : p.false_detects) {
    h.add_bits(e.time);
    h.add(e.a);
    h.add(e.b);
    h.add_bits(e.clear_delay);
  }
}

void hash_construction_inputs(Fnv& h, const net::Topology& topology,
                              std::span<const core::Mass> initial,
                              const core::ReducerConfig& reducer) {
  h.add(static_cast<std::uint64_t>(reducer.aggregate));
  h.add(static_cast<std::uint64_t>(reducer.pcf_variant));
  h.add(reducer.pf_cached_flow_sum ? 1 : 0);
  // The resolved tree schedule is a pure function of (topology, tree_kind), so
  // hashing the kind pins it. Only non-default kinds contribute — keeping every
  // pre-roster pinned golden hash byte-identical.
  if (reducer.tree_kind != net::TreeKind::kAuto) {
    h.add(static_cast<std::uint64_t>(reducer.tree_kind));
  }
  h.add(topology.size());
  for (std::size_t i = 0; i < topology.size(); ++i) {
    const auto nbrs = topology.neighbors(static_cast<NodeId>(i));
    h.add(nbrs.size());
    for (const NodeId j : nbrs) h.add(j);
  }
  h.add(initial.size());
  for (const auto& m : initial) hash_mass(h, m);
}

// ---- header -----------------------------------------------------------

struct Header {
  std::uint8_t engine_kind = 0;
  CheckpointMode mode = CheckpointMode::kFull;
  std::uint8_t algorithm = 0;
  std::uint8_t engine_mode = 0;
  std::uint64_t seed = 0;
  std::uint64_t nodes = 0;
  std::uint64_t dim = 0;
  std::uint64_t compat_hash = 0;
  double position = 0.0;
};

void write_header(BinaryWriter& w, const Header& h) {
  w.raw(kCheckpointMagic.data(), kCheckpointMagic.size());
  w.u32(kCheckpointVersion);
  w.u8(h.engine_kind);
  w.u8(static_cast<std::uint8_t>(h.mode));
  w.u8(h.algorithm);
  w.u8(h.engine_mode);
  w.u64(h.seed);
  w.u64(h.nodes);
  w.u64(h.dim);
  w.u64(h.compat_hash);
  w.f64(h.position);
}

/// Parses + validates the header; leaves `r` positioned at the body.
Header read_header(BinaryReader& r) {
  try {
    if (r.raw(kCheckpointMagic.size()) != kCheckpointMagic) {
      throw CheckpointError("not a pcflow checkpoint (bad magic)");
    }
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion) {
      throw CheckpointError("unsupported checkpoint version " + std::to_string(version) +
                            " (this build reads version " +
                            std::to_string(kCheckpointVersion) + ")");
    }
    Header h;
    h.engine_kind = r.u8();
    if (h.engine_kind != kKindSync && h.engine_kind != kKindAsync) {
      throw CheckpointError("corrupt checkpoint: unknown engine kind");
    }
    const std::uint8_t mode = r.u8();
    if (mode > static_cast<std::uint8_t>(CheckpointMode::kFull)) {
      throw CheckpointError("corrupt checkpoint: unknown checkpoint mode");
    }
    h.mode = static_cast<CheckpointMode>(mode);
    h.algorithm = r.u8();
    h.engine_mode = r.u8();
    h.seed = r.u64();
    h.nodes = r.u64();
    h.dim = r.u64();
    h.compat_hash = r.u64();
    h.position = r.f64();
    return h;
  } catch (const BinioError& e) {
    throw CheckpointError(std::string("truncated checkpoint header: ") + e.what());
  }
}

// ---- shared sections --------------------------------------------------

/// The probabilistic fault knobs are mutable mid-run (mutable_faults() — the
/// chaos harness zeroes them to enter its recovery phase), so they are
/// checkpointed state; the scheduled event lists are construction inputs
/// covered by the compat hash instead.
void save_fault_knobs(BinaryWriter& w, const FaultPlan& p) {
  w.f64(p.message_loss_prob);
  w.f64(p.bit_flip_prob);
  w.boolean(p.bit_flip_any_bit);
  w.f64(p.state_flip_prob);
  w.f64(p.detection_delay);
  w.f64(p.duplicate_prob);
  w.f64(p.reorder_prob);
  w.f64(p.reorder_jitter);
  w.f64(p.churn_fail_prob);
  w.f64(p.churn_heal_rate);
}

void load_fault_knobs(BinaryReader& r, FaultPlan& p) {
  p.message_loss_prob = r.f64();
  p.bit_flip_prob = r.f64();
  p.bit_flip_any_bit = r.boolean();
  p.state_flip_prob = r.f64();
  p.detection_delay = r.f64();
  p.duplicate_prob = r.f64();
  p.reorder_prob = r.f64();
  p.reorder_jitter = r.f64();
  p.churn_fail_prob = r.f64();
  p.churn_heal_rate = r.f64();
}

void save_rng(BinaryWriter& w, const Rng& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

void load_rng(BinaryReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> state{};
  for (auto& word : state) word = r.u64();
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
    throw BinioError("rng checkpoint: all-zero state");
  }
  rng.set_state(state);
}

void save_alive(BinaryWriter& w, const std::vector<bool>& alive) {
  for (const bool a : alive) w.boolean(a);
}

void load_alive(BinaryReader& r, std::vector<bool>& alive) {
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = r.boolean();
}

void save_link_set(BinaryWriter& w, const std::set<std::pair<NodeId, NodeId>>& links) {
  w.u64(links.size());
  for (const auto& [a, b] : links) {  // std::set iterates in sorted order (D2-safe)
    w.u32(a);
    w.u32(b);
  }
}

void load_link_set(BinaryReader& r, std::set<std::pair<NodeId, NodeId>>& links,
                   std::size_t n) {
  links.clear();
  const std::size_t count = r.count(8);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId a = r.u32();
    const NodeId b = r.u32();
    if (a >= n || b >= n) throw BinioError("link set checkpoint: node id out of range");
    links.emplace(a, b);
  }
}

/// Deterministic subset of the perf counters — the wall-clock phase timers
/// are intentionally NOT checkpointed (they are measurements of this
/// process, not simulation state).
void save_perf(BinaryWriter& w, const PerfCounters& perf) {
  w.u64(perf.events_processed);
  w.u64(perf.rounds);
  w.u64(perf.messages_sent);
  w.u64(perf.deliveries);
  w.u64(perf.doubles_on_wire);
}

void load_perf(BinaryReader& r, PerfCounters& perf) {
  perf.events_processed = r.u64();
  perf.rounds = r.u64();
  perf.messages_sent = r.u64();
  perf.deliveries = r.u64();
  perf.doubles_on_wire = r.u64();
}

/// Shared state-fingerprint over the per-node protocol state, probed through
/// the public Reducer interface (bit patterns, not values — two states agree
/// iff every double agrees bitwise).
void fingerprint_nodes(Fnv& h, const net::Topology& topology,
                       const std::vector<std::unique_ptr<core::Reducer>>& nodes,
                       const std::vector<bool>& alive) {
  std::array<core::Mass, core::Reducer::kMaxFlowSlots> slots;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    h.add(alive[i] ? 1 : 0);
    if (!alive[i]) continue;  // dead state is unobservable; rejoin rebuilds it
    const core::Reducer& node = *nodes[i];
    const core::Mass m = node.local_mass();
    for (const double v : m.s) h.add_bits(v);
    h.add_bits(m.w);
    for (std::size_t k = 0; k < m.dim(); ++k) h.add_bits(node.estimate(k));
    h.add(node.live_degree());
    h.add(node.role_swaps());
    for (const NodeId j : topology.neighbors(static_cast<NodeId>(i))) {
      const std::size_t written = node.flows_toward(j, std::span<core::Mass>(slots));
      h.add(written);
      for (std::size_t s = 0; s < written; ++s) {
        for (const double v : slots[s].s) h.add_bits(v);
        h.add_bits(slots[s].w);
      }
    }
  }
}

}  // namespace

CheckpointInfo peek_checkpoint(std::string_view blob) {
  BinaryReader r(blob);
  const Header h = read_header(r);
  CheckpointInfo info;
  info.version = kCheckpointVersion;
  info.engine_kind = h.engine_kind;
  info.mode = h.mode;
  info.algorithm = h.algorithm;
  info.engine_mode = h.engine_mode;
  info.seed = h.seed;
  info.nodes = h.nodes;
  info.dim = h.dim;
  info.compat_hash = h.compat_hash;
  info.position = h.position;
  return info;
}

// ===========================================================================
// SyncEngine
// ===========================================================================

namespace {

std::uint64_t sync_compat_hash(const net::Topology& topology,
                               std::span<const core::Mass> initial,
                               const SyncEngineConfig& config) {
  Fnv h;
  h.add(kKindSync);
  h.add(static_cast<std::uint64_t>(config.algorithm));
  h.add(static_cast<std::uint64_t>(config.delivery));
  h.add(static_cast<std::uint64_t>(config.mode));
  h.add(config.seed);
  hash_construction_inputs(h, topology, initial, config.reducer);
  hash_fault_schedule(h, config.faults);
  return h.h;
}

}  // namespace

std::string SyncEngine::save_checkpoint(CheckpointMode mode) const {
  BinaryWriter w;
  Header h;
  h.engine_kind = kKindSync;
  h.mode = mode;  // recorded for symmetry; the sync body is mode-independent
  h.algorithm = static_cast<std::uint8_t>(config_.algorithm);
  h.engine_mode = fleet_ ? 1 : 0;
  h.seed = config_.seed;
  h.nodes = nodes_.size();
  h.dim = oracle_.dim();
  h.compat_hash = sync_compat_hash(topology_, initial_, config_);
  h.position = static_cast<double>(round_);
  write_header(w, h);

  save_fault_knobs(w, config_.faults);
  w.u64(round_);
  w.u64(next_link_failure_);
  w.u64(next_node_crash_);
  w.u64(next_data_update_);
  w.u64(next_link_heal_);
  w.u64(next_node_rejoin_);
  w.u64(next_false_detect_);
  w.boolean(pending_retarget_);
  w.boolean(wire_reordered_);
  w.boolean(retarget_after_wire_);
  w.u64(stats_.rounds);
  w.u64(stats_.messages_sent);
  w.u64(stats_.messages_dropped);
  w.u64(stats_.messages_flipped);
  w.u64(stats_.messages_duplicated);
  w.u64(stats_.doubles_sent);
  w.u64(stats_.state_flips);
  w.boolean(stats_.reached_target);
  w.u64(explicit_link_failures_);
  w.u64(crashes_fired_);
  w.u64(explicit_data_updates_);
  w.u64(churn_failures_fired_);
  w.u64(link_heals_fired_);
  w.u64(rejoins_fired_);
  w.u64(false_detects_fired_);
  w.u64(false_clears_fired_);
  for (const std::uint64_t c : rejoin_counts_) w.u64(c);
  save_rng(w, fault_rng_);
  for (const Rng& rng : node_rngs_) save_rng(w, rng);
  save_alive(w, alive_);
  save_link_set(w, dead_links_);
  save_link_set(w, cut_links_);
  save_link_set(w, falsely_excluded_);
  w.u64(pending_notices_.size());
  for (const PendingNotice& n : pending_notices_) {
    w.f64(n.due_time);
    w.u32(n.node);
    w.u32(n.peer);
    w.boolean(n.up);
  }
  w.u64(churn_heals_.size());
  for (const LinkHealEvent& e : churn_heals_) {
    w.f64(e.time);
    w.u32(e.a);
    w.u32(e.b);
  }
  w.u64(pending_clears_.size());
  for (const FalseDetectEvent& e : pending_clears_) {
    w.f64(e.time);
    w.u32(e.a);
    w.u32(e.b);
    w.f64(e.clear_delay);
  }
  oracle_.save(w);
  // Per-node reducer state — dead nodes included: their frozen state is
  // deterministic, and saving unconditionally keeps the layout positional.
  for (const auto& node : nodes_) node->save_state(w);
  save_perf(w, perf_);
  return std::move(w).take();
}

void SyncEngine::restore(std::string_view checkpoint) {
  BinaryReader r(checkpoint);
  const Header h = read_header(r);
  if (h.engine_kind != kKindSync) {
    throw CheckpointError("checkpoint was saved by the async engine");
  }
  if (h.algorithm != static_cast<std::uint8_t>(config_.algorithm)) {
    throw CheckpointError("checkpoint algorithm does not match this engine");
  }
  if (h.engine_mode != (fleet_ ? 1 : 0)) {
    throw CheckpointError(
        "checkpoint engine mode (legacy/arena) does not match this engine");
  }
  if (h.seed != config_.seed || h.nodes != nodes_.size() || h.dim != oracle_.dim() ||
      h.compat_hash != sync_compat_hash(topology_, initial_, config_)) {
    throw CheckpointError(
        "checkpoint is incompatible with this engine's construction inputs "
        "(seed/topology/initial masses/config mismatch)");
  }
  try {
    load_fault_knobs(r, config_.faults);
    round_ = r.u64();
    next_link_failure_ = r.u64();
    next_node_crash_ = r.u64();
    next_data_update_ = r.u64();
    next_link_heal_ = r.u64();
    next_node_rejoin_ = r.u64();
    next_false_detect_ = r.u64();
    pending_retarget_ = r.boolean();
    wire_reordered_ = r.boolean();
    retarget_after_wire_ = r.boolean();
    stats_.rounds = r.u64();
    stats_.messages_sent = r.u64();
    stats_.messages_dropped = r.u64();
    stats_.messages_flipped = r.u64();
    stats_.messages_duplicated = r.u64();
    stats_.doubles_sent = r.u64();
    stats_.state_flips = r.u64();
    stats_.reached_target = r.boolean();
    explicit_link_failures_ = r.u64();
    crashes_fired_ = r.u64();
    explicit_data_updates_ = r.u64();
    churn_failures_fired_ = r.u64();
    link_heals_fired_ = r.u64();
    rejoins_fired_ = r.u64();
    false_detects_fired_ = r.u64();
    false_clears_fired_ = r.u64();
    for (std::uint64_t& c : rejoin_counts_) c = r.u64();
    load_rng(r, fault_rng_);
    for (Rng& rng : node_rngs_) load_rng(r, rng);
    load_alive(r, alive_);
    load_link_set(r, dead_links_, nodes_.size());
    load_link_set(r, cut_links_, nodes_.size());
    load_link_set(r, falsely_excluded_, nodes_.size());
    pending_notices_.clear();
    const std::size_t notices = r.count(10);
    for (std::size_t i = 0; i < notices; ++i) {
      PendingNotice n{};
      n.due_time = r.f64();
      n.node = r.u32();
      n.peer = r.u32();
      n.up = r.boolean();
      pending_notices_.push_back(n);
    }
    churn_heals_.clear();
    const std::size_t heals = r.count(16);
    for (std::size_t i = 0; i < heals; ++i) {
      LinkHealEvent e{};
      e.time = r.f64();
      e.a = r.u32();
      e.b = r.u32();
      churn_heals_.push_back(e);
    }
    pending_clears_.clear();
    const std::size_t clears = r.count(24);
    for (std::size_t i = 0; i < clears; ++i) {
      FalseDetectEvent e{};
      e.time = r.f64();
      e.a = r.u32();
      e.b = r.u32();
      e.clear_delay = r.f64();
      pending_clears_.push_back(e);
    }
    oracle_.load(r);
    for (const auto& node : nodes_) node->load_state(r);
    load_perf(r, perf_);
    r.expect_end();
  } catch (const BinioError& e) {
    throw CheckpointError(std::string("corrupt checkpoint body: ") + e.what());
  }
  // Per-round scratch never outlives a step(), but clear defensively so a
  // restore into a mid-lifetime engine cannot leak stale wire entries.
  wire_.clear();
  for (auto& shard : shard_wires_) shard.clear();
}

std::uint64_t SyncEngine::state_fingerprint() const {
  Fnv h;
  h.add(round_);
  fingerprint_nodes(h, topology_, nodes_, alive_);
  return h.h;
}

// ===========================================================================
// AsyncEngine
// ===========================================================================

namespace {

std::uint64_t async_compat_hash(const net::Topology& topology,
                                std::span<const core::Mass> initial,
                                const AsyncEngineConfig& config) {
  Fnv h;
  h.add(kKindAsync);
  h.add(static_cast<std::uint64_t>(config.algorithm));
  h.add(config.seed);
  h.add_bits(config.tick_rate);
  h.add_bits(config.latency_min);
  h.add_bits(config.latency_max);
  hash_construction_inputs(h, topology, initial, config.reducer);
  hash_fault_schedule(h, config.faults);
  return h.h;
}

constexpr std::uint8_t kMaxEventKind = 11;  // Event::Kind::kChurnFail

/// Whether an event kind carries a meaningful packet payload (all other
/// kinds leave it default-constructed, so it is not serialized).
[[nodiscard]] bool event_has_packet(std::uint8_t kind) {
  return kind == 1 /* kDelivery */ || kind == 5 /* kDataUpdate */;
}

}  // namespace

std::string AsyncEngine::save_checkpoint(CheckpointMode mode) const {
  // The wire format stores Event::Kind as its integer value; pin the values
  // the format depends on so an enum reorder fails here, not in saved state.
  static_assert(static_cast<std::uint8_t>(Event::Kind::kDelivery) == 1);
  static_assert(static_cast<std::uint8_t>(Event::Kind::kDataUpdate) == 5);
  static_assert(static_cast<std::uint8_t>(Event::Kind::kChurnFail) == kMaxEventKind);
  BinaryWriter w;
  Header h;
  h.engine_kind = kKindAsync;
  h.mode = mode;
  h.algorithm = static_cast<std::uint8_t>(config_.algorithm);
  h.engine_mode = 0;  // the async engine has no arena backend
  h.seed = config_.seed;
  h.nodes = nodes_.size();
  h.dim = oracle_.dim();
  h.compat_hash = async_compat_hash(topology_, initial_, config_);
  h.position = now_;
  write_header(w, h);

  save_fault_knobs(w, config_.faults);
  w.f64(now_);
  w.u64(seq_);
  w.u64(delivered_);
  w.boolean(pending_retarget_);
  w.u64(pending_detects_);
  w.u64(pending_up_notices_);
  w.u64(link_failures_fired_);
  w.u64(crashes_fired_);
  w.u64(data_updates_fired_);
  w.u64(link_heals_fired_);
  w.u64(rejoins_fired_);
  w.u64(false_detects_fired_);
  w.u64(false_clears_fired_);
  w.u64(duplicates_injected_);
  save_rng(w, net_rng_);
  for (const Rng& rng : node_rngs_) save_rng(w, rng);
  save_alive(w, alive_);
  save_link_set(w, dead_links_);
  save_link_set(w, cut_links_);
  save_link_set(w, falsely_excluded_);
  w.u64(heal_seq_.size());
  for (const auto& [link, seq] : heal_seq_) {  // std::map: sorted iteration
    w.u32(link.first);
    w.u32(link.second);
    w.u64(seq);
  }
  w.u64(last_arrival_.size());
  for (const auto& [link, time] : last_arrival_) {
    w.u32(link.first);
    w.u32(link.second);
    w.f64(time);
  }
  oracle_.save(w);
  for (const auto& node : nodes_) node->save_state(w);
  save_perf(w, perf_);

  // The event heap. Full mode: every pending event in raw heap-vector order,
  // restored verbatim — pop order (and thus continuation) is bitwise-exact.
  // Lightweight mode: kDelivery events (the in-flight packets) are dropped,
  // FTPregel-style; the control events (ticks, scheduled faults, churn
  // chains, detector notices) survive, because replay cannot regenerate them.
  const auto pending = queue_.items();
  std::size_t saved = pending.size();
  if (mode == CheckpointMode::kLightweight) {
    saved = 0;
    for (const Event& e : pending) {
      if (e.kind != Event::Kind::kDelivery) ++saved;
    }
  }
  w.u64(saved);
  for (const Event& e : pending) {
    if (mode == CheckpointMode::kLightweight && e.kind == Event::Kind::kDelivery) continue;
    w.f64(e.time);
    const auto kind = static_cast<std::uint8_t>(e.kind);
    w.u8(kind);
    w.u32(e.a);
    w.u32(e.b);
    w.u64(e.seq);
    w.f64(e.aux);
    if (event_has_packet(kind)) core::write_packet(w, e.packet);
  }
  return std::move(w).take();
}

void AsyncEngine::restore(std::string_view checkpoint) {
  BinaryReader r(checkpoint);
  const Header h = read_header(r);
  if (h.engine_kind != kKindAsync) {
    throw CheckpointError("checkpoint was saved by the sync engine");
  }
  if (h.algorithm != static_cast<std::uint8_t>(config_.algorithm)) {
    throw CheckpointError("checkpoint algorithm does not match this engine");
  }
  if (h.seed != config_.seed || h.nodes != nodes_.size() || h.dim != oracle_.dim() ||
      h.compat_hash != async_compat_hash(topology_, initial_, config_)) {
    throw CheckpointError(
        "checkpoint is incompatible with this engine's construction inputs "
        "(seed/topology/initial masses/config mismatch)");
  }
  try {
    load_fault_knobs(r, config_.faults);
    now_ = r.f64();
    seq_ = r.u64();
    delivered_ = r.u64();
    pending_retarget_ = r.boolean();
    pending_detects_ = r.u64();
    pending_up_notices_ = r.u64();
    link_failures_fired_ = r.u64();
    crashes_fired_ = r.u64();
    data_updates_fired_ = r.u64();
    link_heals_fired_ = r.u64();
    rejoins_fired_ = r.u64();
    false_detects_fired_ = r.u64();
    false_clears_fired_ = r.u64();
    duplicates_injected_ = r.u64();
    load_rng(r, net_rng_);
    for (Rng& rng : node_rngs_) load_rng(r, rng);
    load_alive(r, alive_);
    load_link_set(r, dead_links_, nodes_.size());
    load_link_set(r, cut_links_, nodes_.size());
    load_link_set(r, falsely_excluded_, nodes_.size());
    heal_seq_.clear();
    const std::size_t heals = r.count(16);
    for (std::size_t i = 0; i < heals; ++i) {
      const NodeId a = r.u32();
      const NodeId b = r.u32();
      heal_seq_[{a, b}] = r.u64();
    }
    last_arrival_.clear();
    const std::size_t arrivals = r.count(16);
    for (std::size_t i = 0; i < arrivals; ++i) {
      const NodeId a = r.u32();
      const NodeId b = r.u32();
      last_arrival_[{a, b}] = r.f64();
    }
    oracle_.load(r);
    for (const auto& node : nodes_) node->load_state(r);
    load_perf(r, perf_);

    std::vector<Event> events;
    const std::size_t count = r.count(30);
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Event e{};
      e.time = r.f64();
      const std::uint8_t kind = r.u8();
      if (kind > kMaxEventKind) throw BinioError("event checkpoint: kind out of range");
      e.kind = static_cast<Event::Kind>(kind);
      e.a = r.u32();
      e.b = r.u32();
      if (e.a >= nodes_.size() || e.b >= nodes_.size()) {
        throw BinioError("event checkpoint: node id out of range");
      }
      e.seq = r.u64();
      e.aux = r.f64();
      if (event_has_packet(kind)) e.packet = core::read_packet(r);
      events.push_back(std::move(e));
    }
    r.expect_end();
    // Full mode saved the raw heap layout — install verbatim. Lightweight
    // filtered out deliveries, so the heap property must be re-established.
    queue_.restore_items(std::move(events), h.mode == CheckpointMode::kFull);
  } catch (const BinioError& e) {
    throw CheckpointError(std::string("corrupt checkpoint body: ") + e.what());
  }
}

std::uint64_t AsyncEngine::state_fingerprint() const {
  Fnv h;
  h.add_bits(now_);
  fingerprint_nodes(h, topology_, nodes_, alive_);
  return h.h;
}

}  // namespace pcf::sim
