// Textual fault-plan specifications for command-line tools.
//
// Grammar (comma-separated event lists, times in rounds):
//   link failures : "T:A:B[,T:A:B...]"      e.g.  "75:0:1,120:2:3"
//   node crashes  : "T:N[,T:N...]"          e.g.  "100:5"
//   data updates  : "T:N:DELTA[,...]"       e.g.  "50:3:2.5,80:0:-1"
//   link heals    : "T:A:B[,T:A:B...]"      e.g.  "200:0:1"
//   node rejoins  : "T:N[,T:N...]"          e.g.  "250:5"
//   false detects : "T:A:B:D[,...]"         e.g.  "90:2:3:25" (clears after D)
//
// Every event time must be non-negative, and when the caller passes the
// network size node ids are range-checked too. Parsed lists are sorted by
// time, so specs may be written in any order.
#pragma once

#include <span>
#include <string>

#include "sim/faults.hpp"

namespace pcf::sim {

/// The six textual event lists of a fault spec (each may be empty).
struct FaultSpecInput {
  std::string link_failures;
  std::string node_crashes;
  std::string data_updates;
  std::string link_heals;
  std::string node_rejoins;
  std::string false_detects;
};

/// Parses the event lists into a FaultPlan with every list sorted by time.
/// When `node_count` > 0 node ids are validated against it. Throws
/// ContractViolation with a pointed message on malformed input (bad field
/// counts, unparsable numbers, negative times, out-of-range node ids).
[[nodiscard]] FaultPlan parse_fault_spec(const FaultSpecInput& spec, std::size_t node_count = 0);

/// Back-compat convenience for the original three lists.
[[nodiscard]] FaultPlan parse_fault_spec(const std::string& link_failures,
                                         const std::string& node_crashes,
                                         const std::string& data_updates);

// Inverses of parse_fault_spec, one per event list — round-trip safe, so a
// FaultPlan can be dumped into a reproduction command line (the differential
// harness writes minimized repro specs this way).
[[nodiscard]] std::string format_link_failures(std::span<const LinkFailureEvent> events);
[[nodiscard]] std::string format_node_crashes(std::span<const NodeCrashEvent> events);
/// Only scalar deltas are representable in the spec grammar; vector-payload
/// updates are rejected with ContractViolation.
[[nodiscard]] std::string format_data_updates(std::span<const DataUpdateEvent> events);
[[nodiscard]] std::string format_link_heals(std::span<const LinkHealEvent> events);
[[nodiscard]] std::string format_node_rejoins(std::span<const NodeRejoinEvent> events);
[[nodiscard]] std::string format_false_detects(std::span<const FalseDetectEvent> events);

}  // namespace pcf::sim
