// Textual fault-plan specifications for command-line tools.
//
// Grammar (comma-separated event lists, times in rounds):
//   link failures : "T:A:B[,T:A:B...]"      e.g.  "75:0:1,120:2:3"
//   node crashes  : "T:N[,T:N...]"          e.g.  "100:5"
//   data updates  : "T:N:DELTA[,...]"       e.g.  "50:3:2.5,80:0:-1"
#pragma once

#include <span>
#include <string>

#include "sim/faults.hpp"

namespace pcf::sim {

/// Parses the three event lists (each may be empty) into a FaultPlan.
/// Throws ContractViolation with a pointed message on malformed input.
[[nodiscard]] FaultPlan parse_fault_spec(const std::string& link_failures,
                                         const std::string& node_crashes,
                                         const std::string& data_updates);

// Inverses of parse_fault_spec, one per event list — round-trip safe, so a
// FaultPlan can be dumped into a reproduction command line (the differential
// harness writes minimized repro specs this way).
[[nodiscard]] std::string format_link_failures(std::span<const LinkFailureEvent> events);
[[nodiscard]] std::string format_node_crashes(std::span<const NodeCrashEvent> events);
/// Only scalar deltas are representable in the spec grammar; vector-payload
/// updates are rejected with ContractViolation.
[[nodiscard]] std::string format_data_updates(std::span<const DataUpdateEvent> events);

}  // namespace pcf::sim
