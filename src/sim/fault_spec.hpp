// Textual fault-plan specifications for command-line tools.
//
// Grammar (comma-separated event lists, times in rounds):
//   link failures : "T:A:B[,T:A:B...]"      e.g.  "75:0:1,120:2:3"
//   node crashes  : "T:N[,T:N...]"          e.g.  "100:5"
//   data updates  : "T:N:DELTA[,...]"       e.g.  "50:3:2.5,80:0:-1"
#pragma once

#include <string>

#include "sim/faults.hpp"

namespace pcf::sim {

/// Parses the three event lists (each may be empty) into a FaultPlan.
/// Throws ContractViolation with a pointed message on malformed input.
[[nodiscard]] FaultPlan parse_fault_spec(const std::string& link_failures,
                                         const std::string& node_crashes,
                                         const std::string& data_updates);

}  // namespace pcf::sim
