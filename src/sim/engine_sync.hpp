// Synchronous round-based gossip engine.
//
// One round = every live node draws a gossip target and emits one packet; all
// packets of the round are then delivered (receivers see the senders' states
// as they were at the start of the round, i.e. messages "cross" — the classic
// synchronous gossip model used by the paper's experiments). Everything is
// deterministic given the seed: node i draws its targets from its own forked
// RNG stream, so runs of *different algorithms* with the same seed use the
// same communication schedule — which is how the paper makes Fig. 4 and
// Fig. 7 directly comparable ("we initially used exactly the same random
// seed").
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "core/arena.hpp"
#include "core/reducer.hpp"
#include "core/stopping.hpp"
#include "net/topology.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"
#include "sim/metrics.hpp"
#include "support/perf.hpp"

namespace pcf::sim {

/// Within-round delivery model.
enum class Delivery {
  /// Each packet is delivered as soon as its sender produced it (node order).
  /// No two packets are ever in flight at once, so pairwise flow conservation
  /// holds after every delivery and the total mass is exactly conserved at
  /// every round boundary. Default, and the model the paper's invariants
  /// assume.
  kSequential,
  /// All packets of a round are sent first, then delivered ("messages
  /// cross"). Two nodes that pick each other in the same round each mirror
  /// the other's STALE flow, transiently breaking conservation — a stress
  /// model the flow algorithms must (and do) self-heal from.
  kCrossing,
};

/// Engine state implementation.
enum class EngineMode {
  /// One heap-allocated Reducer object per node (the reference path).
  kLegacy,
  /// Structure-of-arrays flow arenas over a CSR adjacency with a
  /// devirtualized round loop (core::ArenaFleet). Bitwise-identical to
  /// kLegacy for every algorithm, delivery model and fault plan — held to
  /// that by tests/sim/test_arena_equivalence.cpp — but scales to 10^6
  /// nodes. The per-node Reducer interface (node(i)) stays available
  /// through thin facades, so oracles / invariants / fault hooks are
  /// unchanged.
  kArena,
};

struct SyncEngineConfig {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::ReducerConfig reducer;
  FaultPlan faults;
  std::uint64_t seed = 1;
  Delivery delivery = Delivery::kSequential;
  EngineMode mode = EngineMode::kLegacy;
  /// Arena mode only: shard the round loop over up to this many worker
  /// threads (0 = hardware concurrency, 1 = serial). Sharding engages only
  /// for the phases the fault model keeps node-disjoint (wire-routed sends
  /// with no per-packet loss/flip draws; drains with no duplicate/reorder
  /// draws) — everything else runs serially, so the engine output is
  /// byte-identical for every shard count.
  std::size_t shards = 1;
  InvariantConfig invariants;  ///< runtime invariant checking (see invariants.hpp)
};

struct RunStats {
  std::size_t rounds = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_dropped = 0;  // by message-loss injection or dead links
  std::size_t messages_flipped = 0;
  std::size_t messages_duplicated = 0;  // adversarial-delivery duplicates injected
  std::size_t doubles_sent = 0;  // payload bandwidth (mass components on the wire)
  std::size_t state_flips = 0;   // memory soft errors injected
  bool reached_target = false;   // for run_until_error
};

class SyncEngine {
 public:
  /// `initial` is one mass per node (all same dimension). The weight layout
  /// decides the aggregate (see core::initial_weight).
  /// The engine stores its own copy of the topology, so temporaries are safe.
  SyncEngine(net::Topology topology, std::span<const core::Mass> initial,
             SyncEngineConfig config);

  /// Executes one synchronous round (fault events due at this round fire
  /// first). Returns the round index just executed (1-based).
  std::size_t step();

  /// Runs `rounds` rounds.
  void run(std::size_t rounds);

  /// Runs until the oracle max relative error ≤ tol or max_rounds elapsed.
  RunStats run_until_error(double tol, std::size_t max_rounds);

  /// Runs until no estimate changes for `window` consecutive rounds (the
  /// numerical fixed point — best accuracy the algorithm will ever reach),
  /// or until max_rounds.
  RunStats run_until_fixed_point(std::size_t max_rounds, std::size_t window = 32);

  // ---- observation ----
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] const Oracle& oracle() const noexcept { return oracle_; }
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }
  /// Wall-clock per phase / throughput counters (see support/perf.hpp).
  [[nodiscard]] const PerfCounters& perf() const noexcept { return perf_; }
  /// Live access to the fault model between steps. Only the probabilistic
  /// knobs (loss / flip / duplicate / reorder / churn rates) may be changed
  /// mid-run; the scheduled event lists are fixed at construction. Zeroing
  /// reorder_prob after a reordered round does NOT re-arm the exact
  /// conservation checkers — the staleness it caused is sticky.
  [[nodiscard]] FaultPlan& mutable_faults() noexcept { return config_.faults; }

  /// Programmatic live data update: node's input changes by `delta` and the
  /// oracle target shifts exactly. The flow state is untouched, so estimates
  /// re-converge from where they are — the basis of warm-started reduction
  /// sessions (see sim::ReductionSession).
  void apply_data_update(NodeId node, const core::Mass& delta);

  /// Programmatic permanent link failure: transport stops now, both endpoints
  /// are notified immediately (detection delay does not apply).
  void fail_link_now(NodeId a, NodeId b);
  /// Programmatic link heal: transport resumes now, both endpoints are
  /// notified immediately (on_link_up). No-op if the link is up; rejected if
  /// either endpoint is crashed (rejoin revives a crashed node's links).
  void heal_link_now(NodeId a, NodeId b);
  /// Currently failed links (normalized (min,max) pairs, sorted) — the chaos
  /// harness uses this to heal whatever churn left dead.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> dead_links() const {
    return {dead_links_.begin(), dead_links_.end()};
  }
  [[nodiscard]] core::Reducer& node(NodeId i) { return *nodes_.at(i); }
  [[nodiscard]] const core::Reducer& node(NodeId i) const { return *nodes_.at(i); }
  [[nodiscard]] bool node_alive(NodeId i) const { return alive_.at(i); }
  /// The SoA state arena, or nullptr in legacy mode.
  [[nodiscard]] const core::ArenaFleet* fleet() const noexcept { return fleet_.get(); }
  /// Resolved shard count (config_.shards with 0 expanded to hardware).
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Estimates of component k on all live nodes (dead nodes are skipped).
  [[nodiscard]] std::vector<double> estimates(std::size_t k = 0) const;
  /// Current masses of all live nodes.
  [[nodiscard]] std::vector<core::Mass> masses() const;
  [[nodiscard]] double max_error(std::size_t k = 0) const;
  [[nodiscard]] double median_error(std::size_t k = 0) const;
  /// Quantile q of the live nodes' local relative errors (q in [0,1]).
  [[nodiscard]] double error_quantile(double q, std::size_t k = 0) const;
  /// Largest flow component across all live nodes (ablation A3).
  [[nodiscard]] double max_abs_flow() const;
  /// Samples a TracePoint for the current state.
  [[nodiscard]] TracePoint sample(std::size_t k = 0) const;

  /// Cumulative fault telemetry — exactly what the invariant checkers see
  /// (fired event counters, in-flight/lossy exposure). The chaos harness and
  /// tests read heal/rejoin/duplication counts through this.
  [[nodiscard]] FaultExposure fault_exposure() const;

  /// The invariant monitor, or nullptr when checking is disabled.
  [[nodiscard]] const InvariantMonitor* invariants() const noexcept { return monitor_.get(); }
  /// Runs all invariant checkers against the current state immediately
  /// (independent of the per-round cadence). No-op when checking is disabled.
  void check_invariants_now();

  // ---- checkpoint / restore (sim/checkpoint.cpp; DESIGN.md §8) ----

  /// Serializes the engine's complete mutable state. Call between step()s —
  /// the synchronous wire is empty at every round boundary, so kLightweight
  /// and kFull produce the same body here (the mode is recorded for
  /// symmetry with the async engine).
  [[nodiscard]] std::string save_checkpoint(CheckpointMode mode = CheckpointMode::kFull) const;

  /// Restores a checkpoint written by save_checkpoint into this engine, which
  /// must have been constructed with the identical topology, initial masses
  /// and config (validated via the blob's compatibility hash). Throws
  /// CheckpointError on truncated/corrupted/version-skewed blobs or an
  /// incompatible engine; header and compatibility validation happen before
  /// any state is touched, but a throw from deeper body corruption leaves the
  /// engine in an unspecified state — discard it. After a successful restore,
  /// continuation is bitwise-identical to the saved run (per-round
  /// state_fingerprint(), message for message).
  void restore(std::string_view checkpoint);

  /// FNV-1a hash of the bit-exact live protocol state: round, per-node
  /// liveness, masses, estimates, flows toward every topology neighbor, and
  /// PCF handshake counters. Two engines in the same state agree; any bitwise
  /// state divergence shows. The restore-equivalence probe used by the tests,
  /// the chaos-restore scenarios and `pcflow checkpoint`.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  /// Times node i rejoined after a crash (checkpointed; the session layer
  /// uses this to re-apply data updates a dead node missed).
  [[nodiscard]] std::uint64_t rejoin_count(NodeId i) const { return rejoin_counts_.at(i); }

 private:
  struct View;
  struct LegacyOps;
  template <core::Algorithm A>
  struct ArenaOps;
  void check_invariants(bool force);
  void process_due_faults();
  void fail_link(NodeId a, NodeId b, double physical_time, bool independent);
  /// Revives a dead link: clears the dead/cut marks, drops its stale pending
  /// down-notices, and schedules on_link_up at both endpoints for
  /// `time + detection_delay`. Caller has checked both endpoints are alive.
  void revive_link(NodeId a, NodeId b, double physical_time);
  void rejoin_node(NodeId node, double physical_time);
  void deliver_notifications_due();

  // Round phases, templated on the state backend (LegacyOps virtual-calls
  // into nodes_; ArenaOps<A> inlines the fleet's flat-array ops). The
  // *_sharded variants split the node range into `shards_` contiguous
  // blocks and merge in block order — byte-identical to the serial phase.
  template <typename Ops>
  void send_phase(Ops& ops);
  template <typename Ops>
  void send_phase_sharded(Ops& ops);
  template <typename Ops>
  void drain_phase(Ops& ops);
  template <typename Ops>
  void drain_phase_sharded(Ops& ops);
  template <typename Ops>
  void run_gossip(Ops& ops, bool send_sharded);
  template <typename Ops>
  void run_drain(Ops& ops, bool drain_sharded);
  void dispatch_send_phase();
  void dispatch_drain_phase();

  net::Topology topology_;
  SyncEngineConfig config_;
  std::vector<std::unique_ptr<core::Reducer>> nodes_;
  std::unique_ptr<core::ArenaFleet> fleet_;  // kArena mode only
  std::size_t shards_ = 1;
  std::vector<Rng> node_rngs_;
  Rng fault_rng_;
  Oracle oracle_;
  std::vector<core::Mass> initial_;  // per node — a rejoining node restarts from this
  std::vector<bool> alive_;
  std::set<std::pair<NodeId, NodeId>> dead_links_;  // normalized (min,max); transport cut
  /// Links that failed independently of a node crash (scheduled, explicit, or
  /// churn). A rejoin revives a crashed node's links EXCEPT these — the cable
  /// is still cut; only a heal event (or churn heal) restores them.
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  /// Live links currently excluded by a failure-detector false positive.
  std::set<std::pair<NodeId, NodeId>> falsely_excluded_;
  struct PendingNotice {
    double due_time;
    NodeId node;  // who gets the callback
    NodeId peer;
    bool up = false;  // false: on_link_down, true: on_link_up
  };
  std::vector<PendingNotice> pending_notices_;
  std::vector<LinkHealEvent> churn_heals_;      // churn-scheduled heals, unordered
  std::vector<FalseDetectEvent> pending_clears_;  // "detected up" times for false positives
  std::size_t next_link_failure_ = 0;
  std::size_t next_node_crash_ = 0;
  std::size_t next_data_update_ = 0;
  std::size_t next_link_heal_ = 0;
  std::size_t next_node_rejoin_ = 0;
  std::size_t next_false_detect_ = 0;
  std::size_t round_ = 0;
  std::vector<std::uint64_t> rejoin_counts_;  // per node, monotone
  RunStats stats_;
  PerfCounters perf_;
  bool pending_retarget_ = false;
  /// A round ran with reordering enabled. Sticky: the stale mirrors it left
  /// outlive the knob, so the invariant layer treats the run as in-flight
  /// from then on (see View::faults()).
  bool wire_reordered_ = false;
  /// Crossing mode only: all exclusion notices have fired but the retarget
  /// must wait until the current round's wire_ has drained, so the snapshot
  /// sees no crossing packets mid-flight. See step().
  bool retarget_after_wire_ = false;
  std::unique_ptr<InvariantMonitor> monitor_;
  std::size_t explicit_link_failures_ = 0;  // via fail_link_now()
  std::size_t crashes_fired_ = 0;
  std::size_t explicit_data_updates_ = 0;  // via apply_data_update()
  std::size_t churn_failures_fired_ = 0;
  std::size_t link_heals_fired_ = 0;
  std::size_t rejoins_fired_ = 0;
  std::size_t false_detects_fired_ = 0;
  std::size_t false_clears_fired_ = 0;

  struct InFlight {
    NodeId from;
    NodeId to;
    /// Receiver-side slot of the sender (arena mode; 0 in legacy mode, where
    /// on_receive re-resolves the slot itself).
    std::uint32_t to_slot = 0;
    core::Packet packet;
  };
  std::vector<InFlight> wire_;  // reused per round
  std::vector<std::vector<InFlight>> shard_wires_;  // per-shard send buffers, reused
  std::vector<std::size_t> drain_offsets_;  // per-receiver wire ranges, reused
  std::vector<std::size_t> drain_sorted_;   // wire indices sorted by receiver, reused
};

}  // namespace pcf::sim
