#include "sim/reduce.hpp"

#include <cmath>

#include "support/check.hpp"

namespace pcf::sim {

std::vector<core::Mass> masses_from_values(std::span<const double> values,
                                           core::Aggregate aggregate) {
  std::vector<core::Mass> masses;
  masses.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.push_back(core::Mass::scalar(values[i], core::initial_weight(aggregate, i)));
  }
  return masses;
}

std::vector<core::Mass> masses_from_vectors(std::span<const core::Values> values,
                                            core::Aggregate aggregate) {
  std::vector<core::Mass> masses;
  masses.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    masses.emplace_back(values[i], core::initial_weight(aggregate, i));
  }
  return masses;
}

namespace {

ReduceResult run_engine(const net::Topology& topology, std::span<const core::Mass> masses,
                        const ReduceOptions& options) {
  SyncEngineConfig cfg;
  cfg.algorithm = options.algorithm;
  cfg.reducer = options.reducer;
  cfg.faults = options.faults;
  cfg.seed = options.seed;
  SyncEngine engine(topology, masses, cfg);

  const std::size_t d = masses.empty() ? 1 : masses.front().dim();
  ReduceResult result;

  if (options.trace_every == 0) {
    result.stats = engine.run_until_error(options.target_accuracy, options.max_rounds);
  } else {
    // Traced run: stop condition checked at every sample point.
    bool reached = false;
    while (engine.round() < options.max_rounds && !reached) {
      for (std::size_t r = 0; r < options.trace_every && engine.round() < options.max_rounds;
           ++r) {
        engine.step();
      }
      result.trace.add(engine.sample());
      reached = engine.max_error() <= options.target_accuracy;
    }
    result.stats = engine.stats();
    result.stats.reached_target = reached;
  }

  result.rounds = engine.round();
  result.reached_target = result.stats.reached_target;
  result.max_error = engine.max_error();
  result.target.resize(d);
  for (std::size_t k = 0; k < d; ++k) result.target[k] = engine.oracle().target(k);

  result.estimates.assign(topology.size(),
                          std::vector<double>(d, std::numeric_limits<double>::quiet_NaN()));
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    if (!engine.node_alive(i)) continue;
    for (std::size_t k = 0; k < d; ++k) result.estimates[i][k] = engine.node(i).estimate(k);
  }
  return result;
}

}  // namespace

ReduceResult reduce(const net::Topology& topology, std::span<const double> values,
                    const ReduceOptions& options) {
  PCF_CHECK_MSG(values.size() == topology.size(), "one value per node required");
  const auto masses = masses_from_values(values, options.aggregate);
  return run_engine(topology, masses, options);
}

ReduceResult reduce_vectors(const net::Topology& topology, std::span<const core::Values> values,
                            const ReduceOptions& options) {
  PCF_CHECK_MSG(values.size() == topology.size(), "one value vector per node required");
  const auto masses = masses_from_vectors(values, options.aggregate);
  return run_engine(topology, masses, options);
}

ReduceResult reduce_weighted(const net::Topology& topology, std::span<const double> values,
                             std::span<const double> weights, const ReduceOptions& options) {
  PCF_CHECK_MSG(values.size() == topology.size(), "one value per node required");
  PCF_CHECK_MSG(weights.size() == topology.size(), "one weight per node required");
  std::vector<core::Mass> masses;
  masses.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    PCF_CHECK_MSG(weights[i] > 0.0, "weighted reduction needs positive weights (node " << i
                                        << " has " << weights[i] << ")");
    // Mass (wᵢ·xᵢ, wᵢ): the estimate ratio converges to Σwx / Σw.
    masses.push_back(core::Mass::scalar(weights[i] * values[i], weights[i]));
  }
  return run_engine(topology, masses, options);
}

}  // namespace pcf::sim
