// Distributed descriptive statistics on top of the reduction layer.
//
// All of count / sum / mean / variance come out of ONE vector-payload SUM
// reduction (components [x, x², 1]); min and max come from an extrema-gossip
// pass. Every node ends with its own complete summary — the building block
// the paper's introduction motivates ("all commonly required functionality in
// numerical linear algebra is based on the computation of sums and dot
// products").
#pragma once

#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/reduce.hpp"

namespace pcf::sim {

struct SummaryOptions {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  std::uint64_t seed = 1;
  double target_accuracy = 1e-12;
  std::size_t max_rounds = 20000;
  /// Rounds of extrema gossip; extrema propagate in O(diameter · log n)
  /// gossip rounds, 0 = auto (derived from the topology).
  std::size_t extrema_rounds = 0;
  FaultPlan faults;
};

/// One node's view of the global sample statistics.
struct NodeSummary {
  double count = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance
  double min = 0.0;
  double max = 0.0;
};

struct SummaryResult {
  std::vector<NodeSummary> per_node;  ///< NaN-filled entries for crashed nodes
  std::size_t reduction_rounds = 0;
  bool reached_target = false;
};

/// Computes the full summary of `values` (one scalar per node) so that every
/// node holds all six statistics.
[[nodiscard]] SummaryResult distributed_summary(const net::Topology& topology,
                                                std::span<const double> values,
                                                const SummaryOptions& options);

/// Min/max only, via extrema gossip. Returns each node's (min, max).
[[nodiscard]] std::vector<std::pair<double, double>> distributed_extrema(
    const net::Topology& topology, std::span<const double> values, const SummaryOptions& options);

/// Network size estimation — the classic gossip trick: one designated node
/// (node 0) injects value 1, everyone else 0, and the network averages; every
/// node then knows n = 1 / average. Returns each node's estimate of n.
[[nodiscard]] std::vector<double> estimate_network_size(const net::Topology& topology,
                                                        const SummaryOptions& options);

}  // namespace pcf::sim
