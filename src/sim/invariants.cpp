#include "sim/invariants.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>

#include "core/arena.hpp"
#include "core/push_cancel_flow.hpp"
#include "support/check.hpp"

namespace pcf::sim {

namespace {

void kahan_add(double& sum, double& compensation, double value) {
  const double y = value - compensation;
  const double t = sum + y;
  compensation = (t - sum) - y;
  sum = t;
}

std::string format_edge(NodeId a, NodeId b) {
  std::ostringstream os;
  os << a << "-" << b;
  return os.str();
}

/// PCF per-edge handshake state of `node` toward `peer`, whichever backend
/// implements the node (legacy PushCancelFlow object or arena facade).
/// nullopt when the node is neither (e.g. a test fake).
std::optional<core::PushCancelFlow::EdgeView> pcf_edge_view(const core::Reducer& node,
                                                            NodeId peer) {
  if (const auto* legacy = dynamic_cast<const core::PushCancelFlow*>(&node)) {
    return legacy->edge_state(peer);
  }
  if (const auto* arena = dynamic_cast<const core::ArenaReducer*>(&node)) {
    return arena->edge_state(peer);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Global mass conservation: Σ live local_mass() == oracle's conserved mass.
// Exact only at round boundaries of a sequential-delivery engine with a clean
// transport; a fired link failure relaxes PCF to a loose bound (an
// interrupted cancellation handshake can lose one in-flight flow's mass).
class MassConservationChecker final : public InvariantChecker {
 public:
  explicit MassConservationChecker(const InvariantConfig& config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "mass-conservation"; }

  void check(const SystemView& view, std::vector<InvariantViolation>& out) override {
    const FaultExposure f = view.faults();
    if (f.in_flight || !f.transport_clean() || f.crash_settling) return;
    // Duplicated delivery is idempotent for the flow algorithms but ADDS mass
    // for push-sum (each share is a transfer) — no conservation to check.
    if (view.algorithm() == core::Algorithm::kPushSum && f.messages_duplicated > 0) return;
    const Oracle& oracle = view.oracle();
    const std::size_t d = oracle.dim();
    std::array<double, core::kMaxDim + 1> sum{};
    std::array<double, core::kMaxDim + 1> comp{};
    bool saw_live_node = false;
    const auto n = static_cast<NodeId>(view.topology().size());
    for (NodeId i = 0; i < n; ++i) {
      if (!view.alive(i)) continue;
      const core::Mass m = view.node(i).local_mass();
      if (m.dim() != d) {
        out.push_back({std::string(name()), view.time(),
                       "node mass dimension mismatch vs oracle"});
        return;
      }
      saw_live_node = true;
      for (std::size_t k = 0; k < d; ++k) kahan_add(sum[k], comp[k], m.s[k]);
      kahan_add(sum[d], comp[d], m.w);
    }
    if (!saw_live_node) return;
    // A link exclusion can interrupt a PCF cancellation mid-handshake (a real
    // failure OR a detector false positive): the initiator's pending_absorbed
    // rollback is a guess that is wrong when the completer had already
    // finished, biasing the total by one flow's mass. Relax to a loose bound.
    const bool pcf_handshake_window =
        view.algorithm() == core::Algorithm::kPushCancelFlow &&
        (f.link_failures > 0 || f.false_detects > 0);
    const double tol = pcf_handshake_window ? config_.mass_fault_tol : config_.mass_rel_tol;
    for (std::size_t k = 0; k <= d; ++k) {
      const double expected = k < d ? oracle.numerator(k) : oracle.total_weight();
      const double scale = std::max(1.0, std::fabs(expected));
      if (!(std::fabs(sum[k] - expected) <= tol * scale)) {
        std::ostringstream os;
        os.precision(17);
        os << (k < d ? "component " : "weight (component ") << k << (k < d ? "" : ")")
           << ": live mass sum " << sum[k] << " vs conserved " << expected << " (tol "
           << tol * scale << ")";
        out.push_back({std::string(name()), view.time(), os.str()});
      }
    }
  }

 private:
  InvariantConfig config_;
};

// ---------------------------------------------------------------------------
// Pairwise flow antisymmetry: for every live edge, the two endpoints' stored
// flow slots are exact negations. Holds bit-exactly at sequential round
// boundaries with a clean transport. For PCF, a slot pair is only comparable
// while the edge handshake is phase-aligned in a steady phase (equal, even
// cycle counters); skewed edges are mid-cancellation by design.
class FlowAntisymmetryChecker final : public InvariantChecker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "flow-antisymmetry"; }

  void check(const SystemView& view, std::vector<InvariantViolation>& out) override {
    const FaultExposure f = view.faults();
    if (f.in_flight || !f.transport_clean()) return;
    const auto algorithm = view.algorithm();
    if (algorithm == core::Algorithm::kPushSum) return;
    if (edges_.empty()) edges_ = view.topology().edges();
    std::array<core::Mass, core::Reducer::kMaxFlowSlots> fa;
    std::array<core::Mass, core::Reducer::kMaxFlowSlots> fb;
    for (const auto& [a, b] : edges_) {
      if (!view.alive(a) || !view.alive(b) || view.link_dead(a, b)) continue;
      const std::size_t na = view.node(a).flows_toward(b, fa);
      const std::size_t nb = view.node(b).flows_toward(a, fb);
      if (na != nb) {
        out.push_back({std::string(name()), view.time(),
                       "edge " + format_edge(a, b) + ": endpoints disagree on slot count"});
        continue;
      }
      if (na == 0) continue;
      if (algorithm == core::Algorithm::kPushCancelFlow) {
        const auto ea = pcf_edge_view(view.node(a), b);
        const auto eb = pcf_edge_view(view.node(b), a);
        if (!ea || !eb) continue;
        if (ea->role_count != eb->role_count || ea->role_count % 2 != 0) continue;
      }
      for (std::size_t s = 0; s < na; ++s) {
        if (!fb[s].is_negation_of(fa[s])) {
          std::ostringstream os;
          os.precision(17);
          os << "edge " << format_edge(a, b) << " slot " << s << ": f[" << a << "->" << b
             << "].w=" << fa[s].w << " is not the exact negation of f[" << b << "->" << a
             << "].w=" << fb[s].w;
          out.push_back({std::string(name()), view.time(), os.str()});
        }
      }
    }
  }

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

// ---------------------------------------------------------------------------
// PCF handshake discipline. These are receipt-driven properties of the
// asymmetric handshake (see push_cancel_flow.hpp) and hold under EVERY
// delivery model and under arbitrary message loss:
//  * per-edge cycle counters never decrease;
//  * completer cycle ≤ initiator cycle ≤ completer cycle + 1;
//  * slot agreement by phase parity: equal even cycles → active slots agree;
//    equal odd cycles → completer has swapped, initiator not (slots differ);
//    initiator one ahead → slots agree in both parities;
//  * wire-visible active slot is always 1 or 2.
class PcfHandshakeChecker final : public InvariantChecker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "pcf-handshake"; }

  void check(const SystemView& view, std::vector<InvariantViolation>& out) override {
    if (view.algorithm() != core::Algorithm::kPushCancelFlow) return;
    if (edges_.empty()) {
      edges_ = view.topology().edges();  // pairs are (initiator, completer): i < j
      prev_.assign(edges_.size(), {0, 0});
    }
    // Recovery events (heal / rejoin / false-positive clear) legitimately
    // reset an edge's cycle counters to zero via on_link_up. The engine does
    // not say WHICH edge, so resynchronize the whole history and skip the
    // monotonicity comparison — and keep doing so while up-notices are still
    // in flight (under detection_delay > 0 the reset lands when the notice
    // DELIVERS, rounds after the recovery counter ticked) plus one check
    // past the drain (the last notice resets state in its delivery round).
    const FaultExposure f = view.faults();
    const bool resync = f.recovery_count() != last_recoveries_ || f.pending_up_notices > 0 ||
                        last_pending_up_ > 0;
    last_recoveries_ = f.recovery_count();
    last_pending_up_ = f.pending_up_notices;
    for (std::size_t idx = 0; idx < edges_.size(); ++idx) {
      const auto [a, b] = edges_[idx];
      if (!view.alive(a) || !view.alive(b) || view.link_dead(a, b)) continue;
      const auto ea_opt = pcf_edge_view(view.node(a), b);  // a is the initiator (a < b)
      const auto eb_opt = pcf_edge_view(view.node(b), a);
      if (!ea_opt || !eb_opt) return;
      const auto& ea = *ea_opt;
      const auto& eb = *eb_opt;
      if ((ea.active_slot != 1 && ea.active_slot != 2) ||
          (eb.active_slot != 1 && eb.active_slot != 2)) {
        out.push_back({std::string(name()), view.time(),
                       "edge " + format_edge(a, b) + ": active slot out of {1,2}"});
        continue;
      }
      const std::uint64_t ci = ea.role_count;
      const std::uint64_t cc = eb.role_count;
      const bool backwards = ci < prev_[idx].first || cc < prev_[idx].second;
      prev_[idx] = {ci, cc};
      // During a recovery window the cross-endpoint state is legitimately
      // inconsistent: a rejoin revives transport immediately, but the
      // surviving endpoint keeps its pre-crash edge state until its delayed
      // on_link_up notice lands. Record history, assert nothing.
      if (resync) continue;
      if (backwards) {
        out.push_back({std::string(name()), view.time(),
                       "edge " + format_edge(a, b) + ": cycle counter went backwards"});
      }
      if (!(cc <= ci && ci <= cc + 1)) {
        std::ostringstream os;
        os << "edge " << format_edge(a, b) << ": cycle skew (initiator " << ci << ", completer "
           << cc << ")";
        out.push_back({std::string(name()), view.time(), os.str()});
        continue;
      }
      const bool slots_agree = ea.active_slot == eb.active_slot;
      if (ci == cc) {
        if (ci % 2 == 0 && !slots_agree) {
          out.push_back({std::string(name()), view.time(),
                         "edge " + format_edge(a, b) +
                             ": steady phase but active slots disagree"});
        }
        if (ci % 2 == 1 && slots_agree) {
          out.push_back({std::string(name()), view.time(),
                         "edge " + format_edge(a, b) +
                             ": equal odd cycles but completer has not swapped"});
        }
      } else if (!slots_agree) {  // ci == cc + 1
        out.push_back({std::string(name()), view.time(),
                       "edge " + format_edge(a, b) +
                           ": skewed phases must agree on the active slot"});
      }
    }
  }

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> prev_;
  std::size_t last_recoveries_ = 0;
  std::size_t last_pending_up_ = 0;
};

// ---------------------------------------------------------------------------
// Estimate-error monotone envelope — the "failures cause no convergence
// fall-back" claim. The max relative error must never exceed
// max(envelope_factor × best-seen, envelope_floor); the envelope resets on
// every fault/update event and on every oracle retarget (those error jumps
// are expected). Disabled entirely under continuous loss/corruption, where
// no envelope exists.
class EstimateEnvelopeChecker final : public InvariantChecker {
 public:
  explicit EstimateEnvelopeChecker(const InvariantConfig& config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "estimate-envelope"; }

  void check(const SystemView& view, std::vector<InvariantViolation>& out) override {
    const FaultExposure f = view.faults();
    if (f.lossy_env) return;
    // The envelope is a ROUND-BOUNDARY property: with packets in flight
    // (async engine, crossing delivery) a node that sent several times before
    // its mirror caught up can transiently hold near-zero weight, spiking its
    // relative error to O(1) with no fault anywhere — and it self-heals.
    if (f.in_flight) return;
    // While a crash settles, survivors drift away from the STALE target until
    // the oracle retargets — an expected error excursion, not a fall-back.
    if (f.crash_settling) return;
    const Oracle& oracle = view.oracle();
    std::vector<double> targets(oracle.dim());
    for (std::size_t k = 0; k < targets.size(); ++k) targets[k] = oracle.target(k);
    if (!initialized_ || f.event_count() != last_events_ || targets != last_targets_) {
      best_ = std::numeric_limits<double>::infinity();
      last_events_ = f.event_count();
      last_targets_ = std::move(targets);
      initialized_ = true;
    }
    double worst = 0.0;
    const auto n = static_cast<NodeId>(view.topology().size());
    for (NodeId i = 0; i < n; ++i) {
      if (!view.alive(i)) continue;
      for (std::size_t k = 0; k < oracle.dim(); ++k) {
        worst = std::max(worst, oracle.error_of(view.node(i).estimate(k), k));
      }
    }
    if (!std::isfinite(worst)) return;  // the finite-state checker reports this
    const double envelope = std::max(config_.envelope_factor * best_, config_.envelope_floor);
    if (best_ <= config_.envelope_arm && worst > envelope) {
      std::ostringstream os;
      os.precision(6);
      os << "max relative error " << worst << " exceeds envelope " << envelope
         << " (best seen since last fault event: " << best_ << ") — convergence fell back";
      out.push_back({std::string(name()), view.time(), os.str()});
    }
    best_ = std::min(best_, worst);
  }

 private:
  InvariantConfig config_;
  double best_ = std::numeric_limits<double>::infinity();
  std::size_t last_events_ = 0;
  std::vector<double> last_targets_;
  bool initialized_ = false;
};

// ---------------------------------------------------------------------------
// Finite state: every live node's estimates and flow magnitudes are finite.
// Suspended only when exponent-bit packet corruption is enabled (NaN/Inf
// injection is then the *point* of the experiment).
class FiniteStateChecker final : public InvariantChecker {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "finite-state"; }

  void check(const SystemView& view, std::vector<InvariantViolation>& out) override {
    const FaultExposure f = view.faults();
    if (f.any_bit_flips) return;
    const Oracle& oracle = view.oracle();
    const auto n = static_cast<NodeId>(view.topology().size());
    for (NodeId i = 0; i < n; ++i) {
      if (!view.alive(i)) continue;
      const core::Reducer& node = view.node(i);
      for (std::size_t k = 0; k < oracle.dim(); ++k) {
        if (!std::isfinite(node.estimate(k))) {
          std::ostringstream os;
          os << "node " << i << " estimate(" << k << ") is not finite";
          out.push_back({std::string(name()), view.time(), os.str()});
          break;
        }
      }
      if (!std::isfinite(node.max_abs_flow_component())) {
        std::ostringstream os;
        os << "node " << i << " has a non-finite flow component";
        out.push_back({std::string(name()), view.time(), os.str()});
      }
    }
  }
};

}  // namespace

bool InvariantConfig::resolve_enabled() const {
  if (enabled.has_value()) return *enabled;
  // pcflow-lint: allow(D1) arming switch only: read once, never feeds simulation
  // state — the checkers observe the run, they do not perturb it
  const char* env = std::getenv("PCF_CHECK_INVARIANTS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

InvariantMonitor::InvariantMonitor(InvariantConfig config) : config_(config) {
  PCF_CHECK_MSG(config_.check_every > 0, "invariant check cadence must be positive");
}

void InvariantMonitor::add_checker(std::unique_ptr<InvariantChecker> checker) {
  PCF_CHECK_MSG(checker != nullptr, "null invariant checker");
  checkers_.push_back(std::move(checker));
}

void InvariantMonitor::install_default_checkers() {
  add_checker(make_mass_conservation_checker(config_));
  add_checker(make_flow_antisymmetry_checker());
  add_checker(make_pcf_handshake_checker());
  add_checker(make_estimate_envelope_checker(config_));
  add_checker(make_finite_state_checker());
}

void InvariantMonitor::check(const SystemView& view) {
  ++checks_run_;
  std::vector<InvariantViolation> found;
  for (auto& checker : checkers_) checker->check(view, found);
  if (found.empty()) return;
  const std::size_t first_new = violations_.size();
  violations_.insert(violations_.end(), found.begin(), found.end());
  if (!config_.throw_on_violation) return;
  std::ostringstream os;
  os << "invariant violation at t=" << view.time() << " (" << found.size() << " finding"
     << (found.size() == 1 ? "" : "s") << "):";
  const std::size_t shown = std::min<std::size_t>(found.size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    os << "\n  [" << violations_[first_new + i].checker << "] "
       << violations_[first_new + i].detail;
  }
  if (found.size() > shown) os << "\n  ... and " << found.size() - shown << " more";
  throw InvariantViolationError(os.str());
}

std::unique_ptr<InvariantChecker> make_mass_conservation_checker(const InvariantConfig& config) {
  return std::make_unique<MassConservationChecker>(config);
}
std::unique_ptr<InvariantChecker> make_flow_antisymmetry_checker() {
  return std::make_unique<FlowAntisymmetryChecker>();
}
std::unique_ptr<InvariantChecker> make_pcf_handshake_checker() {
  return std::make_unique<PcfHandshakeChecker>();
}
std::unique_ptr<InvariantChecker> make_estimate_envelope_checker(const InvariantConfig& config) {
  return std::make_unique<EstimateEnvelopeChecker>(config);
}
std::unique_ptr<InvariantChecker> make_finite_state_checker() {
  return std::make_unique<FiniteStateChecker>();
}

}  // namespace pcf::sim
