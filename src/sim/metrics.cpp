#include "sim/metrics.hpp"

#include <cmath>

#include "support/binio.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace pcf::sim {

Oracle::Oracle(std::span<const core::Mass> initial) { compute(initial); }

void Oracle::compute(std::span<const core::Mass> masses) {
  PCF_CHECK_MSG(!masses.empty(), "oracle needs at least one mass");
  const std::size_t d = masses.front().dim();
  std::vector<double> weights;
  weights.reserve(masses.size());
  for (const auto& m : masses) {
    PCF_CHECK_MSG(m.dim() == d, "inconsistent mass dimensions");
    weights.push_back(m.w);
  }
  total_weight_ = kahan_sum(weights);
  PCF_CHECK_MSG(total_weight_ != 0.0, "total weight is zero; aggregate undefined");
  numerators_.assign(d, 0.0);
  std::vector<double> component(masses.size());
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < masses.size(); ++i) component[i] = masses[i].s[k];
    numerators_[k] = kahan_sum(component);
  }
}

double Oracle::target(std::size_t k) const {
  PCF_CHECK_MSG(k < numerators_.size(), "oracle component out of range");
  return numerators_[k] / total_weight_;
}

void Oracle::retarget(std::span<const core::Mass> current) { compute(current); }

void Oracle::shift(const core::Mass& delta) {
  PCF_CHECK_MSG(delta.dim() == numerators_.size(), "oracle shift dimension mismatch");
  for (std::size_t k = 0; k < numerators_.size(); ++k) numerators_[k] += delta.s[k];
  total_weight_ += delta.w;
  PCF_CHECK_MSG(total_weight_ != 0.0, "total weight became zero; aggregate undefined");
}

double Oracle::error_of(double estimate, std::size_t k) const {
  const double t = target(k);
  if (!std::isfinite(estimate)) return std::numeric_limits<double>::infinity();
  if (t == 0.0) return std::fabs(estimate);
  return std::fabs((estimate - t) / t);
}

Table Trace::to_table() const {
  Table table({"time", "max_error", "median_error", "mean_error", "max_abs_flow"});
  for (const auto& p : points_) {
    table.add_row({Table::fixed(p.time, 1), Table::sci(p.max_error), Table::sci(p.median_error),
                   Table::sci(p.mean_error), Table::sci(p.max_abs_flow)});
  }
  return table;
}


void Oracle::save(BinaryWriter& w) const {
  w.u64(numerators_.size());
  for (const double v : numerators_) w.f64(v);
  w.f64(total_weight_);
}

void Oracle::load(BinaryReader& r) {
  if (r.u64() != numerators_.size()) {
    throw BinioError("oracle checkpoint: dimension mismatch");
  }
  for (double& v : numerators_) v = r.f64();
  total_weight_ = r.f64();
}

}  // namespace pcf::sim
