// Deterministic communication schedules.
//
// The paper's Fig. 2 bus example assumes "a regular, synchronous
// communication schedule" under which all weights stay exactly 1: in every
// round the nodes pair up in a perfect matching and each matched pair
// exchanges halves simultaneously. This module provides that runner — it is
// also how one would couple the gossip reducers to a deterministic
// neighborhood-exchange schedule on a real machine.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"

namespace pcf::sim {

using net::NodeId;

using MatchingEdge = std::pair<NodeId, NodeId>;
using Matching = std::vector<MatchingEdge>;

/// The two alternating matchings of a bus/line of n nodes:
/// {(0,1),(2,3),…} and {(1,2),(3,4),…}.
[[nodiscard]] std::vector<Matching> bus_matchings(std::size_t n);

/// The d matchings of a d-dimensional hypercube (pair along one dimension per
/// round).
[[nodiscard]] std::vector<Matching> hypercube_matchings(std::size_t dims);

/// Runs reducers round-robin over the given matchings: round r applies
/// matchings[r % matchings.size()]; every matched pair performs a sequential
/// two-way exchange (a→b delivered, then b→a).
class MatchingScheduleRunner {
 public:
  MatchingScheduleRunner(const net::Topology& topology, std::span<const core::Mass> initial,
                         core::Algorithm algorithm, std::vector<Matching> matchings,
                         core::ReducerConfig reducer = {});

  /// Executes `rounds` matching rounds.
  void run(std::size_t rounds);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] core::Reducer& node(NodeId i) { return *nodes_.at(i); }
  [[nodiscard]] const core::Reducer& node(NodeId i) const { return *nodes_.at(i); }
  [[nodiscard]] std::vector<double> estimates(std::size_t k = 0) const;

 private:
  std::vector<std::unique_ptr<core::Reducer>> nodes_;
  std::vector<Matching> matchings_;
  std::size_t round_ = 0;
};

}  // namespace pcf::sim
