#include "sim/schedule.hpp"

#include "support/check.hpp"

namespace pcf::sim {

std::vector<Matching> bus_matchings(std::size_t n) {
  PCF_CHECK_MSG(n >= 2, "bus matchings need at least two nodes");
  std::vector<Matching> out(2);
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    out[0].push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1)});
  }
  for (std::size_t i = 1; i + 1 < n; i += 2) {
    out[1].push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1)});
  }
  return out;
}

std::vector<Matching> hypercube_matchings(std::size_t dims) {
  PCF_CHECK_MSG(dims >= 1 && dims < 31, "hypercube dimension out of range");
  const std::size_t n = std::size_t{1} << dims;
  std::vector<Matching> out(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    for (NodeId i = 0; i < n; ++i) {
      const NodeId j = i ^ static_cast<NodeId>(1u << d);
      if (i < j) out[d].push_back({i, j});
    }
  }
  return out;
}

MatchingScheduleRunner::MatchingScheduleRunner(const net::Topology& topology,
                                               std::span<const core::Mass> initial,
                                               core::Algorithm algorithm,
                                               std::vector<Matching> matchings,
                                               core::ReducerConfig reducer)
    : matchings_(std::move(matchings)) {
  PCF_CHECK_MSG(initial.size() == topology.size(), "one initial mass per node required");
  PCF_CHECK_MSG(!matchings_.empty(), "at least one matching required");
  for (const auto& matching : matchings_) {
    for (const auto& [a, b] : matching) {
      PCF_CHECK_MSG(topology.has_edge(a, b), "matching uses non-edge " << a << "-" << b);
    }
  }
  nodes_.reserve(topology.size());
  for (NodeId i = 0; i < topology.size(); ++i) {
    nodes_.push_back(core::make_reducer(algorithm, reducer));
    nodes_.back()->init(i, topology.neighbors(i), initial[i]);
  }
}

void MatchingScheduleRunner::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const Matching& matching = matchings_[round_ % matchings_.size()];
    // Sequential pairwise exchange: a→b is delivered before b replies. For
    // flow-based protocols this is essential — if both directions sent
    // simultaneously, each mirror would overwrite the peer's fresh virtual
    // send with stale state (the same transient that an occasional crossing
    // causes and self-heals in the random engines, but which a schedule that
    // crosses on EVERY edge EVERY round would never recover from).
    for (const auto& [a, b] : matching) {
      if (auto out = nodes_[a]->make_message_to(b)) nodes_[b]->on_receive(a, out->packet);
      if (auto out = nodes_[b]->make_message_to(a)) nodes_[a]->on_receive(b, out->packet);
    }
    ++round_;
  }
}

std::vector<double> MatchingScheduleRunner::estimates(std::size_t k) const {
  std::vector<double> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->estimate(k));
  return out;
}

}  // namespace pcf::sim
