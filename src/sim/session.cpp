#include "sim/session.hpp"

#include "support/check.hpp"

namespace pcf::sim {

namespace {

SyncEngineConfig engine_config(const SessionOptions& options) {
  SyncEngineConfig cfg;
  cfg.algorithm = options.algorithm;
  cfg.reducer = options.reducer;
  cfg.faults = options.faults;
  cfg.seed = options.seed;
  return cfg;
}

}  // namespace

ReductionSession::ReductionSession(net::Topology topology,
                                   std::span<const core::Values> initial,
                                   SessionOptions options)
    : options_(std::move(options)),
      current_(initial.begin(), initial.end()),
      engine_(std::move(topology), masses_from_vectors(initial, options_.aggregate),
              engine_config(options_)) {
  PCF_CHECK_MSG(!current_.empty(), "session needs inputs");
}

SessionQueryResult ReductionSession::run_to_target() {
  const std::size_t before = engine_.round();
  const auto stats =
      engine_.run_until_error(options_.target_accuracy, options_.max_rounds_per_query);
  ++queries_;

  SessionQueryResult result;
  result.rounds = engine_.round() - before;
  result.reached_target = stats.reached_target;
  result.max_error = engine_.max_error();
  const std::size_t d = current_.front().size();
  result.estimates.assign(engine_.size(),
                          std::vector<double>(d, std::numeric_limits<double>::quiet_NaN()));
  for (net::NodeId i = 0; i < engine_.size(); ++i) {
    if (!engine_.node_alive(i)) continue;
    for (std::size_t k = 0; k < d; ++k) result.estimates[i][k] = engine_.node(i).estimate(k);
  }
  return result;
}

SessionQueryResult ReductionSession::query(std::span<const core::Values> values) {
  PCF_CHECK_MSG(values.size() == current_.size(), "one input vector per node required");
  const std::size_t d = current_.front().size();
  for (net::NodeId i = 0; i < values.size(); ++i) {
    PCF_CHECK_MSG(values[i].size() == d, "session input dimension is fixed at construction");
    core::Mass delta = core::Mass::zero(d);
    bool changed = false;
    for (std::size_t k = 0; k < d; ++k) {
      delta.s[k] = values[i][k] - current_[i][k];
      changed = changed || delta.s[k] != 0.0;
    }
    if (changed && engine_.node_alive(i)) {
      engine_.apply_data_update(i, delta);
      current_[i] = values[i];
    }
  }
  return run_to_target();
}

SessionQueryResult ReductionSession::refresh() { return run_to_target(); }

void ReductionSession::fail_link(net::NodeId a, net::NodeId b) { engine_.fail_link_now(a, b); }

void ReductionSession::heal_link(net::NodeId a, net::NodeId b) { engine_.heal_link_now(a, b); }

}  // namespace pcf::sim
