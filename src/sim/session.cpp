#include "sim/session.hpp"

#include "support/binio.hpp"
#include "support/check.hpp"

namespace pcf::sim {

namespace {

/// Session blob = this prelude (session bookkeeping) + the engine checkpoint
/// as a length-prefixed string. Versioned with kCheckpointVersion: the engine
/// blob inside carries the same version, so they bump together.
constexpr std::string_view kSessionMagic{"PCFSESS\0", 8};

SyncEngineConfig engine_config(const SessionOptions& options) {
  SyncEngineConfig cfg;
  cfg.algorithm = options.algorithm;
  cfg.reducer = options.reducer;
  cfg.faults = options.faults;
  cfg.seed = options.seed;
  cfg.delivery = options.delivery;
  cfg.mode = options.mode;
  cfg.shards = options.shards;
  cfg.invariants = options.invariants;
  // Field-count pin (the FaultPlan pin's pattern): if SyncEngineConfig grows
  // a field this stops compiling, forcing a decision on whether the session
  // forwards it. The session once silently dropped mode/shards — engines ran
  // legacy single-shard regardless of what the caller asked for.
  {
    [[maybe_unused]] const auto& [algorithm, reducer, faults, seed, delivery, mode, shards,
                                  invariants] = cfg;
  }
  return cfg;
}

}  // namespace

ReductionSession::ReductionSession(net::Topology topology,
                                   std::span<const core::Values> initial,
                                   SessionOptions options)
    : options_(std::move(options)),
      base_(initial.begin(), initial.end()),
      current_(initial.begin(), initial.end()),
      engine_(std::move(topology), masses_from_vectors(initial, options_.aggregate),
              engine_config(options_)),
      seen_rejoins_(initial.size(), 0) {
  PCF_CHECK_MSG(!current_.empty(), "session needs inputs");
}

SessionQueryResult ReductionSession::run_to_target(std::size_t dropped, std::size_t reapplied) {
  const std::size_t before = engine_.round();
  const auto stats =
      engine_.run_until_error(options_.target_accuracy, options_.max_rounds_per_query);
  ++queries_;

  SessionQueryResult result;
  result.rounds = engine_.round() - before;
  result.reached_target = stats.reached_target;
  result.max_error = engine_.max_error();
  result.dropped_updates = dropped;
  result.reapplied_updates = reapplied;
  const std::size_t d = current_.front().size();
  result.estimates.assign(engine_.size(),
                          std::vector<double>(d, std::numeric_limits<double>::quiet_NaN()));
  for (net::NodeId i = 0; i < engine_.size(); ++i) {
    if (!engine_.node_alive(i)) continue;
    for (std::size_t k = 0; k < d; ++k) result.estimates[i][k] = engine_.node(i).estimate(k);
  }
  return result;
}

std::size_t ReductionSession::sync_rejoined_nodes() {
  std::size_t reapplied = 0;
  const std::size_t d = current_.front().size();
  for (net::NodeId i = 0; i < engine_.size(); ++i) {
    if (engine_.rejoin_count(i) == seen_rejoins_[i]) continue;
    // A node that crashed again after rejoining is skipped WITHOUT advancing
    // the watermark — the drift is re-applied after its next rejoin instead.
    if (!engine_.node_alive(i)) continue;
    seen_rejoins_[i] = engine_.rejoin_count(i);
    core::Mass delta = core::Mass::zero(d);
    bool changed = false;
    for (std::size_t k = 0; k < d; ++k) {
      delta.s[k] = current_[i][k] - base_[i][k];
      changed = changed || delta.s[k] != 0.0;
    }
    if (changed) {
      engine_.apply_data_update(i, delta);
      ++reapplied;
    }
  }
  return reapplied;
}

SessionQueryResult ReductionSession::query(std::span<const core::Values> values) {
  PCF_CHECK_MSG(values.size() == current_.size(), "one input vector per node required");
  // Rejoin sync first: it re-applies drift relative to base_, so it must see
  // the PREVIOUS current_ — the new deltas below then stack on top.
  const std::size_t reapplied = sync_rejoined_nodes();
  std::size_t dropped = 0;
  const std::size_t d = current_.front().size();
  for (net::NodeId i = 0; i < values.size(); ++i) {
    PCF_CHECK_MSG(values[i].size() == d, "session input dimension is fixed at construction");
    core::Mass delta = core::Mass::zero(d);
    bool changed = false;
    for (std::size_t k = 0; k < d; ++k) {
      delta.s[k] = values[i][k] - current_[i][k];
      changed = changed || delta.s[k] != 0.0;
    }
    if (!changed) continue;
    // Record the desired value even when the node is dead: the update is
    // buffered, not lost — sync_rejoined_nodes() re-applies the accumulated
    // drift when the node comes back. (current_[i] used to stay stale here,
    // so the NEXT query's delta silently shifted the session's target.)
    current_[i] = values[i];
    if (engine_.node_alive(i)) {
      engine_.apply_data_update(i, delta);
    } else {
      ++dropped;
    }
  }
  return run_to_target(dropped, reapplied);
}

SessionQueryResult ReductionSession::refresh() { return run_to_target(0, sync_rejoined_nodes()); }

void ReductionSession::fail_link(net::NodeId a, net::NodeId b) { engine_.fail_link_now(a, b); }

void ReductionSession::heal_link(net::NodeId a, net::NodeId b) { engine_.heal_link_now(a, b); }

std::string ReductionSession::save_checkpoint(CheckpointMode mode) const {
  BinaryWriter w;
  w.raw(kSessionMagic.data(), kSessionMagic.size());
  w.u32(kCheckpointVersion);
  w.u64(queries_);
  w.u64(current_.size());
  w.u64(current_.front().size());
  for (const auto& values : current_) {
    for (double v : values) w.f64(v);
  }
  for (std::uint64_t n : seen_rejoins_) w.u64(n);
  w.str(engine_.save_checkpoint(mode));
  return std::move(w).take();
}

void ReductionSession::restore(std::string_view checkpoint) {
  BinaryReader r(checkpoint);
  std::size_t queries = 0;
  std::vector<core::Values> current;
  std::vector<std::uint64_t> seen;
  std::string_view engine_blob;
  try {
    if (r.raw(kSessionMagic.size()) != kSessionMagic) {
      throw CheckpointError("not a pcflow session checkpoint");
    }
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion) {
      throw CheckpointError("unsupported session checkpoint version");
    }
    queries = static_cast<std::size_t>(r.u64());
    const std::uint64_t nodes = r.u64();
    const std::uint64_t dim = r.u64();
    if (nodes != current_.size() || dim != current_.front().size()) {
      throw CheckpointError("session checkpoint node count or dimension mismatch");
    }
    current.assign(current_.size(), core::Values(current_.front().size()));
    for (auto& values : current) {
      for (double& v : values) v = r.f64();
    }
    seen.resize(current_.size());
    for (std::uint64_t& n : seen) n = r.u64();
    engine_blob = r.str();
    r.expect_end();
  } catch (const BinioError&) {
    throw CheckpointError("corrupt session checkpoint");
  }
  // Engine restore validates compatibility and throws before the session's
  // own state is touched.
  engine_.restore(engine_blob);
  queries_ = queries;
  current_ = std::move(current);
  seen_rejoins_ = std::move(seen);
}

}  // namespace pcf::sim
