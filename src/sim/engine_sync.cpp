#include "sim/engine_sync.hpp"

#include <algorithm>
#include <iterator>

#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"

namespace pcf::sim {

namespace {
std::pair<NodeId, NodeId> norm_edge(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

// ---------------------------------------------------------------------------
// Round-phase state backends. The round templates below are written once and
// instantiated per backend: LegacyOps routes through the per-node virtual
// Reducer interface, ArenaOps<A> inlines the fleet's flat-array operations
// (the devirtualized hot path). Both produce identical floating-point
// operation sequences — the differential suite pins that.
// ---------------------------------------------------------------------------

struct SyncEngine::LegacyOps {
  SyncEngine& e;
  using Send = core::ArenaFleet::Send;
  std::optional<Send> make(NodeId i) {
    auto out = e.nodes_[i]->make_message(e.node_rngs_[i]);
    if (!out) return std::nullopt;
    Send s;
    s.to = out->to;
    s.to_slot = 0;  // legacy on_receive resolves the slot itself
    s.packet = std::move(out->packet);
    return s;
  }
  void deliver(NodeId to, NodeId from, std::uint32_t /*to_slot*/, const core::Packet& p) {
    e.nodes_[to]->on_receive(from, p);
  }
  [[nodiscard]] std::size_t wire_masses(NodeId i) const { return e.nodes_[i]->wire_masses(); }
};

template <core::Algorithm A>
struct SyncEngine::ArenaOps {
  SyncEngine& e;
  using Send = core::ArenaFleet::Send;
  std::optional<Send> make(NodeId i) {
    return e.fleet_->make_message<A>(i, e.node_rngs_[i]);
  }
  void deliver(NodeId to, NodeId from, std::uint32_t to_slot, const core::Packet& p) {
    e.fleet_->receive<A>(to, from, static_cast<std::size_t>(to_slot), p);
  }
  [[nodiscard]] std::size_t wire_masses(NodeId /*i*/) const { return e.fleet_->wire_masses(); }
};

/// Read-only adapter the invariant checkers observe the engine through.
struct SyncEngine::View final : SystemView {
  explicit View(const SyncEngine& e) : engine(e) {}
  [[nodiscard]] const net::Topology& topology() const override { return engine.topology_; }
  [[nodiscard]] core::Algorithm algorithm() const override { return engine.config_.algorithm; }
  [[nodiscard]] double time() const override { return static_cast<double>(engine.round_); }
  [[nodiscard]] bool alive(NodeId i) const override { return engine.alive_.at(i); }
  [[nodiscard]] const core::Reducer& node(NodeId i) const override { return *engine.nodes_.at(i); }
  [[nodiscard]] bool link_dead(NodeId a, NodeId b) const override {
    return engine.dead_links_.count(norm_edge(a, b)) != 0;
  }
  [[nodiscard]] const Oracle& oracle() const override { return engine.oracle_; }
  [[nodiscard]] FaultExposure faults() const override {
    const FaultPlan& plan = engine.config_.faults;
    FaultExposure f;
    // Crossing delivery mirrors stale flows, so conservation is transiently
    // broken even at round boundaries — treat it as permanently in flight.
    // Any reorder probability routes packets through the wire the same way,
    // and STAYS in flight after the knob is zeroed mid-run: the stale mirrors
    // the reordered rounds left behind take several clean rounds to
    // re-synchronize, so exact conservation cannot re-arm at the flip.
    f.in_flight = engine.config_.delivery == Delivery::kCrossing || plan.reorder_prob > 0.0 ||
                  engine.wire_reordered_;
    f.messages_dropped = engine.stats_.messages_dropped;
    f.messages_flipped = engine.stats_.messages_flipped;
    f.messages_duplicated = engine.stats_.messages_duplicated;
    f.state_flips = engine.stats_.state_flips;
    f.lossy_env = plan.message_loss_prob > 0.0 || plan.bit_flip_prob > 0.0 ||
                  plan.state_flip_prob > 0.0;
    f.any_bit_flips = plan.bit_flip_any_bit &&
                      (plan.bit_flip_prob > 0.0 || engine.stats_.messages_flipped > 0);
    f.crash_settling = engine.pending_retarget_ || engine.retarget_after_wire_;
    f.link_failures = engine.next_link_failure_ + engine.explicit_link_failures_ +
                      engine.churn_failures_fired_;
    f.crashes = engine.crashes_fired_;
    f.data_updates = engine.next_data_update_ + engine.explicit_data_updates_;
    f.link_heals = engine.link_heals_fired_;
    f.rejoins = engine.rejoins_fired_;
    f.false_detects = engine.false_detects_fired_;
    f.false_clears = engine.false_clears_fired_;
    for (const auto& n : engine.pending_notices_) {
      if (n.up) ++f.pending_up_notices;
    }
    return f;
  }
  const SyncEngine& engine;
};

void SyncEngine::check_invariants(bool force) {
  if (!monitor_) return;
  if (!force && round_ % monitor_->config().check_every != 0) return;
  const View view(*this);
  monitor_->check(view);
}

void SyncEngine::check_invariants_now() { check_invariants(/*force=*/true); }

FaultExposure SyncEngine::fault_exposure() const { return View(*this).faults(); }

SyncEngine::SyncEngine(net::Topology topology, std::span<const core::Mass> initial,
                       SyncEngineConfig config)
    : topology_(topology),
      config_(std::move(config)),
      fault_rng_(Rng(config_.seed).fork(topology.size() + 1)),
      oracle_(initial),
      initial_(initial.begin(), initial.end()) {
  PCF_CHECK_MSG(initial.size() == topology.size(), "one initial mass per node required");
  PCF_CHECK_MSG(topology.is_connected(), "topology must be connected");

  if (core::needs_tree_schedule(config_.algorithm) && !config_.reducer.tree) {
    config_.reducer.tree = std::make_shared<const net::TreeSchedule>(
        net::build_tree_schedule(topology_, config_.reducer.tree_kind));
  }

  const Rng base(config_.seed);
  nodes_.reserve(topology.size());
  node_rngs_.reserve(topology.size());
  if (config_.mode == EngineMode::kArena) {
    fleet_ = std::make_unique<core::ArenaFleet>(config_.algorithm, config_.reducer, topology_,
                                                initial);
  }
  for (NodeId i = 0; i < topology.size(); ++i) {
    if (fleet_) {
      nodes_.push_back(std::make_unique<core::ArenaReducer>(*fleet_, i));
    } else {
      nodes_.push_back(core::make_reducer(config_.algorithm, config_.reducer));
    }
    nodes_.back()->init(i, topology.neighbors(i), initial[i]);
    node_rngs_.push_back(base.fork(i));
  }
  alive_.assign(topology.size(), true);
  rejoin_counts_.assign(topology.size(), 0);
  shards_ = std::max<std::size_t>(1, resolve_thread_count(config_.shards, topology.size()));

  // Events fire in time order regardless of the order given in the plan.
  const auto by_time = [](const auto& x, const auto& y) { return x.time < y.time; };
  std::sort(config_.faults.link_failures.begin(), config_.faults.link_failures.end(), by_time);
  std::sort(config_.faults.node_crashes.begin(), config_.faults.node_crashes.end(), by_time);
  std::sort(config_.faults.data_updates.begin(), config_.faults.data_updates.end(), by_time);
  std::sort(config_.faults.link_heals.begin(), config_.faults.link_heals.end(), by_time);
  std::sort(config_.faults.node_rejoins.begin(), config_.faults.node_rejoins.end(), by_time);
  std::sort(config_.faults.false_detects.begin(), config_.faults.false_detects.end(), by_time);
  for (const auto& f : config_.faults.link_failures) {
    PCF_CHECK_MSG(topology.has_edge(f.a, f.b),
                  "fault plan: no link " << f.a << "-" << f.b << " in topology");
  }
  for (const auto& c : config_.faults.node_crashes) {
    PCF_CHECK_MSG(c.node < topology.size(), "fault plan: crash node out of range");
  }
  for (const auto& u : config_.faults.data_updates) {
    PCF_CHECK_MSG(u.node < topology.size(), "fault plan: data update node out of range");
  }
  for (const auto& h : config_.faults.link_heals) {
    PCF_CHECK_MSG(topology.has_edge(h.a, h.b),
                  "fault plan: no link " << h.a << "-" << h.b << " to heal in topology");
  }
  for (const auto& r : config_.faults.node_rejoins) {
    PCF_CHECK_MSG(r.node < topology.size(), "fault plan: rejoin node out of range");
  }
  for (const auto& e : config_.faults.false_detects) {
    PCF_CHECK_MSG(topology.has_edge(e.a, e.b),
                  "fault plan: no link " << e.a << "-" << e.b << " to falsely detect");
    PCF_CHECK_MSG(e.clear_delay >= 0.0, "fault plan: negative false-detect clear delay");
  }

  if (config_.invariants.resolve_enabled()) {
    monitor_ = std::make_unique<InvariantMonitor>(config_.invariants);
    monitor_->install_default_checkers();
  }
}

void SyncEngine::fail_link(NodeId a, NodeId b, double physical_time, bool independent) {
  const auto edge = norm_edge(a, b);
  if (!dead_links_.insert(edge).second) return;  // already dead
  if (independent) cut_links_.insert(edge);
  const double due = physical_time + config_.faults.detection_delay;
  pending_notices_.push_back({due, a, b, false});
  pending_notices_.push_back({due, b, a, false});
  // Churn: every failure between live nodes heals after an Exp outage.
  // (Crash-induced failures are revived by the rejoin instead — a heal of a
  // link into a crashed node is meaningless and revive_link rejects it.)
  if (config_.faults.churn_heal_rate > 0.0 && alive_[a] && alive_[b]) {
    const double outage = fault_rng_.exponential(config_.faults.churn_heal_rate);
    churn_heals_.push_back({physical_time + outage, a, b});
  }
}

void SyncEngine::revive_link(NodeId a, NodeId b, double physical_time) {
  const auto edge = norm_edge(a, b);
  if (dead_links_.erase(edge) == 0) return;  // already up
  cut_links_.erase(edge);
  ++link_heals_fired_;
  // Drop stale down-notices for this edge (a failure whose detection delay
  // has not elapsed yet): the detector never reports a link that is back up.
  pending_notices_.erase(
      std::remove_if(pending_notices_.begin(), pending_notices_.end(),
                     [edge](const PendingNotice& n) {
                       return !n.up && norm_edge(n.node, n.peer) == edge;
                     }),
      pending_notices_.end());
  const double due = physical_time + config_.faults.detection_delay;
  pending_notices_.push_back({due, a, b, true});
  pending_notices_.push_back({due, b, a, true});
}

void SyncEngine::rejoin_node(NodeId node, double physical_time) {
  if (alive_[node]) return;
  alive_[node] = true;
  ++rejoins_fired_;
  ++rejoin_counts_[node];
  // The crashed node's state is gone: rebuild the reducer from the initial
  // mass. Its node RNG stream continues where it left off (a fresh process,
  // not a replay). In arena mode the node REUSES its arena rows (reset in
  // place) — rejoin never grows the arena.
  if (fleet_) {
    fleet_->reset_node(node, initial_[node]);
    nodes_[node] = std::make_unique<core::ArenaReducer>(*fleet_, node);
  } else {
    nodes_[node] = core::make_reducer(config_.algorithm, config_.reducer);
  }
  nodes_[node]->init(node, topology_.neighbors(node), initial_[node]);
  for (const NodeId peer : topology_.neighbors(node)) {
    const auto edge = norm_edge(node, peer);
    // Crash-induced link failures revive with the node; independently cut
    // links (scheduled/explicit/churn) stay down until their own heal.
    const bool stays_down = !alive_[peer] || cut_links_.count(edge) != 0;
    if (stays_down) {
      nodes_[node]->on_link_down(peer);
    } else if (dead_links_.count(edge) != 0) {
      revive_link(node, peer, physical_time);
    }
  }
  // The returning mass re-enters the computation; once the recovery notices
  // have fired, the live nodes' conserved mass is the new target.
  pending_retarget_ = true;
}

void SyncEngine::deliver_notifications_due() {
  const auto now = static_cast<double>(round_);
  // Notify, then compact with remove_if: the old erase-in-place loop was
  // O(due × pending), quadratic when a hub crash floods pending_notices_
  // (one notice per incident edge, all due the same round).
  const auto due = [now](const PendingNotice& n) { return n.due_time <= now; };
  for (const auto& n : pending_notices_) {
    if (!due(n) || !alive_[n.node]) continue;
    if (n.up) {
      nodes_[n.node]->on_link_up(n.peer);
    } else {
      nodes_[n.node]->on_link_down(n.peer);
    }
  }
  pending_notices_.erase(
      std::remove_if(pending_notices_.begin(), pending_notices_.end(), due),
      pending_notices_.end());
}

void SyncEngine::process_due_faults() {
  const auto now = static_cast<double>(round_);
  auto& plan = config_.faults;
  while (next_link_failure_ < plan.link_failures.size() &&
         plan.link_failures[next_link_failure_].time <= now) {
    const auto& f = plan.link_failures[next_link_failure_++];
    fail_link(f.a, f.b, f.time, /*independent=*/true);
  }
  // Churn: each live link between live nodes fails independently this round.
  if (plan.churn_fail_prob > 0.0) {
    for (const auto& [a, b] : topology_.edges()) {
      if (!alive_[a] || !alive_[b] || dead_links_.count(norm_edge(a, b)) != 0) continue;
      if (fault_rng_.chance(plan.churn_fail_prob)) {
        ++churn_failures_fired_;
        fail_link(a, b, now, /*independent=*/true);
      }
    }
  }
  while (next_node_crash_ < plan.node_crashes.size() &&
         plan.node_crashes[next_node_crash_].time <= now) {
    const auto& c = plan.node_crashes[next_node_crash_++];
    if (!alive_[c.node]) continue;
    alive_[c.node] = false;
    ++crashes_fired_;
    for (const NodeId peer : topology_.neighbors(c.node)) {
      fail_link(c.node, peer, c.time, /*independent=*/false);
    }
    // The crashed node's mass left the computation; once the exclusion
    // notifications below have fired, the survivors' conserved mass is the
    // new target.
    pending_retarget_ = true;
  }
  while (next_node_rejoin_ < plan.node_rejoins.size() &&
         plan.node_rejoins[next_node_rejoin_].time <= now) {
    const auto& r = plan.node_rejoins[next_node_rejoin_++];
    rejoin_node(r.node, r.time);
  }
  while (next_link_heal_ < plan.link_heals.size() &&
         plan.link_heals[next_link_heal_].time <= now) {
    const auto& h = plan.link_heals[next_link_heal_++];
    if (alive_[h.a] && alive_[h.b]) revive_link(h.a, h.b, h.time);
  }
  if (!churn_heals_.empty()) {
    // Unordered small list: process and erase what is due.
    std::vector<LinkHealEvent> due;
    churn_heals_.erase(std::remove_if(churn_heals_.begin(), churn_heals_.end(),
                                      [&](const LinkHealEvent& h) {
                                        if (h.time > now) return false;
                                        due.push_back(h);
                                        return true;
                                      }),
                       churn_heals_.end());
    for (const auto& h : due) {
      if (alive_[h.a] && alive_[h.b]) revive_link(h.a, h.b, h.time);
    }
  }
  while (next_false_detect_ < plan.false_detects.size() &&
         plan.false_detects[next_false_detect_].time <= now) {
    const auto& e = plan.false_detects[next_false_detect_++];
    const auto edge = norm_edge(e.a, e.b);
    // Only a LIVE link can be falsely detected down; transport stays up.
    if (!alive_[e.a] || !alive_[e.b] || dead_links_.count(edge) != 0) continue;
    ++false_detects_fired_;
    nodes_[e.a]->on_link_down(e.b);
    nodes_[e.b]->on_link_down(e.a);
    falsely_excluded_.insert(edge);
    pending_clears_.push_back({e.time + e.clear_delay, e.a, e.b, 0.0});
  }
  if (!pending_clears_.empty()) {
    std::vector<FalseDetectEvent> due;
    pending_clears_.erase(std::remove_if(pending_clears_.begin(), pending_clears_.end(),
                                         [&](const FalseDetectEvent& e) {
                                           if (e.time > now) return false;
                                           due.push_back(e);
                                           return true;
                                         }),
                          pending_clears_.end());
    for (const auto& e : due) {
      const auto edge = norm_edge(e.a, e.b);
      if (falsely_excluded_.erase(edge) == 0) continue;
      // "Detected up" — unless the link genuinely died in the meantime.
      if (alive_[e.a] && alive_[e.b] && dead_links_.count(edge) == 0) {
        ++false_clears_fired_;
        nodes_[e.a]->on_link_up(e.b);
        nodes_[e.b]->on_link_up(e.a);
      }
    }
  }
  while (next_data_update_ < plan.data_updates.size() &&
         plan.data_updates[next_data_update_].time <= now) {
    const auto& u = plan.data_updates[next_data_update_++];
    if (!alive_[u.node]) continue;
    nodes_[u.node]->update_data(u.delta);
    // A live update changes the conserved mass by exactly delta.
    oracle_.shift(u.delta);
  }
  deliver_notifications_due();
  if (pending_retarget_ && pending_notices_.empty()) {
    if (config_.delivery == Delivery::kSequential && plan.reorder_prob == 0.0) {
      // Nothing is ever in flight between rounds — the live nodes' masses are
      // the exact conserved total.
      oracle_.retarget(masses());
    } else {
      // Crossing (or reordered) mode: last round's packets mirrored stale
      // flows, so pairwise conservation (and with it the live nodes' mass
      // sum) is transiently broken at the round boundary. Defer the snapshot
      // until this round's wire_ has drained, when the mirrors have
      // re-synchronized.
      retarget_after_wire_ = true;
    }
    pending_retarget_ = false;
  }
}

void SyncEngine::fail_link_now(NodeId a, NodeId b) {
  PCF_CHECK_MSG(topology_.has_edge(a, b), "fail_link_now: no link " << a << "-" << b);
  if (!dead_links_.insert(norm_edge(a, b)).second) return;
  cut_links_.insert(norm_edge(a, b));
  ++explicit_link_failures_;
  if (alive_[a]) nodes_[a]->on_link_down(b);
  if (alive_[b]) nodes_[b]->on_link_down(a);
}

void SyncEngine::heal_link_now(NodeId a, NodeId b) {
  PCF_CHECK_MSG(topology_.has_edge(a, b), "heal_link_now: no link " << a << "-" << b);
  PCF_CHECK_MSG(alive_[a] && alive_[b],
                "heal_link_now: endpoint crashed (a rejoin revives its links)");
  const auto edge = norm_edge(a, b);
  if (dead_links_.erase(edge) == 0) return;  // already up
  cut_links_.erase(edge);
  ++link_heals_fired_;
  pending_notices_.erase(
      std::remove_if(pending_notices_.begin(), pending_notices_.end(),
                     [edge](const PendingNotice& n) {
                       return !n.up && norm_edge(n.node, n.peer) == edge;
                     }),
      pending_notices_.end());
  nodes_[a]->on_link_up(b);
  nodes_[b]->on_link_up(a);
}

void SyncEngine::apply_data_update(NodeId node, const core::Mass& delta) {
  PCF_CHECK_MSG(node < nodes_.size(), "data update node out of range");
  PCF_CHECK_MSG(alive_[node], "data update on a crashed node");
  nodes_[node]->update_data(delta);
  oracle_.shift(delta);
  ++explicit_data_updates_;
}

std::size_t SyncEngine::step() {
  {
    const auto timer = perf_.time(PerfCounters::Phase::kFaults);
    process_due_faults();
  }
  ++round_;

  wire_.clear();
  auto& plan = config_.faults;
  {
    const auto timer = perf_.time(PerfCounters::Phase::kGossip);
    if (plan.state_flip_prob > 0.0) {
      for (NodeId i = 0; i < nodes_.size(); ++i) {
        if (alive_[i] && fault_rng_.chance(plan.state_flip_prob)) {
          if (nodes_[i]->corrupt_stored_flow(fault_rng_)) ++stats_.state_flips;
        }
      }
    }
    dispatch_send_phase();
  }
  {
    // Wire drain (crossing mode, or sequential with reordering enabled):
    // delivery after all sends, optionally with the round's order permuted.
    const auto timer = perf_.time(PerfCounters::Phase::kDelivery);
    dispatch_drain_phase();
  }
  if (retarget_after_wire_) {
    // Deferred crash retarget (crossing mode): the wire has drained and every
    // mirror is fresh again, so the survivors' mass sum is the true target.
    oracle_.retarget(masses());
    retarget_after_wire_ = false;
  }
  stats_.rounds = round_;
  perf_.rounds = round_;
  perf_.messages_sent = stats_.messages_sent;
  perf_.doubles_on_wire = stats_.doubles_sent;
  check_invariants(/*force=*/false);
  return round_;
}

template <typename Ops>
void SyncEngine::send_phase(Ops& ops) {
  auto& plan = config_.faults;
  // Any reorder probability routes packets through the wire even in
  // sequential mode — reordering needs the full round's packets in hand.
  const bool via_wire = config_.delivery == Delivery::kCrossing || plan.reorder_prob > 0.0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!alive_[i]) continue;
    auto out = ops.make(i);
    if (!out) continue;
    ++stats_.messages_sent;
    stats_.doubles_sent += ops.wire_masses(i) * (out->packet.a.dim() + 1);
    // Transport faults, in physical order: a dead link transports nothing;
    // a live link may drop or corrupt the packet.
    if (dead_links_.count(norm_edge(i, out->to)) != 0 || !alive_[out->to]) {
      ++stats_.messages_dropped;
      continue;
    }
    if (plan.message_loss_prob > 0.0 && fault_rng_.chance(plan.message_loss_prob)) {
      ++stats_.messages_dropped;
      continue;
    }
    if (plan.bit_flip_prob > 0.0 && fault_rng_.chance(plan.bit_flip_prob)) {
      flip_random_bit(out->packet, fault_rng_, plan.bit_flip_any_bit);
      ++stats_.messages_flipped;
    }
    if (!via_wire) {
      const bool dup =
          plan.duplicate_prob > 0.0 && fault_rng_.chance(plan.duplicate_prob);
      ops.deliver(out->to, i, out->to_slot, out->packet);
      ++perf_.deliveries;
      if (dup) {
        // The duplicate arrives back-to-back with the original.
        ++stats_.messages_duplicated;
        ops.deliver(out->to, i, out->to_slot, out->packet);
        ++perf_.deliveries;
      }
    } else {
      if (plan.reorder_prob > 0.0) wire_reordered_ = true;
      wire_.push_back({i, out->to, out->to_slot, std::move(out->packet)});
    }
  }
}

template <typename Ops>
void SyncEngine::send_phase_sharded(Ops& ops) {
  // Preconditions (dispatch_send_phase): all packets go to the wire and the
  // send loop draws no fault_rng_ — only node_rngs_[i], which are per-node.
  // Each shard owns a contiguous node block; concatenating the shard wires
  // in block order reproduces the serial wire byte-for-byte.
  auto& plan = config_.faults;
  const std::size_t n = nodes_.size();
  const std::size_t shards = std::min(shards_, n);
  shard_wires_.resize(shards);
  struct Local {
    std::size_t sent = 0;
    std::size_t dropped = 0;
    std::size_t doubles = 0;
  };
  std::vector<Local> locals(shards);
  parallel_for_index(shards, shards, [&](std::size_t s) {
    const auto lo = static_cast<NodeId>(s * n / shards);
    const auto hi = static_cast<NodeId>((s + 1) * n / shards);
    auto& wire = shard_wires_[s];
    wire.clear();
    Local& local = locals[s];
    for (NodeId i = lo; i < hi; ++i) {
      if (!alive_[i]) continue;
      auto out = ops.make(i);
      if (!out) continue;
      ++local.sent;
      local.doubles += ops.wire_masses(i) * (out->packet.a.dim() + 1);
      if (dead_links_.count(norm_edge(i, out->to)) != 0 || !alive_[out->to]) {
        ++local.dropped;
        continue;
      }
      wire.push_back({i, out->to, out->to_slot, std::move(out->packet)});
    }
  });
  for (std::size_t s = 0; s < shards; ++s) {
    stats_.messages_sent += locals[s].sent;
    stats_.messages_dropped += locals[s].dropped;
    stats_.doubles_sent += locals[s].doubles;
    wire_.insert(wire_.end(), std::make_move_iterator(shard_wires_[s].begin()),
                 std::make_move_iterator(shard_wires_[s].end()));
  }
  // Same flag the serial loop sets per pushed packet.
  if (plan.reorder_prob > 0.0 && !wire_.empty()) wire_reordered_ = true;
}

template <typename Ops>
void SyncEngine::drain_phase(Ops& ops) {
  auto& plan = config_.faults;
  // Reordering: each packet is independently selected with reorder_prob; the
  // selected ones are delayed behind every unselected packet, in an order
  // shuffled among themselves — a bounded (within-round) delivery delay.
  std::vector<std::size_t> order(wire_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (plan.reorder_prob > 0.0 && wire_.size() > 1) {
    std::vector<std::size_t> on_time;
    std::vector<std::size_t> delayed;
    on_time.reserve(wire_.size());
    for (std::size_t i = 0; i < wire_.size(); ++i) {
      (fault_rng_.chance(plan.reorder_prob) ? delayed : on_time).push_back(i);
    }
    fault_rng_.shuffle(std::span<std::size_t>(delayed));
    order = std::move(on_time);
    order.insert(order.end(), delayed.begin(), delayed.end());
  }
  for (const std::size_t idx : order) {
    const auto& msg = wire_[idx];
    if (!alive_[msg.to]) continue;
    const bool dup = plan.duplicate_prob > 0.0 && fault_rng_.chance(plan.duplicate_prob);
    ops.deliver(msg.to, msg.from, msg.to_slot, msg.packet);
    ++perf_.deliveries;
    if (dup) {
      ++stats_.messages_duplicated;
      ops.deliver(msg.to, msg.from, msg.to_slot, msg.packet);
      ++perf_.deliveries;
    }
  }
}

template <typename Ops>
void SyncEngine::drain_phase_sharded(Ops& ops) {
  // Preconditions (dispatch_drain_phase): no duplicate/reorder draws, so
  // delivery order only matters PER RECEIVER, and a receive mutates only the
  // receiver's own arena rows. Stable counting sort by receiver, then shard
  // over contiguous receiver ranges — each receiver sees its packets in the
  // exact serial order, so the post-drain state is byte-identical.
  const std::size_t n = nodes_.size();
  const std::size_t m = wire_.size();
  drain_offsets_.assign(n + 1, 0);
  for (const InFlight& msg : wire_) ++drain_offsets_[msg.to + 1];
  for (std::size_t r = 0; r < n; ++r) drain_offsets_[r + 1] += drain_offsets_[r];
  drain_sorted_.resize(m);
  {
    std::vector<std::size_t> cursor(drain_offsets_.begin(), drain_offsets_.end() - 1);
    for (std::size_t idx = 0; idx < m; ++idx) drain_sorted_[cursor[wire_[idx].to]++] = idx;
  }
  const std::size_t shards = std::min(shards_, n);
  std::vector<std::size_t> local_deliveries(shards, 0);
  parallel_for_index(shards, shards, [&](std::size_t s) {
    const std::size_t lo = s * n / shards;
    const std::size_t hi = (s + 1) * n / shards;
    std::size_t delivered = 0;
    for (std::size_t r = lo; r < hi; ++r) {
      if (!alive_[r]) continue;
      for (std::size_t p = drain_offsets_[r]; p < drain_offsets_[r + 1]; ++p) {
        const InFlight& msg = wire_[drain_sorted_[p]];
        ops.deliver(msg.to, msg.from, msg.to_slot, msg.packet);
        ++delivered;
      }
    }
    local_deliveries[s] = delivered;
  });
  for (const std::size_t d : local_deliveries) perf_.deliveries += d;
}

template <typename Ops>
void SyncEngine::run_gossip(Ops& ops, bool send_sharded) {
  if (send_sharded) {
    send_phase_sharded(ops);
  } else {
    send_phase(ops);
  }
}

template <typename Ops>
void SyncEngine::run_drain(Ops& ops, bool drain_sharded) {
  if (drain_sharded) {
    drain_phase_sharded(ops);
  } else {
    drain_phase(ops);
  }
}

void SyncEngine::dispatch_send_phase() {
  const auto& plan = config_.faults;
  const bool via_wire = config_.delivery == Delivery::kCrossing || plan.reorder_prob > 0.0;
  // Sharding needs a send loop with no shared-RNG draws (loss/flip) and no
  // cross-node state mutation (immediate delivery).
  const bool sharded = fleet_ != nullptr && shards_ > 1 && nodes_.size() > 1 && via_wire &&
                       plan.message_loss_prob == 0.0 && plan.bit_flip_prob == 0.0;
  if (!fleet_) {
    LegacyOps ops{*this};
    run_gossip(ops, /*send_sharded=*/false);
    return;
  }
  switch (config_.algorithm) {
    case core::Algorithm::kPushSum: {
      ArenaOps<core::Algorithm::kPushSum> ops{*this};
      run_gossip(ops, sharded);
      return;
    }
    case core::Algorithm::kPushFlow: {
      ArenaOps<core::Algorithm::kPushFlow> ops{*this};
      run_gossip(ops, sharded);
      return;
    }
    case core::Algorithm::kPushCancelFlow: {
      ArenaOps<core::Algorithm::kPushCancelFlow> ops{*this};
      run_gossip(ops, sharded);
      return;
    }
    case core::Algorithm::kFlowUpdating: {
      ArenaOps<core::Algorithm::kFlowUpdating> ops{*this};
      run_gossip(ops, sharded);
      return;
    }
    case core::Algorithm::kCorrectionAllreduce: {
      ArenaOps<core::Algorithm::kCorrectionAllreduce> ops{*this};
      run_gossip(ops, sharded);
      return;
    }
    case core::Algorithm::kFuMassHybrid: {
      ArenaOps<core::Algorithm::kFuMassHybrid> ops{*this};
      run_gossip(ops, sharded);
      return;
    }
  }
}

void SyncEngine::dispatch_drain_phase() {
  const auto& plan = config_.faults;
  // Sharding needs a drain with no per-delivery fault_rng_ draws.
  const bool sharded = fleet_ != nullptr && shards_ > 1 && wire_.size() > 1 &&
                       plan.duplicate_prob == 0.0 && plan.reorder_prob == 0.0;
  if (!fleet_) {
    LegacyOps ops{*this};
    run_drain(ops, /*drain_sharded=*/false);
    return;
  }
  switch (config_.algorithm) {
    case core::Algorithm::kPushSum: {
      ArenaOps<core::Algorithm::kPushSum> ops{*this};
      run_drain(ops, sharded);
      return;
    }
    case core::Algorithm::kPushFlow: {
      ArenaOps<core::Algorithm::kPushFlow> ops{*this};
      run_drain(ops, sharded);
      return;
    }
    case core::Algorithm::kPushCancelFlow: {
      ArenaOps<core::Algorithm::kPushCancelFlow> ops{*this};
      run_drain(ops, sharded);
      return;
    }
    case core::Algorithm::kFlowUpdating: {
      ArenaOps<core::Algorithm::kFlowUpdating> ops{*this};
      run_drain(ops, sharded);
      return;
    }
    case core::Algorithm::kCorrectionAllreduce: {
      ArenaOps<core::Algorithm::kCorrectionAllreduce> ops{*this};
      run_drain(ops, sharded);
      return;
    }
    case core::Algorithm::kFuMassHybrid: {
      ArenaOps<core::Algorithm::kFuMassHybrid> ops{*this};
      run_drain(ops, sharded);
      return;
    }
  }
}

void SyncEngine::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) step();
}

RunStats SyncEngine::run_until_error(double tol, std::size_t max_rounds) {
  PCF_CHECK_MSG(tol > 0.0, "tolerance must be positive");
  stats_.reached_target = false;
  for (std::size_t r = 0; r < max_rounds; ++r) {
    step();
    if (max_error() <= tol) {
      stats_.reached_target = true;
      break;
    }
  }
  return stats_;
}

RunStats SyncEngine::run_until_fixed_point(std::size_t max_rounds, std::size_t window) {
  core::FixedPointStop detector(window);
  stats_.reached_target = false;
  for (std::size_t r = 0; r < max_rounds; ++r) {
    step();
    if (detector.observe(estimates())) {
      stats_.reached_target = true;
      break;
    }
  }
  return stats_;
}

std::vector<double> SyncEngine::estimates(std::size_t k) const {
  std::vector<double> out;
  out.reserve(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) out.push_back(nodes_[i]->estimate(k));
  }
  return out;
}

std::vector<core::Mass> SyncEngine::masses() const {
  std::vector<core::Mass> out;
  out.reserve(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) out.push_back(nodes_[i]->local_mass());
  }
  return out;
}

double SyncEngine::max_error(std::size_t k) const {
  double worst = 0.0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) worst = std::max(worst, oracle_.error_of(nodes_[i]->estimate(k), k));
  }
  return worst;
}

double SyncEngine::median_error(std::size_t k) const { return error_quantile(0.5, k); }

double SyncEngine::error_quantile(double q, std::size_t k) const {
  std::vector<double> errs;
  errs.reserve(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) errs.push_back(oracle_.error_of(nodes_[i]->estimate(k), k));
  }
  return quantile(errs, q);
}

double SyncEngine::max_abs_flow() const {
  double best = 0.0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) best = std::max(best, nodes_[i]->max_abs_flow_component());
  }
  return best;
}

TracePoint SyncEngine::sample(std::size_t k) const {
  std::vector<double> errs;
  errs.reserve(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) errs.push_back(oracle_.error_of(nodes_[i]->estimate(k), k));
  }
  TracePoint p;
  p.time = static_cast<double>(round_);
  p.max_error = max_value(errs);
  p.median_error = median(errs);
  RunningStats rs;
  for (double e : errs) rs.add(e);
  p.mean_error = rs.mean();
  p.max_abs_flow = max_abs_flow();
  return p;
}

}  // namespace pcf::sim
