// Differential oracle harness.
//
// The strongest correctness argument this codebase can make is agreement:
// replay the SAME seeded scenario (topology × fault plan × communication
// schedule — node i draws its targets from its own forked RNG stream, so the
// schedule is identical across algorithms) through every reduction algorithm
// and cross-check the converged aggregates against each other and against the
// exact reference the oracle computes with compensated summation. Algorithms
// disagree only where the paper says they must (push-sum under faults, both
// PCF variants under memory corruption) — the harness encodes that table and
// treats any OTHER disagreement as a bug, dumping a minimized reproduction
// spec (seed + CLI flags, round-trippable through sim/fault_spec.hpp) so the
// failure can be replayed with the pcflow tool directly.
#pragma once

#include <string>
#include <vector>

#include "core/reducer.hpp"
#include "sim/faults.hpp"

namespace pcf::sim {

/// One replayable scenario. The RNG derivation mirrors the pcflow CLI exactly
/// (topology from seed ^ 0x7070, node values from seed ^ 0xda7a), so a dumped
/// repro command reproduces the run bit for bit.
struct DifferentialScenario {
  std::string name;                  ///< label used in reports and repro files
  std::string topology_spec;         ///< net::Topology::parse() grammar
  core::Aggregate aggregate = core::Aggregate::kAverage;
  std::uint64_t seed = 1;
  std::size_t max_rounds = 20000;    ///< convergence cap per algorithm
  FaultPlan faults;
};

struct DifferentialConfig {
  /// Algorithms to replay; empty selects the full roster.
  std::vector<core::Algorithm> algorithms;
  /// A trusted algorithm must converge to within this relative error of the
  /// exact reference…
  double reference_tol = 1e-7;
  /// …and any two trusted algorithms must agree to within this.
  double agreement_tol = 1e-7;
  /// When non-empty, a divergence writes `<dir>/differential_<name>_s<seed>.csv`.
  std::string repro_dir;
};

struct AlgorithmOutcome {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  bool trusted = false;    ///< expected to reach the exact aggregate under this plan
  bool converged = false;  ///< reached reference_tol within max_rounds
  std::size_t rounds = 0;  ///< rounds actually executed
  double max_error = 0.0;  ///< final oracle max relative error
  double consensus = 0.0;  ///< mean estimate over live nodes
  double spread = 0.0;     ///< max pairwise estimate difference (consensus quality)
};

struct DifferentialResult {
  double reference = 0.0;  ///< exact aggregate (component 0)
  std::vector<AlgorithmOutcome> outcomes;
  std::vector<std::string> divergences;  ///< empty == every cross-check passed
  std::string repro_path;                ///< repro CSV written on divergence
  [[nodiscard]] bool diverged() const noexcept { return !divergences.empty(); }
};

/// The expected-agreement table: is `algorithm` supposed to reach the exact
/// aggregate under `plan`? Push-sum tolerates no faults at all; no algorithm
/// is held to exactness under packet or memory corruption (only robust-PCF
/// even aims at the latter, and only for mantissa flips).
[[nodiscard]] bool algorithm_trusted(core::Algorithm algorithm, const FaultPlan& plan);

/// The pcflow invocation reproducing `scenario` for one algorithm.
[[nodiscard]] std::string repro_command(const DifferentialScenario& scenario,
                                        core::Algorithm algorithm);

/// Replays the scenario through every selected algorithm and cross-checks.
[[nodiscard]] DifferentialResult run_differential(const DifferentialScenario& scenario,
                                                  const DifferentialConfig& config = {});

}  // namespace pcf::sim
