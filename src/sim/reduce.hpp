// High-level one-call reduction API.
//
// This is the library's front door: give it a topology, one value (or value
// vector) per node and options, and it runs a fault-tolerant gossip reduction
// to the requested accuracy, returning every node's estimate. Examples and
// the distributed QR are built on it.
#pragma once

#include <vector>

#include "core/mass.hpp"
#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"

namespace pcf::sim {

/// Builds per-node masses from scalar values under the aggregate's weight
/// convention (AVG: w_i = 1; SUM: w_0 = 1, others 0).
[[nodiscard]] std::vector<core::Mass> masses_from_values(std::span<const double> values,
                                                         core::Aggregate aggregate);

/// Vector-payload version: `values[i]` is node i's d-dimensional input.
[[nodiscard]] std::vector<core::Mass> masses_from_vectors(
    std::span<const core::Values> values, core::Aggregate aggregate);

struct ReduceOptions {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::Aggregate aggregate = core::Aggregate::kAverage;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  /// Oracle-checked target accuracy; the run stops early once every node is
  /// within this relative error (the paper's per-reduction ε).
  double target_accuracy = 1e-15;
  /// Iteration cap terminating reductions that never reach the target — the
  /// mechanism behind dmGS(PF)'s accuracy loss in Fig. 8.
  std::size_t max_rounds = 100000;
  FaultPlan faults;
  /// Record a TracePoint every `trace_every` rounds (0 = no trace).
  std::size_t trace_every = 0;
};

struct ReduceResult {
  /// Estimate per node and component; NaN rows for crashed nodes.
  std::vector<std::vector<double>> estimates;
  std::size_t rounds = 0;
  bool reached_target = false;
  double max_error = 0.0;     ///< oracle max relative error at the end
  std::vector<double> target; ///< oracle aggregate per component
  RunStats stats;
  Trace trace;

  /// Estimate of component k on node i.
  [[nodiscard]] double estimate(std::size_t node, std::size_t k = 0) const {
    return estimates.at(node).at(k);
  }
};

/// Runs one scalar reduction (see ReduceOptions).
[[nodiscard]] ReduceResult reduce(const net::Topology& topology, std::span<const double> values,
                                  const ReduceOptions& options);

/// Runs one vector-payload reduction (d-dimensional, d ≤ core::kMaxDim).
[[nodiscard]] ReduceResult reduce_vectors(const net::Topology& topology,
                                          std::span<const core::Values> values,
                                          const ReduceOptions& options);

/// Weighted mean: every node's estimate converges to Σ wᵢ·xᵢ / Σ wᵢ. All
/// weights must be positive (the paper: "scalar weights are exchanged which
/// determine the type of aggregation"). `options.aggregate` is ignored.
[[nodiscard]] ReduceResult reduce_weighted(const net::Topology& topology,
                                           std::span<const double> values,
                                           std::span<const double> weights,
                                           const ReduceOptions& options);

}  // namespace pcf::sim
