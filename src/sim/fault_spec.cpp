#include "sim/fault_spec.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/check.hpp"

namespace pcf::sim {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  if (s.empty()) return parts;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    parts.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

double to_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  PCF_CHECK_MSG(end && *end == '\0' && !s.empty(), "bad " << what << " '" << s << "'");
  return v;
}

double to_time(const std::string& s, const std::string& item) {
  const double t = to_double(s, "time");
  PCF_CHECK_MSG(t >= 0.0,
                "event time must be non-negative, got '" << s << "' in '" << item << "'");
  return t;
}

NodeId to_node(const std::string& s) {
  char* end = nullptr;
  const auto v = std::strtoul(s.c_str(), &end, 10);
  PCF_CHECK_MSG(end && *end == '\0' && !s.empty() && s[0] != '-', "bad node id '" << s << "'");
  return static_cast<NodeId>(v);
}

NodeId to_node_checked(const std::string& s, std::size_t node_count, const std::string& item) {
  const NodeId v = to_node(s);
  PCF_CHECK_MSG(node_count == 0 || v < node_count, "node id " << v << " out of range in '"
                                                              << item << "' (network has "
                                                              << node_count << " nodes)");
  return v;
}

/// Shortest representation that strtod round-trips exactly (%.17g always
/// does; prefer %g when it survives the round trip).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  if (std::strtod(buf, nullptr) != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

template <typename Event>
void sort_by_time(std::vector<Event>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& x, const Event& y) { return x.time < y.time; });
}

}  // namespace

FaultPlan parse_fault_spec(const FaultSpecInput& spec, std::size_t node_count) {
  FaultPlan plan;
  for (const auto& item : split(spec.link_failures, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 3, "link failure wants T:A:B, got '" << item << "'");
    plan.link_failures.push_back({to_time(fields[0], item),
                                  to_node_checked(fields[1], node_count, item),
                                  to_node_checked(fields[2], node_count, item)});
  }
  for (const auto& item : split(spec.node_crashes, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 2, "node crash wants T:N, got '" << item << "'");
    plan.node_crashes.push_back(
        {to_time(fields[0], item), to_node_checked(fields[1], node_count, item)});
  }
  for (const auto& item : split(spec.data_updates, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 3, "data update wants T:N:DELTA, got '" << item << "'");
    plan.data_updates.push_back({to_time(fields[0], item),
                                 to_node_checked(fields[1], node_count, item),
                                 core::Mass::scalar(to_double(fields[2], "delta"), 0.0)});
  }
  for (const auto& item : split(spec.link_heals, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 3, "link heal wants T:A:B, got '" << item << "'");
    plan.link_heals.push_back({to_time(fields[0], item),
                               to_node_checked(fields[1], node_count, item),
                               to_node_checked(fields[2], node_count, item)});
  }
  for (const auto& item : split(spec.node_rejoins, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 2, "node rejoin wants T:N, got '" << item << "'");
    plan.node_rejoins.push_back(
        {to_time(fields[0], item), to_node_checked(fields[1], node_count, item)});
  }
  for (const auto& item : split(spec.false_detects, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 4, "false detect wants T:A:B:D, got '" << item << "'");
    const double clear_delay = to_double(fields[3], "clear delay");
    PCF_CHECK_MSG(clear_delay >= 0.0,
                  "false-detect clear delay must be non-negative in '" << item << "'");
    plan.false_detects.push_back({to_time(fields[0], item),
                                  to_node_checked(fields[1], node_count, item),
                                  to_node_checked(fields[2], node_count, item), clear_delay});
  }
  // Engines process event lists through time-ordered cursors; sorting here
  // lets specs be written in any order.
  sort_by_time(plan.link_failures);
  sort_by_time(plan.node_crashes);
  sort_by_time(plan.data_updates);
  sort_by_time(plan.link_heals);
  sort_by_time(plan.node_rejoins);
  sort_by_time(plan.false_detects);
  return plan;
}

FaultPlan parse_fault_spec(const std::string& link_failures, const std::string& node_crashes,
                           const std::string& data_updates) {
  FaultSpecInput spec;
  spec.link_failures = link_failures;
  spec.node_crashes = node_crashes;
  spec.data_updates = data_updates;
  return parse_fault_spec(spec);
}

std::string format_link_failures(std::span<const LinkFailureEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.a) + ':' + std::to_string(e.b);
  }
  return out;
}

std::string format_node_crashes(std::span<const NodeCrashEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.node);
  }
  return out;
}

std::string format_data_updates(std::span<const DataUpdateEvent> events) {
  std::string out;
  for (const auto& e : events) {
    PCF_CHECK_MSG(e.delta.dim() == 1, "only scalar data updates have a spec representation");
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.node) + ':' + format_double(e.delta.s[0]);
  }
  return out;
}

std::string format_link_heals(std::span<const LinkHealEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.a) + ':' + std::to_string(e.b);
  }
  return out;
}

std::string format_node_rejoins(std::span<const NodeRejoinEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.node);
  }
  return out;
}

std::string format_false_detects(std::span<const FalseDetectEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.a) + ':' + std::to_string(e.b) + ':' +
           format_double(e.clear_delay);
  }
  return out;
}

}  // namespace pcf::sim
