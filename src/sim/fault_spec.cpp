#include "sim/fault_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/check.hpp"

namespace pcf::sim {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  if (s.empty()) return parts;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    parts.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

double to_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  PCF_CHECK_MSG(end && *end == '\0' && !s.empty(), "bad " << what << " '" << s << "'");
  return v;
}

NodeId to_node(const std::string& s) {
  char* end = nullptr;
  const auto v = std::strtoul(s.c_str(), &end, 10);
  PCF_CHECK_MSG(end && *end == '\0' && !s.empty(), "bad node id '" << s << "'");
  return static_cast<NodeId>(v);
}

/// Shortest representation that strtod round-trips exactly (%.17g always
/// does; prefer %g when it survives the round trip).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  if (std::strtod(buf, nullptr) != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

FaultPlan parse_fault_spec(const std::string& link_failures, const std::string& node_crashes,
                           const std::string& data_updates) {
  FaultPlan plan;
  for (const auto& item : split(link_failures, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 3, "link failure wants T:A:B, got '" << item << "'");
    plan.link_failures.push_back(
        {to_double(fields[0], "time"), to_node(fields[1]), to_node(fields[2])});
  }
  for (const auto& item : split(node_crashes, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 2, "node crash wants T:N, got '" << item << "'");
    plan.node_crashes.push_back({to_double(fields[0], "time"), to_node(fields[1])});
  }
  for (const auto& item : split(data_updates, ',')) {
    const auto fields = split(item, ':');
    PCF_CHECK_MSG(fields.size() == 3, "data update wants T:N:DELTA, got '" << item << "'");
    plan.data_updates.push_back({to_double(fields[0], "time"), to_node(fields[1]),
                                 core::Mass::scalar(to_double(fields[2], "delta"), 0.0)});
  }
  return plan;
}

std::string format_link_failures(std::span<const LinkFailureEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.a) + ':' + std::to_string(e.b);
  }
  return out;
}

std::string format_node_crashes(std::span<const NodeCrashEvent> events) {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.node);
  }
  return out;
}

std::string format_data_updates(std::span<const DataUpdateEvent> events) {
  std::string out;
  for (const auto& e : events) {
    PCF_CHECK_MSG(e.delta.dim() == 1, "only scalar data updates have a spec representation");
    if (!out.empty()) out += ',';
    out += format_double(e.time) + ':' + std::to_string(e.node) + ':' + format_double(e.delta.s[0]);
  }
  return out;
}

}  // namespace pcf::sim
