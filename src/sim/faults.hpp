// Fault injection model.
//
// The paper's fault classes and how they are injected here:
//  * message loss   — each packet is independently dropped with probability
//                     `message_loss_prob` (soft error; no one is notified);
//  * bit flips      — each delivered packet has a random bit of one payload
//                     double flipped with probability `bit_flip_prob`. By
//                     default only mantissa/sign bits are flipped: an exponent
//                     flip can turn a value into NaN/Inf, which no
//                     mass-conserving scheme can cancel out and which real
//                     systems catch with range checks (set
//                     `bit_flip_any_bit` to exercise that case anyway);
//  * permanent link failure — at `time` the link stops transporting packets;
//                     both endpoints' failure detectors fire `detection_delay`
//                     later and the algorithms exclude the link;
//  * node crash     — modeled, as in the paper, as the permanent failure of
//                     all the node's links. The crashed node's unrecoverable
//                     mass leaves the computation, so the engines re-derive
//                     the oracle target from the surviving nodes' masses.
//
// Recovery and churn (the dynamic-network half the paper leaves implicit —
// cf. Flow Updating under churn, arXiv:1109.4373):
//  * link heal      — at `time` a previously failed link transports again;
//                     both endpoints' detectors report it up `detection_delay`
//                     later and the algorithms re-admit the neighbor with
//                     zeroed flows (Reducer::on_link_up — the Section IV
//                     exclusion rule run in reverse). Packets that were in
//                     flight when the cable was cut stay lost;
//  * node rejoin    — a crashed node returns with FRESH state (its pre-crash
//                     state is gone): the reducer is rebuilt from the node's
//                     initial mass, links to live neighbors revive (unless
//                     they failed independently of the crash), and the
//                     returning mass re-enters the computation — the engines
//                     retarget the oracle, mirroring the crash retarget;
//  * churn          — probabilistic fail/heal cycling: each live link fails
//                     with rate `churn_fail_prob` (per round in the sync
//                     engine; per unit time per link in the async engine) and
//                     every failed link revives after an exponentially
//                     distributed outage with rate `churn_heal_rate`;
//  * adversarial delivery — each delivered packet is duplicated with
//                     probability `duplicate_prob` (flow mirrors are
//                     idempotent, push-sum shares are not — that asymmetry is
//                     the point), and delayed out of FIFO order with
//                     probability `reorder_prob` (async: an extra arrival
//                     delay uniform in [0, reorder_jitter) that bypasses the
//                     per-link FIFO clamp; sync: the round's deliveries are
//                     permuted);
//  * false-positive detection — at `time` the detectors at both ends of a
//                     LIVE link wrongly report it down (the algorithms
//                     exclude it) and report it up again `clear_delay` later
//                     (the algorithms re-admit it). The transport is never
//                     interrupted.
#pragma once

#include <algorithm>
#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"

namespace pcf::sim {

using core::Packet;
using net::NodeId;

struct LinkFailureEvent {
  double time = 0.0;  ///< in rounds (sync engine) or time units (async engine)
  NodeId a = 0;
  NodeId b = 0;
};

struct NodeCrashEvent {
  double time = 0.0;
  NodeId node = 0;
};

/// A live input change (not a fault — dynamic monitoring à la LiMoSense):
/// at `time`, node `node`'s local data changes by `delta`. The flow-based
/// algorithms track the moving aggregate; the engines retarget the oracle.
struct DataUpdateEvent {
  double time = 0.0;
  NodeId node = 0;
  core::Mass delta;
};

/// A failed link starts transporting again. No-op if the link is up or either
/// endpoint is crashed (a rejoin revives the crashed node's links itself).
struct LinkHealEvent {
  double time = 0.0;
  NodeId a = 0;
  NodeId b = 0;
};

/// A crashed node returns with fresh state. No-op if the node is alive.
struct NodeRejoinEvent {
  double time = 0.0;
  NodeId node = 0;
};

/// Failure-detector false positive on a live link: wrongly "detected down" at
/// `time`, "detected up" again `clear_delay` later. Suppressed if the link
/// genuinely dies in between.
struct FalseDetectEvent {
  double time = 0.0;
  NodeId a = 0;
  NodeId b = 0;
  double clear_delay = 1.0;
};

// NOTE on growing this struct: every field must be threaded through empty(),
// latest_event_time(), both engines, fault_spec parse/format (for events),
// differential.cpp's algorithm_trusted() + repro dump, and the invariant
// checkers' FaultExposure. tests/sim/test_faults.cpp pins the field count
// with a structured binding that fails to compile until updated — update the
// consumers FIRST, then the test.
struct FaultPlan {
  double message_loss_prob = 0.0;
  double bit_flip_prob = 0.0;
  bool bit_flip_any_bit = false;
  /// Memory soft errors: per node and round, the probability that one bit of
  /// one STORED flow variable flips (vs. bit_flip_prob, which corrupts
  /// packets in transit). See Reducer::corrupt_stored_flow.
  double state_flip_prob = 0.0;
  /// Delay between a permanent failure and the failure-detector callback
  /// (on_link_down) at the endpoints — and, symmetrically, between a heal and
  /// the on_link_up callback. 0 matches the paper's experiments.
  double detection_delay = 0.0;
  /// Adversarial delivery: per-packet duplication probability. The duplicate
  /// is delivered immediately after the original (sync) or as the next packet
  /// on the link (async).
  double duplicate_prob = 0.0;
  /// Adversarial delivery: probability that a packet is delayed out of FIFO
  /// order. In the sync engine any reorder_prob > 0 also forces the round's
  /// deliveries through the wire (as in crossing mode), where the selected
  /// packets are shuffled to the back.
  double reorder_prob = 0.0;
  /// Async engine: extra arrival delay bound (time units) for reordered
  /// packets. Ignored by the sync engine (its delay unit is the round).
  double reorder_jitter = 0.5;
  /// Churn: per live link, probability of failing per round (sync) / failure
  /// rate per time unit (async).
  double churn_fail_prob = 0.0;
  /// Churn: when > 0, EVERY link failure between live nodes — churn-induced
  /// or scheduled — heals after an Exp(churn_heal_rate) outage.
  double churn_heal_rate = 0.0;
  std::vector<LinkFailureEvent> link_failures;
  std::vector<NodeCrashEvent> node_crashes;
  std::vector<DataUpdateEvent> data_updates;
  std::vector<LinkHealEvent> link_heals;
  std::vector<NodeRejoinEvent> node_rejoins;
  std::vector<FalseDetectEvent> false_detects;

  [[nodiscard]] bool empty() const noexcept {
    return message_loss_prob == 0.0 && bit_flip_prob == 0.0 && state_flip_prob == 0.0 &&
           duplicate_prob == 0.0 && reorder_prob == 0.0 && churn_fail_prob == 0.0 &&
           link_failures.empty() && node_crashes.empty() && data_updates.empty() &&
           link_heals.empty() && node_rejoins.empty() && false_detects.empty();
  }

  /// Latest scheduled event time (a false detect extends to its clear time).
  /// 0 when no events are scheduled. Churn has no schedule and is not
  /// reflected here.
  [[nodiscard]] double latest_event_time() const noexcept {
    double latest = 0.0;
    for (const auto& e : link_failures) latest = std::max(latest, e.time);
    for (const auto& e : node_crashes) latest = std::max(latest, e.time);
    for (const auto& e : data_updates) latest = std::max(latest, e.time);
    for (const auto& e : link_heals) latest = std::max(latest, e.time);
    for (const auto& e : node_rejoins) latest = std::max(latest, e.time);
    for (const auto& e : false_detects) latest = std::max(latest, e.time + e.clear_delay);
    return latest;
  }
};

/// Flips one random bit of one randomly chosen payload double in `packet`.
/// Honors `any_bit` (see FaultPlan::bit_flip_any_bit).
void flip_random_bit(Packet& packet, Rng& rng, bool any_bit);

}  // namespace pcf::sim
