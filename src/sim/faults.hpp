// Fault injection model.
//
// The paper's fault classes and how they are injected here:
//  * message loss   — each packet is independently dropped with probability
//                     `message_loss_prob` (soft error; no one is notified);
//  * bit flips      — each delivered packet has a random bit of one payload
//                     double flipped with probability `bit_flip_prob`. By
//                     default only mantissa/sign bits are flipped: an exponent
//                     flip can turn a value into NaN/Inf, which no
//                     mass-conserving scheme can cancel out and which real
//                     systems catch with range checks (set
//                     `bit_flip_any_bit` to exercise that case anyway);
//  * permanent link failure — at `time` the link stops transporting packets;
//                     both endpoints' failure detectors fire `detection_delay`
//                     later and the algorithms exclude the link;
//  * node crash     — modeled, as in the paper, as the permanent failure of
//                     all the node's links. The crashed node's unrecoverable
//                     mass leaves the computation, so the engines re-derive
//                     the oracle target from the surviving nodes' masses.
#pragma once

#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"

namespace pcf::sim {

using core::Packet;
using net::NodeId;

struct LinkFailureEvent {
  double time = 0.0;  ///< in rounds (sync engine) or time units (async engine)
  NodeId a = 0;
  NodeId b = 0;
};

struct NodeCrashEvent {
  double time = 0.0;
  NodeId node = 0;
};

/// A live input change (not a fault — dynamic monitoring à la LiMoSense):
/// at `time`, node `node`'s local data changes by `delta`. The flow-based
/// algorithms track the moving aggregate; the engines retarget the oracle.
struct DataUpdateEvent {
  double time = 0.0;
  NodeId node = 0;
  core::Mass delta;
};

struct FaultPlan {
  double message_loss_prob = 0.0;
  double bit_flip_prob = 0.0;
  bool bit_flip_any_bit = false;
  /// Memory soft errors: per node and round, the probability that one bit of
  /// one STORED flow variable flips (vs. bit_flip_prob, which corrupts
  /// packets in transit). See Reducer::corrupt_stored_flow.
  double state_flip_prob = 0.0;
  /// Delay between a permanent failure and the failure-detector callback
  /// (on_link_down) at the endpoints. 0 matches the paper's experiments.
  double detection_delay = 0.0;
  std::vector<LinkFailureEvent> link_failures;
  std::vector<NodeCrashEvent> node_crashes;
  std::vector<DataUpdateEvent> data_updates;

  [[nodiscard]] bool empty() const noexcept {
    return message_loss_prob == 0.0 && bit_flip_prob == 0.0 && state_flip_prob == 0.0 &&
           link_failures.empty() && node_crashes.empty() && data_updates.empty();
  }
};

/// Flips one random bit of one randomly chosen payload double in `packet`.
/// Honors `any_bit` (see FaultPlan::bit_flip_any_bit).
void flip_random_bit(Packet& packet, Rng& rng, bool any_bit);

}  // namespace pcf::sim
