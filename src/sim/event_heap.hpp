// Inspectable binary min-heap for the async engine's event queue.
//
// std::priority_queue hides its container, but the engine needs two things it
// cannot provide: (1) iteration over the pending events, so a crash retarget
// can account for mass carried by queued deliveries (see
// AsyncEngine::handle(kDetect)), and (2) an allocation counter for the hot
// event queue, which feeds the PerfCounters layer. Same heap algorithms
// (std::push_heap / std::pop_heap), same Compare semantics as
// std::priority_queue.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pcf::sim {

template <typename T, typename Compare>
class EventHeap {
 public:
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const T& top() const noexcept { return heap_.front(); }

  void push(T value) {
    if (heap_.size() == heap_.capacity()) ++reallocations_;
    heap_.push_back(std::move(value));
    std::push_heap(heap_.begin(), heap_.end(), cmp_);
  }

  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), cmp_);
    heap_.pop_back();
  }

  /// All pending events in unspecified (heap) order — inspection only.
  [[nodiscard]] std::span<const T> items() const noexcept { return heap_; }

  /// Checkpoint restore: replaces the pending events wholesale.
  /// `already_heap` means `items` came verbatim from items() of a saved heap
  /// and is installed without re-heapifying — pop order (including the
  /// tie-break-free raw layout) is then identical to the saved engine's, which
  /// the bitwise-continuation guarantee requires. Otherwise (lightweight
  /// restore filtered the list) the heap property is re-established.
  void restore_items(std::vector<T> items, bool already_heap) {
    heap_ = std::move(items);
    if (!already_heap) std::make_heap(heap_.begin(), heap_.end(), cmp_);
  }

  /// Times the backing vector grew (each growth is a reallocation + move of
  /// every pending event — the hot-path allocation cost PerfCounters tracks).
  [[nodiscard]] std::uint64_t reallocations() const noexcept { return reallocations_; }

 private:
  std::vector<T> heap_;
  Compare cmp_{};
  std::uint64_t reallocations_ = 0;
};

}  // namespace pcf::sim
