#include "sim/differential.hpp"

#include <cmath>
#include <sstream>

#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/fault_spec.hpp"
#include "sim/reduce.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace pcf::sim {

namespace {

const char* cli_name(core::Algorithm algorithm) {
  switch (algorithm) {
    case core::Algorithm::kPushSum: return "ps";
    case core::Algorithm::kPushFlow: return "pf";
    case core::Algorithm::kPushCancelFlow: return "pcf";
    case core::Algorithm::kFlowUpdating: return "fu";
    case core::Algorithm::kCorrectionAllreduce: return "corr";
    case core::Algorithm::kFuMassHybrid: return "fumd";
  }
  return "?";
}

std::string format_prob(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

bool algorithm_trusted(core::Algorithm algorithm, const FaultPlan& plan) {
  if (plan.bit_flip_prob > 0.0 || plan.state_flip_prob > 0.0) return false;
  if (algorithm == core::Algorithm::kPushSum) return plan.empty();
  if (algorithm == core::Algorithm::kCorrectionAllreduce) {
    // The tree algorithm is EXACT whenever the schedule stays intact:
    // absolute idempotent reports self-heal loss, duplication, reorder and
    // data updates. Any exclusion (failure, crash, false detect, churn) can
    // orphan a subtree — re-attachment needs a live neighbor at strictly
    // smaller depth, which general topologies don't guarantee — and fragment
    // roots then honestly report fragment aggregates. That degradation is the
    // paper's trade-off, not an implementation bug, so the oracle only trusts
    // the fault-free (plus message-level noise) cells.
    return plan.link_failures.empty() && plan.node_crashes.empty() &&
           plan.node_rejoins.empty() && plan.false_detects.empty() &&
           plan.churn_fail_prob == 0.0;
  }
  if (algorithm == core::Algorithm::kPushCancelFlow &&
      (!plan.false_detects.empty() || plan.churn_fail_prob > 0.0)) {
    // Repeated (or falsely detected) link exclusions can interrupt PCF
    // cancellation handshakes mid-transition; each interruption biases the
    // conserved mass by up to one in-flight flow (the two-generals window,
    // see push_cancel_flow.hpp), so PCF's consensus legitimately deviates
    // from the exact reference. PF and FU exclusions are exactly symmetric
    // and stay conservative.
    return false;
  }
  return true;  // the flow algorithms self-heal loss, exclusions, and updates
}

std::string repro_command(const DifferentialScenario& scenario, core::Algorithm algorithm) {
  std::ostringstream os;
  os << "pcflow --topology=" << scenario.topology_spec << " --algorithm=" << cli_name(algorithm)
     << " --aggregate=" << (scenario.aggregate == core::Aggregate::kSum ? "sum" : "avg")
     << " --seed=" << scenario.seed << " --epsilon=1e-9 --max-rounds=" << scenario.max_rounds;
  const FaultPlan& plan = scenario.faults;
  if (plan.message_loss_prob > 0.0) os << " --loss=" << format_prob(plan.message_loss_prob);
  if (plan.bit_flip_prob > 0.0) os << " --flip=" << format_prob(plan.bit_flip_prob);
  if (plan.detection_delay > 0.0) os << " --detection-delay=" << format_prob(plan.detection_delay);
  if (plan.duplicate_prob > 0.0) os << " --duplicate=" << format_prob(plan.duplicate_prob);
  if (plan.reorder_prob > 0.0) os << " --reorder=" << format_prob(plan.reorder_prob);
  if (plan.churn_fail_prob > 0.0) os << " --churn-fail=" << format_prob(plan.churn_fail_prob);
  if (plan.churn_heal_rate > 0.0) os << " --churn-heal=" << format_prob(plan.churn_heal_rate);
  if (!plan.link_failures.empty()) os << " --link-fail=" << format_link_failures(plan.link_failures);
  if (!plan.node_crashes.empty()) os << " --crash=" << format_node_crashes(plan.node_crashes);
  if (!plan.data_updates.empty()) os << " --update=" << format_data_updates(plan.data_updates);
  if (!plan.link_heals.empty()) os << " --link-heal=" << format_link_heals(plan.link_heals);
  if (!plan.node_rejoins.empty()) os << " --rejoin=" << format_node_rejoins(plan.node_rejoins);
  if (!plan.false_detects.empty()) {
    os << " --false-detect=" << format_false_detects(plan.false_detects);
  }
  return os.str();
}

DifferentialResult run_differential(const DifferentialScenario& scenario,
                                    const DifferentialConfig& config) {
  std::vector<core::Algorithm> algorithms = config.algorithms;
  if (algorithms.empty()) {
    algorithms = {core::Algorithm::kPushSum,        core::Algorithm::kPushFlow,
                  core::Algorithm::kPushCancelFlow, core::Algorithm::kFlowUpdating,
                  core::Algorithm::kCorrectionAllreduce, core::Algorithm::kFuMassHybrid};
  }

  // RNG derivation mirrors src/tools/pcflow_cli.cpp so repro commands replay
  // this exact run.
  Rng topo_rng(scenario.seed ^ 0x7070ULL);
  const auto topology = net::Topology::parse(scenario.topology_spec, topo_rng);
  Rng data_rng(scenario.seed ^ 0xda7aULL);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = data_rng.uniform();
  const auto masses = masses_from_values(values, scenario.aggregate);

  // With a crash (or rejoin — which also retargets), each algorithm's oracle
  // retargets from ITS OWN survivors' masses at detection time — the exact
  // aggregates legitimately differ, so only per-algorithm convergence and
  // consensus are comparable.
  const bool comparable_targets =
      scenario.faults.node_crashes.empty() && scenario.faults.node_rejoins.empty();
  const auto settle =
      static_cast<std::size_t>(scenario.faults.latest_event_time()) + 10;
  PCF_CHECK_MSG(settle < scenario.max_rounds,
                "scenario max_rounds must exceed the last fault event");

  DifferentialResult result;
  std::vector<std::string>& diverged = result.divergences;
  for (const core::Algorithm algorithm : algorithms) {
    SyncEngineConfig engine_config;
    engine_config.algorithm = algorithm;
    engine_config.faults = scenario.faults;
    engine_config.seed = scenario.seed;
    SyncEngine engine(topology, masses, engine_config);
    if (result.outcomes.empty()) result.reference = engine.oracle().target();

    // Run through every scheduled fault first, then demand convergence.
    engine.run(settle);
    const auto stats = engine.run_until_error(config.reference_tol, scenario.max_rounds - settle);

    AlgorithmOutcome outcome;
    outcome.algorithm = algorithm;
    outcome.trusted = algorithm_trusted(algorithm, scenario.faults);
    outcome.converged = stats.reached_target;
    outcome.rounds = engine.round();
    outcome.max_error = engine.max_error();
    const auto estimates = engine.estimates();
    double sum = 0.0;
    for (const double e : estimates) sum += e;
    outcome.consensus = estimates.empty() ? 0.0 : sum / static_cast<double>(estimates.size());
    for (const double e : estimates) {
      outcome.spread = std::max(outcome.spread, std::fabs(e - estimates.front()));
    }

    const double scale = std::max(1.0, std::fabs(result.reference));
    if (outcome.trusted) {
      if (!outcome.converged && comparable_targets) {
        std::ostringstream os;
        os << cli_name(algorithm) << ": expected convergence to " << config.reference_tol
           << " but final max error is " << outcome.max_error << " after " << outcome.rounds
           << " rounds";
        diverged.push_back(os.str());
      }
      if (comparable_targets &&
          std::fabs(outcome.consensus - result.reference) > config.reference_tol * scale) {
        std::ostringstream os;
        os << cli_name(algorithm) << ": consensus " << outcome.consensus
           << " disagrees with the exact reference " << result.reference;
        diverged.push_back(os.str());
      }
      if (!comparable_targets && !outcome.converged) {
        std::ostringstream os;
        os << cli_name(algorithm) << ": expected post-crash convergence but final max error is "
           << outcome.max_error;
        diverged.push_back(os.str());
      }
      for (const AlgorithmOutcome& other : result.outcomes) {
        if (!other.trusted || !comparable_targets) continue;
        if (std::fabs(outcome.consensus - other.consensus) > config.agreement_tol * scale) {
          std::ostringstream os;
          os << cli_name(algorithm) << " and " << cli_name(other.algorithm)
             << " disagree: " << outcome.consensus << " vs " << other.consensus;
          diverged.push_back(os.str());
        }
      }
    }
    result.outcomes.push_back(outcome);
  }

  if (result.diverged() && !config.repro_dir.empty()) {
    Table repro({"field", "value"});
    repro.add_row({"scenario", scenario.name});
    repro.add_row({"topology", scenario.topology_spec});
    repro.add_row({"aggregate", scenario.aggregate == core::Aggregate::kSum ? "sum" : "avg"});
    repro.add_row({"seed", Table::num(static_cast<std::int64_t>(scenario.seed))});
    repro.add_row({"max_rounds", Table::num(static_cast<std::int64_t>(scenario.max_rounds))});
    repro.add_row({"loss", format_prob(scenario.faults.message_loss_prob)});
    repro.add_row({"flip", format_prob(scenario.faults.bit_flip_prob)});
    repro.add_row({"detection_delay", format_prob(scenario.faults.detection_delay)});
    repro.add_row({"duplicate", format_prob(scenario.faults.duplicate_prob)});
    repro.add_row({"reorder", format_prob(scenario.faults.reorder_prob)});
    repro.add_row({"reorder_jitter", format_prob(scenario.faults.reorder_jitter)});
    repro.add_row({"churn_fail", format_prob(scenario.faults.churn_fail_prob)});
    repro.add_row({"churn_heal", format_prob(scenario.faults.churn_heal_rate)});
    repro.add_row({"link_failures", format_link_failures(scenario.faults.link_failures)});
    repro.add_row({"node_crashes", format_node_crashes(scenario.faults.node_crashes)});
    repro.add_row({"data_updates", format_data_updates(scenario.faults.data_updates)});
    repro.add_row({"link_heals", format_link_heals(scenario.faults.link_heals)});
    repro.add_row({"node_rejoins", format_node_rejoins(scenario.faults.node_rejoins)});
    repro.add_row({"false_detects", format_false_detects(scenario.faults.false_detects)});
    repro.add_row({"reference", Table::sci(result.reference, 17)});
    for (const auto& line : result.divergences) repro.add_row({"divergence", line});
    for (const auto& outcome : result.outcomes) {
      repro.add_row({std::string("repro_") + cli_name(outcome.algorithm),
                     repro_command(scenario, outcome.algorithm)});
    }
    result.repro_path = config.repro_dir + "/differential_" + scenario.name + "_s" +
                        std::to_string(scenario.seed) + ".csv";
    if (!repro.write_csv(result.repro_path)) result.repro_path.clear();
  }
  return result;
}

}  // namespace pcf::sim
