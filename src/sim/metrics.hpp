// Oracle targets and error traces.
//
// A distributed reduction produces a *sequence* of local estimates on every
// node; the experiments measure, per round, the maximum and median local
// relative error against the true aggregate. The oracle knows the exact
// conserved mass (computed with compensated summation) — something no real
// node can know, which is exactly why it lives in the simulator and not in
// src/core.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/mass.hpp"
#include "support/table.hpp"

namespace pcf {
class BinaryWriter;
class BinaryReader;
}  // namespace pcf

namespace pcf::sim {

class Oracle {
 public:
  /// Computes the exact target aggregate per component from initial masses.
  explicit Oracle(std::span<const core::Mass> initial);

  [[nodiscard]] std::size_t dim() const noexcept { return numerators_.size(); }
  [[nodiscard]] double target(std::size_t k = 0) const;
  /// Conserved numerator Σ s[k] — the quantity the invariant checkers compare
  /// the live nodes' summed masses against.
  [[nodiscard]] double numerator(std::size_t k) const { return numerators_.at(k); }
  /// Conserved total weight Σ w.
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Recomputes the targets from the given current masses — called after a
  /// node crash removed mass from the computation.
  void retarget(std::span<const core::Mass> current);

  /// Shifts the conserved mass by exactly `delta` (a live data update adds
  /// delta to one node's input). Exact regardless of in-flight traffic —
  /// unlike retarget(), which snapshots node states.
  void shift(const core::Mass& delta);

  /// Relative error of one estimate: |e − t| / |t| (absolute error when the
  /// target is 0; +inf for non-finite estimates).
  [[nodiscard]] double error_of(double estimate, std::size_t k = 0) const;

  /// Checkpointing: the conserved targets are mutated by retarget()/shift(),
  /// so they are engine state and travel in checkpoints bit-exactly.
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  void compute(std::span<const core::Mass> masses);
  std::vector<double> numerators_;  ///< Σ s[k] over the conserved mass
  double total_weight_ = 0.0;       ///< Σ w
};

/// One sampled point of a run.
struct TracePoint {
  double time = 0.0;  ///< round index (sync) or simulation time (async)
  double max_error = 0.0;
  double median_error = 0.0;
  double mean_error = 0.0;
  double max_abs_flow = 0.0;  ///< flow-magnitude diagnostic (ablation A3)
};

/// Error-over-time recording for the failure experiments (Figs. 4/7).
class Trace {
 public:
  void add(TracePoint p) { points_.push_back(p); }
  [[nodiscard]] std::span<const TracePoint> points() const noexcept { return points_; }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  /// Renders the trace as a table (one row per sample).
  [[nodiscard]] Table to_table() const;

 private:
  std::vector<TracePoint> points_;
};

}  // namespace pcf::sim
