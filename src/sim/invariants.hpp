// Runtime invariant checking for the simulation engines.
//
// The paper's central claims are invariants: global mass conservation under
// faults, pairwise flow antisymmetry (f_{i,j} == -f_{j,i}), the PCF
// handshake's phase discipline, and "failures cause no convergence
// fall-back". This module turns them into continuously evaluated checkers
// that both engines run as observers every round (sync) / event window
// (async). Each checker is *fault-aware*: it knows which violations are
// expected consequences of an injected failure (a dropped packet breaks
// pairwise conservation until the next delivery heals it; a crash removes
// mass until the oracle retargets) and only reports the unexpected ones.
//
// The strictness ladder, from the delivery model and fault exposure:
//  * sequential delivery, clean transport  — mass conservation and flow
//    antisymmetry hold EXACTLY at every round boundary and are checked with
//    tight tolerances;
//  * crossing / asynchronous delivery      — packets are in flight, so both
//    properties are transient (and a node's weight can transiently collapse,
//    spiking its relative error fault-free); only phase discipline and
//    finiteness remain checkable;
//  * lossy / corrupting transport          — flow algorithms self-heal, so
//    per-round checks are suspended and only finiteness remains.
// The PCF handshake invariants (cycle monotonicity, completer ≤ initiator ≤
// completer + 1, slot agreement by phase parity) hold under EVERY delivery
// model and under message loss — they are receipt-driven — and are therefore
// always enforced.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/metrics.hpp"

namespace pcf::sim {

using net::NodeId;

/// What the engine has injected so far. Checkers use this to decide which
/// violations are expected (and therefore not reported).
struct FaultExposure {
  /// Packets can be in flight when the check runs (crossing delivery, async
  /// engine) — pairwise/global conservation is transient, not per-check.
  bool in_flight = false;
  /// Event counters (sync engine: exact; async engine: conservatively set
  /// from the configured probabilities since it keeps no per-event stats).
  std::size_t messages_dropped = 0;
  std::size_t messages_flipped = 0;
  std::size_t state_flips = 0;
  /// Loss / corruption is configured (probability > 0), even if no event has
  /// fired yet — disables the error-envelope checker, whose history would
  /// otherwise be reset by every event anyway.
  bool lossy_env = false;
  /// Exponent bits may be flipped (NaN/Inf injection) — disables finiteness.
  bool any_bit_flips = false;
  /// A crash or rejoin fired but the oracle retarget is still pending.
  bool crash_settling = false;
  std::size_t link_failures = 0;  ///< scheduled + explicit + churn link failures fired
  std::size_t crashes = 0;
  std::size_t data_updates = 0;
  std::size_t link_heals = 0;  ///< scheduled + explicit + churn link heals fired
  std::size_t rejoins = 0;
  std::size_t false_detects = 0;  ///< failure-detector false positives fired
  /// False positives that cleared ("detected up" — on_link_up ran at both
  /// ends). Counted separately from false_detects because the CLEAR also
  /// resets per-edge protocol state and the checkers must resync then too.
  std::size_t false_clears = 0;
  /// Adversarial-delivery duplicates injected. Flow mirrors are idempotent;
  /// push-sum shares are NOT — its conservation checks are suspended.
  std::size_t messages_duplicated = 0;
  /// on_link_up notices scheduled but not yet delivered (detection_delay).
  /// The per-edge protocol reset lands when the notice is DELIVERED, which
  /// can be rounds after the heal/rejoin counter ticked — history-based
  /// checkers hold their resync window open until these drain.
  std::size_t pending_up_notices = 0;

  /// No drop/corruption event has fired — exact-conservation checks apply.
  /// (Duplicates are excluded deliberately: flow-mirror delivery is
  /// idempotent, so duplication keeps sequential conservation exact.)
  [[nodiscard]] bool transport_clean() const noexcept {
    return messages_dropped == 0 && messages_flipped == 0 && state_flips == 0;
  }
  /// Monotone event counter; history-based checkers reset when it changes.
  [[nodiscard]] std::size_t event_count() const noexcept {
    return messages_dropped + messages_flipped + state_flips + link_failures + crashes +
           data_updates + link_heals + rejoins + false_detects + false_clears +
           messages_duplicated;
  }
  /// Recovery events that reset per-edge protocol state (on_link_up zeroes
  /// the PCF cycle counters); history-based per-edge checkers resynchronize
  /// when this changes.
  [[nodiscard]] std::size_t recovery_count() const noexcept {
    return link_heals + rejoins + false_detects + false_clears;
  }
};

/// Engine-agnostic read-only view of a running system, implemented by
/// adapters inside SyncEngine and AsyncEngine (and by fakes in tests).
class SystemView {
 public:
  virtual ~SystemView() = default;
  [[nodiscard]] virtual const net::Topology& topology() const = 0;
  [[nodiscard]] virtual core::Algorithm algorithm() const = 0;
  /// Round index (sync) or simulation time (async).
  [[nodiscard]] virtual double time() const = 0;
  [[nodiscard]] virtual bool alive(NodeId i) const = 0;
  [[nodiscard]] virtual const core::Reducer& node(NodeId i) const = 0;
  [[nodiscard]] virtual bool link_dead(NodeId a, NodeId b) const = 0;
  [[nodiscard]] virtual const Oracle& oracle() const = 0;
  [[nodiscard]] virtual FaultExposure faults() const = 0;
};

struct InvariantViolation {
  std::string checker;
  double time = 0.0;
  std::string detail;
};

/// One pluggable invariant. Checkers may keep history between check() calls
/// (monotonicity, envelopes); a checker instance belongs to one engine.
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void check(const SystemView& view, std::vector<InvariantViolation>& out) = 0;
};

struct InvariantConfig {
  /// Tri-state: unset (default) consults the PCF_CHECK_INVARIANTS environment
  /// variable, which the test suite sets for every ctest invocation. Engines
  /// embed this config, so benches/examples stay check-free unless opted in.
  std::optional<bool> enabled;
  /// Throw InvariantViolationError on the first check() that finds new
  /// violations (default). When false, violations only accumulate and can be
  /// inspected via InvariantMonitor::violations().
  bool throw_on_violation = true;
  /// Check cadence in rounds (sync engine); the async engine checks at every
  /// run_until() boundary regardless.
  std::size_t check_every = 1;
  /// Relative tolerance for exact global mass conservation.
  double mass_rel_tol = 1e-8;
  /// Loose bound applied once a PCF cancellation handshake may have been
  /// interrupted by a link failure (the two-generals window loses at most one
  /// in-flight flow's mass; see push_cancel_flow.hpp).
  double mass_fault_tol = 0.5;
  /// Error-envelope: a violation fires when the max relative error exceeds
  /// max(envelope_factor × best-seen, envelope_floor) with no intervening
  /// fault event — the "no convergence fall-back" claim. The floor absorbs
  /// the benign 1e-8-scale error rebound flow algorithms show around their
  /// numerical fixed point (growing flows erode cancellation precision —
  /// Fig. 3); a real fall-back (the PF restart problem) is O(0.1).
  double envelope_factor = 1e4;
  double envelope_floor = 1e-6;
  /// The envelope only arms once the best-seen error drops below this —
  /// pre-convergence, near-zero weights make relative errors spike without
  /// any fault (the paper's claim is about fall-back *after* convergence).
  double envelope_arm = 1e-3;

  /// Resolves the tri-state `enabled` against the environment.
  [[nodiscard]] bool resolve_enabled() const;
};

class InvariantViolationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Owns the checker set of one engine; engines call check() as observers.
class InvariantMonitor {
 public:
  explicit InvariantMonitor(InvariantConfig config = {});

  void add_checker(std::unique_ptr<InvariantChecker> checker);
  /// Installs the standard suite: mass conservation, flow antisymmetry, PCF
  /// handshake discipline, estimate-error envelope, finite state.
  void install_default_checkers();

  /// Runs every checker; throws InvariantViolationError when new violations
  /// appear and config.throw_on_violation is set.
  void check(const SystemView& view);

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t checks_run() const noexcept { return checks_run_; }
  [[nodiscard]] const InvariantConfig& config() const noexcept { return config_; }

 private:
  InvariantConfig config_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  std::vector<InvariantViolation> violations_;
  std::size_t checks_run_ = 0;
};

// Individual checker factories, exported so tests can exercise them against
// fake SystemViews.
[[nodiscard]] std::unique_ptr<InvariantChecker> make_mass_conservation_checker(
    const InvariantConfig& config);
[[nodiscard]] std::unique_ptr<InvariantChecker> make_flow_antisymmetry_checker();
[[nodiscard]] std::unique_ptr<InvariantChecker> make_pcf_handshake_checker();
[[nodiscard]] std::unique_ptr<InvariantChecker> make_estimate_envelope_checker(
    const InvariantConfig& config);
[[nodiscard]] std::unique_ptr<InvariantChecker> make_finite_state_checker();

}  // namespace pcf::sim
