// Warm-started reduction sessions.
//
// Iterative algorithms (solvers, monitoring loops, factorizations) compute
// many reductions whose inputs change only a little between rounds. Starting
// each reduction from scratch throws away the converged flow state; a
// ReductionSession instead keeps ONE engine alive and feeds input *changes*
// as live data updates — the estimates re-converge from where they are, so
// the closer the new inputs are to the old ones, the fewer gossip rounds the
// next result costs. This is the paper's introduction made concrete: "higher
// level matrix operations can benefit from the iterative nature of
// gossip-based reduction algorithms for saving communication costs".
//
// The session inherits the full fault tolerance of the underlying algorithm:
// link failures and message loss between or during queries only delay
// convergence (see tests).
//
// WHEN TO USE — magnitudes must stay comparable. A gossip reduction's
// relative accuracy is scale-invariant only when its flow state grew at the
// data's scale: a warm session keeps absolute FP noise from earlier values,
// so querying a sequence whose magnitude shrinks geometrically (e.g. the
// residual norms of a converging solver) eventually cannot reach a relative
// target — run those cold (see the note in linalg/distributed_solver.cpp),
// or rescale the inputs by the previous result.
#pragma once

#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"

namespace pcf::sim {

struct SessionOptions {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::Aggregate aggregate = core::Aggregate::kSum;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  double target_accuracy = 1e-12;
  std::size_t max_rounds_per_query = 50000;
  FaultPlan faults;  ///< probabilistic knobs apply to the whole session
  /// Engine knobs, forwarded verbatim to SyncEngineConfig — sessions run on
  /// the arena backend (mode = kArena, shards > 1) exactly like standalone
  /// engines do.
  Delivery delivery = Delivery::kSequential;
  EngineMode mode = EngineMode::kLegacy;
  std::size_t shards = 1;
  InvariantConfig invariants;
};

struct SessionQueryResult {
  /// Estimate per node and component.
  std::vector<std::vector<double>> estimates;
  std::size_t rounds = 0;  ///< gossip rounds THIS query cost
  bool reached_target = false;
  double max_error = 0.0;
  /// Input updates this query addressed to crashed nodes. They are NOT lost:
  /// the session buffers the desired value and re-applies the accumulated
  /// delta when the node rejoins (see reapplied_updates).
  std::size_t dropped_updates = 0;
  /// Buffered updates re-applied this query to nodes that rejoined since the
  /// previous query (a rejoined node restarts from its construction input).
  std::size_t reapplied_updates = 0;

  [[nodiscard]] double estimate(std::size_t node, std::size_t k = 0) const {
    return estimates.at(node).at(k);
  }
};

class ReductionSession {
 public:
  /// Starts the session with the given per-node input vectors (fixed
  /// dimension d ≤ core::kMaxDim for the session's lifetime).
  ReductionSession(net::Topology topology, std::span<const core::Values> initial,
                   SessionOptions options);

  /// Updates the inputs to `values` (deltas are fed as live data updates) and
  /// runs until every node is within the target accuracy again. The first
  /// call with `values == initial` measures the cold-start cost; subsequent
  /// calls are warm.
  SessionQueryResult query(std::span<const core::Values> values);

  /// Re-runs to the target without changing inputs (e.g. after faults).
  SessionQueryResult refresh();

  /// Injects a permanent link failure into the live session.
  void fail_link(net::NodeId a, net::NodeId b);

  /// Heals a previously failed link in the live session; the algorithms
  /// re-admit the neighbor (Reducer::on_link_up) and re-converge warm.
  void heal_link(net::NodeId a, net::NodeId b);

  [[nodiscard]] std::size_t total_rounds() const noexcept { return engine_.round(); }
  [[nodiscard]] std::size_t queries() const noexcept { return queries_; }
  [[nodiscard]] const SyncEngine& engine() const noexcept { return engine_; }
  /// The options the session was constructed with — external drivers (e.g.
  /// the net-trial harness serving a session as its in-process baseline)
  /// mirror these into their own scenario so both runs reduce the same
  /// problem to the same target.
  [[nodiscard]] const SessionOptions& options() const noexcept { return options_; }

  /// Serializes session bookkeeping (query count, buffered input values,
  /// rejoin watermarks) plus the full engine checkpoint — a warm session
  /// survives a process restart (DESIGN.md §8). Restore into a session
  /// constructed with the identical topology, initial inputs and options;
  /// throws CheckpointError otherwise.
  [[nodiscard]] std::string save_checkpoint(CheckpointMode mode = CheckpointMode::kFull) const;
  void restore(std::string_view checkpoint);

 private:
  SessionQueryResult run_to_target(std::size_t dropped, std::size_t reapplied);
  /// Re-applies the buffered input drift (current − base) of every node that
  /// rejoined since the last query — the rejoined node restarted from its
  /// construction input, so without this the session's belief and the
  /// engine's state diverge silently. Returns how many updates were applied.
  std::size_t sync_rejoined_nodes();

  SessionOptions options_;
  std::vector<core::Values> base_;     ///< construction inputs (rejoin baseline)
  std::vector<core::Values> current_;  ///< latest *desired* value per node
  SyncEngine engine_;
  std::size_t queries_ = 0;
  std::vector<std::uint64_t> seen_rejoins_;  ///< engine rejoin_count watermarks
};

}  // namespace pcf::sim
