// Mass pairs — the quantity conserved by gossip-based reduction.
//
// Every node starts with a mass (x_i, w_i): a value vector x_i ∈ R^d and a
// scalar weight w_i. All algorithms in src/core exchange (fractions of, or
// flows of) such pairs, and every local estimate of the global aggregate is
// the component-wise ratio  s[k]/w  of a node's current mass.
//
// The vector payload (d up to kMaxDim) lets higher-level code batch several
// scalar reductions into one gossip run — the distributed QR batches a whole
// row of R this way.
#pragma once

#include <cstddef>
#include <string_view>

#include "support/inline_vector.hpp"

namespace pcf::core {

/// Maximum payload dimension carried by one reduction.
inline constexpr std::size_t kMaxDim = 16;

using Values = InlineVector<double, kMaxDim>;

struct Mass {
  Values s;       ///< value components
  double w = 0.0; ///< weight component

  Mass() = default;
  Mass(Values values, double weight) : s(std::move(values)), w(weight) {}

  /// Zero mass of dimension `dim`.
  [[nodiscard]] static Mass zero(std::size_t dim) { return Mass(Values(dim, 0.0), 0.0); }

  /// Scalar convenience constructor.
  [[nodiscard]] static Mass scalar(double value, double weight) {
    return Mass(Values{value}, weight);
  }

  [[nodiscard]] std::size_t dim() const noexcept { return s.size(); }

  Mass& operator+=(const Mass& o) noexcept {
    PCF_ASSERT(dim() == o.dim());
    for (std::size_t k = 0; k < s.size(); ++k) s[k] += o.s[k];
    w += o.w;
    return *this;
  }

  Mass& operator-=(const Mass& o) noexcept {
    PCF_ASSERT(dim() == o.dim());
    for (std::size_t k = 0; k < s.size(); ++k) s[k] -= o.s[k];
    w -= o.w;
    return *this;
  }

  [[nodiscard]] friend Mass operator+(Mass a, const Mass& b) noexcept { return a += b; }
  [[nodiscard]] friend Mass operator-(Mass a, const Mass& b) noexcept { return a -= b; }

  /// Exact negation (negation is exact in IEEE-754, so flow conservation
  /// f_{i,j} = -f_{j,i} can hold bit-exactly after one delivery).
  [[nodiscard]] Mass negated() const {
    Mass r = *this;
    for (auto& v : r.s) v = -v;
    r.w = -r.w;
    return r;
  }

  /// Half of the mass (multiplication by 0.5 is exact).
  [[nodiscard]] Mass half() const {
    Mass r = *this;
    for (auto& v : r.s) v *= 0.5;
    r.w *= 0.5;
    return r;
  }

  void set_zero() noexcept {
    for (auto& v : s) v = 0.0;
    w = 0.0;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (double v : s) {
      if (v != 0.0) return false;
    }
    return w == 0.0;
  }

  /// Component-wise exact equality — used by PCF's cancellation handshake,
  /// which must only fire when flow conservation holds exactly.
  friend bool operator==(const Mass& a, const Mass& b) noexcept {
    if (a.w != b.w || a.dim() != b.dim()) return false;
    for (std::size_t k = 0; k < a.s.size(); ++k) {
      if (a.s[k] != b.s[k]) return false;
    }
    return true;
  }

  /// True iff this mass is the exact negation of `o`.
  [[nodiscard]] bool is_negation_of(const Mass& o) const noexcept {
    if (w != -o.w || dim() != o.dim()) return false;
    for (std::size_t k = 0; k < s.size(); ++k) {
      if (s[k] != -o.s[k]) return false;
    }
    return true;
  }

  /// Local estimate of aggregate component k: s[k]/w. When the weight is
  /// still zero (e.g. SUM reductions before the unit weight reached this
  /// node) the ratio is undefined; we return 0 so error metrics report a
  /// full-magnitude error instead of NaN.
  [[nodiscard]] double estimate(std::size_t k = 0) const noexcept {
    PCF_ASSERT(k < dim());
    if (w == 0.0) return 0.0;
    return s[k] / w;
  }
};

/// The aggregate a reduction computes: with per-node inputs x_i,
///   kAverage:  (Σ x_i) / n   (weights w_i = 1 everywhere)
///   kSum:      Σ x_i         (weight w_0 = 1, all other w_i = 0)
enum class Aggregate { kSum, kAverage };

[[nodiscard]] constexpr std::string_view to_string(Aggregate a) noexcept {
  return a == Aggregate::kSum ? "SUM" : "AVG";
}

/// Initial weight for node `i` under aggregate type `a`.
[[nodiscard]] constexpr double initial_weight(Aggregate a, std::size_t i) noexcept {
  return a == Aggregate::kAverage ? 1.0 : (i == 0 ? 1.0 : 0.0);
}

}  // namespace pcf::core
