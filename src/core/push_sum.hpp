// Push-sum (Kempe, Dobra, Gehrke — FOCS 2003).
//
// The classical gossip aggregation protocol: every step a node keeps half of
// its mass and pushes the other half to a uniformly random neighbor. Mass
// conservation (Σ_i e_i(t) = Σ_i e_i(0)) is a *global* property, so any lost
// or corrupted message silently destroys the result — push-sum is the
// non-fault-tolerant baseline the paper builds on.
#pragma once

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class PushSum final : public Reducer {
 public:
  explicit PushSum(const ReducerConfig& config) : config_(config) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  [[nodiscard]] Mass local_mass() const override { return mass_; }
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "push-sum"; }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override;
  /// Every in-flight packet is an independent mass transfer.
  [[nodiscard]] bool in_flight_mass_accumulates() const noexcept override { return true; }

 private:
  [[nodiscard]] std::optional<Outgoing> send_to_slot(std::size_t slot);

  ReducerConfig config_;
  NeighborSet neighbors_;
  Mass mass_;
  bool initialized_ = false;
};

}  // namespace pcf::core
