// Binary serialization of the core value types (Mass, Packet) shared by the
// per-reducer save_state/load_state implementations, the arena fleet dump,
// and the engine checkpoint layer (sim/checkpoint.cpp).
//
// Doubles travel as IEEE-754 bit patterns so a restored state is bit-exact —
// the checkpoint contract is bitwise-identical continuation, not approximate.
#pragma once

#include "core/reducer.hpp"
#include "support/binio.hpp"

namespace pcf::core {

inline void write_mass(BinaryWriter& w, const Mass& m) {
  w.u8(static_cast<std::uint8_t>(m.dim()));
  for (const double v : m.s) w.f64(v);
  w.f64(m.w);
}

[[nodiscard]] inline Mass read_mass(BinaryReader& r) {
  const std::uint8_t dim = r.u8();
  if (dim > kMaxDim) throw BinioError("state_io: mass dimension out of range");
  Mass m = Mass::zero(dim);
  for (std::size_t k = 0; k < dim; ++k) m.s[k] = r.f64();
  m.w = r.f64();
  return m;
}

inline void write_packet(BinaryWriter& w, const Packet& p) {
  write_mass(w, p.a);
  write_mass(w, p.b);
  w.u8(p.active_slot);
  w.u64(p.role_count);
}

[[nodiscard]] inline Packet read_packet(BinaryReader& r) {
  Packet p;
  p.a = read_mass(r);
  p.b = read_mass(r);
  p.active_slot = r.u8();
  p.role_count = r.u64();
  return p;
}

}  // namespace pcf::core
