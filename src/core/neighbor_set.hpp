// Shared per-node neighbor bookkeeping for reducer implementations: sorted
// id -> slot lookup, liveness flags, and uniform sampling among live
// neighbors.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pcf::core {

class NeighborSet {
 public:
  void init(std::span<const net::NodeId> neighbors) {
    ids_.assign(neighbors.begin(), neighbors.end());
    std::sort(ids_.begin(), ids_.end());
    PCF_CHECK_MSG(std::adjacent_find(ids_.begin(), ids_.end()) == ids_.end(),
                  "duplicate neighbor id");
    alive_.assign(ids_.size(), true);
    live_ = ids_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] std::size_t live_count() const noexcept { return live_.size(); }
  [[nodiscard]] net::NodeId id_at(std::size_t slot) const noexcept { return ids_[slot]; }
  [[nodiscard]] bool alive_at(std::size_t slot) const noexcept { return alive_[slot]; }

  /// Slot index of neighbor `j`, or nullopt if j is not a neighbor.
  [[nodiscard]] std::optional<std::size_t> slot_of(net::NodeId j) const noexcept {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), j);
    if (it == ids_.end() || *it != j) return std::nullopt;
    return static_cast<std::size_t>(it - ids_.begin());
  }

  /// Uniformly random live neighbor, or nullopt if none are left.
  [[nodiscard]] std::optional<net::NodeId> pick_live(Rng& rng) const noexcept {
    if (live_.empty()) return std::nullopt;
    return live_[static_cast<std::size_t>(rng.below(live_.size()))];
  }

  /// Marks neighbor j dead; returns its slot if it was alive, nullopt if it
  /// was unknown or already dead (duplicate failure notifications are benign).
  std::optional<std::size_t> mark_dead(net::NodeId j) {
    const auto slot = slot_of(j);
    if (!slot || !alive_[*slot]) return std::nullopt;
    alive_[*slot] = false;
    live_.erase(std::remove(live_.begin(), live_.end(), j), live_.end());
    return slot;
  }

  /// Marks neighbor j alive again (link heal / rejoin); returns its slot if
  /// it was dead, nullopt if it was unknown or already alive (duplicate
  /// recovery notifications are benign). live_ stays sorted, so pick_live
  /// sampling is deterministic regardless of the heal order.
  std::optional<std::size_t> mark_alive(net::NodeId j) {
    const auto slot = slot_of(j);
    if (!slot || alive_[*slot]) return std::nullopt;
    alive_[*slot] = true;
    live_.insert(std::lower_bound(live_.begin(), live_.end(), j), j);
    return slot;
  }

 private:
  std::vector<net::NodeId> ids_;  // sorted
  std::vector<bool> alive_;
  std::vector<net::NodeId> live_;
};

}  // namespace pcf::core
