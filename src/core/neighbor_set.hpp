// Shared per-node neighbor bookkeeping for reducer implementations: sorted
// id -> slot lookup, liveness flags, and uniform sampling among live
// neighbors.
//
// The live set is stored as *slot indices* (ascending). Because ids_ is
// sorted, ascending slots and ascending ids induce the same order, so the
// uniform draw in pick_live()/pick_live_slot() selects the same neighbor for
// the same RNG state as the historical id-keyed implementation — golden
// traces do not move. Storing slots lets the hot send path go straight from
// the sample to per-slot flow storage without re-running the O(log degree)
// id lookup that slot_of() does (the "latent map lookup" this layout fixes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "support/binio.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pcf::core {

class NeighborSet {
 public:
  void init(std::span<const net::NodeId> neighbors) {
    ids_.assign(neighbors.begin(), neighbors.end());
    std::sort(ids_.begin(), ids_.end());
    PCF_CHECK_MSG(std::adjacent_find(ids_.begin(), ids_.end()) == ids_.end(),
                  "duplicate neighbor id");
    alive_.assign(ids_.size(), 1);
    live_slots_.resize(ids_.size());
    for (std::uint32_t s = 0; s < live_slots_.size(); ++s) live_slots_[s] = s;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] std::size_t live_count() const noexcept { return live_slots_.size(); }
  [[nodiscard]] net::NodeId id_at(std::size_t slot) const noexcept { return ids_[slot]; }
  [[nodiscard]] bool alive_at(std::size_t slot) const noexcept { return alive_[slot] != 0; }

  /// Slot index of neighbor `j`, or nullopt if j is not a neighbor.
  [[nodiscard]] std::optional<std::size_t> slot_of(net::NodeId j) const noexcept {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), j);
    if (it == ids_.end() || *it != j) return std::nullopt;
    return static_cast<std::size_t>(it - ids_.begin());
  }

  /// Uniformly random live neighbor's slot, or nullopt if none are left.
  /// Draws exactly one rng.below(live_count()) when the live set is
  /// non-empty, nothing otherwise — the reducers' RNG-stream contract.
  [[nodiscard]] std::optional<std::size_t> pick_live_slot(Rng& rng) const noexcept {
    if (live_slots_.empty()) return std::nullopt;
    return static_cast<std::size_t>(
        live_slots_[static_cast<std::size_t>(rng.below(live_slots_.size()))]);
  }

  /// Uniformly random live neighbor, or nullopt if none are left.
  [[nodiscard]] std::optional<net::NodeId> pick_live(Rng& rng) const noexcept {
    const auto slot = pick_live_slot(rng);
    if (!slot) return std::nullopt;
    return ids_[*slot];
  }

  /// Marks neighbor j dead; returns its slot if it was alive, nullopt if it
  /// was unknown or already dead (duplicate failure notifications are benign).
  std::optional<std::size_t> mark_dead(net::NodeId j) {
    const auto slot = slot_of(j);
    if (!slot || alive_[*slot] == 0) return std::nullopt;
    alive_[*slot] = 0;
    const auto s = static_cast<std::uint32_t>(*slot);
    live_slots_.erase(
        std::lower_bound(live_slots_.begin(), live_slots_.end(), s));
    return slot;
  }

  /// Marks neighbor j alive again (link heal / rejoin); returns its slot if
  /// it was dead, nullopt if it was unknown or already alive (duplicate
  /// recovery notifications are benign). live_slots_ stays sorted, so
  /// pick_live sampling is deterministic regardless of the heal order.
  std::optional<std::size_t> mark_alive(net::NodeId j) {
    const auto slot = slot_of(j);
    if (!slot || alive_[*slot] != 0) return std::nullopt;
    alive_[*slot] = 1;
    const auto s = static_cast<std::uint32_t>(*slot);
    live_slots_.insert(
        std::lower_bound(live_slots_.begin(), live_slots_.end(), s), s);
    return slot;
  }

  /// Checkpointing: only the liveness flags are mutable state — ids_ comes
  /// from the topology (re-supplied at restore via init), and live_slots_ is
  /// derived from the flags, so neither is serialized.
  void save_state(BinaryWriter& w) const {
    w.u64(ids_.size());
    for (const std::uint8_t a : alive_) w.u8(a);
  }

  /// Restores flags saved by save_state into an init()-ed set with the same
  /// neighborhood; rebuilds live_slots_. Throws BinioError on a neighbor
  /// count that does not match this set (wrong-topology checkpoint).
  void load_state(BinaryReader& r) {
    const std::uint64_t n = r.u64();
    if (n != ids_.size()) throw BinioError("neighbor count mismatch in checkpoint");
    live_slots_.clear();
    for (std::uint32_t s = 0; s < ids_.size(); ++s) {
      alive_[s] = r.u8() ? 1 : 0;
      if (alive_[s]) live_slots_.push_back(s);
    }
  }

 private:
  std::vector<net::NodeId> ids_;            // sorted
  std::vector<std::uint8_t> alive_;         // per-slot, branch-friendly
  std::vector<std::uint32_t> live_slots_;   // sorted ascending
};

}  // namespace pcf::core
