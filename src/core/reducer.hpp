// The per-node protocol interface shared by all gossip reduction algorithms.
//
// A Reducer is the complete protocol state machine of ONE node: it owns the
// node's initial mass, its per-neighbor flow state, and produces/consumes
// point-to-point packets. Engines (synchronous rounds, asynchronous events,
// threaded runtime) only move packets between reducers — the algorithms never
// see the transport, which is exactly the property that lets the same code
// run in a simulator and in the threaded runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "core/mass.hpp"
#include "net/topology.hpp"
#include "net/tree_schedule.hpp"
#include "support/rng.hpp"

namespace pcf {
class BinaryWriter;
class BinaryReader;
}  // namespace pcf

namespace pcf::core {

using net::NodeId;

/// Universal wire format. Each algorithm uses the subset of fields it needs;
/// unused fields stay zero. Keeping one POD packet type (instead of a variant
/// per algorithm) lets the fault injector flip bits and the engines stay
/// algorithm-agnostic.
struct Packet {
  Mass a;                       ///< push-sum share / PF flow / PCF flow slot 1 / FU flow
  Mass b;                       ///< PCF flow slot 2 / FU sender estimate
  std::uint8_t active_slot = 1; ///< PCF: sender's c_{i,j} ∈ {1,2}
  std::uint64_t role_count = 0; ///< PCF: sender's r_{i,j}
};

/// A packet addressed to a neighbor.
struct Outgoing {
  NodeId to = 0;
  Packet packet;
};

enum class Algorithm {
  kPushSum,             ///< Kempe et al. 2003 — fast, zero fault tolerance
  kPushFlow,            ///< Gansterer et al. 2011/12 — Fig. 1 of the paper
  kPushCancelFlow,      ///< this paper's contribution — Fig. 5
  kFlowUpdating,        ///< Jesus et al. 2009 — averaging-only baseline
  kCorrectionAllreduce, ///< Küttler & Härtig — tree allreduce with corrections
  kFuMassHybrid,        ///< Almeida et al. 2011 — FU flows at MD pairing speed
};

[[nodiscard]] std::string_view to_string(Algorithm a) noexcept;
/// Parses "pushsum" | "pf" | "pcf" | "fu" | "corr" | "fumd" (and long names).
[[nodiscard]] Algorithm parse_algorithm(std::string_view name);

/// Whether the algorithm needs a resolved net::TreeSchedule in its
/// ReducerConfig before reducers are constructed. The engines populate it
/// from their topology when the caller left it empty.
[[nodiscard]] constexpr bool needs_tree_schedule(Algorithm a) noexcept {
  return a == Algorithm::kCorrectionAllreduce;
}

/// PCF bookkeeping variants (Section III-A of the paper).
enum class PcfVariant {
  /// Fig. 5 verbatim: the flow sum ϕ is maintained incrementally and the
  /// estimate is v − ϕ. Cheapest, but a corrupted ϕ or flow slot can never
  /// heal, so bit flips are not tolerated.
  kFast,
  /// ϕ only absorbs *cancelled* flows; the estimate is recomputed from the
  /// live flow slots each time. Retains PF's self-healing of corrupted flow
  /// variables (the paper's remark at the end of Section III-A).
  kRobust,
};

[[nodiscard]] std::string_view to_string(PcfVariant v) noexcept;

struct ReducerConfig {
  Aggregate aggregate = Aggregate::kAverage;
  PcfVariant pcf_variant = PcfVariant::kRobust;
  /// PF ablation: maintain Σ flows in a cached accumulator instead of
  /// recomputing it per send (the paper notes both variants are inaccurate).
  bool pf_cached_flow_sum = false;
  /// Correction allreduce: requested reduce-tree shape. kAuto selects from
  /// the topology (star hub → star, id-order path → chain, heap edges →
  /// binary, else BFS) — the Hoplite-style dynamic reduce-topology pick.
  net::TreeKind tree_kind = net::TreeKind::kAuto;
  /// The resolved tree schedule, shared read-only by every node. Engines
  /// build it from their topology when an algorithm that needs it (see
  /// needs_tree_schedule) is selected and this is still empty. Derived state:
  /// a pure function of topology × tree_kind, so checkpoint compatibility
  /// hashes tree_kind, never the schedule itself.
  std::shared_ptr<const net::TreeSchedule> tree;
};

/// Per-node protocol state machine. Not thread-safe; the threaded runtime
/// serializes access per node.
class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Installs identity, neighborhood and initial mass. Must be called exactly
  /// once before any other member.
  virtual void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) = 0;

  /// One gossip send step: choose a live neighbor (uniformly at random) and
  /// produce the packet for it. Returns nullopt when the node has no live
  /// neighbors left.
  [[nodiscard]] virtual std::optional<Outgoing> make_message(Rng& rng) = 0;

  /// Directed send step toward a specific live neighbor — used by
  /// deterministic schedules (e.g. the paper's Fig. 2 regular synchronous
  /// matching on a bus). Returns nullopt if `target` is not a live neighbor.
  [[nodiscard]] virtual std::optional<Outgoing> make_message_to(NodeId target) = 0;

  /// Delivers a packet from neighbor `from`. Packets on a directed link are
  /// delivered in FIFO order by every engine; loss (gaps) is allowed.
  virtual void on_receive(NodeId from, const Packet& packet) = 0;

  /// The node's current mass e_i (estimates are e_i.estimate(k)).
  [[nodiscard]] virtual Mass local_mass() const = 0;

  /// Current estimate of aggregate component k. Defaults to the mass ratio
  /// s[k]/w; Flow Updating overrides it with its fused neighborhood estimate.
  [[nodiscard]] virtual double estimate(std::size_t k = 0) const {
    return local_mass().estimate(k);
  }

  /// Failure-detector callback: the link to `j` failed permanently. The
  /// reducer excludes j from the computation (PF/PCF: zero the edge flows).
  virtual void on_link_down(NodeId j) = 0;

  /// Recovery callback: the link to `j` (previously reported down) works
  /// again — a healed link, a rejoined neighbor, or a failure-detector false
  /// positive clearing. The reducer re-admits j with a blank edge: zeroed
  /// flows (the exclusion rule run in reverse; the flow state both ends held
  /// before the outage is stale and was already folded into the local masses
  /// by on_link_down). Duplicate notifications are benign no-ops, as is a
  /// notification for a neighbor that was never excluded.
  virtual void on_link_up(NodeId j) { (void)j; }

  /// Live data update (LiMoSense-style dynamic monitoring): the node's input
  /// changes by `delta` mid-computation. Flow-based algorithms support this
  /// naturally — the initial data is separate state from the flows, so the
  /// estimates simply re-converge toward the new aggregate. For push-sum the
  /// delta is folded into the in-flight mass (no separate input exists).
  virtual void update_data(const Mass& delta) = 0;

  /// Checkpointing: appends this node's complete mutable protocol state
  /// (neighbor liveness, masses, flows, handshake counters) to `w`. The
  /// format is per-algorithm and deterministic; a round-trip through
  /// load_state must be bit-exact. Configuration and topology are NOT
  /// written — they are reconstructed by the engine before load_state runs.
  virtual void save_state(BinaryWriter& w) const = 0;

  /// Restores state written by save_state into an init()-ed reducer of the
  /// same algorithm, configuration and neighborhood. Throws BinioError on
  /// malformed input (truncation, dimension/degree mismatch).
  virtual void load_state(BinaryReader& r) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Number of live neighbors (after link failures).
  [[nodiscard]] virtual std::size_t live_degree() const noexcept = 0;

  // ---- introspection hooks for tests, ablations and metrics ----

  /// Largest |component| over all flow state held by the node. The paper's
  /// core observation: for PF this grows with n, for PCF it stays O(aggregate).
  [[nodiscard]] virtual double max_abs_flow_component() const noexcept { return 0.0; }

  /// PCF: how many active/passive role swaps this node completed (summed over
  /// edges). 0 for other algorithms.
  [[nodiscard]] virtual std::uint64_t role_swaps() const noexcept { return 0; }

  /// Mass pairs a wire encoding of this algorithm's packets carries: 1 for
  /// push-sum/PF (one flow), 2 for PCF (two slots) and FU (flow + estimate).
  /// Used by the engines' bandwidth accounting.
  [[nodiscard]] virtual std::size_t wire_masses() const noexcept { return 1; }

  /// Upper bound on the flow slots any algorithm stores per edge (PCF: 2).
  static constexpr std::size_t kMaxFlowSlots = 2;

  /// Introspection for the invariant checkers: copies this node's stored flow
  /// state toward neighbor `j` into `out` (slot-indexed; both endpoints of an
  /// edge use the same slot order, so slot s here pairs with slot s on the
  /// peer). Returns the number of slots written — 0 when the algorithm stores
  /// no flow toward j (push-sum) or j is not a live neighbor. `out` must hold
  /// at least kMaxFlowSlots elements.
  [[nodiscard]] virtual std::size_t flows_toward(NodeId j, std::span<Mass> out) const {
    (void)j;
    (void)out;
    return 0;
  }

  /// Fault-injection hook: flips one random mantissa/sign bit in one randomly
  /// chosen STORED flow variable — a memory soft error, as opposed to the
  /// in-transit corruption the engines inject into packets. Returns false if
  /// the algorithm has no stored flow state to corrupt (push-sum). Flow
  /// algorithms heal this at the next mirror on the affected edge — except
  /// bookkeeping that accumulates increments from the corrupted value (the
  /// PCF fast variant's ϕ), which is the paper's Section III-A caveat.
  virtual bool corrupt_stored_flow(Rng& rng) {
    (void)rng;
    return false;
  }

  /// Mass accounting for the engines' crash retarget: the mass this node's
  /// state does NOT yet reflect but which delivering `packet` (a pending
  /// in-flight packet from neighbor `from`) would add to local_mass().
  /// Returns zero mass whenever on_receive would ignore the packet (unknown
  /// or excluded link, corrupted dimensions). Push-sum: the packet's mass
  /// share. Flow algorithms: stored-mirror minus the packet's flow — an
  /// *absolute* quantity, so only the newest pending packet per directed link
  /// counts (see in_flight_mass_accumulates()).
  [[nodiscard]] virtual Mass unreceived_mass(NodeId from, const Packet& packet) const {
    (void)from;
    return Mass::zero(packet.a.dim());
  }

  /// Whether pending packets on one directed link carry *independent* mass
  /// (push-sum: each packet is a transfer; sum them all) or supersede each
  /// other (flow algorithms: the mirror is absolute; only the newest pending
  /// packet counts).
  [[nodiscard]] virtual bool in_flight_mass_accumulates() const noexcept { return false; }
};

/// Factory for all reducer algorithms.
[[nodiscard]] std::unique_ptr<Reducer> make_reducer(Algorithm algorithm,
                                                    const ReducerConfig& config = {});

}  // namespace pcf::core
