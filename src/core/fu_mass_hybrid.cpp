#include "core/fu_mass_hybrid.hpp"

#include "core/state_io.hpp"

#include <cmath>
#include <cstring>

namespace pcf::core {

void FuMassHybrid::init(NodeId /*self*/, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  neighbors_.init(neighbors);
  initial_ = std::move(initial);
  flows_.assign(neighbors_.size(), Mass::zero(initial_.dim()));
  reported_.assign(neighbors_.size(), Mass::zero(initial_.dim()));
  have_report_.assign(neighbors_.size(), false);
  initialized_ = true;
}

Mass FuMassHybrid::local_mass() const {
  PCF_CHECK_MSG(initialized_, "local_mass before init");
  Mass m = initial_;
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    if (neighbors_.alive_at(slot)) m -= flows_[slot];
  }
  return m;
}

std::optional<Outgoing> FuMassHybrid::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot = neighbors_.pick_live_slot(rng);
  if (!slot) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> FuMassHybrid::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot_opt = neighbors_.slot_of(target);
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return std::nullopt;
  return send_to_slot(*slot_opt);
}

std::optional<Outgoing> FuMassHybrid::send_to_slot(std::size_t slot) {
  Mass m = local_mass();
  if (have_report_[slot]) {
    // MD pairing: route half the mass gap toward the neighbor's last
    // reported mass through the edge flow.
    const Mass& r = reported_[slot];
    Mass& f = flows_[slot];
    for (std::size_t k = 0; k < m.dim(); ++k) {
      const double d = (m.s[k] - r.s[k]) * 0.5;
      f.s[k] += d;
      m.s[k] -= d;
    }
    const double dw = (m.w - r.w) * 0.5;
    f.w += dw;
    m.w -= dw;
  }
  // Without a report yet the first exchange only advertises masses.

  Outgoing out;
  out.to = neighbors_.id_at(slot);
  out.packet.a = flows_[slot];  // idempotent flow — retransmission-safe
  out.packet.b = m;             // post-step local mass: the report
  return out;
}

void FuMassHybrid::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  const auto slot = neighbors_.slot_of(from);
  if (!slot || !neighbors_.alive_at(*slot)) return;
  if (packet.a.dim() != initial_.dim() || packet.b.dim() != initial_.dim()) return;
  flows_[*slot] = packet.a.negated();
  reported_[*slot] = packet.b;
  have_report_[*slot] = true;
}

void FuMassHybrid::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == initial_.dim(), "update_data dimension mismatch");
  initial_ += delta;
}

void FuMassHybrid::on_link_down(NodeId j) {
  const auto slot = neighbors_.mark_dead(j);
  if (!slot) return;
  flows_[*slot].set_zero();
  reported_[*slot].set_zero();
  have_report_[*slot] = false;
}

void FuMassHybrid::on_link_up(NodeId j) {
  const auto slot = neighbors_.mark_alive(j);
  if (!slot) return;
  // Blank edge: no flow routed, no report until the next packet.
  flows_[*slot].set_zero();
  reported_[*slot].set_zero();
  have_report_[*slot] = false;
}

bool FuMassHybrid::corrupt_stored_flow(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "corrupt_stored_flow before init");
  const auto slot = static_cast<std::size_t>(rng.below(flows_.size()));
  const auto component = static_cast<std::size_t>(rng.below(flows_[slot].dim() + 1));
  double& victim = component < flows_[slot].dim() ? flows_[slot].s[component] : flows_[slot].w;
  std::uint64_t bit = rng.below(53);
  if (bit == 52) bit = 63;  // sign bit
  std::uint64_t bits;
  std::memcpy(&bits, &victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit);
  std::memcpy(&victim, &bits, sizeof bits);
  return true;
}

Mass FuMassHybrid::unreceived_mass(NodeId from, const Packet& packet) const {
  PCF_CHECK_MSG(initialized_, "unreceived_mass before init");
  Mass none = Mass::zero(initial_.dim());
  const auto slot = neighbors_.slot_of(from);
  // Same acceptance conditions as on_receive. The report (packet.b) carries
  // no conserved mass; only the flow mirror does.
  if (!slot || !neighbors_.alive_at(*slot) || packet.a.dim() != initial_.dim() ||
      packet.b.dim() != initial_.dim()) {
    return none;
  }
  return flows_[*slot] + packet.a;
}

std::size_t FuMassHybrid::flows_toward(NodeId j, std::span<Mass> out) const {
  const auto slot = neighbors_.slot_of(j);
  if (!slot || !neighbors_.alive_at(*slot) || out.empty()) return 0;
  out[0] = flows_[*slot];
  return 1;
}

double FuMassHybrid::max_abs_flow_component() const noexcept {
  double best = 0.0;
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    if (!neighbors_.alive_at(slot)) continue;
    for (double v : flows_[slot].s) best = std::max(best, std::fabs(v));
    best = std::max(best, std::fabs(flows_[slot].w));
  }
  return best;
}

void FuMassHybrid::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  write_mass(w, initial_);  // mutable via update_data
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    write_mass(w, flows_[slot]);
    write_mass(w, reported_[slot]);
    w.boolean(have_report_[slot]);
  }
}

void FuMassHybrid::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  initial_ = read_mass(r);
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    flows_[slot] = read_mass(r);
    reported_[slot] = read_mass(r);
    have_report_[slot] = r.boolean();
  }
}

}  // namespace pcf::core
