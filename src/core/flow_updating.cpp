#include "core/flow_updating.hpp"

#include "core/state_io.hpp"

#include <cmath>
#include <cstring>

namespace pcf::core {

void FlowUpdating::init(NodeId /*self*/, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  neighbors_.init(neighbors);
  initial_ = std::move(initial);
  flows_.assign(neighbors_.size(), Mass::zero(initial_.dim()));
  estimates_.assign(neighbors_.size(), Mass::zero(initial_.dim()));
  have_estimate_.assign(neighbors_.size(), false);
  initialized_ = true;
}

Mass FlowUpdating::local_mass() const {
  PCF_CHECK_MSG(initialized_, "local_mass before init");
  Mass m = initial_;
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    if (neighbors_.alive_at(slot)) m -= flows_[slot];
  }
  return m;
}

Mass FlowUpdating::fused() const {
  Mass acc = local_mass();
  std::size_t count = 1;
  for (std::size_t slot = 0; slot < estimates_.size(); ++slot) {
    if (!neighbors_.alive_at(slot) || !have_estimate_[slot]) continue;
    acc += estimates_[slot];
    ++count;
  }
  const double inv = 1.0 / static_cast<double>(count);
  for (auto& v : acc.s) v *= inv;
  acc.w *= inv;
  return acc;
}

double FlowUpdating::estimate(std::size_t k) const { return fused().estimate(k); }

std::optional<Outgoing> FlowUpdating::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  // Sampling yields the slot directly — no id -> slot re-lookup on the hot
  // send path (the sampled slot is live by construction).
  const auto slot = neighbors_.pick_live_slot(rng);
  if (!slot) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> FlowUpdating::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot_opt = neighbors_.slot_of(target);
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return std::nullopt;
  return send_to_slot(*slot_opt);
}

std::optional<Outgoing> FlowUpdating::send_to_slot(std::size_t slot) {
  const Mass a = fused();
  // Move the neighbor's view toward the fused estimate: after the update the
  // mass routed over this edge reflects ê_j := a.
  Mass delta = a;
  if (have_estimate_[slot]) delta -= estimates_[slot];
  flows_[slot] += delta;
  estimates_[slot] = a;
  have_estimate_[slot] = true;

  Outgoing out;
  out.to = neighbors_.id_at(slot);
  out.packet.a = flows_[slot];  // idempotent flow — retransmission-safe
  out.packet.b = a;             // sender's fused estimate
  return out;
}

void FlowUpdating::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  const auto slot = neighbors_.slot_of(from);
  if (!slot || !neighbors_.alive_at(*slot)) return;
  if (packet.a.dim() != initial_.dim() || packet.b.dim() != initial_.dim()) return;
  flows_[*slot] = packet.a.negated();
  estimates_[*slot] = packet.b;
  have_estimate_[*slot] = true;
}

void FlowUpdating::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == initial_.dim(), "update_data dimension mismatch");
  initial_ += delta;
}

void FlowUpdating::on_link_down(NodeId j) {
  const auto slot = neighbors_.mark_dead(j);
  if (!slot) return;
  flows_[*slot].set_zero();
  estimates_[*slot].set_zero();
  have_estimate_[*slot] = false;
}

void FlowUpdating::on_link_up(NodeId j) {
  const auto slot = neighbors_.mark_alive(j);
  if (!slot) return;
  // Blank edge: no flow routed, no neighbor estimate until the next packet.
  flows_[*slot].set_zero();
  estimates_[*slot].set_zero();
  have_estimate_[*slot] = false;
}

bool FlowUpdating::corrupt_stored_flow(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "corrupt_stored_flow before init");
  const auto slot = static_cast<std::size_t>(rng.below(flows_.size()));
  const auto component = static_cast<std::size_t>(rng.below(flows_[slot].dim() + 1));
  double& victim = component < flows_[slot].dim() ? flows_[slot].s[component] : flows_[slot].w;
  std::uint64_t bit = rng.below(53);
  if (bit == 52) bit = 63;  // sign bit
  std::uint64_t bits;
  std::memcpy(&bits, &victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit);
  std::memcpy(&victim, &bits, sizeof bits);
  return true;
}

Mass FlowUpdating::unreceived_mass(NodeId from, const Packet& packet) const {
  PCF_CHECK_MSG(initialized_, "unreceived_mass before init");
  Mass none = Mass::zero(initial_.dim());
  const auto slot = neighbors_.slot_of(from);
  // Same acceptance conditions as on_receive. The estimate part (packet.b)
  // carries no conserved mass; only the flow mirror does.
  if (!slot || !neighbors_.alive_at(*slot) || packet.a.dim() != initial_.dim() ||
      packet.b.dim() != initial_.dim()) {
    return none;
  }
  return flows_[*slot] + packet.a;
}

std::size_t FlowUpdating::flows_toward(NodeId j, std::span<Mass> out) const {
  const auto slot = neighbors_.slot_of(j);
  if (!slot || !neighbors_.alive_at(*slot) || out.empty()) return 0;
  out[0] = flows_[*slot];
  return 1;
}

double FlowUpdating::max_abs_flow_component() const noexcept {
  double best = 0.0;
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    if (!neighbors_.alive_at(slot)) continue;
    for (double v : flows_[slot].s) best = std::max(best, std::fabs(v));
    best = std::max(best, std::fabs(flows_[slot].w));
  }
  return best;
}

void FlowUpdating::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  write_mass(w, initial_);  // mutable via update_data
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    write_mass(w, flows_[slot]);
    write_mass(w, estimates_[slot]);
    w.boolean(have_estimate_[slot]);
  }
}

void FlowUpdating::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  initial_ = read_mass(r);
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    flows_[slot] = read_mass(r);
    estimates_[slot] = read_mass(r);
    have_estimate_[slot] = r.boolean();
  }
}

}  // namespace pcf::core
