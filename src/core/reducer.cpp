#include "core/reducer.hpp"

#include "core/correction_allreduce.hpp"
#include "core/flow_updating.hpp"
#include "core/fu_mass_hybrid.hpp"
#include "core/push_cancel_flow.hpp"
#include "core/push_flow.hpp"
#include "core/push_sum.hpp"
#include "support/check.hpp"

namespace pcf::core {

std::string_view to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kPushSum: return "push-sum";
    case Algorithm::kPushFlow: return "push-flow";
    case Algorithm::kPushCancelFlow: return "push-cancel-flow";
    case Algorithm::kFlowUpdating: return "flow-updating";
    case Algorithm::kCorrectionAllreduce: return "correction-allreduce";
    case Algorithm::kFuMassHybrid: return "fu-mass-hybrid";
  }
  return "?";
}

Algorithm parse_algorithm(std::string_view name) {
  if (name == "pushsum" || name == "push-sum" || name == "ps") return Algorithm::kPushSum;
  if (name == "pf" || name == "push-flow" || name == "pushflow") return Algorithm::kPushFlow;
  if (name == "pcf" || name == "push-cancel-flow" || name == "pushcancelflow") {
    return Algorithm::kPushCancelFlow;
  }
  if (name == "fu" || name == "flow-updating" || name == "flowupdating") {
    return Algorithm::kFlowUpdating;
  }
  if (name == "corr" || name == "correction-allreduce" || name == "correctionallreduce") {
    return Algorithm::kCorrectionAllreduce;
  }
  if (name == "fumd" || name == "fu-mass-hybrid" || name == "fumasshybrid") {
    return Algorithm::kFuMassHybrid;
  }
  PCF_CHECK_MSG(false, "unknown algorithm '" << name << "' (want: ps|pf|pcf|fu|corr|fumd)");
  __builtin_unreachable();
}

std::string_view to_string(PcfVariant v) noexcept {
  return v == PcfVariant::kFast ? "fast" : "robust";
}

std::unique_ptr<Reducer> make_reducer(Algorithm algorithm, const ReducerConfig& config) {
  switch (algorithm) {
    case Algorithm::kPushSum: return std::make_unique<PushSum>(config);
    case Algorithm::kPushFlow: return std::make_unique<PushFlow>(config);
    case Algorithm::kPushCancelFlow: return std::make_unique<PushCancelFlow>(config);
    case Algorithm::kFlowUpdating: return std::make_unique<FlowUpdating>(config);
    case Algorithm::kCorrectionAllreduce: return std::make_unique<CorrectionAllreduce>(config);
    case Algorithm::kFuMassHybrid: return std::make_unique<FuMassHybrid>(config);
  }
  PCF_CHECK_MSG(false, "unhandled algorithm enum value");
  __builtin_unreachable();
}

}  // namespace pcf::core
