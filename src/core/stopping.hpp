// Stopping criteria for iterative gossip reductions.
//
// A gossip reduction never "finishes"; it converges. Experiments in the paper
// prescribe a target accuracy ε plus an iteration cap. Two detectors are
// provided:
//
//  * OracleStop   — uses the simulator's knowledge of the true aggregate;
//                   matches what the paper's simulations measure. Not
//                   implementable in a real deployment.
//  * LocalStop    — per-node practical criterion: a node considers itself
//                   converged once its estimate has changed by less than a
//                   relative tolerance for K consecutive observations.
//                   Deployable; ablation A4 quantifies the extra rounds it
//                   costs versus the oracle.
//  * FixedPointStop — detects the numerical fixed point: no node's estimate
//                   changed at all over a window. Used by the accuracy
//                   experiments (Figs. 3/6), which measure the best accuracy
//                   an algorithm can ever reach.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace pcf::core {

class LocalStop {
 public:
  /// `rel_tol`: relative change threshold; `patience`: consecutive quiet
  /// observations required before a node reports convergence.
  LocalStop(std::size_t num_nodes, double rel_tol, std::size_t patience);

  /// Feeds the current estimate of node i; returns the node's converged flag.
  bool observe(std::size_t node, double estimate);

  [[nodiscard]] bool node_converged(std::size_t node) const { return quiet_[node] >= patience_; }
  [[nodiscard]] std::size_t converged_count() const;
  [[nodiscard]] bool all_converged() const { return converged_count() == quiet_.size(); }

  /// A failure or data change restarts the detector for a node.
  void reset(std::size_t node);

 private:
  double rel_tol_;
  std::size_t patience_;
  std::vector<double> last_;
  std::vector<std::size_t> quiet_;
  std::vector<bool> seen_;
};

/// Window-based FP fixed point detector over the full estimate vector.
class FixedPointStop {
 public:
  explicit FixedPointStop(std::size_t window) : window_(window) {}

  /// Feeds this round's estimates; returns true once no estimate has changed
  /// bit-for-bit during `window` consecutive rounds.
  bool observe(std::span<const double> estimates);

 private:
  std::size_t window_;
  std::size_t quiet_rounds_ = 0;
  std::vector<double> last_;
};

}  // namespace pcf::core
