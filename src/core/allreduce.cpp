#include "core/allreduce.hpp"

#include "support/check.hpp"

namespace pcf::core {

AllreduceResult recursive_doubling_sum(std::span<const double> values) {
  const std::size_t n = values.size();
  PCF_CHECK_MSG(n > 0 && (n & (n - 1)) == 0, "recursive doubling requires a power-of-two n");
  AllreduceResult r;
  r.per_node.assign(values.begin(), values.end());
  for (std::size_t stride = 1; stride < n; stride <<= 1) {
    // Each round every node exchanges with its partner at XOR distance
    // `stride` and both add the partner's current value.
    std::vector<double> next = r.per_node;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = r.per_node[i] + r.per_node[i ^ stride];
      ++r.messages;
    }
    r.per_node = std::move(next);
    ++r.rounds;
  }
  return r;
}

AllreduceResult tree_sum(std::span<const double> values) {
  const std::size_t n = values.size();
  PCF_CHECK_MSG(n > 0, "tree_sum needs at least one value");
  AllreduceResult r;
  std::vector<double> partial(values.begin(), values.end());
  // Reduce phase: binomial tree toward node 0.
  for (std::size_t stride = 1; stride < n; stride <<= 1) {
    for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
      partial[i] += partial[i + stride];
      ++r.messages;
    }
    ++r.rounds;
  }
  // Broadcast phase: mirror of the reduce tree.
  std::size_t top = 1;
  while (top < n) top <<= 1;
  for (std::size_t stride = top >> 1; stride >= 1; stride >>= 1) {
    for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
      partial[i + stride] = partial[i];
      ++r.messages;
    }
    ++r.rounds;
    if (stride == 1) break;
  }
  r.per_node = std::move(partial);
  return r;
}

}  // namespace pcf::core
