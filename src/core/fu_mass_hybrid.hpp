// Flow-Updating-meets-Mass-Distribution hybrid (Almeida, Baquero,
// Farach-Colton, Jesus, Mosteiro — "Fault-Tolerant Aggregation:
// Flow-Updating Meets Mass-Distribution"), gossip-paced variant.
//
// The hybrid keeps Flow Updating's bookkeeping — per-neighbor flows whose
// mirror is overwritten with the exact negation on receipt, so message loss
// and duplication never destroy mass — but replaces FU's neighborhood
// averaging with Mass-Distribution's PAIRWISE step: each send halves the gap
// between the sender's current mass and the receiver's last reported mass by
// moving the difference through the edge flow,
//
//     Δ = (m_i − m̂_j) / 2,   f_{i,j} += Δ,   m_i' = m_i − Δ,
//
// and transmits (f_{i,j}, m_i'). When the report is current this is exactly
// the two-node averaging that gives Mass-Distribution its convergence speed;
// when it is stale the flow discipline still conserves Σ m exactly, which is
// the paper's claim — MD speed with FU fault tolerance. Estimates are the
// plain local-mass ratio (no fused override).
//
// Shares FU's exclusion rule: a down (or healed) link zeroes the edge flow
// and forgets the report; both masses were already folded into the endpoints'
// local masses.
#pragma once

#include <vector>

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class FuMassHybrid final : public Reducer {
 public:
  explicit FuMassHybrid(const ReducerConfig& config) : config_(config) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  /// The conserved quantity: v_i − Σ_j f_{i,j}.
  [[nodiscard]] Mass local_mass() const override;
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "fu-mass-hybrid"; }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }
  [[nodiscard]] double max_abs_flow_component() const noexcept override;
  [[nodiscard]] std::size_t wire_masses() const noexcept override { return 2; }
  bool corrupt_stored_flow(Rng& rng) override;
  [[nodiscard]] std::size_t flows_toward(NodeId j, std::span<Mass> out) const override;
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override;

 private:
  [[nodiscard]] std::optional<Outgoing> send_to_slot(std::size_t slot);

  ReducerConfig config_;
  NeighborSet neighbors_;
  Mass initial_;
  std::vector<Mass> flows_;     // f_{i,j}
  std::vector<Mass> reported_;  // m̂_j: the neighbor's last reported local mass
  std::vector<bool> have_report_;
  bool initialized_ = false;
};

}  // namespace pcf::core
