// Push-cancel-flow (PCF) — Section III / Fig. 5 of the paper; the paper's
// contribution.
//
// PCF keeps PF's flow concept (all data is exchanged via flows, so all of
// PF's fault-tolerance carries over) but continuously *cancels* converged
// flows so that every live flow variable is rebuilt from recent local
// estimates. Consequences:
//
//  * flow magnitudes stay O(aggregate) instead of growing with n
//    ⇒ no catastrophic cancellation ⇒ machine-precision results (Fig. 6);
//  * a flow's value ratio s/w ≈ aggregate, so zeroing an (antisymmetric)
//    flow pair on link failure perturbs only mass, not estimates
//    ⇒ failures cause no convergence fall-back (Fig. 7).
//
// Mechanism: each edge carries TWO flow slots. One slot is *active* and runs
// plain push-flow; the other is *passive* and is being driven to zero. Once
// pairwise conservation of the passive pair is observed exactly
// (f_{j,i} == −f_{i,j}), both endpoints absorb their copy into the locally
// stored flow sum ϕ, zero the slot, and the roles swap; the cycle repeats
// forever. A per-edge cycle counter r orders the handshake.
//
// ── Deviations from the paper's Fig. 5 pseudocode (deliberate) ──────────────
// The paper's handshake is symmetric: either endpoint may start a
// cancellation, either may swap, and a role-adoption rule reconciles
// disagreements. Under pipelined asynchronous delivery that symmetry races:
//  * a completer's legitimate swap can be ADOPTED BACK by a stale packet,
//    orphaning mass it pushed into the new active slot;
//  * both endpoints can absorb passive values that are NOT exact negations
//    (the passive pair is re-mirrored in both directions, so values ping-pong
//    through the pipeline between the equality check and the absorption).
// Each race silently removes mass from the computation. Both were found with
// the randomized interleaving fuzz test in tests/core/ (the paper's
// synchronous simulations cannot hit the windows). We make the handshake
// race-free with three asymmetries, preserving the algorithm's structure:
//
//  1. only the endpoint with the LOWER node id (the *initiator*) starts
//     cancellations and bumps r; the peer (the *completer*) absorbs + swaps
//     when it observes the bumped r, and the initiator then adopts the swap.
//     Adoption is one-directional: a completed swap can never roll back.
//  2. the initiator's passive copy is WRITE-ONCE per cycle (frozen when the
//     cycle starts); only the completer mirrors its passive, always from the
//     initiator's frozen value. The per-edge counter r counts *phases* (two
//     per cancellation cycle: steady and transition), and the initiator only
//     accepts cancel-equality from packets of the current steady phase —
//     which, by per-direction FIFO, the completer can only send after having
//     mirrored the frozen value. The two absorbed halves of every
//     cancellation are therefore exact negations — under any interleaving
//     and even under message loss — so cancellation conserves mass
//     bit-exactly.
//  3. while a swap is propagating (completer swapped, initiator not yet
//     adopted), packets carrying the old role mirror only the old active
//     slot, so fresh pushes are never clobbered by a stale zero.
//
// The active slot runs unmodified push-flow in every phase, which preserves
// the paper's equivalence property: in a failure-free run with the same
// schedule, PCF's estimates match PF's (Section III-B, used by Figs. 4/7).
#pragma once

#include <array>
#include <vector>

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class PushCancelFlow final : public Reducer {
 public:
  explicit PushCancelFlow(const ReducerConfig& config) : config_(config) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  [[nodiscard]] Mass local_mass() const override;
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return config_.pcf_variant == PcfVariant::kFast ? "push-cancel-flow/fast"
                                                    : "push-cancel-flow/robust";
  }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }
  [[nodiscard]] double max_abs_flow_component() const noexcept override;
  /// Completed role swaps (cancellation cycles), summed over edges.
  [[nodiscard]] std::uint64_t role_swaps() const noexcept override { return role_swaps_; }
  [[nodiscard]] std::size_t wire_masses() const noexcept override { return 2; }
  bool corrupt_stored_flow(Rng& rng) override;
  [[nodiscard]] std::size_t flows_toward(NodeId j, std::span<Mass> out) const override;
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override;

  /// Test hooks.
  struct EdgeView {
    Mass flow1;
    Mass flow2;
    std::uint8_t active_slot;  ///< 1-based
    std::uint64_t role_count;
  };
  [[nodiscard]] EdgeView edge_state(NodeId j) const;

 private:
  struct EdgeState {
    std::array<Mass, 2> flow;
    std::uint8_t active = 0;  ///< current active slot index (paper's c − 1)
    /// Phase counter: two phases per cancellation cycle of the paper's r.
    /// Even = steady (PF + frozen passive), odd = transition (initiator
    /// cancelled, swap propagating). See the phase-model note in the .cpp.
    std::uint64_t cycle = 0;
    /// Initiator only: the mass absorbed by the cancellation of the current
    /// transition phase. If the link dies mid-transition, the absorption is
    /// rolled back — the completer (most likely) never completed, so its
    /// explicit copy (zeroed by the exclusion) would otherwise leave our
    /// absorbed half unbalanced. See on_link_down().
    Mass pending_absorbed;
  };

  [[nodiscard]] std::optional<Outgoing> send_to_slot(std::size_t slot);

  /// Mirrors `received` into our `slot` of `edge`, with ϕ accounting.
  void mirror_slot(EdgeState& edge, std::uint8_t slot, const Mass& received);
  /// Absorbs the passive slot into ϕ and zeroes it.
  void absorb_passive(EdgeState& edge);

  void receive_as_initiator(EdgeState& edge, const Packet& packet);
  void receive_as_completer(EdgeState& edge, const Packet& packet);

  [[nodiscard]] Mass explicit_flow_sum() const;

  ReducerConfig config_;
  NeighborSet neighbors_;
  NodeId self_ = 0;
  Mass initial_;
  std::vector<EdgeState> edges_;  // one per neighbor slot
  /// kFast: running Σ of all live flow slots plus absorbed mass (the paper's
  /// ϕ). kRobust: only the absorbed mass; live slots are summed on demand so
  /// corrupted slots can heal (bit-flip tolerance).
  Mass phi_;
  std::uint64_t role_swaps_ = 0;
  bool initialized_ = false;
};

}  // namespace pcf::core
