// Extrema gossip — distributed min/max.
//
// Sums and averages need mass conservation; minima and maxima do not: the
// aggregate is *idempotent and monotone*, so a node simply keeps the
// smallest/largest values it has ever seen and gossips them. Duplication,
// reordering and loss are all harmless (re-learning an extremum is a no-op),
// which makes extrema gossip trivially fault tolerant — with two inherent
// caveats the flow algorithms do not share:
//
//  * a corrupted packet can inject a spurious extremum that can never be
//    retracted (monotone state cannot heal);
//  * a crashed node's value cannot be un-learned — the reported minimum may
//    belong to a node that no longer exists.
//
// Both are documented properties of min/max gossip in general, not of this
// implementation. The reducer piggybacks on the standard interface: the
// "mass" is the pair (min, max) with weight 1, estimate(0) = min,
// estimate(1) = max. It conserves nothing, so it is driven by the
// statistics layer (sim/statistics.hpp) rather than by oracle-checked
// reductions.
#pragma once

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class ExtremaGossip final : public Reducer {
 public:
  explicit ExtremaGossip(const ReducerConfig& config) : config_(config) {}

  /// `initial` must be scalar: the node's value seeds both extrema.
  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  /// (min, max) as a dim-2 pseudo-mass with weight 1.
  [[nodiscard]] Mass local_mass() const override;
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  /// A new sample merges into the extrema (it can widen them, never shrink).
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "extrema-gossip"; }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }

  [[nodiscard]] double current_min() const noexcept { return min_; }
  [[nodiscard]] double current_max() const noexcept { return max_; }

 private:
  ReducerConfig config_;
  NeighborSet neighbors_;
  double min_ = 0.0;
  double max_ = 0.0;
  bool initialized_ = false;
};

}  // namespace pcf::core
