// Deterministic parallel all-to-all reduction baselines.
//
// Classical HPC allreduce needs a synchronized, pre-planned communication
// schedule and produces exact (bit-identical) results on every node in
// O(log n) rounds — but a single lost message corrupts the result on many
// nodes. These reference implementations exist to compare round counts and
// floating-point accuracy against the gossip algorithms (ablation A6) and to
// give tests an independent reference reduction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pcf::core {

struct AllreduceResult {
  /// Per-node results after the final round (all equal for these algorithms).
  std::vector<double> per_node;
  /// Number of communication rounds executed.
  std::size_t rounds = 0;
  /// Total point-to-point messages sent.
  std::size_t messages = 0;
};

/// Recursive-doubling allreduce (Thakur & Gropp). Requires n to be a power of
/// two; every node ends with the sum of all inputs in ceil(log2 n) rounds.
[[nodiscard]] AllreduceResult recursive_doubling_sum(std::span<const double> values);

/// Binomial-tree reduce-then-broadcast for arbitrary n (2·ceil(log2 n) rounds).
[[nodiscard]] AllreduceResult tree_sum(std::span<const double> values);

}  // namespace pcf::core
